#!/usr/bin/env python3
"""hostnet-lint: project-specific static analysis for the hostnet simulator.

The simulator's correctness story rests on two invariants that ordinary
compilers do not enforce (DESIGN.md section 4c):

  * determinism -- identical results for identical seeds, bit-identical
    between serial and parallel sweeps. Wall-clock reads, unseeded RNG and
    iteration order of unordered containers silently break it.
  * allocation discipline -- the event/MC hot paths perform zero steady-state
    allocations. A stray std::deque / std::function / std::map / new in the
    hot-path subsystems silently breaks it.

Checks (ids are stable; use them in suppressions):

  wall-clock      std::chrono::{system,steady,high_resolution}_clock,
                  gettimeofday / clock_gettime / time(NULL): simulated time
                  comes only from sim::Simulator::now().
  raw-rand        rand() / srand() / std::random_device: all randomness must
                  flow from a seeded common/rng.hpp stream.
  unordered-iter  range-for over a std::unordered_{map,set} declared in the
                  same file: iteration order is unspecified and must not
                  feed results or event ordering.
  hot-alloc       std::deque / std::function / std::map / std::list /
                  std::unordered_{map,set} / new-expressions inside the
                  hot-path subsystems (src/sim, src/mc, src/cha, src/cpu,
                  src/iio, src/fleet -- the fleet runner's per-host loop
                  sits inside every shard -- plus src/flow and src/net:
                  CreditPool wait/notify and the NIC/TCP per-packet pumps
                  run once per event). Setup-path allocations that are
                  genuinely
                  one-time (and vector growth, which amortizes out) are
                  fine -- suppress them explicitly with a justification.
  pragma-once     every header must start its include guard with
                  #pragma once.
  magic-tick      4+-digit decimal literals on Tick-typed lines outside
                  common/units.hpp: tick constants belong in units.hpp or
                  behind its ns()/us()/ms() helpers.
  raw-credit-counter
                  an integral member that looks like an ad-hoc credit pool
                  (*_in_use_, *inflight_, *_used_) declared in the flow-
                  controlled subsystems (src/cpu, src/cha, src/iio, src/mc,
                  src/net). Credit accounting belongs in flow::CreditPool,
                  which carries the ledger, occupancy telemetry and waiter
                  wakeups; a raw counter silently opts out of all three.
                  Counters that genuinely are not host credit domains (e.g.
                  a TCP sender's wire-side cwnd) get an allow() with a
                  justification.
  snapshot-coverage
                  a class that declares save_state() without a matching
                  HOSTNET_SNAPSHOT_COVERS(Class) descriptor in the same
                  file. The descriptor asserts the snapshot contract and
                  opts the class into tools/hostnet_audit.py's field-level
                  coverage audit (common/snapshot.hpp); a save_state()
                  without one can silently fall out of sync with the class
                  it checkpoints.
  stale-allow     (--stale only) an allow() directive that no longer
                  suppresses any finding. Dead suppressions rot fast: the
                  code they excused is gone, but they still mask the next
                  genuine finding on that line.

Suppression: append `// hostnet-lint: allow(<check>[, <check>...])` to the
offending line, or put it alone on the line above. Suppressions are meant to
carry a justification in the surrounding comment; `--list-allows` prints all
of them for audit.

Usage:
    tools/hostnet_lint.py                  # lint src/ bench/ tests/ examples/
    tools/hostnet_lint.py path...          # lint specific files/dirs
    tools/hostnet_lint.py --stale          # also fail on dead allow() directives
    tools/hostnet_lint.py --list-checks
    tools/hostnet_lint.py --list-allows

Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage error.
Stdlib only; no compiler needed.
"""

import argparse
import os
import re
import sys

CXX_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx")
DEFAULT_ROOTS = ("src", "bench", "tests", "examples")
# The lint tool's own test corpus: deliberately-bad snippets that must not
# fail a tree-wide run (tests/test_lint.py scans them explicitly).
SKIP_DIR_NAMES = {"lint_fixtures", "audit_fixtures", "build", ".git"}
SKIP_DIR_PREFIXES = ("build-",)

# Subsystems with a zero-steady-state-allocation contract (DESIGN.md 4a/4b).
# src/flow (CreditPool wait/notify rings) and src/net (NIC DMA/TX pumps, the
# DCTCP copy loop) run on every event and joined the set with the same
# contract.
HOT_PATH_DIRS = ("src/sim", "src/mc", "src/cha", "src/cpu", "src/iio", "src/fleet",
                 "src/flow", "src/net")

# Subsystems whose flow control must go through flow::CreditPool
# (DESIGN.md 4d). src/flow itself is exempt: the pool's own in_use_ lives
# there.
CREDIT_POOL_DIRS = ("src/cpu", "src/cha", "src/iio", "src/mc", "src/net")

ALLOW_RE = re.compile(r"hostnet-lint:\s*allow\(([^)]*)\)")

CHECKS = {
    "wall-clock": "wall-clock time source (simulated time comes from sim::Simulator::now())",
    "raw-rand": "unseeded/global RNG (use a seeded common/rng.hpp stream)",
    "unordered-iter": "iteration over an unordered container (order is unspecified)",
    "hot-alloc": "allocating/indirect type banned in hot-path subsystems",
    "pragma-once": "header missing #pragma once",
    "magic-tick": "magic tick constant outside common/units.hpp",
    "raw-credit-counter": "ad-hoc credit/occupancy counter outside flow::CreditPool",
    "snapshot-coverage": "class declares save_state() without a HOSTNET_SNAPSHOT_COVERS descriptor",
    "stale-allow": "allow() directive that suppresses nothing (reported with --stale)",
}

WALL_CLOCK_RE = re.compile(
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"
    r"|\bgettimeofday\s*\("
    r"|\bclock_gettime\s*\("
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
)
RAW_RAND_RE = re.compile(r"\b(?:rand|srand|drand48|srandom)\s*\(|std::random_device")
# A new-expression allocating an object: `new T`, `::new T` -- but not
# placement new (`new (addr) T`), which allocates nothing.
NEW_EXPR_RE = re.compile(r"\bnew\s+[A-Za-z_:][\w:]*")
HOT_ALLOC_RE = re.compile(
    r"std::deque\s*<|std::function\s*<|std::map\s*<|std::multimap\s*<|std::list\s*<"
    r"|std::unordered_(?:map|set|multimap|multiset)\s*<"
)
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s+(\w+)\s*[;={(]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^;()]*?:\s*(?:this->)?(\w+)\s*\)")
# A 4+-digit decimal literal (optionally with ' separators), not part of an
# identifier, hex literal, or floating-point number, and not already wrapped
# in a units.hpp helper (ns(2730) is the sanctioned spelling).
MAGIC_INT_RE = re.compile(r"(?<![\w.'])(?<!ns\()(?<!us\()(?<!ms\()\d{4,}(?:'\d+)*(?![\w.'])")
TICK_LINE_RE = re.compile(r"\bTick\b|\bticks\b|_ps\b")
# An integral declaration whose name marks it as tracking credits/occupancy:
# `std::uint32_t wpq_in_use_ = 0;`, `unsigned inflight_;` -- but not an
# accessor (`std::uint32_t read_tor_used() const` has a '(' after the name).
RAW_CREDIT_RE = re.compile(
    r"\b(?:std::)?(?:u?int(?:8|16|32|64)_t|size_t|unsigned(?:\s+(?:int|long))?|int|long)"
    r"\s+(\w*(?:in_use|in_?flight|_used)\w*_)\s*(?:=\s*[^;]*)?;"
)
# Events for the snapshot-coverage class tracker: braces/semicolons (scope
# structure), class/struct heads, and save_state mentions that are not
# member calls (`x.save_state`, `p->save_state`) or out-of-class
# definitions (`T::save_state` -- the rule anchors on the class body).
SNAPSHOT_EVENT_RE = re.compile(
    r"(?P<brace>[{};])"
    r"|\b(?:class|struct)\s+(?P<cls>[A-Za-z_]\w*)"
    r"|(?<![.>:\w])(?P<save>save_state)\s*\("
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    A lightweight scanner (not a real lexer): handles //, /* */, "..." with
    escapes, '...' with escapes, and R"delim(...)delim" raw strings -- enough
    for this codebase. Stripped spans become spaces so column numbers and
    line counts survive.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            span = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in span))
            i = j + 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^(]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j == -1 else j
            span = text[i : j + len(close)]
            out.append("".join(ch if ch == "\n" else " " for ch in span))
            i = j + len(close)
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * (j - i - 1) + (c if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_snapshot_coverage(code, report):
    """Every class declaring save_state() must pair HOSTNET_SNAPSHOT_COVERS.

    A brace-depth scan keeps a stack of enclosing class/struct bodies; at
    each in-class save_state() declaration the innermost enclosing class
    (skipping nested `Snapshot` structs) must have a
    HOSTNET_SNAPSHOT_COVERS(Class, ...) descriptor somewhere in the file.
    """
    stack = []  # (class name, brace depth of its body)
    depth = 0
    pending = None  # class head seen, body '{' not yet reached
    reported = set()
    lineno, pos = 1, 0
    for m in SNAPSHOT_EVENT_RE.finditer(code):
        lineno += code.count("\n", pos, m.start())
        pos = m.start()
        if m.group("cls"):
            before = code[:m.start()].rstrip()
            # Not a class definition head: a template parameter
            # (`template <class T>`) or a scoped enum (`enum class Mode`).
            if before.endswith(("<", ",")) or before.endswith("enum"):
                continue
            pending = m.group("cls")
        elif m.group("save"):
            for name, _ in reversed(stack):
                if name == "Snapshot":
                    continue
                if name not in reported and not re.search(
                        r"HOSTNET_SNAPSHOT_COVERS\(\s*" + re.escape(name) + r"\b", code):
                    reported.add(name)
                    report(lineno, "snapshot-coverage",
                           f"'{name}' declares save_state() but the file has no "
                           f"HOSTNET_SNAPSHOT_COVERS({name}) descriptor; add it next "
                           "to the class (common/snapshot.hpp) so hostnet_audit.py "
                           "tracks its field coverage")
                break
        elif m.group("brace") == "{":
            depth += 1
            if pending is not None:
                stack.append((pending, depth))
                pending = None
        elif m.group("brace") == "}":
            if stack and stack[-1][1] == depth:
                stack.pop()
            depth -= 1
        else:  # ';' before any '{': a forward declaration
            pending = None


def rel(path, root):
    try:
        return os.path.relpath(path, root).replace(os.sep, "/")
    except ValueError:
        return path.replace(os.sep, "/")


class Finding:
    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def parse_allows(raw_lines):
    """Parse allow() directives out of a file's raw lines.

    Returns (allows, directives): `allows` maps line number -> set of check
    ids suppressed on that line; `directives` lists each directive as
    (directive_line, ids, covered_lines) so --stale can flag the ones that
    no longer suppress anything.

    A directive suppresses findings on its own line; a directive on an
    otherwise comment-only line also covers the next line.
    """
    allows = {}
    directives = []
    for idx, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if not m:
            continue
        ids = {s.strip() for s in m.group(1).split(",") if s.strip()}
        unknown = ids - set(CHECKS)
        if unknown:
            raise ValueError(
                f"line {idx}: unknown check id(s) in allow(): {', '.join(sorted(unknown))}"
            )
        covered = {idx}
        if line.split("//")[0].strip() == "":  # comment-only line: covers the next
            covered.add(idx + 1)
        for c in covered:
            allows.setdefault(c, set()).update(ids)
        directives.append((idx, ids, covered))
    return allows, directives


def lint_file(path, display_path, collect_allows=None, stale=False):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    raw_lines = text.splitlines()
    try:
        allows, directives = parse_allows(raw_lines)
    except ValueError as e:
        return [Finding(display_path, 0, "pragma-once", f"bad allow() directive: {e}")]
    if collect_allows is not None:
        for dline, ids, _covered in directives:
            collect_allows.append((display_path, dline, sorted(ids)))
    code = strip_comments_and_strings(text)
    code_lines = code.splitlines()

    in_hot_path = any(
        display_path.startswith(d + "/") or ("/" + d + "/") in display_path
        for d in HOT_PATH_DIRS
    )
    in_credit_scope = any(
        display_path.startswith(d + "/") or ("/" + d + "/") in display_path
        for d in CREDIT_POOL_DIRS
    )
    is_header = display_path.endswith((".hpp", ".h"))
    is_units = display_path.endswith("common/units.hpp")
    in_src = display_path.startswith("src/") or "/src/" in display_path

    findings = []
    suppressed = set()  # (line, check) pairs an allow() actually absorbed

    def report(lineno, check, message):
        if check in allows.get(lineno, set()):
            suppressed.add((lineno, check))
        else:
            findings.append(Finding(display_path, lineno, check, message))

    # -- pragma-once (raw text: it is a preprocessor directive) ---------------
    if is_header and not any("#pragma once" in l for l in raw_lines[:80]):
        report(1, "pragma-once", "header does not contain #pragma once")

    unordered_names = {m.group(1) for m in UNORDERED_DECL_RE.finditer(code)}

    check_snapshot_coverage(code, report)

    for lineno, line in enumerate(code_lines, start=1):
        m = WALL_CLOCK_RE.search(line)
        if m:
            report(lineno, "wall-clock",
                   f"'{m.group(0).strip()}' reads wall-clock time; results must "
                   "depend only on sim::Simulator::now()")
        m = RAW_RAND_RE.search(line)
        if m:
            report(lineno, "raw-rand",
                   f"'{m.group(0).strip()}' is not seeded from the experiment seed; "
                   "use common/rng.hpp")
        if unordered_names:
            fm = RANGE_FOR_RE.search(line)
            if fm and fm.group(1) in unordered_names:
                report(lineno, "unordered-iter",
                       f"range-for over unordered container '{fm.group(1)}'; "
                       "iteration order is unspecified and must not feed results "
                       "or event ordering")
        if in_hot_path:
            m = HOT_ALLOC_RE.search(line)
            if m:
                report(lineno, "hot-alloc",
                       f"'{m.group(0).rstrip('<').strip()}' is banned in hot-path "
                       "subsystems (allocates per element or per call); use the "
                       "slot arenas / RingBuffer / sim::Event instead")
            m = NEW_EXPR_RE.search(line)
            if m:
                report(lineno, "hot-alloc",
                       f"new-expression '{m.group(0)}' in a hot-path subsystem; "
                       "steady-state paths must not allocate")
        if in_credit_scope:
            m = RAW_CREDIT_RE.search(line)
            if m:
                report(lineno, "raw-credit-counter",
                       f"'{m.group(1)}' looks like an ad-hoc credit pool; use "
                       "flow::CreditPool (ledger + occupancy telemetry + waiter "
                       "wakeups) or justify with an allow()")
        if in_src and not is_units and TICK_LINE_RE.search(line):
            m = MAGIC_INT_RE.search(line)
            if m:
                report(lineno, "magic-tick",
                       f"magic tick constant {m.group(0)}; name it in "
                       "common/units.hpp or derive it via ns()/us()/ms()")

    if stale:
        for dline, ids, covered in directives:
            if not any((c, i) in suppressed for c in covered for i in ids):
                findings.append(Finding(
                    display_path, dline, "stale-allow",
                    f"allow({', '.join(sorted(ids))}) suppresses nothing; the "
                    "finding it excused is gone -- delete the directive"))
    return findings


def iter_files(paths, root):
    for p in paths:
        ap = os.path.join(root, p) if not os.path.isabs(p) else p
        if os.path.isfile(ap):
            yield ap  # explicit files are always scanned (fixtures rely on this)
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in SKIP_DIR_NAMES and not d.startswith(SKIP_DIR_PREFIXES)
                )
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        yield os.path.join(dirpath, fn)
        else:
            raise FileNotFoundError(p)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="hostnet-specific determinism / allocation-discipline lint")
    ap.add_argument("paths", nargs="*",
                    help=f"files or directories to lint (default: {' '.join(DEFAULT_ROOTS)})")
    ap.add_argument("--root", default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    help="repository root used to resolve default paths and hot-path dirs")
    ap.add_argument("--list-checks", action="store_true", help="print check ids and exit")
    ap.add_argument("--list-allows", action="store_true",
                    help="print every allow() suppression in the scanned tree and exit")
    ap.add_argument("--stale", action="store_true",
                    help="also fail on allow() directives that suppress nothing")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECKS.items():
            print(f"{cid:<16} {desc}")
        return 0

    root = os.path.abspath(args.root)
    paths = args.paths or [p for p in DEFAULT_ROOTS if os.path.isdir(os.path.join(root, p))]
    try:
        files = sorted(set(iter_files(paths, root)))
    except FileNotFoundError as e:
        print(f"hostnet-lint: no such file or directory: {e}", file=sys.stderr)
        return 2

    all_findings = []
    allow_list = [] if args.list_allows else None
    for f in files:
        all_findings.extend(
            lint_file(f, rel(f, root), collect_allows=allow_list, stale=args.stale))

    if args.list_allows:
        for path, lineno, ids in allow_list:
            print(f"{path}:{lineno}: allow({', '.join(ids)})")
        print(f"{len(allow_list)} suppression(s) in {len(files)} file(s)")
        return 0

    for finding in all_findings:
        print(finding)
    if all_findings:
        print(f"\nhostnet-lint: {len(all_findings)} finding(s) in {len(files)} file(s); "
              "fix them or suppress with '// hostnet-lint: allow(<check>)' plus a "
              "justification", file=sys.stderr)
        return 1
    print(f"hostnet-lint: OK ({len(files)} file(s) clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
