// hostnet_fleet -- the config-driven fleet driver: scenario file in, fleet
// report out (ROADMAP item 1). See src/fleet/scenario.hpp for the format
// and scenarios/ for examples.
//
//   hostnet_fleet scenarios/demo.fleet
//   hostnet_fleet scenarios/demo.fleet --threads 4 --mode cold --json
//
// `--mode fork` (default) warms each distinct config fingerprint once and
// forks/memoizes every replica; `--mode cold` re-warms every window (the
// reference path; reports are bit-identical either way). Exit status: 0 on
// success, 2 on usage/parse errors.
#include <cstdio>
#include <cstring>
#include <string>

#include "fleet/runner.hpp"
#include "fleet/scenario.hpp"

using namespace hostnet;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <scenario.fleet> [--threads N] [--mode fork|cold] [--json]\n"
               "  --threads N   worker threads (default: HOSTNET_THREADS, else hardware)\n"
               "  --mode M      fork = warm once per fingerprint (default); cold = reference\n"
               "  --json        machine-readable report on stdout\n",
               argv0);
  return 2;
}

void print_json(const fleet::Scenario& sc, const fleet::FleetReport& r) {
  std::printf("{\n  \"scenario\": \"%s\",\n  \"hosts\": %llu,\n", r.scenario.c_str(),
              static_cast<unsigned long long>(r.hosts));
  std::printf("  \"fingerprints\": %zu,\n  \"shards\": %zu,\n  \"threads\": %u,\n",
              r.fingerprints, r.shards, r.threads);
  std::printf("  \"regimes\": {\"none\": %llu, \"blue\": %llu, \"red\": %llu},\n",
              static_cast<unsigned long long>(r.agg.regime_count(core::Regime::kNone)),
              static_cast<unsigned long long>(r.agg.regime_count(core::Regime::kBlue)),
              static_cast<unsigned long long>(r.agg.regime_count(core::Regime::kRed)));
  std::printf("  \"sweep_cache\": {\"checkpoint_hits\": %llu, \"checkpoint_misses\": %llu, "
              "\"outcome_hits\": %llu, \"outcome_misses\": %llu},\n",
              static_cast<unsigned long long>(r.cache.checkpoint_hits),
              static_cast<unsigned long long>(r.cache.checkpoint_misses),
              static_cast<unsigned long long>(r.cache.outcome_hits),
              static_cast<unsigned long long>(r.cache.outcome_misses));
  std::printf("  \"tenants\": [\n");
  for (std::size_t i = 0; i < sc.tenants().size(); ++i) {
    const fleet::TenantAggregate& a = r.agg.tenants[i];
    const double n = a.placements ? static_cast<double>(a.placements) : 1.0;
    std::printf("    {\"name\": \"%s\", \"placements\": %llu, \"mean_score\": %.6g, "
                "\"mean_degradation\": %.6g, \"latency_ns\": {\"p50\": %.6g, \"p99\": %.6g, "
                "\"p999\": %.6g}}%s\n",
                sc.tenants()[i].c_str(), static_cast<unsigned long long>(a.placements),
                a.colo_score_sum / n, a.mean_degradation(), a.latency.p50(), a.latency.p99(),
                a.latency.p999(), i + 1 < sc.tenants().size() ? "," : "");
  }
  std::printf("  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  fleet::RunnerOptions opt;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      opt.threads = static_cast<unsigned>(std::atoi(argv[++i]));
    } else if (arg == "--mode" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "fork") opt.mode = core::SweepMode::kFork;
      else if (m == "cold") opt.mode = core::SweepMode::kCold;
      else
        return usage(argv[0]);
    } else if (arg == "--json") {
      json = true;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  try {
    const fleet::Scenario sc = fleet::Scenario::load(path);
    const fleet::FleetReport report = fleet::run_fleet(sc, opt);
    if (json)
      print_json(sc, report);
    else
      std::fputs(fleet::format_report(sc, report).c_str(), stdout);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "hostnet_fleet: %s\n", e.what());
    return 2;
  }
  return 0;
}
