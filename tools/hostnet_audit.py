#!/usr/bin/env python3
"""hostnet-audit: field-level model auditor for the hostnet simulator.

hostnet_lint.py answers "does this line look wrong?"; hostnet_audit.py
answers three *whole-program* questions that line-oriented lint cannot
(DESIGN.md section 4g):

  1. snapshot coverage -- for every class with a nested `Snapshot` struct,
     every data member must be mentioned by save_state() AND load_state()
     (the checkpoint/fork engine of DESIGN.md 4e silently diverges
     otherwise), and every `Snapshot` field must be written by save_state()
     and read back by load_state() symmetrically. Members that are
     deliberately not checkpointed (construction config, derived values
     rebuilt by load_state()) carry an audited suppression:

         // hostnet-audit: skip(field_, why it is not snapshot state)

     Reference members are construction wiring by definition and are
     exempted automatically (recorded in the manifest with a generated
     reason).

  2. pool registration -- every class that owns a `flow::CreditPool` by
     value must surface it to the host-wide `flow::DomainRegistry`: the
     member (or one of its accessors) must appear in a `registry.add(...)` /
     `registry.add_interior(...)` call somewhere in the scanned tree.
     An unregistered pool is invisible to `DomainRegistry::observe`, the
     predictor's spec table and the fleet aggregates. Deliberate
     exceptions are annotated in place:

         // hostnet-audit: allow(pool-unregistered, why)

  3. handler purity -- code in the event-handler subsystems
     (src/{sim,cpu,cha,iio,mc,net}) may not hold function-local `static`
     mutable state or namespace-scope mutable variables: fork/replay runs
     the same handler from the same Snapshot twice and hidden state makes
     the replays diverge. `const`/`constexpr` data is fine.

The auditor also *generates* the per-class field manifest
(`tools/snapshot_manifest.json`, checked in). A default tree run verifies
the manifest is current; after changing any audited class run

    python3 tools/hostnet_audit.py --write-manifest

and commit the refreshed manifest. The manifest is the field-level
replacement for the old sizeof-based HOSTNET_SNAPSHOT_COVERS values: it
records exactly which members are covered and why each skipped member is
not state, independent of ABI, compiler and padding.

Parsing is the same lightweight-scanner approach as hostnet_lint.py: no
libclang, stdlib only. Comments/strings are blanked, preprocessor lines
are blanked (so `#ifdef HOSTNET_CHECKED` members are audited in every
configuration), and a brace scanner builds a namespace/class/block scope
tree. "Mentioned in save_state()" is a word-boundary containment check,
not dataflow -- precise enough to catch the forgotten-member bug class
this tool exists for, and the Snapshot-field symmetry check covers the
write/read direction.

Checks (ids are stable; use them in suppressions):

  snapshot-save-missing   data member never mentioned in save_state()
  snapshot-load-missing   data member never mentioned in load_state()
  snapshot-asymmetry      Snapshot field written but never restored (or
                          restored but never written, or dead), or a class
                          with a Snapshot struct missing save/load
  snapshot-skip           skip() names a field the class does not have
  snapshot-dead-skip      skip() on a field that is saved and loaded anyway
  pool-unregistered       by-value flow::CreditPool member never registered
                          in a DomainRegistry
  handler-static-state    function-local static mutable state in a handler
                          subsystem
  handler-global-state    namespace-scope mutable variable in a handler
                          subsystem
  manifest-drift          tools/snapshot_manifest.json does not match the
                          tree (run --write-manifest)
  stale-allow             an allow() that no longer suppresses anything
  bad-directive           malformed skip()/allow() (missing reason, unknown
                          check id, skip outside an audited class)

Usage:
    tools/hostnet_audit.py                   # audit src/ + verify manifest
    tools/hostnet_audit.py path...           # audit specific files/dirs
    tools/hostnet_audit.py --json            # machine-readable report
    tools/hostnet_audit.py --write-manifest  # refresh tools/snapshot_manifest.json
    tools/hostnet_audit.py --list-checks
    tools/hostnet_audit.py --list-skips

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import argparse
import bisect
import json
import os
import re
import sys

CXX_EXTENSIONS = (".hpp", ".h", ".cpp", ".cc", ".cxx")
DEFAULT_ROOTS = ("src",)
SKIP_DIR_NAMES = {"lint_fixtures", "audit_fixtures", "build", ".git"}
SKIP_DIR_PREFIXES = ("build-",)
MANIFEST_REL = "tools/snapshot_manifest.json"

# Event-handler subsystems with the fork/replay purity contract.
HANDLER_DIRS = ("src/sim", "src/cpu", "src/cha", "src/iio", "src/mc", "src/net")
# src/flow owns the pool/registry implementation itself.
POOL_EXEMPT_DIRS = ("src/flow",)

REFERENCE_SKIP_REASON = "reference member: construction-time wiring, not state"

CHECKS = {
    "snapshot-save-missing": "data member never mentioned in save_state()",
    "snapshot-load-missing": "data member never mentioned in load_state()",
    "snapshot-asymmetry": "Snapshot field not saved+restored symmetrically",
    "snapshot-skip": "skip() names a field the class does not declare",
    "snapshot-dead-skip": "skip() on a field that is saved and loaded anyway",
    "pool-unregistered": "by-value flow::CreditPool never registered in a DomainRegistry",
    "handler-static-state": "function-local static mutable state in a handler subsystem",
    "handler-global-state": "namespace-scope mutable variable in a handler subsystem",
    "manifest-drift": "tools/snapshot_manifest.json is out of date",
    "stale-allow": "allow() directive that suppresses nothing",
    "bad-directive": "malformed hostnet-audit directive",
}

# Checks that accept an `// hostnet-audit: allow(<check>, reason)` on the
# finding line (or alone on the line above). Snapshot-coverage findings are
# never allow()ed -- they are either fixed or skip()ed per field.
ALLOWABLE = {"pool-unregistered", "handler-static-state", "handler-global-state"}

SKIP_RE = re.compile(r"hostnet-audit:\s*skip\(\s*([A-Za-z_]\w*)\s*(?:,\s*([^)]*))?\)")
ALLOW_RE = re.compile(r"hostnet-audit:\s*allow\(\s*([\w-]+)\s*(?:,\s*([^)]*))?\)")
DIRECTIVE_RE = re.compile(r"hostnet-audit:\s*(\w+)")


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line structure.

    Kept in sync with tools/hostnet_lint.py (same scanner: //, /* */, "..."
    and '...' with escapes, R"delim(...)delim" raw strings).
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            span = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in span))
            i = j + 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^(]*)\(', text[i:])
            if m is None:
                out.append(c)
                i += 1
                continue
            close = ")" + m.group(1) + '"'
            j = text.find(close, i + m.end())
            j = n - len(close) if j == -1 else j
            span = text[i : j + len(close)]
            out.append("".join(ch if ch == "\n" else " " for ch in span))
            i = j + len(close)
        elif c == '"' or c == "'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            out.append(c + " " * (j - i - 1) + (c if j < n else ""))
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def blank_preprocessor(code):
    """Blank preprocessor lines (including \\-continuations).

    Conditional members (`#ifdef HOSTNET_CHECKED ... #endif`) stay visible to
    the audit in every configuration; include guards and macro definitions
    stop confusing the scope scanner.
    """
    out = []
    cont = False
    for line in code.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


class Scope:
    __slots__ = ("kind", "name", "head_start", "open_pos", "close_pos",
                 "children", "parent")

    def __init__(self, kind, name, head_start, open_pos, close_pos):
        self.kind = kind          # top | namespace | class | enum | block
        self.name = name
        self.head_start = head_start
        self.open_pos = open_pos
        self.close_pos = close_pos
        self.children = []
        self.parent = None


def classify_head(head):
    """Classify the text between the previous statement boundary and a '{'."""
    h = head.strip()
    if re.search(r"\benum\b", h):
        return "enum", None
    m = None
    for cm in re.finditer(r"\b(?:class|struct|union)\s+([A-Za-z_]\w*)?", h):
        m = cm
    if m is not None and "(" not in h:
        return "class", m.group(1)
    if "(" not in h and re.search(r"\bnamespace(\s+[\w:]+)?\s*$", h):
        nm = re.search(r"\bnamespace\s+([\w:]+)\s*$", h)
        return "namespace", nm.group(1) if nm else None
    return "block", None


def build_scopes(code):
    """Single pass over braces -> scope tree + open_pos -> Scope index."""
    root = Scope("top", None, 0, -1, len(code))
    by_open = {}
    stack = [root]
    last_boundary = 0
    for m in re.finditer(r"[{};]", code):
        ch, pos = m.group(0), m.start()
        if ch == "{":
            kind, name = classify_head(code[last_boundary:pos])
            sc = Scope(kind, name, last_boundary, pos, len(code))
            sc.parent = stack[-1]
            stack[-1].children.append(sc)
            stack.append(sc)
            by_open[pos] = sc
        elif ch == "}":
            if len(stack) > 1:
                stack[-1].close_pos = pos
                stack.pop()
        last_boundary = pos + 1
    return root, by_open


def innermost_scope(root, pos):
    sc = root
    while True:
        nxt = next((c for c in sc.children if c.open_pos < pos <= c.close_pos), None)
        if nxt is None:
            return sc
        sc = nxt


def direct_statements(code, scope):
    """(start_pos, text) of the scope's own statements, child scopes elided
    to `{}` so nested bodies/initializers never leak into the split."""
    stmts = []
    buf, cur_start = [], None
    i = scope.open_pos + 1
    children = scope.children
    ci = 0
    while i < scope.close_pos:
        if ci < len(children) and i == children[ci].open_pos:
            buf.append("{}")
            i = children[ci].close_pos + 1
            ci += 1
            continue
        c = code[i]
        if c == ";":
            text = "".join(buf)
            if text.strip():
                stmts.append((cur_start if cur_start is not None else i, text))
            buf, cur_start = [], None
        else:
            if cur_start is None and not c.isspace():
                cur_start = i
            buf.append(c)
        i += 1
    text = "".join(buf)
    if text.strip():
        stmts.append((cur_start, text))
    return stmts


def elide_parens(s):
    out, depth = [], 0
    for c in s:
        if c == "(":
            depth += 1
            if depth == 1:
                out.append("(")
        elif c == ")":
            if depth > 0:
                depth -= 1
                if depth == 0:
                    out.append(")")
            else:
                out.append(")")
        elif depth == 0:
            out.append(c)
    return "".join(out)


def strip_angles(s):
    prev = None
    while prev != s:
        prev = s
        s = re.sub(r"<[^<>]*>", "", s)
    return s


def find_init_eq(s):
    """Index of the first initializer '=' (not ==, <=, +=, ...), else None."""
    for i, c in enumerate(s):
        if c != "=":
            continue
        prev = s[i - 1] if i else ""
        nxt = s[i + 1] if i + 1 < len(s) else ""
        if prev in "=!<>+-*/%&|^" or nxt == "=":
            continue
        return i
    return None


ACCESS_RE = re.compile(r"\b(?:public|private|protected)\s*:")
NON_MEMBER_KW_RE = re.compile(
    r"\b(?:using|typedef|friend|static_assert|template|operator|requires|concept"
    r"|namespace|extern|asm)\b")
FN_QUALS_RE = re.compile(r"(?:\b(?:const|noexcept|override|final)\b\s*|->\s*[\w:<>&*\s]+\s*)+$")


def _decl_tail_name(s):
    """Name of a variable declaration statement (parens already elided), or
    None if the statement is a function/type/alias/... instead."""
    cut = find_init_eq(s)
    if cut is not None:
        s = s[:cut]
    s = s.rstrip()
    while s.endswith("{}"):
        s = s[:-2].rstrip()
        bare = FN_QUALS_RE.sub("", s).rstrip()
        if bare.endswith(")"):
            return None  # function definition (body elided to {})
        if re.search(r"\b(?:class|struct|union|enum)\s+[A-Za-z_]\w*\s*(?::[^{}]*)?$", s):
            return None  # nested type definition (body elided to {})
    # Inline function/type bodies end at `}` with no `;`, so the statement
    # split gloms them onto the next declaration. Only the text after the
    # last elided body is this declaration; anything before it (and its
    # `&`/`*`/qualifiers) belongs to the earlier definitions.
    last = s.rfind("{}")
    if last != -1:
        s = s[last + 2:]
        if not s.strip():
            return None
    s = FN_QUALS_RE.sub("", s).rstrip()
    if s.endswith(")"):
        return None  # function declaration (or unsupported fn-pointer decl)
    while re.search(r"\[[^\[\]]*\]$", s):
        s = re.sub(r"\s*\[[^\[\]]*\]$", "", s)
        s = s.rstrip()
    m = re.search(r"([A-Za-z_]\w*)$", s)
    if not m or not s[: m.start()].strip():
        return None
    return m.group(1), s[: m.start()]


def parse_member(stmt):
    """Parse one class-body statement into a member record, or None."""
    s = ACCESS_RE.sub(" ", stmt)
    s = elide_parens(s).strip()
    if not s or NON_MEMBER_KW_RE.search(s):
        return None
    if re.match(r"(?:class|struct|union|enum)\b", s):
        return None
    got = _decl_tail_name(s)
    if got is None:
        return None
    name, pre = got
    if re.search(r"\b(?:static|constexpr|constinit)\b", pre):
        return None  # class-level constants, not instance state
    pre_flat = strip_angles(pre)
    is_ref = "&" in pre_flat
    is_pool = bool(
        re.search(r"\bCreditPool\b", pre)
        and not is_ref
        and "*" not in pre_flat
        and "Snapshot" not in pre
    )
    return {"name": name, "is_ref": is_ref, "is_pool": is_pool}


# `restore(const Snapshot&)` is the composition-root spelling of load_state
# (core::HostSystem); it only counts when the parameter is a Snapshot.
SAVELOAD_RE = re.compile(
    r"(?:([A-Za-z_]\w*)\s*::\s*)?\b(save_state|load_state|restore)\s*\(([^)]*)\)")
ACCESSOR_RE = re.compile(
    r"CreditPool\s*&\s*([A-Za-z_]\w*)\s*\(\s*\)[^{};]*\{\s*return\s+([A-Za-z_]\w*)\s*;")
REG_CALL_RE = re.compile(r"\badd(?:_interior)?\s*\(")
REG_RECEIVER_RE = re.compile(r"(?:registr\w*|domains)\s*(?:\(\s*\))?\s*(?:\.|->)\s*$")
STATIC_RE = re.compile(r"\b(?:static|thread_local)\b")


def word_in(name, body):
    return re.search(r"\b" + re.escape(name) + r"\b", body) is not None


def balanced_args(code, open_pos):
    """Text inside the parens starting at code[open_pos] == '('."""
    depth = 0
    for i in range(open_pos, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                return code[open_pos + 1 : i]
    return code[open_pos + 1 :]


class FileModel:
    """Parsed view of one file: scopes, classes, directives, purity events."""

    def __init__(self, path, display_path):
        self.path = path
        self.display = display_path
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        self.raw_lines = text.splitlines()
        self.code = blank_preprocessor(strip_comments_and_strings(text))
        self.nl = [i for i, c in enumerate(self.code) if c == "\n"]
        self.root, self.by_open = build_scopes(self.code)
        self.classes = []       # class records (dicts)
        self.out_of_line = []   # (class name, kind, record)
        self.skips = []         # (line, field, reason)
        self.allows = {}        # line -> [(check, reason, directive_line)]
        self.directive_errors = []  # (line, message)
        self._parse_directives()
        self._parse_classes()
        self._parse_saveload()

    def line_of(self, pos):
        return bisect.bisect_right(self.nl, pos) + 1

    # -- directives -----------------------------------------------------------
    def _parse_directives(self):
        for idx, line in enumerate(self.raw_lines, start=1):
            dm = DIRECTIVE_RE.search(line)
            if not dm:
                continue
            sm = SKIP_RE.search(line)
            am = ALLOW_RE.search(line)
            if sm:
                field, reason = sm.group(1), (sm.group(2) or "").strip()
                if not reason:
                    self.directive_errors.append(
                        (idx, f"skip({field}) has no reason; write "
                              f"skip({field}, why it is not snapshot state)"))
                else:
                    self.skips.append((idx, field, reason))
            elif am:
                check, reason = am.group(1), (am.group(2) or "").strip()
                if check not in CHECKS:
                    self.directive_errors.append(
                        (idx, f"allow() names unknown check id '{check}'"))
                elif check not in ALLOWABLE:
                    self.directive_errors.append(
                        (idx, f"'{check}' findings cannot be allow()ed; fix the "
                              "code or use a per-field skip()"))
                elif not reason:
                    self.directive_errors.append(
                        (idx, f"allow({check}) has no reason; write "
                              f"allow({check}, why)"))
                else:
                    entry = (check, reason, idx)
                    self.allows.setdefault(idx, []).append(entry)
                    if line.split("//")[0].strip() == "":
                        self.allows.setdefault(idx + 1, []).append(entry)
            else:
                self.directive_errors.append(
                    (idx, f"unrecognized hostnet-audit directive '{dm.group(1)}'; "
                          "expected skip(field, reason) or allow(check, reason)"))

    # -- classes + members ----------------------------------------------------
    def _parse_classes(self):
        def walk(scope, path):
            for child in scope.children:
                if child.kind == "class":
                    qual = path + [child.name or "<anon>"]
                    rec = self._class_record(child, qual)
                    self.classes.append(rec)
                    walk(child, qual)
                elif child.kind in ("namespace", "top", "block"):
                    walk(child, path)
        walk(self.root, [])

    def _class_record(self, scope, qual):
        members = []
        for spos, stmt in direct_statements(self.code, scope):
            got = parse_member(stmt)
            if got:
                got["line"] = self.line_of(spos)
                members.append(got)
        accessors = {}
        for m in ACCESSOR_RE.finditer(self.code, scope.open_pos, scope.close_pos):
            accessors.setdefault(m.group(2), set()).add(m.group(1))
        snap = next((c for c in scope.children
                     if c.kind == "class" and c.name == "Snapshot"), None)
        return {
            "file": self.display,
            "name": qual[-1],
            "qual": "::".join(qual),
            "line": self.line_of(scope.open_pos),
            "span": (self.line_of(scope.head_start), self.line_of(scope.close_pos)),
            "scope": scope,
            "members": members,
            "accessors": accessors,
            "snapshot_scope": snap,
            "snapshot_fields": ([
                {"name": m["name"], "line": m["line"]}
                for m in (self._snapshot_members(snap) if snap else [])
            ]),
            "save": None,
            "load": None,
            "model": self,
        }

    def _snapshot_members(self, snap):
        out = []
        for spos, stmt in direct_statements(self.code, snap):
            got = parse_member(stmt)
            if got:
                got["line"] = self.line_of(spos)
                out.append(got)
        return out

    # -- save_state / load_state ----------------------------------------------
    def _parse_saveload(self):
        by_scope = {id(c["scope"]): c for c in self.classes}
        for m in SAVELOAD_RE.finditer(self.code):
            qualifier, kind, params = m.group(1), m.group(2), m.group(3)
            if kind == "restore":
                if "Snapshot" not in params:
                    continue
                kind = "load_state"
            k = m.start(2) if qualifier else m.start()
            before = self.code[:k].rstrip()
            if before.endswith(".") or before.endswith("->") or before.endswith("::") and not qualifier:
                continue  # member call or deeper qualification
            if qualifier is None and (before.endswith(".") or before.endswith("->")):
                continue
            # body or declaration?
            j = m.end()
            while True:
                while j < len(self.code) and self.code[j].isspace():
                    j += 1
                km = re.match(r"(?:const|noexcept|override|final)\b", self.code[j:])
                if km:
                    j += km.end()
                    continue
                break
            body = None
            if j < len(self.code) and self.code[j] == "{":
                sc = self.by_open.get(j)
                if sc is not None:
                    body = self.code[sc.open_pos + 1 : sc.close_pos]
            elif j < len(self.code) and self.code[j] not in ";":
                continue  # something else (expression, pointer-to-member, ...)
            names = re.findall(r"[A-Za-z_]\w*", params)
            rec = {
                "param": names[-1] if names else None,
                "body": body,
                "line": self.line_of(m.start()),
                "file": self.display,
            }
            if qualifier:
                self.out_of_line.append((qualifier, kind, rec))
            else:
                sc = innermost_scope(self.root, m.start() + 1)
                while sc is not None and sc.kind != "class":
                    sc = sc.parent
                if sc is None:
                    continue
                cls = by_scope.get(id(sc))
                if cls is None:
                    continue
                key = "save" if kind == "save_state" else "load"
                cur = cls[key]
                if cur is None or (cur["body"] is None and body is not None):
                    cls[key] = rec

    # -- purity events --------------------------------------------------------
    def local_statics(self):
        for m in STATIC_RE.finditer(self.code):
            sc = innermost_scope(self.root, m.start() + 1)
            if sc.kind != "block":
                continue
            stop = self.code.find(";", m.start())
            decl = self.code[m.start(): stop if stop != -1 else m.start() + 160]
            if re.search(r"\b(?:const|constexpr|constinit)\b", decl):
                continue
            yield self.line_of(m.start()), decl.split("\n")[0].strip()

    def namespace_vars(self):
        def walk(scope):
            if scope.kind in ("top", "namespace"):
                for spos, stmt in direct_statements(self.code, scope):
                    name = self._global_var(stmt)
                    if name:
                        yield self.line_of(spos), name
            for child in scope.children:
                if child.kind in ("namespace", "top"):
                    yield from walk(child)
        yield from walk(self.root)

    @staticmethod
    def _global_var(stmt):
        s = elide_parens(stmt).strip()
        if not s:
            return None
        if re.search(r"\b(?:using|typedef|namespace|class|struct|union|enum|template"
                     r"|friend|static_assert|extern|operator|concept|asm)\b", s):
            return None
        if re.search(r"\b(?:constexpr|constinit|consteval)\b", s):
            return None
        if re.match(r"(?:inline\s+|static\s+|thread_local\s+)*const\b", s):
            return None
        got = _decl_tail_name(s)
        if got is None:
            return None
        return got[0]

    def registered_ids(self):
        ids = set()
        for m in REG_CALL_RE.finditer(self.code):
            ctx = self.code[max(0, m.start() - 64): m.start()]
            if not REG_RECEIVER_RE.search(ctx):
                continue
            open_pos = self.code.find("(", m.start())
            ids.update(re.findall(r"[A-Za-z_]\w*", balanced_args(self.code, open_pos)))
        return ids


class Finding:
    __slots__ = ("path", "line", "check", "message")

    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


def path_in(display_path, dirs):
    return any(display_path.startswith(d + "/") or ("/" + d + "/") in display_path
               for d in dirs)


class Auditor:
    def __init__(self):
        self.models = []
        self.findings = []
        self.used_allows = set()   # (file display, directive line, check)

    def add_file(self, path, display):
        self.models.append(FileModel(path, display))

    def report(self, model, line, check, message):
        for (c, _reason, directive_line) in model.allows.get(line, []):
            if c == check:
                self.used_allows.add((model.display, directive_line, check))
                return
        self.findings.append(Finding(model.display, line, check, message))

    # -- whole-program tables -------------------------------------------------
    def audited_classes(self):
        """Classes with a Snapshot struct or save/load, out-of-line bodies
        attached, each with its bound skip() directives."""
        by_name = {}
        for model in self.models:
            for cls in model.classes:
                by_name.setdefault(cls["name"], []).append(cls)
        for model in self.models:
            for qualifier, kind, rec in model.out_of_line:
                key = "save" if kind == "save_state" else "load"
                for cls in by_name.get(qualifier, []):
                    cur = cls[key]
                    if cur is None or cur["body"] is None:
                        cls[key] = rec
        audited = []
        for model in self.models:
            for cls in model.classes:
                if cls["snapshot_scope"] is None and cls["save"] is None \
                        and cls["load"] is None:
                    continue
                if cls["name"] == "Snapshot":
                    continue
                audited.append(cls)
        # bind skip() directives to the innermost audited class spanning them
        for model in self.models:
            for (line, field, reason) in model.skips:
                best = None
                for cls in audited:
                    if cls["model"] is not model:
                        continue
                    lo, hi = cls["span"]
                    if lo <= line <= hi and (
                            best is None
                            or hi - lo < best["span"][1] - best["span"][0]):
                        best = cls
                if best is None:
                    self.report(model, line, "bad-directive",
                                f"skip({field}, ...) is not inside a snapshot-"
                                "audited class")
                else:
                    best.setdefault("skips", []).append((line, field, reason))
        return audited

    # -- checks ---------------------------------------------------------------
    def run(self):
        for model in self.models:
            for (line, msg) in model.directive_errors:
                self.report(model, line, "bad-directive", msg)

        audited = self.audited_classes()
        registered = set()
        for model in self.models:
            registered |= model.registered_ids()

        for cls in audited:
            self._audit_snapshot(cls)
        for model in self.models:
            self._audit_pools(model, registered)
            if path_in(model.display, HANDLER_DIRS):
                self._audit_purity(model)
        self._audit_stale_allows()
        self.findings.sort(key=lambda f: (f.path, f.line, f.check))
        return audited

    def _audit_snapshot(self, cls):
        model = cls["model"]
        save, load = cls["save"], cls["load"]
        sbody = save["body"] if save else None
        lbody = load["body"] if load else None
        if cls["snapshot_scope"] is not None and (sbody is None or lbody is None):
            missing = [k for k, b in (("save_state", sbody), ("load_state", lbody))
                       if b is None]
            self.report(model, cls["line"], "snapshot-asymmetry",
                        f"'{cls['qual']}' has a Snapshot struct but no "
                        f"{' or '.join(missing)} definition in the scanned set")
        skips = {field: (line, reason) for (line, field, reason)
                 in cls.get("skips", [])}
        member_names = {m["name"] for m in cls["members"]}
        for m in cls["members"]:
            if m["is_ref"] or m["name"] in skips:
                continue
            if sbody is not None and not word_in(m["name"], sbody):
                self.report(model, m["line"], "snapshot-save-missing",
                            f"'{cls['qual']}::{m['name']}' is never mentioned in "
                            "save_state(); checkpoint/fork will silently drop it. "
                            "Save it or annotate "
                            f"'// hostnet-audit: skip({m['name']}, reason)'")
            if lbody is not None and not word_in(m["name"], lbody):
                self.report(model, m["line"], "snapshot-load-missing",
                            f"'{cls['qual']}::{m['name']}' is never mentioned in "
                            "load_state(); restore will silently keep stale state. "
                            "Restore it or annotate "
                            f"'// hostnet-audit: skip({m['name']}, reason)'")
        for field, (line, _reason) in skips.items():
            if field not in member_names:
                self.report(model, line, "snapshot-skip",
                            f"skip({field}) names no data member of "
                            f"'{cls['qual']}'")
            elif sbody is not None and lbody is not None \
                    and word_in(field, sbody) and word_in(field, lbody):
                self.report(model, line, "snapshot-dead-skip",
                            f"skip({field}) is dead: '{field}' is mentioned by "
                            "both save_state() and load_state(); drop the skip")
        if cls["snapshot_scope"] is not None and sbody and lbody:
            out = (save.get("param") or "out")
            src = (load.get("param") or "s")
            for f in cls["snapshot_fields"]:
                wrote = re.search(
                    r"\b" + re.escape(out) + r"\s*\.\s*" + re.escape(f["name"]) + r"\b",
                    sbody)
                read = re.search(
                    r"\b" + re.escape(src) + r"\s*\.\s*" + re.escape(f["name"]) + r"\b",
                    lbody)
                if wrote and not read:
                    self.report(model, f["line"], "snapshot-asymmetry",
                                f"Snapshot field '{f['name']}' is written by "
                                f"save_state() but never read back by load_state()")
                elif read and not wrote:
                    self.report(model, f["line"], "snapshot-asymmetry",
                                f"Snapshot field '{f['name']}' is read by "
                                f"load_state() but never written by save_state()")
                elif not wrote and not read:
                    self.report(model, f["line"], "snapshot-asymmetry",
                                f"Snapshot field '{f['name']}' is dead: neither "
                                "saved nor restored")

    def _audit_pools(self, model, registered):
        if path_in(model.display, POOL_EXEMPT_DIRS):
            return
        for cls in model.classes:
            for m in cls["members"]:
                if not m["is_pool"]:
                    continue
                names = {m["name"]} | cls["accessors"].get(m["name"], set())
                if names & registered:
                    continue
                self.report(model, m["line"], "pool-unregistered",
                            f"'{cls['qual']}::{m['name']}' is a flow::CreditPool "
                            "that never reaches a DomainRegistry add()/"
                            "add_interior() call; register it (DESIGN.md 4d) or "
                            "annotate '// hostnet-audit: allow(pool-unregistered, "
                            "why)'")

    def _audit_purity(self, model):
        for line, decl in model.local_statics():
            self.report(model, line, "handler-static-state",
                        f"function-local static mutable state ('{decl[:60]}') in "
                        "a handler subsystem; fork/replay would diverge -- hoist "
                        "it into the component and snapshot it")
        for line, name in model.namespace_vars():
            self.report(model, line, "handler-global-state",
                        f"namespace-scope mutable variable '{name}' in a handler "
                        "subsystem; fork/replay would diverge -- make it a "
                        "component member (snapshotted) or const/constexpr")

    def _audit_stale_allows(self):
        for model in self.models:
            seen = set()
            for entries in model.allows.values():
                for (check, _reason, directive_line) in entries:
                    key = (model.display, directive_line, check)
                    if key in seen:
                        continue
                    seen.add(key)
                    if key not in self.used_allows:
                        self.report(model, directive_line, "stale-allow",
                                    f"allow({check}) no longer suppresses any "
                                    "finding; delete the stale directive")

    # -- manifest -------------------------------------------------------------
    def manifest(self, audited):
        classes = {}
        for cls in sorted(audited, key=lambda c: (c["qual"], c["file"])):
            skips = {field: reason for (_line, field, reason)
                     in cls.get("skips", [])}
            for m in cls["members"]:
                if m["is_ref"]:
                    skips.setdefault(m["name"], REFERENCE_SKIP_REASON)
            state = sorted(m["name"] for m in cls["members"]
                           if not m["is_ref"] and m["name"] not in skips)
            entry = {
                "file": cls["file"],
                "state": state,
                "skipped": {k: skips[k] for k in sorted(skips)},
                "snapshot": sorted(f["name"] for f in cls["snapshot_fields"]),
            }
            key = cls["qual"]
            if key in classes:
                key = f"{key} ({cls['file']})"
            classes[key] = entry
        return {
            "comment": "Generated by tools/hostnet_audit.py --write-manifest. "
                       "Field-level snapshot coverage record: 'state' members "
                       "round-trip through save_state()/load_state(); 'skipped' "
                       "members carry the audited reason they are not state. "
                       "Do not edit by hand.",
            "classes": classes,
        }

    def check_manifest(self, audited, manifest_path, display):
        current = self.manifest(audited)
        try:
            with open(manifest_path, encoding="utf-8") as f:
                on_disk = json.load(f)
        except (OSError, ValueError):
            self.findings.append(Finding(
                display, 1, "manifest-drift",
                f"missing or unreadable manifest; run "
                "'python3 tools/hostnet_audit.py --write-manifest' and commit"))
            return
        cur_cls = current["classes"]
        old_cls = on_disk.get("classes", {})
        for name in sorted(set(cur_cls) | set(old_cls)):
            if cur_cls.get(name) != old_cls.get(name):
                self.findings.append(Finding(
                    display, 1, "manifest-drift",
                    f"entry for '{name}' is out of date (fields or skips "
                    "changed); run 'python3 tools/hostnet_audit.py "
                    "--write-manifest' and commit"))


def rel(path, root):
    try:
        return os.path.relpath(path, root).replace(os.sep, "/")
    except ValueError:
        return path.replace(os.sep, "/")


def iter_files(paths, root):
    for p in paths:
        ap = os.path.join(root, p) if not os.path.isabs(p) else p
        if os.path.isfile(ap):
            yield ap
        elif os.path.isdir(ap):
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in SKIP_DIR_NAMES and not d.startswith(SKIP_DIR_PREFIXES)
                )
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        yield os.path.join(dirpath, fn)
        else:
            raise FileNotFoundError(p)


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="field-level snapshot/pool/purity auditor for hostnet")
    ap.add_argument("paths", nargs="*",
                    help=f"files or directories to audit (default: {' '.join(DEFAULT_ROOTS)})")
    ap.add_argument("--root",
                    default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                    help="repository root used to resolve default paths and the manifest")
    ap.add_argument("--json", action="store_true",
                    help="emit a machine-readable JSON report on stdout")
    ap.add_argument("--write-manifest", action="store_true",
                    help=f"regenerate {MANIFEST_REL} from the tree and exit")
    ap.add_argument("--manifest", default=None,
                    help=f"manifest path (default: <root>/{MANIFEST_REL})")
    ap.add_argument("--list-checks", action="store_true",
                    help="print check ids and exit")
    ap.add_argument("--list-skips", action="store_true",
                    help="print every skip()/allow() directive in the scanned tree and exit")
    args = ap.parse_args(argv)

    if args.list_checks:
        for cid, desc in CHECKS.items():
            print(f"{cid:<24} {desc}")
        return 0

    root = os.path.abspath(args.root)
    explicit = bool(args.paths)
    paths = args.paths or [p for p in DEFAULT_ROOTS
                           if os.path.isdir(os.path.join(root, p))]
    try:
        files = sorted(set(iter_files(paths, root)))
    except FileNotFoundError as e:
        print(f"hostnet-audit: no such file or directory: {e}", file=sys.stderr)
        return 2

    auditor = Auditor()
    for f in files:
        auditor.add_file(f, rel(f, root))

    if args.list_skips:
        for model in auditor.models:
            for (line, field, reason) in model.skips:
                print(f"{model.display}:{line}: skip({field}) -- {reason}")
            seen = set()
            for entries in model.allows.values():
                for (check, reason, dline) in entries:
                    if (dline, check) in seen:
                        continue
                    seen.add((dline, check))
                    print(f"{model.display}:{dline}: allow({check}) -- {reason}")
        return 0

    audited = auditor.run()
    manifest_path = args.manifest or os.path.join(root, MANIFEST_REL)

    if args.write_manifest:
        blocking = [f for f in auditor.findings if f.check != "manifest-drift"]
        if blocking:
            for f in blocking:
                print(f)
            print(f"\nhostnet-audit: refusing to write manifest with "
                  f"{len(blocking)} outstanding finding(s)", file=sys.stderr)
            return 1
        with open(manifest_path, "w", encoding="utf-8") as f:
            json.dump(auditor.manifest(audited), f, indent=2, sort_keys=False)
            f.write("\n")
        print(f"hostnet-audit: wrote {rel(manifest_path, root)} "
              f"({len(audited)} class(es))")
        return 0

    if not explicit:
        auditor.check_manifest(audited, manifest_path, rel(manifest_path, root))
        auditor.findings.sort(key=lambda f: (f.path, f.line, f.check))

    if args.json:
        print(json.dumps({
            "files": len(files),
            "classes": sorted(c["qual"] for c in audited),
            "findings": [
                {"path": f.path, "line": f.line, "check": f.check,
                 "message": f.message}
                for f in auditor.findings
            ],
            "ok": not auditor.findings,
        }, indent=2))
        return 1 if auditor.findings else 0

    for finding in auditor.findings:
        print(finding)
    if auditor.findings:
        print(f"\nhostnet-audit: {len(auditor.findings)} finding(s) in "
              f"{len(files)} file(s); fix them, skip(field, reason) derived/"
              "config members, or allow(check, reason) audited exceptions",
              file=sys.stderr)
        return 1
    print(f"hostnet-audit: OK ({len(files)} file(s), "
          f"{len(audited)} audited class(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
