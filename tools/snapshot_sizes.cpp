// Prints the authoritative sizeof() for every class carrying a
// HOSTNET_SNAPSHOT_COVERS descriptor, for refreshing the descriptors after
// an audited Snapshot extension. Build with the probe flag so stale
// descriptors cannot block the probe itself:
//
//   g++ -std=c++20 -O2 -DNDEBUG -DHOSTNET_SNAPSHOT_SIZE_PROBE \
//       -I src tools/snapshot_sizes.cpp -o /tmp/snapshot_sizes && /tmp/snapshot_sizes
//
// (Header-only probe: nothing is linked, only layouts are inspected.)
#include <cstdio>

#include "cha/cha.hpp"
#include "core/host_system.hpp"
#include "cpu/core.hpp"
#include "flow/credit_pool.hpp"
#include "iio/iio.hpp"
#include "iio/storage_device.hpp"
#include "mc/channel.hpp"
#include "mc/memory_controller.hpp"
#include "net/dctcp.hpp"
#include "net/nic_device.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace hostnet;
#define P(T) std::printf("%-28s %zu\n", #T, sizeof(T))
  P(flow::CreditPool);
  P(sim::CalendarQueue);
  P(sim::Simulator);
  P(cpu::Core);
  P(cha::Cha);
  P(iio::Iio);
  P(iio::StorageDevice);
  P(mc::Channel);
  P(mc::MemoryController);
  P(net::NicDevice);
  P(net::CopyCore);
  P(net::TcpReceiver);
  P(core::HostSystem);
#undef P
  return 0;
}
