#!/usr/bin/env bash
# Builds the test suite with ThreadSanitizer and runs the full tier-1 suite
# (perf-labeled benchmark jobs excluded) -- most importantly the parallel
# sweep engine tests (worker pool + parallel experiment sweeps), since the
# slot-arena scheduler and ring-buffer queues run inside every sweep worker.
# Guards the threading model documented in DESIGN.md: one HostSystem per
# job, no shared mutable state between workers.
#
# Usage: scripts/run_tsan_pool_tests.sh [build-dir]   (default: build-tsan)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-tsan"}"

cmake -B "${build_dir}" -S "${repo_root}" -DHOSTNET_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" --target hostnet_tests hostnet_checkpoint_tests \
  -j "$(nproc)"

# TSan halts on the first data race so a regression fails the run loudly.
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -LE "perf|golden" \
    -j "$(nproc)"
