#!/usr/bin/env bash
# The static-analysis / checked-build CI gate (ISSUE: hostnet-check).
#
# One entry point, exit 0 = the tree is clean:
#   1. format      scripts/format_check.sh (clang-format or python fallback)
#   2. lint        tools/hostnet_lint.py --stale over src/ bench/ tests/
#                  examples/ (determinism/allocation rules + dead-suppression
#                  sweep)
#   3. audit       tools/hostnet_audit.py over src/: field-level snapshot
#                  coverage vs tools/snapshot_manifest.json, CreditPool
#                  registration, handler purity
#   4. clang-tidy  full build with -DHOSTNET_LINT=ON (.clang-tidy,
#                  warnings-as-errors); SKIPPED with a notice when
#                  clang-tidy is not installed (this container ships none)
#   5. checked     full tier-1 suite under -DHOSTNET_CHECKED=ON: every
#                  HOSTNET_INVARIANT live, death tests included
#   6. sanitizers  full suite under ASan+UBSan and TSan
#   7. perf        release bench_sim_perf vs bench/baselines/: checked
#                  instrumentation must compile out of release builds, so a
#                  >10% BM_HostSimulation regression fails the gate
#   8. golden      release bench_fig* outputs vs bench/goldens/ (byte-for-
#                  byte; scripts/check_golden.sh)
#
# Usage: scripts/ci_static_analysis.sh [--quick]
#   --quick   steps 1-5 only (no sanitizer rebuilds, no benchmark, no
#             goldens): the fast pre-push loop.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
quick=0
[[ "${1:-}" == "--quick" ]] && quick=1
jobs="$(nproc)"

step() { printf '\n=== ci_static_analysis: %s ===\n' "$1"; }

step "1/8 format check"
scripts/format_check.sh

step "2/8 hostnet-lint (with stale-suppression sweep)"
python3 tools/hostnet_lint.py --stale

step "3/8 hostnet-audit (snapshot coverage / pool registration / purity)"
python3 tools/hostnet_audit.py

step "4/8 clang-tidy build"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake -B build-tidy -S . -DHOSTNET_LINT=ON >/dev/null
  cmake --build build-tidy -j "${jobs}"
else
  echo "SKIP: clang-tidy not installed; .clang-tidy is exercised where the" \
       "toolchain provides it (tools/hostnet_lint.py covered the" \
       "project-specific rules in step 2)"
fi

step "5/8 checked-invariant build + full tier-1 suite"
cmake -B build-checked -S . -DHOSTNET_CHECKED=ON >/dev/null
cmake --build build-checked -j "${jobs}"
ctest --test-dir build-checked -LE "perf|golden" -j "${jobs}" --output-on-failure
# Checkpoint/fork engine under live invariants, gated explicitly: restore()
# audits the restored event queue event-by-event only in this build mode
# (label wired in tests/CMakeLists.txt).
ctest --test-dir build-checked -L checkpoint --output-on-failure
# Fleet engine determinism (serial-vs-parallel and fork-vs-cold aggregates)
# under the same live invariants.
ctest --test-dir build-checked -L fleet --output-on-failure
# Pluggable TCP stacks: per-stack snapshot round-trips, fork-vs-cold
# bit-identity and the DCTCP differential vs the pre-refactor formula.
ctest --test-dir build-checked -L tcp --output-on-failure

if [[ ${quick} -eq 1 ]]; then
  step "quick mode: skipping sanitizers + perf gate + goldens"
  echo "ci_static_analysis: OK (quick)"
  exit 0
fi

step "6/8 sanitizers (ASan+UBSan, then TSan) over the full suite"
scripts/run_asan_ubsan_tests.sh build-asan
scripts/run_tsan_pool_tests.sh build-tsan

step "7/8 release perf gate (checked instrumentation must compile out)"
cmake -B build -S . >/dev/null
cmake --build build -j "${jobs}"
ctest --test-dir build -R bench_sim_perf_json --output-on-failure
python3 scripts/bench_compare.py \
  bench/baselines/BENCH_sim_perf.main.json build/BENCH_sim_perf.json \
  --threshold 0.10

step "8/8 golden bench outputs (byte-for-byte vs bench/goldens/)"
scripts/check_golden.sh build/bench

echo
echo "ci_static_analysis: OK"
