#!/usr/bin/env bash
# Formatting gate for the C++ tree (src/ bench/ tests/ examples/ + tools/).
#
# With clang-format installed: `clang-format --dry-run -Werror` against the
# committed .clang-format -- any diff fails. Without it (the CI container
# ships only gcc + python3), falls back to a pure-python whitespace check
# that catches the mechanical offences a formatter would: trailing
# whitespace, tab indentation in C++ sources, CRLF line endings, and a
# missing final newline.
#
# Usage: scripts/format_check.sh [--fix]
#   --fix   rewrite files in place (clang-format -i, or python fallback
#           stripping trailing whitespace / normalizing endings).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"
fix=0
[[ "${1:-}" == "--fix" ]] && fix=1

mapfile -t files < <(find src bench tests examples -name '*.hpp' -o -name '*.cpp' -o -name '*.h' | sort)

if command -v clang-format >/dev/null 2>&1; then
  if [[ ${fix} -eq 1 ]]; then
    clang-format -i "${files[@]}"
    echo "format_check: clang-format -i applied to ${#files[@]} file(s)"
  else
    clang-format --dry-run -Werror "${files[@]}"
    echo "format_check: OK (clang-format, ${#files[@]} file(s))"
  fi
  exit 0
fi

echo "format_check: clang-format not found; using python whitespace fallback" >&2
python3 - "$fix" "${files[@]}" <<'PY'
import sys

fix = sys.argv[1] == "1"
paths = sys.argv[2:]
problems = 0
for path in paths:
    with open(path, "rb") as f:
        data = f.read()
    orig = data
    msgs = []
    if b"\r\n" in data:
        msgs.append("CRLF line endings")
        data = data.replace(b"\r\n", b"\n")
    if b"\t" in data:
        # Tabs are never used for indentation in this tree; report only
        # (an automatic tab->space rewrite needs a human eye on alignment).
        msgs.append("tab character")
    lines = data.split(b"\n")
    if any(l != l.rstrip() for l in lines):
        msgs.append("trailing whitespace")
        data = b"\n".join(l.rstrip() for l in lines)
    if data and not data.endswith(b"\n"):
        msgs.append("missing final newline")
        data += b"\n"
    if msgs:
        problems += 1
        print(f"{path}: {', '.join(msgs)}")
        if fix and data != orig and b"\t" not in orig:
            with open(path, "wb") as f:
                f.write(data)
            print(f"{path}: fixed")
if problems and not fix:
    print(f"format_check: {problems} file(s) need attention "
          "(run scripts/format_check.sh --fix)", file=sys.stderr)
    sys.exit(1)
print(f"format_check: OK (fallback, {len(paths)} file(s))")
PY
