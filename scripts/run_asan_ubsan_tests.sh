#!/usr/bin/env bash
# Builds the test suite with AddressSanitizer + UndefinedBehaviorSanitizer
# (via the HOSTNET_SANITIZE CMake option) and runs the full tier-1 suite
# (perf-labeled benchmark jobs excluded). The MC slot-arena queues schedule
# through raw slot indices and intrusive lists, and sim::Event type-erases
# closures through a reinterpret_cast seam -- the classic habitat for
# off-by-one, use-after-release and object-lifetime bugs that plain asserts
# miss; ASan/UBSan turns them into hard failures.
#
# Usage: scripts/run_asan_ubsan_tests.sh [build-dir]   (default: build-asan)
# Also runnable as a CTest job: configure the main build with
# -DHOSTNET_SANITIZER_JOBS=ON and `ctest -R sanitize_asan_ubsan`.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-asan"}"

cmake -B "${build_dir}" -S "${repo_root}" -DHOSTNET_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${build_dir}" --target hostnet_tests hostnet_checkpoint_tests \
  -j "$(nproc)"

ASAN_OPTIONS="halt_on_error=1:detect_leaks=0" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "${build_dir}" --output-on-failure -LE "perf|golden" \
    -j "$(nproc)"
