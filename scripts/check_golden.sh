#!/usr/bin/env bash
# Golden-output gate: the figure benches must be byte-identical to the
# committed goldens in bench/goldens/.
#
# The flow-layer refactor (and any future one touching the credit pools)
# claims to be behavior-preserving; this harness is the enforcement: every
# bench_fig* binary is run with the measurement-window environment overrides
# cleared (the simulation is fully deterministic, so the outputs are
# machine-independent) and diffed against its golden.
#
# Usage:
#   scripts/check_golden.sh [--update] [bench_build_dir]
#     bench_build_dir   defaults to build/bench
#     --update          re-capture the goldens from the current binaries
#                       (do this only when an output change is intended,
#                       and say why in the commit message)
#
# Exit status: 0 = all outputs byte-identical (or updated), 1 = divergence
# or a bench without a golden, 77 = nothing to check (no bench binaries --
# e.g. a tests-only sanitizer build; CTest's SKIP_RETURN_CODE).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
golden_dir="${repo_root}/bench/goldens"

mode=check
if [[ "${1:-}" == "--update" ]]; then
  mode=update
  shift
fi
bench_dir="${1:-${repo_root}/build/bench}"

if [[ ! -d "${bench_dir}" ]]; then
  echo "check_golden: bench build dir not found: ${bench_dir}" >&2
  echo "  build first: cmake -B build -S . && cmake --build build" >&2
  exit 77
fi

benches=()
for bin in "${bench_dir}"/bench_fig*; do
  [[ -x "${bin}" && ! -d "${bin}" ]] && benches+=("${bin}")
done
if [[ ${#benches[@]} -eq 0 ]]; then
  echo "check_golden: no bench_fig* binaries in ${bench_dir} (skipping)" >&2
  exit 77
fi

mkdir -p "${golden_dir}"
tmp_out="$(mktemp)"
trap 'rm -f "${tmp_out}"' EXIT

failures=0
for bin in "${benches[@]}"; do
  name="$(basename "${bin}")"
  golden="${golden_dir}/${name}.txt"
  # The env overrides shorten CI measurement windows; goldens are captured
  # at the default windows so they are comparable across environments.
  # HOSTNET_FORK_SWEEPS=1 routes every sweep through the checkpoint/fork
  # engine: the goldens double as the proof that forked sweeps are
  # byte-identical to the cold runs the goldens were captured from.
  env -u HOSTNET_MEASURE_US -u HOSTNET_WARMUP_US \
      HOSTNET_FORK_SWEEPS=1 "${bin}" > "${tmp_out}"
  if [[ "${mode}" == "update" ]]; then
    cp "${tmp_out}" "${golden}"
    echo "updated  ${name}"
    continue
  fi
  if [[ ! -f "${golden}" ]]; then
    echo "MISSING  ${name}: no golden at bench/goldens/${name}.txt" \
         "(capture with scripts/check_golden.sh --update)"
    failures=$((failures + 1))
    continue
  fi
  if diff -u "${golden}" "${tmp_out}" > /dev/null; then
    echo "ok       ${name}"
  else
    echo "DIFFERS  ${name}:"
    diff -u "${golden}" "${tmp_out}" | head -40 || true
    failures=$((failures + 1))
  fi
done

if [[ "${mode}" == "update" ]]; then
  echo "check_golden: goldens updated (${#benches[@]} bench(es))"
  exit 0
fi
if [[ ${failures} -gt 0 ]]; then
  echo "check_golden: ${failures} bench(es) diverged from bench/goldens/" >&2
  exit 1
fi
echo "check_golden: OK (${#benches[@]} bench(es) byte-identical)"
