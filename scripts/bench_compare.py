#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CANDIDATE.json [--threshold 0.10]
                             [--metric auto|real_time|items_per_second]

Benchmarks are matched by name; only names present in both files are
compared. For each pair the script prints baseline, candidate, and the
speedup (candidate relative to baseline, >1 = faster), preferring
items_per_second (higher is better) and falling back to real_time (lower
is better). Exits non-zero if any benchmark regressed by more than the
threshold (default 10%), so it can gate a PR:

    ctest -R bench_sim_perf_json          # writes build/BENCH_sim_perf.json
    scripts/bench_compare.py bench/baselines/BENCH_sim_perf.main.json \
        build/BENCH_sim_perf.json

Aggregate entries (``*_mean``, ``*_median``, ``*_stddev``, ``*_cv``) are
skipped; raw repetition entries are averaged per name. Stdlib only.
"""

import argparse
import json
import sys

AGGREGATE_SUFFIXES = ("_mean", "_median", "_stddev", "_cv", "_min", "_max")


def load(path):
    """name -> {metric: mean value} for the raw benchmark entries."""
    with open(path) as f:
        doc = json.load(f)
    acc = {}
    for b in doc.get("benchmarks", []):
        name = b.get("name", "")
        if not name or name.endswith(AGGREGATE_SUFFIXES) or b.get("run_type") == "aggregate":
            continue
        entry = acc.setdefault(name, {"n": 0})
        entry["n"] += 1
        for metric in ("real_time", "cpu_time", "items_per_second"):
            if metric in b:
                entry[metric] = entry.get(metric, 0.0) + float(b[metric])
    for entry in acc.values():
        n = entry.pop("n")
        for k in list(entry):
            entry[k] /= n
    return acc


def pick_metric(requested, base, cand):
    if requested != "auto":
        return requested if requested in base and requested in cand else None
    for metric in ("items_per_second", "real_time"):
        if metric in base and metric in cand:
            return metric
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="max tolerated slowdown, as a fraction (default 0.10)")
    ap.add_argument("--metric", default="auto",
                    choices=["auto", "real_time", "cpu_time", "items_per_second"])
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)
    common = [n for n in base if n in cand]
    if not common:
        print("bench_compare: no common benchmark names between the two files",
              file=sys.stderr)
        return 2

    regressions = []
    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'baseline':>14}  {'candidate':>14}  {'speedup':>8}  metric")
    for name in common:
        metric = pick_metric(args.metric, base[name], cand[name])
        if metric is None:
            print(f"{name:<{width}}  {'-':>14}  {'-':>14}  {'n/a':>8}  (metric missing)")
            continue
        b, c = base[name][metric], cand[name][metric]
        if b <= 0 or c <= 0:
            continue
        # Normalize to "candidate speedup over baseline": for time metrics a
        # smaller candidate is faster; for rates a larger candidate is faster.
        speedup = (b / c) if metric.endswith("_time") else (c / b)
        flag = ""
        if speedup < 1.0 - args.threshold:
            regressions.append((name, metric, speedup))
            flag = "  << REGRESSION"
        print(f"{name:<{width}}  {b:>14.4g}  {c:>14.4g}  {speedup:>7.2f}x  {metric}{flag}")

    only_base = sorted(set(base) - set(cand))
    if only_base:
        print(f"note: {len(only_base)} benchmark(s) only in baseline (new code "
              f"may have renamed them): {', '.join(only_base[:5])}"
              + ("..." if len(only_base) > 5 else ""))

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, metric, speedup in regressions:
            print(f"  {name}: {speedup:.2f}x ({metric})", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%} "
          f"({len(common)} compared)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
