file(REMOVE_RECURSE
  "CMakeFiles/bench_fig29_30_tcp_formula.dir/bench_fig29_30_tcp_formula.cpp.o"
  "CMakeFiles/bench_fig29_30_tcp_formula.dir/bench_fig29_30_tcp_formula.cpp.o.d"
  "bench_fig29_30_tcp_formula"
  "bench_fig29_30_tcp_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig29_30_tcp_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
