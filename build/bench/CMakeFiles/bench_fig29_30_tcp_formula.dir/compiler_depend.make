# Empty compiler generated dependencies file for bench_fig29_30_tcp_formula.
# This may be replaced when dependencies are built.
