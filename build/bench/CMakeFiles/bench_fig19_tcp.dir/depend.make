# Empty dependencies file for bench_fig19_tcp.
# This may be replaced when dependencies are built.
