# Empty dependencies file for bench_fig02_ddio.
# This may be replaced when dependencies are built.
