file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_ddio.dir/bench_fig02_ddio.cpp.o"
  "CMakeFiles/bench_fig02_ddio.dir/bench_fig02_ddio.cpp.o.d"
  "bench_fig02_ddio"
  "bench_fig02_ddio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_ddio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
