# Empty compiler generated dependencies file for bench_fig13_14_quadrants24.
# This may be replaced when dependencies are built.
