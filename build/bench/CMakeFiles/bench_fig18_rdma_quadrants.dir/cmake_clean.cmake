file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_rdma_quadrants.dir/bench_fig18_rdma_quadrants.cpp.o"
  "CMakeFiles/bench_fig18_rdma_quadrants.dir/bench_fig18_rdma_quadrants.cpp.o.d"
  "bench_fig18_rdma_quadrants"
  "bench_fig18_rdma_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_rdma_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
