# Empty compiler generated dependencies file for bench_fig18_rdma_quadrants.
# This may be replaced when dependencies are built.
