file(REMOVE_RECURSE
  "CMakeFiles/bench_loaded_latency.dir/bench_loaded_latency.cpp.o"
  "CMakeFiles/bench_loaded_latency.dir/bench_loaded_latency.cpp.o.d"
  "bench_loaded_latency"
  "bench_loaded_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loaded_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
