file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_17_apps_rw.dir/bench_fig15_17_apps_rw.cpp.o"
  "CMakeFiles/bench_fig15_17_apps_rw.dir/bench_fig15_17_apps_rw.cpp.o.d"
  "bench_fig15_17_apps_rw"
  "bench_fig15_17_apps_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_17_apps_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
