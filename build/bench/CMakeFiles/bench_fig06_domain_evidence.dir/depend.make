# Empty dependencies file for bench_fig06_domain_evidence.
# This may be replaced when dependencies are built.
