file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_domain_evidence.dir/bench_fig06_domain_evidence.cpp.o"
  "CMakeFiles/bench_fig06_domain_evidence.dir/bench_fig06_domain_evidence.cpp.o.d"
  "bench_fig06_domain_evidence"
  "bench_fig06_domain_evidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_domain_evidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
