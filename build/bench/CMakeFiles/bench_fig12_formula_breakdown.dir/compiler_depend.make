# Empty compiler generated dependencies file for bench_fig12_formula_breakdown.
# This may be replaced when dependencies are built.
