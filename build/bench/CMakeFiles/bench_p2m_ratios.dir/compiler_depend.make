# Empty compiler generated dependencies file for bench_p2m_ratios.
# This may be replaced when dependencies are built.
