file(REMOVE_RECURSE
  "CMakeFiles/bench_p2m_ratios.dir/bench_p2m_ratios.cpp.o"
  "CMakeFiles/bench_p2m_ratios.dir/bench_p2m_ratios.cpp.o.d"
  "bench_p2m_ratios"
  "bench_p2m_ratios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_p2m_ratios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
