file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_24_rdma_rootcause.dir/bench_fig20_24_rdma_rootcause.cpp.o"
  "CMakeFiles/bench_fig20_24_rdma_rootcause.dir/bench_fig20_24_rdma_rootcause.cpp.o.d"
  "bench_fig20_24_rdma_rootcause"
  "bench_fig20_24_rdma_rootcause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_24_rdma_rootcause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
