# Empty dependencies file for bench_fig20_24_rdma_rootcause.
# This may be replaced when dependencies are built.
