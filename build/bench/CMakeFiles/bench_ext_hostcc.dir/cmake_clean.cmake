file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_hostcc.dir/bench_ext_hostcc.cpp.o"
  "CMakeFiles/bench_ext_hostcc.dir/bench_ext_hostcc.cpp.o.d"
  "bench_ext_hostcc"
  "bench_ext_hostcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_hostcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
