# Empty dependencies file for bench_ext_hostcc.
# This may be replaced when dependencies are built.
