file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_iio.dir/bench_ext_multi_iio.cpp.o"
  "CMakeFiles/bench_ext_multi_iio.dir/bench_ext_multi_iio.cpp.o.d"
  "bench_ext_multi_iio"
  "bench_ext_multi_iio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_iio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
