# Empty dependencies file for bench_crossgen.
# This may be replaced when dependencies are built.
