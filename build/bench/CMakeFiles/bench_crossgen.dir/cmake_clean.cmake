file(REMOVE_RECURSE
  "CMakeFiles/bench_crossgen.dir/bench_crossgen.cpp.o"
  "CMakeFiles/bench_crossgen.dir/bench_crossgen.cpp.o.d"
  "bench_crossgen"
  "bench_crossgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_crossgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
