# Empty dependencies file for bench_fig07_quadrant1.
# This may be replaced when dependencies are built.
