# Empty dependencies file for bench_ablation_credits.
# This may be replaced when dependencies are built.
