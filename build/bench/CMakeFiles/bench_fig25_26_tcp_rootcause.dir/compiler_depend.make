# Empty compiler generated dependencies file for bench_fig25_26_tcp_rootcause.
# This may be replaced when dependencies are built.
