file(REMOVE_RECURSE
  "CMakeFiles/bench_fig25_26_tcp_rootcause.dir/bench_fig25_26_tcp_rootcause.cpp.o"
  "CMakeFiles/bench_fig25_26_tcp_rootcause.dir/bench_fig25_26_tcp_rootcause.cpp.o.d"
  "bench_fig25_26_tcp_rootcause"
  "bench_fig25_26_tcp_rootcause.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig25_26_tcp_rootcause.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
