# Empty compiler generated dependencies file for bench_fig27_28_rdma_formula.
# This may be replaced when dependencies are built.
