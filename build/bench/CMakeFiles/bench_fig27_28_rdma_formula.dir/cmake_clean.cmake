file(REMOVE_RECURSE
  "CMakeFiles/bench_fig27_28_rdma_formula.dir/bench_fig27_28_rdma_formula.cpp.o"
  "CMakeFiles/bench_fig27_28_rdma_formula.dir/bench_fig27_28_rdma_formula.cpp.o.d"
  "bench_fig27_28_rdma_formula"
  "bench_fig27_28_rdma_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig27_28_rdma_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
