# Empty compiler generated dependencies file for bench_fig01_apps_icelake.
# This may be replaced when dependencies are built.
