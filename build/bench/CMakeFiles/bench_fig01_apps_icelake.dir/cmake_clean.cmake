file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_apps_icelake.dir/bench_fig01_apps_icelake.cpp.o"
  "CMakeFiles/bench_fig01_apps_icelake.dir/bench_fig01_apps_icelake.cpp.o.d"
  "bench_fig01_apps_icelake"
  "bench_fig01_apps_icelake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_apps_icelake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
