# Empty dependencies file for bench_sim_perf.
# This may be replaced when dependencies are built.
