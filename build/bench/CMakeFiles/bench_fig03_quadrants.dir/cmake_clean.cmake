file(REMOVE_RECURSE
  "CMakeFiles/bench_fig03_quadrants.dir/bench_fig03_quadrants.cpp.o"
  "CMakeFiles/bench_fig03_quadrants.dir/bench_fig03_quadrants.cpp.o.d"
  "bench_fig03_quadrants"
  "bench_fig03_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
