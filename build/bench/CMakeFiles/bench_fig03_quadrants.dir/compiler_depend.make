# Empty compiler generated dependencies file for bench_fig03_quadrants.
# This may be replaced when dependencies are built.
