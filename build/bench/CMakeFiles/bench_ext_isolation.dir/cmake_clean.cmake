file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_isolation.dir/bench_ext_isolation.cpp.o"
  "CMakeFiles/bench_ext_isolation.dir/bench_ext_isolation.cpp.o.d"
  "bench_ext_isolation"
  "bench_ext_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
