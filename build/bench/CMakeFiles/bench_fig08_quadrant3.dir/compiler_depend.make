# Empty compiler generated dependencies file for bench_fig08_quadrant3.
# This may be replaced when dependencies are built.
