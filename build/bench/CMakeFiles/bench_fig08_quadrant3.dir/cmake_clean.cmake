file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_quadrant3.dir/bench_fig08_quadrant3.cpp.o"
  "CMakeFiles/bench_fig08_quadrant3.dir/bench_fig08_quadrant3.cpp.o.d"
  "bench_fig08_quadrant3"
  "bench_fig08_quadrant3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_quadrant3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
