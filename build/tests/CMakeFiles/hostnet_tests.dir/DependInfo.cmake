
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analytic.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_analytic.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_analytic.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_cha.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_cha.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_cha.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_conservation.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_conservation.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_conservation.cpp.o.d"
  "/root/repo/tests/test_counters.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_counters.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_counters.cpp.o.d"
  "/root/repo/tests/test_cpu_iio.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_cpu_iio.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_cpu_iio.cpp.o.d"
  "/root/repo/tests/test_dram.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_dram.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_dram.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_host_system.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_host_system.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_host_system.cpp.o.d"
  "/root/repo/tests/test_mc.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_mc.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_mc.cpp.o.d"
  "/root/repo/tests/test_mc_property.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_mc_property.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_mc_property.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_net_property.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_net_property.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_net_property.cpp.o.d"
  "/root/repo/tests/test_regimes.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_regimes.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_regimes.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/hostnet_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/hostnet_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hostnet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_analytic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_hostcc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_iio.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_cha.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hostnet_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
