# Empty dependencies file for hostnet_tests.
# This may be replaced when dependencies are built.
