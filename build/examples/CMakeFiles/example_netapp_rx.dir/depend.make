# Empty dependencies file for example_netapp_rx.
# This may be replaced when dependencies are built.
