file(REMOVE_RECURSE
  "CMakeFiles/example_netapp_rx.dir/netapp_rx.cpp.o"
  "CMakeFiles/example_netapp_rx.dir/netapp_rx.cpp.o.d"
  "netapp_rx"
  "netapp_rx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_netapp_rx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
