# Empty dependencies file for example_trace_capture.
# This may be replaced when dependencies are built.
