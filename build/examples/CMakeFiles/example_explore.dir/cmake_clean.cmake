file(REMOVE_RECURSE
  "CMakeFiles/example_explore.dir/explore.cpp.o"
  "CMakeFiles/example_explore.dir/explore.cpp.o.d"
  "explore"
  "explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
