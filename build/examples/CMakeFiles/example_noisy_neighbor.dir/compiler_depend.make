# Empty compiler generated dependencies file for example_noisy_neighbor.
# This may be replaced when dependencies are built.
