file(REMOVE_RECURSE
  "CMakeFiles/example_noisy_neighbor.dir/noisy_neighbor.cpp.o"
  "CMakeFiles/example_noisy_neighbor.dir/noisy_neighbor.cpp.o.d"
  "noisy_neighbor"
  "noisy_neighbor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_noisy_neighbor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
