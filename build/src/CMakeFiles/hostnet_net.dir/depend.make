# Empty dependencies file for hostnet_net.
# This may be replaced when dependencies are built.
