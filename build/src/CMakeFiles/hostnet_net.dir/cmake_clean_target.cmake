file(REMOVE_RECURSE
  "libhostnet_net.a"
)
