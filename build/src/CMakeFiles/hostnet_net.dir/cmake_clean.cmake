file(REMOVE_RECURSE
  "CMakeFiles/hostnet_net.dir/net/dctcp.cpp.o"
  "CMakeFiles/hostnet_net.dir/net/dctcp.cpp.o.d"
  "CMakeFiles/hostnet_net.dir/net/nic_device.cpp.o"
  "CMakeFiles/hostnet_net.dir/net/nic_device.cpp.o.d"
  "CMakeFiles/hostnet_net.dir/net/rdma.cpp.o"
  "CMakeFiles/hostnet_net.dir/net/rdma.cpp.o.d"
  "libhostnet_net.a"
  "libhostnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
