file(REMOVE_RECURSE
  "libhostnet_cpu.a"
)
