# Empty compiler generated dependencies file for hostnet_cpu.
# This may be replaced when dependencies are built.
