file(REMOVE_RECURSE
  "CMakeFiles/hostnet_cpu.dir/cpu/core.cpp.o"
  "CMakeFiles/hostnet_cpu.dir/cpu/core.cpp.o.d"
  "libhostnet_cpu.a"
  "libhostnet_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
