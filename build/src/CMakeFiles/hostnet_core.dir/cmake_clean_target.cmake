file(REMOVE_RECURSE
  "libhostnet_core.a"
)
