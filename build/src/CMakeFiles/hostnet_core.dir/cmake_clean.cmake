file(REMOVE_RECURSE
  "CMakeFiles/hostnet_core.dir/core/experiment.cpp.o"
  "CMakeFiles/hostnet_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/hostnet_core.dir/core/host_system.cpp.o"
  "CMakeFiles/hostnet_core.dir/core/host_system.cpp.o.d"
  "libhostnet_core.a"
  "libhostnet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
