# Empty dependencies file for hostnet_core.
# This may be replaced when dependencies are built.
