file(REMOVE_RECURSE
  "CMakeFiles/hostnet_cha.dir/cha/cha.cpp.o"
  "CMakeFiles/hostnet_cha.dir/cha/cha.cpp.o.d"
  "libhostnet_cha.a"
  "libhostnet_cha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_cha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
