# Empty compiler generated dependencies file for hostnet_cha.
# This may be replaced when dependencies are built.
