file(REMOVE_RECURSE
  "libhostnet_cha.a"
)
