file(REMOVE_RECURSE
  "libhostnet_mc.a"
)
