# Empty dependencies file for hostnet_mc.
# This may be replaced when dependencies are built.
