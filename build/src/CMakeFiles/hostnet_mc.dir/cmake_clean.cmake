file(REMOVE_RECURSE
  "CMakeFiles/hostnet_mc.dir/mc/channel.cpp.o"
  "CMakeFiles/hostnet_mc.dir/mc/channel.cpp.o.d"
  "libhostnet_mc.a"
  "libhostnet_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
