# Empty dependencies file for hostnet_analytic.
# This may be replaced when dependencies are built.
