file(REMOVE_RECURSE
  "CMakeFiles/hostnet_analytic.dir/analytic/formula.cpp.o"
  "CMakeFiles/hostnet_analytic.dir/analytic/formula.cpp.o.d"
  "CMakeFiles/hostnet_analytic.dir/analytic/predictor.cpp.o"
  "CMakeFiles/hostnet_analytic.dir/analytic/predictor.cpp.o.d"
  "libhostnet_analytic.a"
  "libhostnet_analytic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_analytic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
