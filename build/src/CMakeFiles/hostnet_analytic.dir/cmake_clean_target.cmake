file(REMOVE_RECURSE
  "libhostnet_analytic.a"
)
