file(REMOVE_RECURSE
  "libhostnet_hostcc.a"
)
