file(REMOVE_RECURSE
  "CMakeFiles/hostnet_hostcc.dir/hostcc/hostcc.cpp.o"
  "CMakeFiles/hostnet_hostcc.dir/hostcc/hostcc.cpp.o.d"
  "libhostnet_hostcc.a"
  "libhostnet_hostcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_hostcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
