# Empty dependencies file for hostnet_hostcc.
# This may be replaced when dependencies are built.
