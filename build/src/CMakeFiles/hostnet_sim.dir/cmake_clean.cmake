file(REMOVE_RECURSE
  "CMakeFiles/hostnet_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/hostnet_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/hostnet_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/hostnet_sim.dir/sim/trace.cpp.o.d"
  "libhostnet_sim.a"
  "libhostnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
