file(REMOVE_RECURSE
  "libhostnet_sim.a"
)
