# Empty compiler generated dependencies file for hostnet_sim.
# This may be replaced when dependencies are built.
