file(REMOVE_RECURSE
  "libhostnet_iio.a"
)
