# Empty dependencies file for hostnet_iio.
# This may be replaced when dependencies are built.
