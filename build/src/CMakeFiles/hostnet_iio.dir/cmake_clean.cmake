file(REMOVE_RECURSE
  "CMakeFiles/hostnet_iio.dir/iio/iio.cpp.o"
  "CMakeFiles/hostnet_iio.dir/iio/iio.cpp.o.d"
  "CMakeFiles/hostnet_iio.dir/iio/storage_device.cpp.o"
  "CMakeFiles/hostnet_iio.dir/iio/storage_device.cpp.o.d"
  "libhostnet_iio.a"
  "libhostnet_iio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostnet_iio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
