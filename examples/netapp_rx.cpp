// Network-application receive path under host contention: a DCTCP receiver
// (NIC DMA + kernel copy cores) sharing the socket with an in-memory
// analytics job, using the net library's TcpReceiver model.
//
// Shows the two coupling loops from the paper's TCP case study: flow
// control under copy slowdown (blue) vs congestion response under DMA
// backpressure (red).
#include <cstdio>

#include "common/table.hpp"
#include "core/host_system.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_case(const char* label, bool rw, std::uint32_t cores) {
  const core::HostConfig hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < cores; ++i)
    host.add_core(rw ? workloads::c2m_read_write(workloads::c2m_core_region(i))
                     : workloads::c2m_read(workloads::c2m_core_region(i)));
  net::DctcpConfig cfg;
  net::TcpReceiver rx(host, cfg);
  host.run(us(400), us(1200));
  const auto m = host.collect();
  const Tick now = host.sim().now();
  std::printf("%-28s goodput %5.2f GB/s  loss %6.3f%%  marks %5.1f%%  cwnd %5.1f  "
              "copy-LFB %5.1f ns  P2M-W %6.1f ns\n",
              label, rx.goodput_gbps(now), rx.loss_rate() * 100,
              rx.mark_fraction() * 100, rx.avg_cwnd(), rx.copy_lfb_latency_ns(),
              m.p2m_write.latency_ns);
}

}  // namespace

int main() {
  banner("DCTCP receiver (100G, 4 copy cores) under host-network contention");
  run_case("isolated", false, 0);
  run_case("+2 analytics cores (reads)", false, 2);
  run_case("+4 analytics cores (reads)", false, 4);
  run_case("+2 analytics cores (r/w)", true, 2);
  run_case("+4 analytics cores (r/w)", true, 4);
  std::printf(
      "\nWith read-only neighbors the receiver slows via the receive window\n"
      "(no loss): the copy is the bottleneck. With read/write neighbors the\n"
      "NIC's DMA path itself backs up (P2M-Write latency above) and DCTCP\n"
      "responds to marks/drops -- throughput collapses much further.\n");
  return 0;
}
