// Capture a chrome-tracing view of the host network under contention.
//
// Runs 200 us of quadrant 1 (2 C2M-Read cores + P2M writes) with the
// tracer enabled and writes `hostnet.trace.json`. Open it in
// chrome://tracing or https://ui.perfetto.dev to see:
//   * per-core C2M-Read spans stretching whenever a write drain runs,
//   * "write-drain" markers and the WPQ occupancy sawtooth per channel,
//   * P2M-Write spans and the IIO credit counter staying comfortably
//     below the 92-credit limit (the blue regime in one picture).
#include <cstdio>

#include "core/host_system.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 2; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));

  sim::Tracer tracer("hostnet.trace.json");
  host.run(us(100), us(10));        // settle without tracing
  sim::Tracer::set_global(&tracer);  // trace a short, readable window
  host.run_more(us(200));
  sim::Tracer::set_global(nullptr);
  tracer.flush();

  std::printf("wrote hostnet.trace.json (%zu events; open in chrome://tracing)\n",
              tracer.size());
  return 0;
}
