// Capacity planning with the domain law: the paper's T <= C x 64 / L turns
// host-network sizing questions into arithmetic, which the simulator then
// validates.
//
// Question explored here: a next-generation NIC wants to push 25 GB/s of
// inbound DMA through this Cascade-Lake-class host. How many IIO write
// credits does it need, given realistic contention-inflated latencies?
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const double target_gbps = 25.0;

  banner("Step 1: what the law says");
  Table law({"assumed P2M-Write latency (ns)", "credits needed for 25 GB/s"});
  for (double lat : {300.0, 400.0, 500.0, 700.0, 1000.0})
    law.row({Table::num(lat, 0), Table::num(core::credits_needed(target_gbps, lat), 0)});
  law.print();

  banner("Step 2: measure the latency the host actually delivers under load");
  core::HostConfig host = core::cascade_lake();
  // Give the host enough DRAM headroom for the experiment to make sense.
  host.dram.channels = 4;
  host.pcie_write_gb_per_s = target_gbps;
  const auto opt = core::default_run_options();

  Table t({"IIO wr credits", "C2M load (cores)", "P2M-W latency (ns)", "P2M GB/s",
           "target met"});
  for (std::uint32_t credits : {92u, 128u, 184u, 256u}) {
    for (std::uint32_t load : {0u, 4u}) {
      core::HostConfig h = host;
      h.iio.write_credits = credits;
      std::optional<core::C2MSpec> c2m;
      if (load > 0) {
        core::C2MSpec s;
        s.workload = workloads::c2m_read(workloads::c2m_core_region(0));
        s.cores = load;
        c2m = s;
      }
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_p2m_write(h, workloads::p2m_region());
      const auto out = core::run_workloads(h, c2m, p2m, opt);
      t.row({std::to_string(credits), std::to_string(load),
             Table::num(out.metrics.p2m_write.latency_ns, 0),
             Table::num(out.p2m_score, 1),
             out.p2m_score >= 0.97 * target_gbps ? "yes" : "NO"});
    }
  }
  t.print();

  std::printf(
      "\nReading: today's ~92 credits were sized for ~14 GB/s at ~300 ns. At\n"
      "25 GB/s the same buffer only works while latency stays near unloaded;\n"
      "any blue-regime inflation pushes the needed credits past the buffer --\n"
      "the 'increasing imbalance of resources' trend the paper warns about.\n");
  return 0;
}
