// Noisy-neighbor study: how many Redis cores can share a Cascade Lake
// socket with an NVMe-backed ingest job before either side suffers?
//
// Demonstrates the colocation harness + regime classifier on the paper's
// application models, and prints a placement recommendation.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();

  core::C2MSpec redis;
  redis.name = "redis";
  redis.workload = workloads::redis_read(workloads::c2m_core_region(0));

  core::P2MSpec ingest;
  ingest.name = "nvme-ingest";
  ingest.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  banner("Redis + NVMe ingest on " + host.name);
  Table t({"redis cores", "kqps/core iso", "kqps/core colo", "redis degr", "ingest degr",
           "mem util", "regime"});
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  std::uint32_t best = 0;
  const auto sweep = core::sweep_c2m_cores(host, redis, ingest, cores, opt);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& o = sweep[i];
    const double per_core = 1.0 / cores[i] / 1000.0;
    t.row({std::to_string(cores[i]), Table::num(o.iso_c2m.c2m_score * per_core, 1),
           Table::num(o.colo.c2m_score * per_core, 1),
           Table::num(o.c2m_degradation()) + "x", Table::num(o.p2m_degradation()) + "x",
           Table::pct(o.colo.metrics.total_mem_gbps() / host.dram_peak_gb_per_s() * 100),
           core::to_string(o.regime())});
    if (o.c2m_degradation() < 1.25 && o.p2m_degradation() < 1.05) best = cores[i];
  }
  t.print();

  std::printf(
      "\nRecommendation: up to %u Redis cores keep query throughput within 25%%\n"
      "of isolated performance while the ingest job holds PCIe line rate.\n"
      "Note the paper's central point: degradation appears long before memory\n"
      "bandwidth saturates -- provisioning by bandwidth alone is not enough.\n",
      best);
  return 0;
}
