// hostnet explorer: a small CLI to run one colocation experiment with
// custom knobs and dump the full measurement set -- the quickest way to
// poke at the host network without writing code.
//
// Usage:
//   explore [--preset cascade|icelake] [--c2m read|rw|redis|gapbs]
//           [--cores N] [--p2m write|read|none] [--ddio] [--no-prefetch]
//           [--measure-us N] [--seed N]
//           [--lfb N] [--iio-wr N] [--wpq N] [--tracker N]
#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

const char* arg_value(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], name) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (has_flag(argc, argv, "--help")) {
    std::printf("see the header comment of examples/explore.cpp for usage\n");
    return 0;
  }

  const std::string preset = arg_value(argc, argv, "--preset")
                                 ? arg_value(argc, argv, "--preset")
                                 : "cascade";
  core::HostConfig host = preset == "icelake" ? core::ice_lake() : core::cascade_lake();
  if (has_flag(argc, argv, "--ddio")) host.cha.ddio = true;
  if (const char* v = arg_value(argc, argv, "--lfb")) host.core.lfb_entries = std::atoi(v);
  if (const char* v = arg_value(argc, argv, "--iio-wr")) host.iio.write_credits = std::atoi(v);
  if (const char* v = arg_value(argc, argv, "--wpq")) {
    host.mc.wpq_capacity = std::atoi(v);
    host.mc.wpq_high_wm = host.mc.wpq_capacity - 2;
    host.mc.wpq_low_wm = host.mc.wpq_capacity / 3;
  }
  if (const char* v = arg_value(argc, argv, "--tracker")) host.cha.write_tracker = std::atoi(v);
  if (!has_flag(argc, argv, "--no-prefetch") && preset == "icelake")
    host.core.prefetch_extra = 4;

  core::C2MSpec c2m;
  const std::string kind = arg_value(argc, argv, "--c2m") ? arg_value(argc, argv, "--c2m")
                                                          : "read";
  if (kind == "rw") {
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  } else if (kind == "redis") {
    c2m.workload = workloads::redis_read(workloads::c2m_core_region(0));
  } else if (kind == "gapbs") {
    c2m.workload = workloads::gapbs_pr(workloads::c2m_shared_region());
    c2m.per_core_region = false;
  } else {
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  }
  c2m.cores = arg_value(argc, argv, "--cores")
                  ? static_cast<std::uint32_t>(std::atoi(arg_value(argc, argv, "--cores")))
                  : 4;

  core::P2MSpec p2m;
  const std::string pkind =
      arg_value(argc, argv, "--p2m") ? arg_value(argc, argv, "--p2m") : "write";
  if (pkind == "write")
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  else if (pkind == "read")
    p2m.storage = workloads::fio_p2m_read(host, workloads::p2m_region());

  auto opt = core::default_run_options();
  if (const char* v = arg_value(argc, argv, "--measure-us")) opt.measure = us(std::atof(v));
  if (const char* v = arg_value(argc, argv, "--seed")) opt.seed = std::strtoull(v, nullptr, 10);

  banner("explore: " + host.name + ", " + kind + " x" + std::to_string(c2m.cores) +
         " + p2m-" + pkind);
  const auto o = p2m.storage ? core::run_colocation(host, c2m, p2m, opt)
                             : core::ColocationOutcome{
                                   core::run_workloads(host, c2m, std::nullopt, opt),
                                   {},
                                   core::run_workloads(host, c2m, std::nullopt, opt)};
  const auto& m = o.colo.metrics;

  Table t({"metric", "value"});
  t.row({"C2M degradation", Table::num(o.c2m_degradation()) + "x"});
  t.row({"P2M degradation", Table::num(o.p2m_degradation()) + "x"});
  t.row({"regime", core::to_string(o.regime())});
  t.row({"C2M score (GB/s or q/s)", Table::num(o.colo.c2m_score, 1)});
  t.row({"P2M GB/s", Table::num(o.colo.p2m_score, 1)});
  t.row({"memory BW C2M r/w (GB/s)",
         Table::num(m.mem_gbps[0], 1) + " / " + Table::num(m.mem_gbps[1], 1)});
  t.row({"memory BW P2M r/w (GB/s)",
         Table::num(m.mem_gbps[2], 1) + " / " + Table::num(m.mem_gbps[3], 1)});
  t.row({"memory utilization",
         Table::pct(m.total_mem_gbps() / host.dram_peak_gb_per_s() * 100)});
  t.row({"LFB latency avg (ns)", Table::num(m.lfb_latency_ns, 1)});
  t.row({"LFB occupancy avg/max",
         Table::num(m.lfb_avg_occupancy, 1) + " / " + std::to_string(m.lfb_max_occupancy)});
  t.row({"P2M-Write latency (ns)", Table::num(m.p2m_write.latency_ns, 1)});
  t.row({"IIO wr credits in use", Table::num(m.p2m_write.credits_in_use, 1)});
  t.row({"RPQ occupancy avg", Table::num(m.avg_rpq_occupancy, 1)});
  t.row({"WPQ backpressure", Table::pct(m.wpq_full_fraction * 100)});
  t.row({"row miss ratio (reads)", Table::pct(m.row_miss_ratio_read * 100)});
  t.row({"CHA write backlog (N_waiting)", Table::num(m.n_waiting, 1)});
  t.row({"CHA->DRAM read latency (ns)", Table::num(m.cha_dram_read_latency_c2m_ns, 1)});
  t.row({"CHA->MC write latency (ns)", Table::num(m.cha_mc_write_latency_ns, 1)});
  t.print();
  return 0;
}
