// Quickstart: build a Cascade Lake host, colocate a sequential C2M reader
// with an NVMe-backed P2M writer (FIO-style), and print the domain view --
// credits, latency, throughput, and the contention regime.
#include <cstdio>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();

  core::C2MSpec c2m;
  c2m.name = "C2M-Read";
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 4;

  core::P2MSpec p2m;
  p2m.name = "P2M-Write";
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  const auto opt = core::default_run_options();
  const auto out = core::run_colocation(host, c2m, p2m, opt);

  banner("Colocation on " + host.name + " (4 C2M cores + NVMe P2M writes)");
  Table t({"side", "isolated", "colocated", "degradation"});
  t.row({"C2M (GB/s)", Table::num(out.iso_c2m.c2m_score), Table::num(out.colo.c2m_score),
         Table::num(out.c2m_degradation()) + "x"});
  t.row({"P2M (GB/s)", Table::num(out.iso_p2m.p2m_score), Table::num(out.colo.p2m_score),
         Table::num(out.p2m_degradation()) + "x"});
  t.print();

  const auto& m = out.colo.metrics;
  banner("Domain view (colocated)");
  Table d({"domain", "credits in use", "latency (ns)", "throughput (GB/s)", "law C*64/L"});
  const auto row = [&](const char* name, const core::DomainObservation& o, double credits) {
    d.row({name, Table::num(o.credits_in_use, 1), Table::num(o.latency_ns, 1),
           Table::num(o.throughput_gbps),
           Table::num(core::max_throughput_gbps(credits, o.latency_ns))});
  };
  row("C2M-Read (per-core LFB)", m.c2m_read, host.core.lfb_entries);
  row("P2M-Write (IIO wr buf)", m.p2m_write, host.iio.write_credits);
  d.print();

  std::printf("\nmemory bandwidth: C2M %.1f + P2M %.1f = %.1f GB/s (peak %.1f)\n",
              m.c2m_mem_gbps(), m.p2m_mem_gbps(), m.total_mem_gbps(),
              host.dram_peak_gb_per_s());
  std::printf("regime: %s\n", core::to_string(out.regime()).c_str());
  return 0;
}
