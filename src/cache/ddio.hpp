// DDIO (Data Direct I/O) model: the slice of the LLC that inbound DMA
// writes are allowed to allocate into (a small number of ways; Farshin et
// al. [18] and the paper's section 2.1).
//
// Behaviour modeled:
//  * P2M writes look up the DDIO region. A hit absorbs the write in the
//    LLC (no memory traffic). A miss allocates, evicting the set's LRU
//    line, whose *write-back* is what actually reaches the memory
//    controller.
//  * P2M reads never allocate (they are served from memory on a miss with
//    no LLC fill), so DDIO is a no-op for them -- matching the paper's
//    Appendix B observation that DDIO on/off is identical under P2M-Read.
//
// For the paper's workloads (8 MB sequential requests, buffers far larger
// than the DDIO capacity) every write misses, so the *volume* of memory
// writes is unchanged; what changes is the address stream: victims come out
// in per-set LRU order under a hashed set index, destroying the DMA
// stream's row locality. This is the mechanism we use to reproduce the
// paper's (explicitly unexplained) Figure 2 observation that DDIO worsens
// C2M degradation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/units.hpp"

namespace hostnet::cache {

class DdioCache {
 public:
  /// `capacity_bytes` = ways x sets x 64B region reserved for DDIO;
  /// `ways` = associativity of that region.
  DdioCache(std::uint64_t capacity_bytes, std::uint32_t ways)
      : ways_(ways), sets_(static_cast<std::uint32_t>(capacity_bytes / kCachelineBytes / ways)) {
    lines_.assign(static_cast<std::size_t>(sets_) * ways_, Line{});
  }

  struct WriteOutcome {
    bool hit = false;                          ///< absorbed in LLC, no memory write
    std::optional<std::uint64_t> writeback;    ///< evicted dirty line to write to memory
  };

  /// Inbound DMA write of cacheline `addr`.
  WriteOutcome write(std::uint64_t addr, Tick now) {
    const std::uint64_t line = addr / kCachelineBytes;
    const std::uint32_t set = set_index(line);
    Line* lru = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
      Line& l = lines_[static_cast<std::size_t>(set) * ways_ + w];
      if (l.valid && l.line == line) {
        l.last_use = now;
        return WriteOutcome{true, std::nullopt};
      }
      if (!lru || !l.valid || (lru->valid && l.last_use < lru->last_use)) lru = &l;
    }
    WriteOutcome out;
    if (lru->valid) out.writeback = lru->line * kCachelineBytes;  // dirty: DMA-written
    lru->valid = true;
    lru->line = line;
    lru->last_use = now;
    return out;
  }

  std::uint32_t sets() const { return sets_; }
  std::uint32_t ways() const { return ways_; }

 private:
  struct Line {
    bool valid = false;
    std::uint64_t line = 0;
    Tick last_use = 0;
  };

  /// Hashed set index (real LLCs hash the address into slices/sets, which is
  /// what scrambles the eviction stream's address order).
  std::uint32_t set_index(std::uint64_t line) const {
    std::uint64_t z = line;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    z ^= z >> 31;
    return static_cast<std::uint32_t>(z % sets_);
  }

  std::uint32_t ways_;
  std::uint32_t sets_;
  std::vector<Line> lines_;
};

}  // namespace hostnet::cache
