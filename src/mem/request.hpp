// The memory request message that traverses the host network.
//
// Every data transfer in the host network is decomposed into cacheline
// (64 B) requests, matching the granularity at which the IIO and the caches
// operate (paper section 3). A request is identified by its source
// (compute vs. peripheral) and type (read vs. write); that pair determines
// which flow-control domain the request belongs to and therefore where its
// credit is released:
//
//   C2M-Read   : completion fires when data returns to the core (LFB freed)
//   C2M-Write  : completion fires when the CHA admits the write
//   P2M-Read   : completion fires when data returns to the IIO
//   P2M-Write  : completion fires when the MC write queue admits the write
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hostnet::mem {

enum class Op : std::uint8_t { kRead, kWrite };
enum class Source : std::uint8_t { kCpu, kPeripheral };

/// A contiguous physical-address range a workload accesses. Distinct
/// workloads get disjoint regions (distinct applications access different
/// address spaces -- the root of the row-locality interference in §5.1).
struct Region {
  std::uint64_t base = 0;
  std::uint64_t bytes = 1ull << 30;
  std::uint64_t lines() const { return bytes / kCachelineBytes; }
};

/// Traffic class = (source, op); the four quadrant datapaths.
enum class TrafficClass : std::uint8_t {
  kC2MRead = 0,
  kC2MWrite = 1,
  kP2MRead = 2,
  kP2MWrite = 3,
};

constexpr TrafficClass traffic_class(Source s, Op o) {
  if (s == Source::kCpu) return o == Op::kRead ? TrafficClass::kC2MRead : TrafficClass::kC2MWrite;
  return o == Op::kRead ? TrafficClass::kP2MRead : TrafficClass::kP2MWrite;
}

constexpr const char* to_string(TrafficClass c) {
  switch (c) {
    case TrafficClass::kC2MRead: return "C2M-Read";
    case TrafficClass::kC2MWrite: return "C2M-Write";
    case TrafficClass::kP2MRead: return "P2M-Read";
    case TrafficClass::kP2MWrite: return "P2M-Write";
  }
  return "?";
}

inline constexpr int kNumTrafficClasses = 4;

struct Request;

/// Receives the domain-level completion of a request (credit release point).
class Completer {
 public:
  virtual ~Completer() = default;
  virtual void complete(const Request& req, Tick now) = 0;
};

struct Request {
  std::uint64_t addr = 0;       ///< cacheline-aligned physical address
  Op op = Op::kRead;
  Source source = Source::kCpu;
  std::uint16_t origin = 0;     ///< issuing core id or device id
  Tick created = 0;             ///< domain credit allocation time
  Completer* completer = nullptr;
  std::uint64_t tag = 0;        ///< opaque per-origin tag (e.g. slot index)
  Tick cha_accepted = 0;        ///< set by the CHA at admission (measurement)

  TrafficClass cls() const { return traffic_class(source, op); }
};

}  // namespace hostnet::mem
