// The Caching and Home Agent (CHA).
//
// The CHA abstracts the LLC and memory away from the rest of the host
// network while maintaining coherence (paper section 3). We model it as a
// single logical agent (the paper's own simplification) with:
//
//  * a read tracker (TOR) -- an entry is held from admission until the read
//    data returns from the memory controller;
//  * a write tracker -- an entry is held from admission until the write is
//    admitted into the MC's WPQ. When the WPQ backpressures, writes back up
//    here: this backlog penalizes the P2M-Write domain (which spans the MC)
//    but NOT the C2M-Write domain (which ends at the CHA) -- the asymmetry
//    at the heart of the red regime (section 5.2);
//  * admission control: when a tracker pool is exhausted, sources block
//    *before* the CHA and their admission delay is measured -- the paper's
//    "backpressure from CHA" phase;
//  * per-channel forwarding ports with a bounded in-flight window, modeling
//    the finite bandwidth of the CHA->MC hop (this is what paces WPQ refill
//    and yields read/write channel sharing under write overload);
//  * optionally DDIO: inbound DMA writes allocate in the LLC's DDIO ways
//    and the evicted victim's write-back is what reaches memory.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/ddio.hpp"
#include "common/ring_buffer.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "counters/station.hpp"
#include "flow/credit_pool.hpp"
#include "mc/memory_controller.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::cha {

struct ChaConfig {
  std::uint32_t read_tor = 320;        ///< reads in flight CHA<->DRAM
  std::uint32_t write_tracker = 192;   ///< writes awaiting WPQ admission
  std::uint32_t read_fwd_window = 16;  ///< per-channel CHA->MC reads in flight
  std::uint32_t write_fwd_window = 1;  ///< per-channel CHA->MC writes in flight
  Tick t_read_proc = ns(6);    ///< CHA pipeline (lookup, route) before forward
  Tick t_write_proc = ns(6);
  Tick t_read_fwd = ns(4);     ///< CHA->MC hop for one read
  Tick t_write_fwd = ns(5);    ///< CHA->MC hop for one write
  Tick t_write_ack = ns(4);    ///< CHA admission ack (ends the C2M-Write domain)
  Tick t_return_core = ns(22); ///< data return CHA->core (fills caches, frees LFB)
  Tick t_return_iio = ns(80);  ///< data return CHA->IIO
  bool ddio = false;
  std::uint64_t ddio_capacity_bytes = 4ull << 20;
  std::uint32_t ddio_ways = 2;

  // -- isolation extensions (paper section 7 future work) --------------------
  /// Forward peripheral writes to the MC ahead of CPU write-backs, so WPQ
  /// backpressure no longer queues P2M writes behind the C2M backlog.
  bool peripheral_write_priority = false;
  /// Tracker entries only peripheral writes may use (CPU writes are capped
  /// at write_tracker - reserve), keeping admission open for P2M under red-
  /// regime backlog.
  std::uint32_t write_tracker_peripheral_reserve = 0;
};

/// A source (core or IIO) blocked on CHA admission. `on_cha_admission`
/// should retry exactly one submission; return true iff a slot was consumed.
class ChaClient {
 public:
  ChaClient() {
    read_waiter_.client = this;
    read_waiter_.op = mem::Op::kRead;
    write_waiter_.client = this;
    write_waiter_.op = mem::Op::kWrite;
  }
  virtual ~ChaClient() = default;
  virtual bool on_cha_admission(mem::Op op) = 0;

  /// Per-op adapter for flow::CreditPool waiting: the CHA queues the adapter
  /// matching the exhausted tracker, so the wake carries which op freed. A
  /// client queues once per blocked request (duplicates intentional: the
  /// retry drains one blocked request per wake).
  flow::CreditWaiter& admission_waiter(mem::Op op) {
    return op == mem::Op::kRead ? read_waiter_ : write_waiter_;
  }

 private:
  struct OpWaiter final : flow::CreditWaiter {
    void on_credit_available(flow::CreditPool&) override {
      client->on_cha_admission(op);
    }
    ChaClient* client = nullptr;
    mem::Op op = mem::Op::kRead;
  };
  OpWaiter read_waiter_;
  OpWaiter write_waiter_;
};

class Cha final : public mc::ChannelListener {
 public:
  Cha(sim::Simulator& sim, const ChaConfig& cfg, mc::MemoryController& mc);

  /// Admit a request at its source. Returns false when the tracker pool is
  /// exhausted; the source should wait_for_admission() and retry. On
  /// success the CHA owns the request's journey to memory and back.
  bool try_submit(mem::Request req);

  /// Register `client` to be woken (FIFO order) when admission for `op`
  /// frees up. A client is notified at most once per registration.
  /// `source` matters for writes when a peripheral reserve is configured.
  void wait_for_admission(mem::Op op, ChaClient* client,
                          mem::Source source = mem::Source::kCpu);

  /// Called by sources on every *accepted* request with how long it was
  /// blocked on admission (0 for immediate admission). Feeds the paper's
  /// "CHA admission delay" measurement (section 6.2).
  void record_admission_wait(mem::TrafficClass cls, Tick waited);

  // -- mc::ChannelListener --------------------------------------------------
  void on_read_data(const mem::Request& req, Tick now) override;
  void on_wpq_slot_freed(std::uint32_t channel, Tick now) override;
  void on_rpq_slot_freed(std::uint32_t channel, Tick now) override;

  // -- measurement -----------------------------------------------------------
  /// Residency stations: reads = CHA admission -> data back at CHA
  /// ("CHA->DRAM read latency"); writes = CHA admission -> WPQ admission
  /// ("CHA->MC write latency").
  counters::LatencyStation& station(mem::TrafficClass cls) { return stations_[idx(cls)]; }

  /// Mean admission wait in ns across accepted requests of `cls` (includes
  /// zero waits).
  double mean_admission_wait_ns(mem::TrafficClass cls) const;

  std::uint64_t lines_read(mem::TrafficClass cls) const { return lines_read_[idx(cls)]; }
  std::uint64_t lines_written(mem::TrafficClass cls) const { return lines_written_[idx(cls)]; }
  std::uint64_t ddio_hits() const { return ddio_hits_; }
  std::uint32_t read_tor_used() const { return read_pool_.in_use(); }
  std::uint32_t write_tracker_used() const { return write_pool_.in_use(); }
  TimeWeighted& write_backlog_occupancy() {
    return write_pool_.station().occupancy_integral();
  }
  /// Fraction of time writes are backpressured at the CHA (more writes
  /// resident than the forwarding pipeline naturally holds) -- the
  /// measured analogue of the paper's P_fill^WPQ input.
  double wpq_blocked_fraction(Tick now) {
    return write_pool_.pressure_fraction(now);
  }

  // -- credit pools (registered with flow::DomainRegistry, interior) ---------
  flow::CreditPool& read_pool() { return read_pool_; }    ///< read tracker (TOR)
  flow::CreditPool& write_pool() { return write_pool_; }  ///< write tracker

  void reset_counters(Tick now);

  /// Checked-build audit (no-op otherwise): tracker-pool conservation --
  /// admissions minus frees equals the in-use counters, within capacity.
  void verify_invariants() const {
    read_pool_.verify();
    write_pool_.verify();
  }

  /// A request in flight between admission and the MC boundary.
  struct Transit {
    mem::Request req;
  };
  /// Per-channel forwarding port state (bounded CHA->MC window).
  struct Port {
    RingBuffer<Transit> read_pending;
    RingBuffer<Transit> write_pending;
    RingBuffer<Transit> read_parked;   ///< at MC boundary, RPQ full (token held)
    RingBuffer<Transit> write_parked;  ///< at MC boundary, WPQ full (token held)
    std::uint32_t read_tokens = 0;
    std::uint32_t write_tokens = 0;
  };

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, cfg_, mc_) is construction state. Transit entries carry
  // mem::Request whose completer points into the owning host: same-host
  // restore only.
  struct Snapshot {
    std::vector<Port> ports;
    flow::CreditPool::Snapshot read_pool;
    flow::CreditPool::Snapshot write_pool;
    std::optional<cache::DdioCache> ddio;
    std::array<counters::LatencyStation, mem::kNumTrafficClasses> stations{};
    std::array<MeanAccumulator, mem::kNumTrafficClasses> admission_wait_ns{};
    std::array<std::uint64_t, mem::kNumTrafficClasses> lines_read{};
    std::array<std::uint64_t, mem::kNumTrafficClasses> lines_written{};
    std::uint64_t ddio_hits = 0;
  };

  void save_state(Snapshot& out) const {
    out.ports = ports_;
    read_pool_.save_state(out.read_pool);
    write_pool_.save_state(out.write_pool);
    out.ddio = ddio_;
    out.stations = stations_;
    out.admission_wait_ns = admission_wait_ns_;
    out.lines_read = lines_read_;
    out.lines_written = lines_written_;
    out.ddio_hits = ddio_hits_;
  }

  void load_state(const Snapshot& s) {
    ports_ = s.ports;
    read_pool_.load_state(s.read_pool);
    write_pool_.load_state(s.write_pool);
    ddio_ = s.ddio;
    stations_ = s.stations;
    admission_wait_ns_ = s.admission_wait_ns;
    lines_read_ = s.lines_read;
    lines_written_ = s.lines_written;
    ddio_hits_ = s.ddio_hits;
  }

 private:
  static constexpr std::size_t idx(mem::TrafficClass c) { return static_cast<std::size_t>(c); }

  void start_read(mem::Request req);
  void start_write(mem::Request req);
  void route_read(const mem::Request& req);
  void route_write(const mem::Request& req);
  void pump_reads(std::uint32_t ch);
  void pump_writes(std::uint32_t ch);
  void admit_read_to_rpq(std::uint32_t ch, const mem::Request& req);
  void admit_write_to_wpq(std::uint32_t ch, const mem::Request& req);
  void free_read_tor();
  void free_write_tracker();
  bool has_space(mem::Op op, mem::Source source) const;

  sim::Simulator& sim_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  ChaConfig cfg_;
  mc::MemoryController& mc_;
  std::optional<cache::DdioCache> ddio_;

  std::vector<Port> ports_;
  flow::CreditPool read_pool_;   ///< read tracker (TOR) entries
  /// Write tracker entries; its occupancy integral is N_waiting in the
  /// analytical formula and its pressure signal is the measured P_fill^WPQ.
  flow::CreditPool write_pool_;

  std::array<counters::LatencyStation, mem::kNumTrafficClasses> stations_{};
  std::array<MeanAccumulator, mem::kNumTrafficClasses> admission_wait_ns_{};
  std::array<std::uint64_t, mem::kNumTrafficClasses> lines_read_{};
  std::array<std::uint64_t, mem::kNumTrafficClasses> lines_written_{};
  std::uint64_t ddio_hits_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(Cha);

}  // namespace hostnet::cha
