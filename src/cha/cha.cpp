#include "cha/cha.hpp"

#include <cassert>
#include <type_traits>

namespace hostnet::cha {

Cha::Cha(sim::Simulator& sim, const ChaConfig& cfg, mc::MemoryController& mc)
    : sim_(sim), cfg_(cfg), mc_(mc), ports_(mc.num_channels()) {
  for (auto& p : ports_) {
    p.read_tokens = cfg_.read_fwd_window;
    p.write_tokens = cfg_.write_fwd_window;
  }
  read_tor_ledger_.set_capacity(cfg_.read_tor);
  write_tracker_ledger_.set_capacity(cfg_.write_tracker);
  if (cfg_.ddio) ddio_.emplace(cfg_.ddio_capacity_bytes, cfg_.ddio_ways);
}

bool Cha::has_space(mem::Op op, mem::Source source) const {
  if (op == mem::Op::kRead) return read_tor_used_ < cfg_.read_tor;
  if (source == mem::Source::kPeripheral)
    return write_tracker_used_ < cfg_.write_tracker;
  // CPU writes may not consume the peripheral reserve.
  const std::uint32_t cpu_cap =
      cfg_.write_tracker > cfg_.write_tracker_peripheral_reserve
          ? cfg_.write_tracker - cfg_.write_tracker_peripheral_reserve
          : 0;
  return write_tracker_used_ < cpu_cap;
}

bool Cha::try_submit(mem::Request req) {
  if (!has_space(req.op, req.source)) return false;
  req.cha_accepted = sim_.now();
  if (req.op == mem::Op::kRead) {
    ++read_tor_used_;
    read_tor_ledger_.acquire();
    start_read(req);
  } else {
    ++write_tracker_used_;
    write_tracker_ledger_.acquire();
    write_backlog_occ_.add(sim_.now(), +1);
    update_backpressure();
    start_write(req);
  }
  return true;
}

void Cha::wait_for_admission(mem::Op op, ChaClient* client, mem::Source source) {
  auto& q = op == mem::Op::kRead ? read_waiters_
            : source == mem::Source::kPeripheral ? peripheral_write_waiters_
                                                 : cpu_write_waiters_;
  q.push_back(client);
}

void Cha::record_admission_wait(mem::TrafficClass cls, Tick waited) {
  admission_wait_ns_[idx(cls)].add(to_ns(waited));
}

void Cha::start_read(mem::Request req) {
  stations_[idx(req.cls())].enter(sim_.now());
  sim_.schedule(cfg_.t_read_proc, [this, req] { route_read(req); });
}

void Cha::start_write(mem::Request req) {
  stations_[idx(req.cls())].enter(sim_.now());

  if (req.source == mem::Source::kCpu) {
    // The C2M-Write domain ends here: the core's credit is replenished as
    // soon as the CHA acknowledges admission (writes are asynchronous).
    if (req.completer != nullptr) {
      const mem::Request original = req;
      sim_.schedule(cfg_.t_write_ack, [this, original] {
        original.completer->complete(original, sim_.now());
      });
      req.completer = nullptr;
    }
  } else if (ddio_) {
    // DDIO: the DMA write terminates in the LLC. Its credit releases like a
    // C2M write (at the LLC fill); what reaches memory is the evicted
    // victim's write-back, if any.
    const auto outcome = ddio_->write(req.addr, sim_.now());
    if (req.completer != nullptr) {
      const mem::Request original = req;
      sim_.schedule(cfg_.t_write_ack, [this, original] {
        original.completer->complete(original, sim_.now());
      });
      req.completer = nullptr;
    }
    if (outcome.hit || !outcome.writeback.has_value()) {
      if (outcome.hit) ++ddio_hits_;
      stations_[idx(req.cls())].leave(sim_.now(), req.cha_accepted);
      free_write_tracker();
      return;
    }
    req.addr = *outcome.writeback;
  }

  sim_.schedule(cfg_.t_write_proc, [this, req] { route_write(req); });
}

void Cha::route_read(const mem::Request& req) {
  const auto coord = mc_.address_map().decode(req.addr);
  ports_[coord.channel].read_pending.push_back(Transit{req});
  pump_reads(coord.channel);
}

void Cha::route_write(const mem::Request& req) {
  const auto coord = mc_.address_map().decode(req.addr);
  auto& pending = ports_[coord.channel].write_pending;
  if (cfg_.peripheral_write_priority && req.source == mem::Source::kPeripheral) {
    // Peripheral writes bypass the CPU write-back backlog: insert after any
    // queued peripheral writes but ahead of all CPU ones.
    std::size_t pos = 0;
    while (pos < pending.size() && pending[pos].req.source == mem::Source::kPeripheral) ++pos;
    pending.insert(pos, Transit{req});
  } else {
    pending.push_back(Transit{req});
  }
  pump_writes(coord.channel);
}

void Cha::pump_reads(std::uint32_t ch) {
  Port& p = ports_[ch];
  while (p.read_tokens > 0 && !p.read_pending.empty()) {
    --p.read_tokens;
    const mem::Request req = p.read_pending.front().req;
    p.read_pending.pop_front();
    auto arrive = [this, ch, req] {
      if (mc_.channel(ch).rpq_has_space()) {
        admit_read_to_rpq(ch, req);
      } else {
        ports_[ch].read_parked.push_back(Transit{req});
      }
    };
    static_assert(sizeof(arrive) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(arrive)>,
                  "per-line CHA->MC read hop must stay in the inline Event buffer");
    sim_.schedule(cfg_.t_read_fwd, arrive);
  }
}

void Cha::pump_writes(std::uint32_t ch) {
  Port& p = ports_[ch];
  while (p.write_tokens > 0 && !p.write_pending.empty()) {
    --p.write_tokens;
    const mem::Request req = p.write_pending.front().req;
    p.write_pending.pop_front();
    auto arrive = [this, ch, req] {
      if (mc_.channel(ch).wpq_has_space()) {
        admit_write_to_wpq(ch, req);
      } else {
        ports_[ch].write_parked.push_back(Transit{req});
      }
    };
    static_assert(sizeof(arrive) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(arrive)>,
                  "per-line CHA->MC write hop must stay in the inline Event buffer");
    sim_.schedule(cfg_.t_write_fwd, arrive);
  }
}

void Cha::admit_read_to_rpq(std::uint32_t ch, const mem::Request& req) {
  ports_[ch].read_tokens++;
  mc_.channel(ch).enqueue_read(req, mc_.address_map().decode(req.addr));
  pump_reads(ch);
}

void Cha::admit_write_to_wpq(std::uint32_t ch, const mem::Request& req) {
  const Tick now = sim_.now();
  ports_[ch].write_tokens++;
  mc_.channel(ch).enqueue_write(req, mc_.address_map().decode(req.addr));
  ++lines_written_[idx(req.cls())];
  stations_[idx(req.cls())].leave(now, req.cha_accepted);
  // WPQ admission ends the P2M-Write domain: replenish the IIO credit.
  if (req.completer != nullptr) req.completer->complete(req, now);
  free_write_tracker();
  pump_writes(ch);
}

void Cha::on_read_data(const mem::Request& req, Tick now) {
  ++lines_read_[idx(req.cls())];
  stations_[idx(req.cls())].leave(now, req.cha_accepted);
  free_read_tor();
  const Tick hop = req.source == mem::Source::kCpu ? cfg_.t_return_core : cfg_.t_return_iio;
  sim_.schedule(hop, [this, req] {
    if (req.completer != nullptr) req.completer->complete(req, sim_.now());
  });
}

void Cha::on_wpq_slot_freed(std::uint32_t channel, Tick /*now*/) {
  Port& p = ports_[channel];
  if (!p.write_parked.empty()) {
    const mem::Request req = p.write_parked.front().req;
    p.write_parked.pop_front();
    admit_write_to_wpq(channel, req);
  }
}

void Cha::on_rpq_slot_freed(std::uint32_t channel, Tick /*now*/) {
  Port& p = ports_[channel];
  if (!p.read_parked.empty()) {
    const mem::Request req = p.read_parked.front().req;
    p.read_parked.pop_front();
    admit_read_to_rpq(channel, req);
  }
}

void Cha::free_read_tor() {
  assert(read_tor_used_ > 0);
  --read_tor_used_;
  read_tor_ledger_.release();
  notify_waiters(mem::Op::kRead);
}

void Cha::free_write_tracker() {
  assert(write_tracker_used_ > 0);
  --write_tracker_used_;
  write_tracker_ledger_.release();
  write_backlog_occ_.add(sim_.now(), -1);
  update_backpressure();
  notify_waiters(mem::Op::kWrite);
}

void Cha::notify_waiters(mem::Op op) {
  if (notifying_) return;  // avoid re-entrant notification storms
  notifying_ = true;
  if (op == mem::Op::kRead) {
    while (!read_waiters_.empty() && has_space(op, mem::Source::kCpu)) {
      ChaClient* c = read_waiters_.front();
      read_waiters_.pop_front();
      c->on_cha_admission(op);
    }
  } else {
    // Peripheral write waiters first (they may use the reserve).
    while (!peripheral_write_waiters_.empty() &&
           has_space(op, mem::Source::kPeripheral)) {
      ChaClient* c = peripheral_write_waiters_.front();
      peripheral_write_waiters_.pop_front();
      c->on_cha_admission(op);
    }
    while (!cpu_write_waiters_.empty() && has_space(op, mem::Source::kCpu)) {
      ChaClient* c = cpu_write_waiters_.front();
      cpu_write_waiters_.pop_front();
      c->on_cha_admission(op);
    }
  }
  notifying_ = false;
}

double Cha::mean_admission_wait_ns(mem::TrafficClass cls) const {
  return admission_wait_ns_[idx(cls)].mean();
}

void Cha::reset_counters(Tick now) {
  for (auto& s : stations_) s.reset(now);
  for (auto& a : admission_wait_ns_) a.reset();
  lines_read_ = {};
  lines_written_ = {};
  write_backlog_occ_.reset(now);
  wpq_backpressure_.reset(now);
  ddio_hits_ = 0;
}

}  // namespace hostnet::cha
