#include "cha/cha.hpp"

#include <cassert>
#include <type_traits>

namespace hostnet::cha {

Cha::Cha(sim::Simulator& sim, const ChaConfig& cfg, mc::MemoryController& mc)
    : sim_(sim), cfg_(cfg), mc_(mc), ports_(mc.num_channels()) {
  for (auto& p : ports_) {
    p.read_tokens = cfg_.read_fwd_window;
    p.write_tokens = cfg_.write_fwd_window;
  }
  flow::CreditPoolSpec rd;
  rd.name = "cha.read-tor";
  rd.capacity = cfg_.read_tor;
  read_pool_.configure(rd);
  flow::CreditPoolSpec wr;
  wr.name = "cha.write-tracker";
  wr.capacity = cfg_.write_tracker;
  wr.reserve = cfg_.write_tracker_peripheral_reserve;
  // Pressure: more writes resident than the forwarding pipeline naturally
  // holds (the measured analogue of the paper's P_fill^WPQ input).
  wr.pressure_threshold = 3 * static_cast<std::int64_t>(ports_.size());
  write_pool_.configure(wr);
  if (cfg_.ddio) ddio_.emplace(cfg_.ddio_capacity_bytes, cfg_.ddio_ways);
}

bool Cha::has_space(mem::Op op, mem::Source source) const {
  // CPU writes may not consume the peripheral reserve.
  if (op == mem::Op::kRead) return read_pool_.has_space();
  return write_pool_.has_space(/*privileged=*/source == mem::Source::kPeripheral);
}

bool Cha::try_submit(mem::Request req) {
  if (!has_space(req.op, req.source)) return false;
  req.cha_accepted = sim_.now();
  if (req.op == mem::Op::kRead) {
    read_pool_.acquire(sim_.now());
    start_read(req);
  } else {
    write_pool_.acquire(sim_.now());
    start_write(req);
  }
  return true;
}

void Cha::wait_for_admission(mem::Op op, ChaClient* client, mem::Source source) {
  flow::CreditPool& pool = op == mem::Op::kRead ? read_pool_ : write_pool_;
  pool.enqueue_waiter(&client->admission_waiter(op),
                      /*privileged=*/op == mem::Op::kWrite &&
                          source == mem::Source::kPeripheral);
}

void Cha::record_admission_wait(mem::TrafficClass cls, Tick waited) {
  admission_wait_ns_[idx(cls)].add(to_ns(waited));
}

void Cha::start_read(mem::Request req) {
  stations_[idx(req.cls())].enter(sim_.now());
  sim_.schedule(cfg_.t_read_proc, [this, req] { route_read(req); });
}

void Cha::start_write(mem::Request req) {
  stations_[idx(req.cls())].enter(sim_.now());

  if (req.source == mem::Source::kCpu) {
    // The C2M-Write domain ends here: the core's credit is replenished as
    // soon as the CHA acknowledges admission (writes are asynchronous).
    if (req.completer != nullptr) {
      const mem::Request original = req;
      sim_.schedule(cfg_.t_write_ack, [this, original] {
        original.completer->complete(original, sim_.now());
      });
      req.completer = nullptr;
    }
  } else if (ddio_) {
    // DDIO: the DMA write terminates in the LLC. Its credit releases like a
    // C2M write (at the LLC fill); what reaches memory is the evicted
    // victim's write-back, if any.
    const auto outcome = ddio_->write(req.addr, sim_.now());
    if (req.completer != nullptr) {
      const mem::Request original = req;
      sim_.schedule(cfg_.t_write_ack, [this, original] {
        original.completer->complete(original, sim_.now());
      });
      req.completer = nullptr;
    }
    if (outcome.hit || !outcome.writeback.has_value()) {
      if (outcome.hit) ++ddio_hits_;
      stations_[idx(req.cls())].leave(sim_.now(), req.cha_accepted);
      free_write_tracker();
      return;
    }
    req.addr = *outcome.writeback;
  }

  sim_.schedule(cfg_.t_write_proc, [this, req] { route_write(req); });
}

void Cha::route_read(const mem::Request& req) {
  const auto coord = mc_.address_map().decode(req.addr);
  ports_[coord.channel].read_pending.push_back(Transit{req});
  pump_reads(coord.channel);
}

void Cha::route_write(const mem::Request& req) {
  const auto coord = mc_.address_map().decode(req.addr);
  auto& pending = ports_[coord.channel].write_pending;
  if (cfg_.peripheral_write_priority && req.source == mem::Source::kPeripheral) {
    // Peripheral writes bypass the CPU write-back backlog: insert after any
    // queued peripheral writes but ahead of all CPU ones.
    std::size_t pos = 0;
    while (pos < pending.size() && pending[pos].req.source == mem::Source::kPeripheral) ++pos;
    pending.insert(pos, Transit{req});
  } else {
    pending.push_back(Transit{req});
  }
  pump_writes(coord.channel);
}

void Cha::pump_reads(std::uint32_t ch) {
  Port& p = ports_[ch];
  while (p.read_tokens > 0 && !p.read_pending.empty()) {
    --p.read_tokens;
    const mem::Request req = p.read_pending.front().req;
    p.read_pending.pop_front();
    auto arrive = [this, ch, req] {
      if (mc_.channel(ch).rpq_has_space()) {
        admit_read_to_rpq(ch, req);
      } else {
        ports_[ch].read_parked.push_back(Transit{req});
      }
    };
    static_assert(sizeof(arrive) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(arrive)>,
                  "per-line CHA->MC read hop must stay in the inline Event buffer");
    sim_.schedule(cfg_.t_read_fwd, arrive);
  }
}

void Cha::pump_writes(std::uint32_t ch) {
  Port& p = ports_[ch];
  while (p.write_tokens > 0 && !p.write_pending.empty()) {
    --p.write_tokens;
    const mem::Request req = p.write_pending.front().req;
    p.write_pending.pop_front();
    auto arrive = [this, ch, req] {
      if (mc_.channel(ch).wpq_has_space()) {
        admit_write_to_wpq(ch, req);
      } else {
        ports_[ch].write_parked.push_back(Transit{req});
      }
    };
    static_assert(sizeof(arrive) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(arrive)>,
                  "per-line CHA->MC write hop must stay in the inline Event buffer");
    sim_.schedule(cfg_.t_write_fwd, arrive);
  }
}

void Cha::admit_read_to_rpq(std::uint32_t ch, const mem::Request& req) {
  ports_[ch].read_tokens++;
  mc_.channel(ch).enqueue_read(req, mc_.address_map().decode(req.addr));
  pump_reads(ch);
}

void Cha::admit_write_to_wpq(std::uint32_t ch, const mem::Request& req) {
  const Tick now = sim_.now();
  ports_[ch].write_tokens++;
  mc_.channel(ch).enqueue_write(req, mc_.address_map().decode(req.addr));
  ++lines_written_[idx(req.cls())];
  stations_[idx(req.cls())].leave(now, req.cha_accepted);
  // WPQ admission ends the P2M-Write domain: replenish the IIO credit.
  if (req.completer != nullptr) req.completer->complete(req, now);
  free_write_tracker();
  pump_writes(ch);
}

void Cha::on_read_data(const mem::Request& req, Tick now) {
  ++lines_read_[idx(req.cls())];
  stations_[idx(req.cls())].leave(now, req.cha_accepted);
  free_read_tor();
  const Tick hop = req.source == mem::Source::kCpu ? cfg_.t_return_core : cfg_.t_return_iio;
  sim_.schedule(hop, [this, req] {
    if (req.completer != nullptr) req.completer->complete(req, sim_.now());
  });
}

void Cha::on_wpq_slot_freed(std::uint32_t channel, Tick /*now*/) {
  Port& p = ports_[channel];
  if (!p.write_parked.empty()) {
    const mem::Request req = p.write_parked.front().req;
    p.write_parked.pop_front();
    admit_write_to_wpq(channel, req);
  }
}

void Cha::on_rpq_slot_freed(std::uint32_t channel, Tick /*now*/) {
  Port& p = ports_[channel];
  if (!p.read_parked.empty()) {
    const mem::Request req = p.read_parked.front().req;
    p.read_parked.pop_front();
    admit_read_to_rpq(channel, req);
  }
}

void Cha::free_read_tor() {
  read_pool_.release(sim_.now());
  read_pool_.notify();
}

void Cha::free_write_tracker() {
  write_pool_.release(sim_.now());
  write_pool_.notify();
}

double Cha::mean_admission_wait_ns(mem::TrafficClass cls) const {
  return admission_wait_ns_[idx(cls)].mean();
}

void Cha::reset_counters(Tick now) {
  for (auto& s : stations_) s.reset(now);
  for (auto& a : admission_wait_ns_) a.reset();
  lines_read_ = {};
  lines_written_ = {};
  read_pool_.reset_telemetry(now);
  write_pool_.reset_telemetry(now);
  ddio_hits_ = 0;
}

}  // namespace hostnet::cha
