#include "fleet/runner.hpp"

#include <sstream>

#include "common/table.hpp"
#include "core/parallel.hpp"

namespace hostnet::fleet {

namespace {

/// Hosts of one config fingerprint, in fleet host-index order.
struct Shard {
  std::vector<std::size_t> hosts;
};

/// The colocation protocol for one host. Single-sided hosts (only one
/// tenant placed) run their lone window once and reuse it as both the
/// isolated and "colocated" outcome -- degradation 1.0, regime kNone.
core::ColocationOutcome run_host(const HostTemplate& t, const core::RunOptions& opt,
                                 core::SweepCache* cache, core::SweepMode mode) {
  core::ColocationOutcome o;
  if (t.c2m && t.p2m) {
    o.iso_c2m = core::run_workloads(t.host, t.c2m, std::nullopt, opt, cache, mode);
    o.iso_p2m = core::run_workloads(t.host, std::nullopt, t.p2m, opt, cache, mode);
    o.colo = core::run_workloads(t.host, t.c2m, t.p2m, opt, cache, mode);
  } else if (t.c2m) {
    o.iso_c2m = core::run_workloads(t.host, t.c2m, std::nullopt, opt, cache, mode);
    o.colo = o.iso_c2m;
  } else {
    o.iso_p2m = core::run_workloads(t.host, std::nullopt, t.p2m, opt, cache, mode);
    o.colo = o.iso_p2m;
  }
  return o;
}

}  // namespace

FleetReport run_fleet(const Scenario& sc, const RunnerOptions& opt) {
  const std::vector<HostInstance> hosts = sc.expand();
  const std::vector<HostTemplate>& templates = sc.templates();
  const core::SweepMode mode =
      opt.mode == core::SweepMode::kCold ? core::SweepMode::kCold : core::SweepMode::kFork;

  // The fingerprint is a pure function of the template (measurement jitter
  // changes only the window length, never construction or warmup), so it is
  // computed once per template, not once per host.
  std::vector<std::string> tmpl_fp(templates.size());
  for (std::size_t i = 0; i < templates.size(); ++i)
    tmpl_fp[i] = core::config_fingerprint(templates[i].host, templates[i].c2m, templates[i].p2m,
                                          templates[i].seed, sc.base_options().warmup);

  // Shard by fingerprint, first-appearance order: every host that can share
  // a warm checkpoint lands on the shard that owns it, so each fingerprint
  // is warmed exactly once fleet-wide. Shard structure depends only on the
  // scenario -- never on the thread count -- which is what keeps reports
  // bit-identical for any HOSTNET_THREADS.
  std::vector<std::string> shard_fp;
  std::vector<Shard> shards;
  for (std::size_t hi = 0; hi < hosts.size(); ++hi) {
    const std::string& fp = tmpl_fp[hosts[hi].tmpl];
    std::size_t s = 0;
    while (s < shard_fp.size() && shard_fp[s] != fp) ++s;
    if (s == shard_fp.size()) {
      shard_fp.push_back(fp);
      shards.push_back(Shard{});
    }
    shards[s].hosts.push_back(hi);
  }

  std::vector<FleetAggregate> aggs(shards.size(), FleetAggregate(sc.tenants().size()));
  std::vector<core::SweepCache::Stats> cache_stats(shards.size());
  core::run_parallel(
      shards.size(),
      [&](std::size_t s) {
        // The shard's SweepCache owns its warmed prototype hosts; replicas
        // of its fingerprint fork from (or memo-hit) those checkpoints.
        core::SweepCache cache;
        core::SweepCache* cptr = mode == core::SweepMode::kFork ? &cache : nullptr;
        for (std::size_t hi : shards[s].hosts) {
          const HostInstance& h = hosts[hi];
          aggs[s].add_host(templates[h.tmpl], run_host(templates[h.tmpl], h.opt, cptr, mode));
        }
        cache_stats[s] = cache.stats();
      },
      opt.threads);

  FleetReport r;
  r.scenario = sc.name();
  r.hosts = hosts.size();
  r.fingerprints = shards.size();
  r.shards = shards.size();
  r.threads = opt.threads ? opt.threads : core::parallel_threads();
  r.agg = FleetAggregate(sc.tenants().size());
  for (const FleetAggregate& a : aggs) r.agg.merge(a);
  for (const core::SweepCache::Stats& s : cache_stats) r.cache.add(s);
  return r;
}

std::string format_report(const Scenario& sc, const FleetReport& r) {
  std::ostringstream os;
  os << "fleet " << r.scenario << ": " << r.hosts << " hosts, " << sc.templates().size()
     << " templates, " << r.fingerprints << " fingerprints, " << r.shards << " shards\n";
  Table t({"tenant", "placements", "mean score", "mean degr.", "lat p50 ns", "lat p99 ns",
           "lat p999 ns"});
  for (std::size_t i = 0; i < sc.tenants().size(); ++i) {
    const TenantAggregate& a = r.agg.tenants[i];
    const double n = a.placements ? static_cast<double>(a.placements) : 1.0;
    t.row({sc.tenants()[i], std::to_string(a.placements), Table::num(a.colo_score_sum / n, 2),
           Table::num(a.mean_degradation(), 2), Table::num(a.latency.p50(), 0),
           Table::num(a.latency.p99(), 0), Table::num(a.latency.p999(), 0)});
  }
  t.print(os);
  os << "regimes: none " << r.agg.regime_count(core::Regime::kNone) << ", blue "
     << r.agg.regime_count(core::Regime::kBlue) << ", red "
     << r.agg.regime_count(core::Regime::kRed) << " (of " << r.hosts << " hosts)\n";
  os << "sweep-cache: checkpoint hits " << r.cache.checkpoint_hits << ", misses "
     << r.cache.checkpoint_misses << "; outcome memo hits " << r.cache.outcome_hits
     << ", misses " << r.cache.outcome_misses << "\n";
  return os.str();
}

}  // namespace hostnet::fleet
