// fleet::Runner -- simulate every host of a Scenario at fork-sweep speed.
//
// A real fleet is mostly hosts sharing a handful of configurations, so the
// runner shards hosts BY CONFIG FINGERPRINT rather than round-robin: all
// hosts with the same core::config_fingerprint() land on the same shard,
// each shard owns one core::SweepCache (which owns the shard's reusable
// warmed HostSystems), and the shards run as independent jobs on the
// persistent core::run_parallel pool. Per fingerprint the fleet therefore
// pays ONE cold construction+warmup; every further host of that
// fingerprint either restores from the warm checkpoint (distinct
// measurement window, e.g. under scenario measure jitter) or hits the
// outcome memo outright (bit-identical replica). A 1000-host fleet with 10
// distinct fingerprints costs ~10 cold warmups + 1000 cheap forks/memo
// lookups, not 1000 warmups (BM_FleetSweep gates this).
//
// Aggregation is streaming: each shard folds its hosts into a
// fleet::FleetAggregate in host-index order, and shard aggregates merge in
// shard-index order afterwards -- O(shards) memory and bit-identical
// reports for any thread count (and for fork vs cold execution; both are
// pinned by tests/test_fleet.cpp, ctest label `fleet`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "fleet/aggregate.hpp"
#include "fleet/scenario.hpp"

namespace hostnet::fleet {

struct RunnerOptions {
  /// Worker threads for the shard jobs: 0 = core::parallel_threads()
  /// (HOSTNET_THREADS override, else hardware concurrency). Thread count
  /// never changes results -- sharding is by fingerprint, not by thread.
  unsigned threads = 0;
  /// kFork (default, also what kAuto resolves to): warm once per
  /// fingerprint, fork/memoize every host. kCold: build + warm every
  /// window from scratch -- the reference path the fork engine must match.
  core::SweepMode mode = core::SweepMode::kFork;
};

struct FleetReport {
  std::string scenario;            ///< Scenario::name()
  std::uint64_t hosts = 0;
  std::size_t fingerprints = 0;    ///< distinct config fingerprints (= shards)
  std::size_t shards = 0;
  unsigned threads = 0;            ///< worker threads the run admitted
  FleetAggregate agg;
  core::SweepCache::Stats cache;   ///< summed over shards (zero in cold mode)
};

/// Simulate the whole scenario and reduce it to a FleetReport.
FleetReport run_fleet(const Scenario& sc, const RunnerOptions& opt = {});

/// Render the report as the deterministic text table `hostnet_fleet` prints
/// (tenant rows in tenant-id order, then regime/cache summary lines).
std::string format_report(const Scenario& sc, const FleetReport& r);

}  // namespace hostnet::fleet
