// fleet::Scenario -- a declarative, dependency-free text format describing a
// fleet of hosts: host templates (preset + config overrides + tenant
// workload mixes + device placements) and how many hosts run each template.
// The ROADMAP's "millions of users" direction starts here: capacity
// questions ("which colocation mixes keep the fleet out of the red
// regime?") become one scenario file fed to fleet::run_fleet (runner.hpp).
//
// Format (line-oriented; '#' starts a comment; indentation is ignored):
//
//   fleet <name>                      # required header, first directive
//   seed <u64>                        # default 1
//   warmup_us <f> | measure_us <f>    # window defaults (HOSTNET_* env still
//                                     #   applies when these are omitted)
//   measure_jitter_pct <f>            # per-host measurement-window jitter
//
//   template <name>                   # a host configuration to replicate
//     preset cascade-lake|ice-lake    # Table-1 testbed base (default CLX)
//     set <key> <value>               # HostConfig override (see kSetKeys)
//     set tcp.stack dctcp|bbr|davis   # CC stack for a tcp_* p2m placement
//     seed <u64>                      # per-template seed override
//     c2m <tenant> <workload> [cores=<n>]   # compute tenant placement
//     p2m <tenant> <workload>               # peripheral tenant placement
//   end
//
//   hosts <count> <template>          # replicate; repeatable, any template
//
// C2M workloads: c2m_read, c2m_read_write, redis_read, redis_write,
// gapbs_pr, gapbs_bc. P2M workloads: fio_write, fio_read, fio_4k_qd1
// (storage DMA; workloads/workloads.hpp) or tcp_dctcp, tcp_bbr, tcp_davis
// (a full net::TcpReceiver behind the named congestion-control stack;
// net/tcp_stack.hpp). `set tcp.stack` rewrites a tcp_* placement's stack --
// handy for templates that differ only in CC -- and is an error without
// one. fio link rates follow the template's PCIe config, so specs are
// built when the template's `end` is reached.
//
// Replicas of a template are bit-identical simulations (same seed by
// design: that is what lets the runner memoize them; see runner.hpp).
// `measure_jitter_pct` staggers only each host's measurement-window length
// -- a deterministic per-host-index draw -- which preserves the shared
// construction+warmup prefix (same core::config_fingerprint) while forcing
// distinct measurement windows, i.e. real checkpoint forks per host.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "core/presets.hpp"

namespace hostnet::fleet {

/// Parse or validation failure, tagged with the 1-based scenario line.
class ScenarioError : public std::runtime_error {
 public:
  ScenarioError(std::size_t line, const std::string& what)
      : std::runtime_error("scenario line " + std::to_string(line) + ": " + what), line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// Sentinel for "no tenant on this side of the host".
inline constexpr std::uint32_t kNoTenant = 0xFFFFFFFFu;

/// One host configuration to replicate: the fully-resolved core:: specs.
struct HostTemplate {
  std::string name;
  std::string preset = "cascade-lake";
  core::HostConfig host = core::cascade_lake();
  std::optional<core::C2MSpec> c2m;
  std::optional<core::P2MSpec> p2m;
  std::uint32_t c2m_tenant = kNoTenant;  ///< index into Scenario::tenants()
  std::uint32_t p2m_tenant = kNoTenant;
  std::uint64_t seed = 1;
};

/// `hosts <count> <template>` directive, resolved to a template index.
struct HostGroup {
  std::size_t tmpl = 0;
  std::uint64_t count = 0;
};

/// One concrete host of the expanded fleet. Everything the runner needs is
/// either here or in the referenced template; `opt` carries the per-host
/// (possibly jittered) measurement window.
struct HostInstance {
  std::uint64_t index = 0;  ///< fleet-wide host id (expansion order)
  std::size_t tmpl = 0;     ///< index into Scenario::templates()
  core::RunOptions opt;
};

class Scenario {
 public:
  /// Parse scenario text; throws ScenarioError on the first problem.
  static Scenario parse(std::string_view text);

  /// Read `path` and parse it; throws std::runtime_error if unreadable.
  static Scenario load(const std::string& path);

  const std::string& name() const { return name_; }
  const std::vector<HostTemplate>& templates() const { return templates_; }
  const std::vector<HostGroup>& groups() const { return groups_; }
  /// Tenant names in first-appearance order (stable ids for aggregation).
  const std::vector<std::string>& tenants() const { return tenants_; }
  const core::RunOptions& base_options() const { return base_opt_; }
  double measure_jitter_pct() const { return measure_jitter_pct_; }

  std::uint64_t total_hosts() const {
    std::uint64_t n = 0;
    for (const HostGroup& g : groups_) n += g.count;
    return n;
  }

  /// Expand the groups into per-host instances (expansion order = group
  /// order, replicas in sequence). Deterministic: the measurement-window
  /// jitter is drawn from a seeded stream keyed only by (scenario seed,
  /// host index), so expand() is a pure function of the scenario text.
  std::vector<HostInstance> expand() const;

 private:
  friend class ScenarioParser;
  std::string name_;
  std::vector<HostTemplate> templates_;
  std::vector<HostGroup> groups_;
  std::vector<std::string> tenants_;
  core::RunOptions base_opt_ = core::default_run_options();
  double measure_jitter_pct_ = 0;
  std::uint64_t seed_ = 1;
};

}  // namespace hostnet::fleet
