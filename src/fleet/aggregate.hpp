// fleet::Aggregate -- streaming reduction of per-host outcomes into a
// fleet-level report: per-tenant latency histograms (fixed log-bucketed
// bins; p50/p99 read out at the end), throughput and degradation sums, and
// blue/red regime counts. Each runner shard folds its hosts into its own
// FleetAggregate as they complete, and the shard aggregates merge at the
// end -- memory stays O(shards x tenants), never O(hosts).
//
// Determinism contract: add_host() is called in host-index order within a
// shard and shards merge in shard-index order, so every float accumulates
// in a fixed order regardless of thread count -- fleet reports are
// bit-identical serial vs parallel (tests/test_fleet.cpp pins this).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/histogram.hpp"
#include "core/domains.hpp"
#include "core/experiment.hpp"
#include "fleet/scenario.hpp"

namespace hostnet::fleet {

/// Per-tenant slice of the fleet: one entry per scenario tenant, indexed by
/// the tenant ids Scenario::tenants() assigns.
struct TenantAggregate {
  std::uint64_t placements = 0;    ///< host slots running this tenant
  double colo_score_sum = 0;       ///< colocated app score (GB/s or q/s)
  double iso_score_sum = 0;        ///< isolated score on the same host
  double degradation_sum = 0;      ///< iso/colo ratio (>= ~1)
  LatencyHistogram latency;        ///< colocated domain latency per host (ns)

  void merge(const TenantAggregate& o) {
    placements += o.placements;
    colo_score_sum += o.colo_score_sum;
    iso_score_sum += o.iso_score_sum;
    degradation_sum += o.degradation_sum;
    latency.merge(o.latency);
  }

  double mean_degradation() const {
    return placements ? degradation_sum / static_cast<double>(placements) : 0.0;
  }
};

struct FleetAggregate {
  std::vector<TenantAggregate> tenants;            ///< indexed by tenant id
  std::array<std::uint64_t, 3> regimes{};          ///< none/blue/red host counts
  std::uint64_t hosts = 0;
  double total_mem_gbps_sum = 0;                   ///< colocated DRAM BW per host

  FleetAggregate() = default;
  explicit FleetAggregate(std::size_t n_tenants) : tenants(n_tenants) {}

  /// Fold one host's colocation outcome in. `tmpl` names the tenants and
  /// the P2M direction (which domain's latency the P2M tenant observes).
  void add_host(const HostTemplate& tmpl, const core::ColocationOutcome& o) {
    ++hosts;
    ++regimes[static_cast<std::size_t>(host_regime(tmpl, o))];
    total_mem_gbps_sum += o.colo.metrics.total_mem_gbps();
    if (tmpl.c2m_tenant != kNoTenant) {
      TenantAggregate& t = tenants[tmpl.c2m_tenant];
      ++t.placements;
      t.colo_score_sum += o.colo.c2m_score;
      t.iso_score_sum += o.iso_c2m.c2m_score;
      t.degradation_sum += o.c2m_degradation();
      t.latency.add(o.colo.metrics.c2m_read.latency_ns);
    }
    if (tmpl.p2m_tenant != kNoTenant) {
      TenantAggregate& t = tenants[tmpl.p2m_tenant];
      ++t.placements;
      t.colo_score_sum += o.colo.p2m_score;
      t.iso_score_sum += o.iso_p2m.p2m_score;
      t.degradation_sum += o.p2m_degradation();
      // TCP receivers are DMA-write tenants (the NIC writes packets toward
      // memory), as are fio_write-style storage placements.
      const bool dma_writes =
          tmpl.p2m && (tmpl.p2m->tcp || (tmpl.p2m->storage &&
                                         tmpl.p2m->storage->host_op == mem::Op::kWrite));
      t.latency.add(dma_writes ? o.colo.metrics.p2m_write.latency_ns
                               : o.colo.metrics.p2m_read.latency_ns);
    }
  }

  void merge(const FleetAggregate& o) {
    if (tenants.size() < o.tenants.size()) tenants.resize(o.tenants.size());
    for (std::size_t i = 0; i < o.tenants.size(); ++i) tenants[i].merge(o.tenants[i]);
    for (std::size_t i = 0; i < regimes.size(); ++i) regimes[i] += o.regimes[i];
    hosts += o.hosts;
    total_mem_gbps_sum += o.total_mem_gbps_sum;
  }

  std::uint64_t regime_count(core::Regime r) const {
    return regimes[static_cast<std::size_t>(r)];
  }

 private:
  /// Single-sided hosts never colocate, so their regime is kNone by
  /// definition; two-sided hosts classify from the degradation ratios
  /// exactly like the paper's protocol.
  static core::Regime host_regime(const HostTemplate& tmpl, const core::ColocationOutcome& o) {
    if (tmpl.c2m_tenant == kNoTenant || tmpl.p2m_tenant == kNoTenant) return core::Regime::kNone;
    return o.regime();
  }
};

}  // namespace hostnet::fleet
