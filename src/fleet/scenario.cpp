#include "fleet/scenario.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/rng.hpp"
#include "net/tcp_stack.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::fleet {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> toks;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size() || line[i] == '#') break;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t' && line[j] != '#') ++j;
    toks.emplace_back(line.substr(i, j - i));
    i = j;
  }
  return toks;
}

std::uint64_t parse_u64(std::size_t line, const std::string& tok, const char* what) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (end == tok.c_str() || *end != '\0')
    throw ScenarioError(line, std::string(what) + " expects an unsigned integer, got '" + tok + "'");
  return static_cast<std::uint64_t>(v);
}

double parse_f64(std::size_t line, const std::string& tok, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str() || *end != '\0')
    throw ScenarioError(line, std::string(what) + " expects a number, got '" + tok + "'");
  return v;
}

/// `set <key> <value>` override table: the host-config fields a scenario may
/// vary. Kept deliberately explicit -- an unknown key is a line-tagged error,
/// not a silently-ignored typo.
void apply_set(std::size_t line, core::HostConfig& h, const std::string& key,
               const std::string& val) {
  auto u32 = [&] { return static_cast<std::uint32_t>(parse_u64(line, val, key.c_str())); };
  auto f64 = [&] { return parse_f64(line, val, key.c_str()); };
  if (key == "total_cores") h.total_cores = u32();
  else if (key == "core_ghz") h.core_ghz = f64();
  else if (key == "dram.channels") h.dram.channels = u32();
  else if (key == "dram.banks_per_channel") h.dram.banks_per_channel = u32();
  else if (key == "mc.rpq_capacity") h.mc.rpq_capacity = u32();
  else if (key == "mc.wpq_capacity") h.mc.wpq_capacity = u32();
  else if (key == "mc.wpq_high_wm") h.mc.wpq_high_wm = u32();
  else if (key == "mc.wpq_low_wm") h.mc.wpq_low_wm = u32();
  else if (key == "cha.read_tor") h.cha.read_tor = u32();
  else if (key == "cha.write_tracker") h.cha.write_tracker = u32();
  else if (key == "cha.write_tracker_peripheral_reserve")
    h.cha.write_tracker_peripheral_reserve = u32();
  else if (key == "cha.peripheral_write_priority") h.cha.peripheral_write_priority = u32() != 0;
  else if (key == "cha.ddio") h.cha.ddio = u32() != 0;
  else if (key == "cha.ddio_ways") h.cha.ddio_ways = u32();
  else if (key == "cha.ddio_capacity_bytes") h.cha.ddio_capacity_bytes = parse_u64(line, val, key.c_str());
  else if (key == "core.lfb_entries") h.core.lfb_entries = u32();
  else if (key == "core.prefetch_extra") h.core.prefetch_extra = u32();
  else if (key == "iio.write_credits") h.iio.write_credits = u32();
  else if (key == "iio.read_credits") h.iio.read_credits = u32();
  else if (key == "pcie_write_gb_per_s") h.pcie_write_gb_per_s = f64();
  else if (key == "pcie_read_gb_per_s") h.pcie_read_gb_per_s = f64();
  else
    throw ScenarioError(line, "unknown set key '" + key + "'");
}

/// C2M workload zoo lookup (workloads/workloads.hpp). Shared-graph
/// workloads (GAPBS) get the shared region and per_core_region=false, the
/// same wiring every figure bench uses.
void apply_c2m_workload(std::size_t line, core::C2MSpec& spec, const std::string& wl) {
  spec.per_core_region = true;
  if (wl == "c2m_read") spec.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  else if (wl == "c2m_read_write")
    spec.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  else if (wl == "redis_read") spec.workload = workloads::redis_read(workloads::c2m_core_region(0));
  else if (wl == "redis_write")
    spec.workload = workloads::redis_write(workloads::c2m_core_region(0));
  else if (wl == "gapbs_pr") {
    spec.workload = workloads::gapbs_pr(workloads::c2m_shared_region());
    spec.per_core_region = false;
  } else if (wl == "gapbs_bc") {
    spec.workload = workloads::gapbs_bc(workloads::c2m_shared_region());
    spec.per_core_region = false;
  } else {
    throw ScenarioError(line, "unknown c2m workload '" + wl +
                                  "' (want c2m_read, c2m_read_write, redis_read, "
                                  "redis_write, gapbs_pr or gapbs_bc)");
  }
  spec.name = wl;
}

iio::StorageConfig p2m_workload(std::size_t line, const core::HostConfig& host,
                                const std::string& wl) {
  if (wl == "fio_write") return workloads::fio_p2m_write(host, workloads::p2m_region());
  if (wl == "fio_read") return workloads::fio_p2m_read(host, workloads::p2m_region());
  if (wl == "fio_4k_qd1") return workloads::fio_4k_qd1(host, workloads::p2m_region());
  throw ScenarioError(line, "unknown p2m workload '" + wl +
                                "' (want fio_write, fio_read, fio_4k_qd1, "
                                "tcp_dctcp, tcp_bbr or tcp_davis)");
}

}  // namespace

/// Line-by-line recursive-descent-without-the-recursion parser; all state
/// lives here so Scenario itself stays a plain value type.
class ScenarioParser {
 public:
  explicit ScenarioParser(std::string_view text) : text_(text) {}

  Scenario run() {
    std::size_t lineno = 0;
    std::size_t pos = 0;
    while (pos <= text_.size()) {
      const std::size_t eol = text_.find('\n', pos);
      const std::string_view line =
          text_.substr(pos, (eol == std::string_view::npos ? text_.size() : eol) - pos);
      pos = (eol == std::string_view::npos) ? text_.size() + 1 : eol + 1;
      ++lineno;
      const std::vector<std::string> t = tokenize(line);
      if (t.empty()) continue;
      if (in_template_)
        template_directive(lineno, t);
      else
        top_directive(lineno, t);
    }
    finish();
    return std::move(sc_);
  }

 private:
  void top_directive(std::size_t line, const std::vector<std::string>& t) {
    const std::string& kw = t[0];
    if (kw == "fleet") {
      expect_args(line, t, 1, "fleet <name>");
      if (!sc_.name_.empty()) throw ScenarioError(line, "duplicate 'fleet' directive");
      sc_.name_ = t[1];
      return;
    }
    if (sc_.name_.empty())
      throw ScenarioError(line, "the first directive must be 'fleet <name>', got '" + kw + "'");
    if (kw == "seed") {
      expect_args(line, t, 1, "seed <u64>");
      sc_.seed_ = parse_u64(line, t[1], "seed");
      sc_.base_opt_.seed = sc_.seed_;
    } else if (kw == "warmup_us") {
      expect_args(line, t, 1, "warmup_us <f>");
      sc_.base_opt_.warmup = us(parse_f64(line, t[1], "warmup_us"));
    } else if (kw == "measure_us") {
      expect_args(line, t, 1, "measure_us <f>");
      sc_.base_opt_.measure = us(parse_f64(line, t[1], "measure_us"));
    } else if (kw == "measure_jitter_pct") {
      expect_args(line, t, 1, "measure_jitter_pct <f>");
      sc_.measure_jitter_pct_ = parse_f64(line, t[1], "measure_jitter_pct");
      if (sc_.measure_jitter_pct_ < 0 || sc_.measure_jitter_pct_ > 100)
        throw ScenarioError(line, "measure_jitter_pct must be in [0, 100]");
    } else if (kw == "template") {
      expect_args(line, t, 1, "template <name>");
      for (const HostTemplate& existing : sc_.templates_)
        if (existing.name == t[1])
          throw ScenarioError(line, "duplicate template '" + t[1] + "'");
      in_template_ = true;
      template_line_ = line;
      tmpl_ = HostTemplate{};
      tmpl_.name = t[1];
      tmpl_.seed = sc_.seed_;
      c2m_workload_.clear();
      p2m_workload_.clear();
      tcp_stack_override_.clear();
    } else if (kw == "hosts") {
      expect_args(line, t, 2, "hosts <count> <template>");
      HostGroup g;
      g.count = parse_u64(line, t[1], "hosts count");
      if (g.count == 0) throw ScenarioError(line, "hosts count must be positive");
      g.tmpl = find_template(line, t[2]);
      sc_.groups_.push_back(g);
    } else if (kw == "end") {
      throw ScenarioError(line, "'end' outside a template block");
    } else {
      throw ScenarioError(line, "unknown directive '" + kw + "'");
    }
  }

  void template_directive(std::size_t line, const std::vector<std::string>& t) {
    const std::string& kw = t[0];
    if (kw == "preset") {
      expect_args(line, t, 1, "preset <name>");
      if (t[1] == "cascade-lake") tmpl_.host = core::cascade_lake();
      else if (t[1] == "ice-lake") tmpl_.host = core::ice_lake();
      else
        throw ScenarioError(line, "unknown preset '" + t[1] + "' (want cascade-lake or ice-lake)");
      tmpl_.preset = t[1];
    } else if (kw == "set") {
      expect_args(line, t, 2, "set <key> <value>");
      if (t[1] == "tcp.stack") {
        // Transport knob, not a HostConfig field; resolved at 'end' against
        // the template's tcp_* p2m placement.
        tcp_stack_override_ = t[2];
        tcp_stack_line_ = line;
      } else {
        apply_set(line, tmpl_.host, t[1], t[2]);
      }
    } else if (kw == "seed") {
      expect_args(line, t, 1, "seed <u64>");
      tmpl_.seed = parse_u64(line, t[1], "seed");
    } else if (kw == "c2m") {
      if (t.size() < 3 || t.size() > 4)
        throw ScenarioError(line, "usage: c2m <tenant> <workload> [cores=<n>]");
      if (tmpl_.c2m) throw ScenarioError(line, "template already has a c2m placement");
      core::C2MSpec spec;
      apply_c2m_workload(line, spec, t[2]);
      spec.cores = 1;
      if (t.size() == 4) {
        if (t[3].rfind("cores=", 0) != 0)
          throw ScenarioError(line, "expected cores=<n>, got '" + t[3] + "'");
        spec.cores = static_cast<std::uint32_t>(parse_u64(line, t[3].substr(6), "cores"));
        if (spec.cores == 0) throw ScenarioError(line, "cores must be positive");
      }
      tmpl_.c2m = spec;
      tmpl_.c2m_tenant = tenant_id(t[1]);
      c2m_workload_ = t[2];
    } else if (kw == "p2m") {
      expect_args(line, t, 2, "p2m <tenant> <workload>");
      if (tmpl_.p2m) throw ScenarioError(line, "template already has a p2m placement");
      p2m_workload_ = t[2];  // resolved at 'end' (needs final PCIe config)
      p2m_line_ = line;
      tmpl_.p2m_tenant = tenant_id(t[1]);
    } else if (kw == "end") {
      finish_template(line);
    } else {
      throw ScenarioError(line, "unknown template directive '" + kw + "'");
    }
  }

  void finish_template(std::size_t line) {
    if (!p2m_workload_.empty()) {
      core::P2MSpec spec;
      spec.name = p2m_workload_;
      if (std::optional<core::TcpSpec> tcp = net::tcp_p2m_workload(p2m_workload_)) {
        if (!tcp_stack_override_.empty()) {
          const std::optional<core::TcpStackKind> kind =
              net::tcp_stack_kind(tcp_stack_override_);
          if (!kind)
            throw ScenarioError(tcp_stack_line_, "unknown tcp.stack '" + tcp_stack_override_ +
                                                     "' (want dctcp, bbr or davis)");
          tcp->stack = *kind;
          tcp->name = "tcp_" + core::to_string(*kind);
          spec.name = tcp->name;
        }
        spec.tcp = std::move(tcp);
      } else {
        if (!tcp_stack_override_.empty())
          throw ScenarioError(tcp_stack_line_,
                              "'set tcp.stack' needs a tcp_* p2m placement in this template");
        spec.storage = p2m_workload(p2m_line_, tmpl_.host, p2m_workload_);
      }
      tmpl_.p2m = spec;
    } else if (!tcp_stack_override_.empty()) {
      throw ScenarioError(tcp_stack_line_,
                          "'set tcp.stack' needs a tcp_* p2m placement in this template");
    }
    if (!tmpl_.c2m && !tmpl_.p2m)
      throw ScenarioError(line, "template '" + tmpl_.name + "' places no workload (add c2m/p2m)");
    if (tmpl_.c2m && tmpl_.c2m->cores > tmpl_.host.total_cores)
      throw ScenarioError(line, "template '" + tmpl_.name + "' places " +
                                    std::to_string(tmpl_.c2m->cores) + " c2m cores on a " +
                                    std::to_string(tmpl_.host.total_cores) + "-core host");
    const std::string problem = tmpl_.host.validate();
    if (!problem.empty())
      throw ScenarioError(line, "template '" + tmpl_.name + "': invalid host config: " + problem);
    sc_.templates_.push_back(std::move(tmpl_));
    in_template_ = false;
  }

  void finish() {
    if (sc_.name_.empty()) throw ScenarioError(1, "empty scenario: missing 'fleet <name>'");
    if (in_template_)
      throw ScenarioError(template_line_, "template '" + tmpl_.name + "' is missing its 'end'");
    if (sc_.groups_.empty()) throw ScenarioError(1, "scenario places no hosts (add 'hosts N T')");
  }

  std::size_t find_template(std::size_t line, const std::string& name) const {
    for (std::size_t i = 0; i < sc_.templates_.size(); ++i)
      if (sc_.templates_[i].name == name) return i;
    throw ScenarioError(line, "unknown template '" + name + "'");
  }

  std::uint32_t tenant_id(const std::string& name) {
    for (std::size_t i = 0; i < sc_.tenants_.size(); ++i)
      if (sc_.tenants_[i] == name) return static_cast<std::uint32_t>(i);
    sc_.tenants_.push_back(name);
    return static_cast<std::uint32_t>(sc_.tenants_.size() - 1);
  }

  static void expect_args(std::size_t line, const std::vector<std::string>& t, std::size_t n,
                          const char* usage) {
    if (t.size() != n + 1) throw ScenarioError(line, std::string("usage: ") + usage);
  }

  std::string_view text_;
  Scenario sc_;
  bool in_template_ = false;
  std::size_t template_line_ = 0;
  std::size_t p2m_line_ = 0;
  HostTemplate tmpl_;
  std::string c2m_workload_;
  std::string p2m_workload_;
  std::string tcp_stack_override_;
  std::size_t tcp_stack_line_ = 0;
};

Scenario Scenario::parse(std::string_view text) { return ScenarioParser(text).run(); }

Scenario Scenario::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read scenario file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::vector<HostInstance> Scenario::expand() const {
  std::vector<HostInstance> hosts;
  hosts.reserve(total_hosts());
  const double jitter = measure_jitter_pct_ / 100.0;
  std::uint64_t index = 0;
  for (const HostGroup& g : groups_) {
    const HostTemplate& t = templates_[g.tmpl];
    for (std::uint64_t r = 0; r < g.count; ++r, ++index) {
      HostInstance h;
      h.index = index;
      h.tmpl = g.tmpl;
      h.opt = base_opt_;
      h.opt.seed = t.seed;
      if (jitter > 0) {
        // Stagger only the measurement-window length: the construction +
        // warmup prefix (the config fingerprint) stays shared across the
        // template's replicas, so each replica is a checkpoint fork rather
        // than a fresh warmup. Keyed by (scenario seed, host index) only --
        // expand() stays a pure function of the text.
        Rng stream(seed_ ^ (0x9E3779B97F4A7C15ULL * (index + 1)));
        const auto span = static_cast<std::uint64_t>(
            static_cast<double>(h.opt.measure) * jitter);
        if (span > 0) h.opt.measure += static_cast<Tick>(stream.below(span + 1));
      }
      hosts.push_back(h);
    }
  }
  return hosts;
}

}  // namespace hostnet::fleet
