// flow::DomainRegistry -- the host-wide index of every CreditPool, keyed by
// the paper's credit domains (DESIGN.md section 4d).
//
// Components register their pools at construction: domain-tagged pools are
// the four bottleneck domains of section 4 (the cores' LFB pools under
// C2M-Read, their write-phase pools under C2M-Write, each IIO stack's
// read/write buffers under P2M-Read/Write); interior pools (CHA trackers,
// MC queues) are registered untagged -- they are audited and reset with
// everyone else but are not themselves domain credit pools.
//
// HostSystem::collect() walks the registry to fill Metrics, and observe()
// derives a core::DomainObservation uniformly for any domain: latency is
// the completion-weighted mean across the domain's pools, occupancy is
// either summed (pools are disjoint buffers: P2M stacks, write phases) or
// averaged per pool (the paper reports per-core LFB occupancy), and
// throughput follows from pool completions over the window. Iteration is
// always registration order, which is construction order -- deterministic
// and stable, so float accumulation order never depends on container
// internals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.hpp"
#include "core/domains.hpp"
#include "flow/credit_pool.hpp"

namespace hostnet::flow {

/// How observe() aggregates pool occupancies into credits_in_use.
enum class OccAggregation : std::uint8_t {
  kMean,  ///< per-pool average (paper reports per-core LFB occupancy)
  kSum,   ///< pools are disjoint buffers of one domain (IIO stacks)
};

class DomainRegistry {
 public:
  struct Entry {
    bool has_domain = false;
    core::Domain domain = core::Domain::kC2MRead;
    std::string name;  ///< e.g. "cpu0.lfb", "iio0.write-credits"
    CreditPool* pool = nullptr;
  };

  /// Register a pool as (part of) one of the paper's credit domains.
  void add(core::Domain domain, std::string name, CreditPool* pool) {
    entries_.push_back(Entry{true, domain, std::move(name), pool});
  }

  /// Register an interior pool (CHA tracker, MC queue): audited and reset
  /// with the rest, but not a domain credit pool.
  void add_interior(std::string name, CreditPool* pool) {
    entries_.push_back(Entry{false, core::Domain::kC2MRead, std::move(name), pool});
  }

  const std::vector<Entry>& entries() const { return entries_; }

  /// Visit the pools of `domain` in registration order.
  template <typename F>
  void for_each(core::Domain domain, F&& f) {
    for (Entry& e : entries_)
      if (e.has_domain && e.domain == domain) f(e);
  }

  /// Derive the domain's observation from its pools' stations: latency is
  /// the completion-weighted mean, max credits the pool-wise max, and
  /// throughput the pooled completions over the window (one cacheline per
  /// credit). C2M throughputs are overridden by the caller from DRAM line
  /// counters (LFB completions mix reads and write phases).
  core::DomainObservation observe(core::Domain domain, Tick now, Tick window,
                                  OccAggregation agg) {
    core::DomainObservation o;
    double lat_sum = 0;
    double occ_sum = 0;
    std::uint64_t completions = 0;
    std::int64_t max_occ = 0;
    std::size_t pools = 0;
    for (Entry& e : entries_) {
      if (!e.has_domain || e.domain != domain) continue;
      counters::LatencyStation& s = e.pool->station();
      if (s.completions() > 0) {
        lat_sum += s.mean_latency_ns() * static_cast<double>(s.completions());
        completions += s.completions();
      }
      occ_sum += s.avg_occupancy(now);
      max_occ = std::max(max_occ, s.max_occupancy());
      ++pools;
    }
    if (completions > 0) o.latency_ns = lat_sum / static_cast<double>(completions);
    o.credits_in_use = agg == OccAggregation::kMean
                           ? (pools == 0 ? 0.0 : occ_sum / static_cast<double>(pools))
                           : occ_sum;
    o.max_credits_used = static_cast<double>(max_occ);
    if (window > 0)
      o.throughput_gbps = gb_per_s(completions * kCachelineBytes, window);
    return o;
  }

  /// Checked-build audit of every registered pool's ledger.
  void verify() const {
    for (const Entry& e : entries_) e.pool->verify();
  }

 private:
  std::vector<Entry> entries_;
};

}  // namespace hostnet::flow
