// flow::CreditPool -- the one credit-based flow-control primitive behind
// every domain pool in the host network (DESIGN.md section 4d).
//
// The paper's core abstraction (section 4) is that every datapath domain is
// governed by the same mechanism: a sender-side pool of C credits, one
// consumed per cacheline request, replenished when the domain's receiver
// acknowledges it, bounding throughput at T <= C*64/L. Before this layer
// existed the simulator implemented that mechanism four times -- raw
// counters in cpu::Core, tracker admission in cha::Cha, waiter callbacks in
// iio::Iio, WPQ watermarks in mc::Channel -- each with its own occupancy
// integral, CHECKED ledger and wakeup logic. CreditPool unifies them:
//
//  * acquire/try_acquire/release against a fixed capacity (0 = unbounded,
//    for telemetry-only pools such as the core's C2M-Write phase);
//  * an optional privileged reserve: normal acquirers are capped at
//    capacity - reserve while privileged ones may use the whole pool (the
//    CHA write tracker's peripheral reserve);
//  * a FIFO waiter list with two deterministic wake policies --
//    kWhileAvailable drains waiters while space remains (CHA admission),
//    kOnePerNotify hands exactly one waiter its wake per release (IIO
//    device credits) -- with optional duplicate suppression (IIO devices
//    register once per blocked op; CHA clients queue once per blocked
//    request, duplicates intentional);
//  * hysteresis watermark predicates (MC WPQ drain policy) instead of
//    block-at-empty admission;
//  * a pressure indicator: a 0/1 time-weighted signal set while occupancy
//    exceeds a threshold (the CHA's WPQ-backpressure measurement feeding
//    the paper's P_fill^WPQ input);
//  * uniform telemetry -- a LatencyStation giving the time-weighted
//    occupancy integral (credits in use) and the credit-hold latency -- so
//    core::DomainObservation derives identically for every domain;
//  * the HOSTNET_CHECKED CreditLedger embedded, so double-entry audits of
//    acquire/release conservation come for free at every pool.
//
// Everything is fixed-cost on the hot path: no allocation after the waiter
// ring warms up (RingBuffer retains its array), and the unchecked ledger is
// an empty shell.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/check.hpp"
#include "common/ring_buffer.hpp"
#include "common/snapshot.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "counters/station.hpp"

namespace hostnet::flow {

class CreditPool;

/// A sender blocked on an exhausted pool. Registered (FIFO) with
/// enqueue_waiter(); woken exactly once per registration by notify().
/// Components with per-op pools embed one adapter per op so a wake carries
/// the right context (see cha::ChaClient / iio::Device).
class CreditWaiter {
 public:
  virtual ~CreditWaiter() = default;
  virtual void on_credit_available(CreditPool& pool) = 0;
};

/// How notify() hands freed credits to waiters.
enum class WakePolicy : std::uint8_t {
  /// Drain waiters while space remains, privileged queue first (CHA
  /// admission: one release can admit several retrying clients).
  kWhileAvailable,
  /// Pop exactly one waiter per notify (IIO device credits: one freed
  /// credit wakes one device, which re-tries and re-registers if it loses
  /// the race).
  kOnePerNotify,
};

/// What "backpressure" means for the pool.
enum class BackpressurePolicy : std::uint8_t {
  /// Senders block when no credit is free (every admission pool).
  kBlockAtEmpty,
  /// The pool is a drain buffer with high/low watermarks (MC WPQ): the
  /// consumer switches on above_high() and back on at_or_below_low().
  kHysteresis,
};

struct CreditPoolSpec {
  const char* name = "pool";       ///< diagnostics / ledger audits
  std::uint32_t capacity = 0;      ///< credits; 0 = unbounded (telemetry only)
  std::uint32_t reserve = 0;       ///< privileged-only headroom at the top
  WakePolicy wake = WakePolicy::kWhileAvailable;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlockAtEmpty;
  bool dedup_waiters = false;      ///< drop duplicate waiter registrations
  std::uint32_t high_watermark = 0;  ///< kHysteresis: engage drain at >= high
  std::uint32_t low_watermark = 0;   ///< kHysteresis: disengage at <= low
  /// Set the 0/1 pressure signal while in_use > threshold; -1 disables.
  std::int64_t pressure_threshold = -1;
};

class CreditPool {
 public:
  CreditPool() = default;
  explicit CreditPool(const CreditPoolSpec& spec) { configure(spec); }

  /// Setup-path only: fix the pool's identity and capacity.
  void configure(const CreditPoolSpec& spec) {
    spec_ = spec;
    ledger_.set_capacity(spec.capacity);
  }

  const CreditPoolSpec& spec() const { return spec_; }
  const char* name() const { return spec_.name; }
  std::uint32_t capacity() const { return spec_.capacity; }
  std::uint32_t in_use() const { return in_use_; }

  /// Is a credit available? Normal acquirers may not touch the reserve.
  bool has_space(bool privileged = false) const {
    if (spec_.capacity == 0) return true;  // unbounded / telemetry-only
    const std::uint32_t cap =
        privileged ? spec_.capacity
        : spec_.capacity > spec_.reserve ? spec_.capacity - spec_.reserve
                                         : 0;
    return in_use_ < cap;
  }

  /// Consume one credit (caller checked has_space(), or the pool is a
  /// bounded buffer whose bound the caller enforces structurally).
  void acquire(Tick now) {
    ++in_use_;
    ledger_.acquire();
    station_.enter(now);
    update_pressure(now);
  }

  bool try_acquire(Tick now, bool privileged = false) {
    if (!has_space(privileged)) return false;
    acquire(now);
    return true;
  }

  /// Replenish one credit, recording the hold latency (`entered` is when
  /// the credit was acquired -- caller-provided, the pool keeps no
  /// per-credit state). Does NOT wake waiters: call notify() after, at the
  /// site's chosen point, so wake ordering stays explicit.
  void release(Tick now, Tick entered) {
    assert(in_use_ > 0);
    --in_use_;
    ledger_.release();
    station_.leave(now, entered);
    update_pressure(now);
  }

  /// Occupancy-only replenish: no hold-latency sample (pools whose latency
  /// is measured elsewhere, e.g. the CHA's per-traffic-class stations).
  void release(Tick now) {
    assert(in_use_ > 0);
    --in_use_;
    ledger_.release();
    station_.leave_untimed(now);
    update_pressure(now);
  }

  /// FIFO-register a waiter; privileged waiters are drained first and may
  /// use the reserve. With dedup_waiters, a waiter already queued (in the
  /// same queue) is not added again.
  void enqueue_waiter(CreditWaiter* w, bool privileged = false) {
    RingBuffer<CreditWaiter*>& q = privileged ? privileged_waiters_ : waiters_;
    if (spec_.dedup_waiters) {
      for (std::size_t i = 0; i < q.size(); ++i)
        if (q[i] == w) return;  // already waiting
    }
    q.push_back(w);
  }

  std::size_t waiting() const { return waiters_.size() + privileged_waiters_.size(); }

  /// Wake waiters per the pool's WakePolicy. Reentrant calls (a woken
  /// sender's acquire path releasing back into this pool, e.g. a DDIO hit
  /// freeing the write tracker mid-wake) are absorbed: the outer loop's
  /// has_space() re-check hands the freed credit on.
  void notify() {
    if (notifying_) return;
    notifying_ = true;
    if (spec_.wake == WakePolicy::kOnePerNotify) {
      if (!waiters_.empty()) {
        CreditWaiter* w = waiters_.front();
        waiters_.pop_front();
        w->on_credit_available(*this);
      }
    } else {
      while (!privileged_waiters_.empty() && has_space(/*privileged=*/true)) {
        CreditWaiter* w = privileged_waiters_.front();
        privileged_waiters_.pop_front();
        w->on_credit_available(*this);
      }
      while (!waiters_.empty() && has_space(/*privileged=*/false)) {
        CreditWaiter* w = waiters_.front();
        waiters_.pop_front();
        w->on_credit_available(*this);
      }
    }
    notifying_ = false;
  }

  // -- hysteresis watermarks --------------------------------------------------
  bool above_high() const { return in_use_ >= spec_.high_watermark; }
  bool at_or_below_low() const { return in_use_ <= spec_.low_watermark; }

  // -- telemetry ---------------------------------------------------------------
  /// Occupancy integral (credits in use over time) + credit-hold latency.
  counters::LatencyStation& station() { return station_; }
  const counters::LatencyStation& station() const { return station_; }

  /// Fraction of the window the pressure signal was set (pressure_threshold
  /// pools only; 0 otherwise).
  double pressure_fraction(Tick now) { return pressure_.average(now); }

  /// Begin a fresh measurement window (occupancy level persists).
  void reset_telemetry(Tick now) {
    station_.reset(now);
    pressure_.reset(now);
  }

  /// Checked-build audit (no-op otherwise): acquire/release conservation
  /// against the in-use count, within capacity.
  void verify() const { ledger_.verify(in_use_, spec_.name); }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  //
  // Everything mutable is a copyable value except the waiter rings, which
  // hold raw CreditWaiter* into component-embedded adapters -- valid only
  // when the snapshot is restored into the host that produced it (enforced
  // by the owner token in core::HostSnapshot). The spec is construction
  // state and is not saved. Snapshots are taken at quiesce points (between
  // events), where no notify() is on the stack.
  struct Snapshot {
    std::uint32_t in_use = 0;
    RingBuffer<CreditWaiter*> waiters;
    RingBuffer<CreditWaiter*> privileged_waiters;
    counters::LatencyStation station;
    TimeWeighted pressure;
    CreditLedger ledger;
  };

  void save_state(Snapshot& out) const {
    assert(!notifying_ && "snapshot must be taken at a quiesce point");
    out.in_use = in_use_;
    out.waiters = waiters_;
    out.privileged_waiters = privileged_waiters_;
    out.station = station_;
    out.pressure = pressure_;
    out.ledger = ledger_;
  }

  void load_state(const Snapshot& s) {
    assert(!notifying_ && "restore must happen at a quiesce point");
    in_use_ = s.in_use;
    waiters_ = s.waiters;
    privileged_waiters_ = s.privileged_waiters;
    station_ = s.station;
    pressure_ = s.pressure;
    ledger_ = s.ledger;
    notifying_ = false;
  }

 private:
  void update_pressure(Tick now) {
    if (spec_.pressure_threshold < 0) return;
    pressure_.set(now, static_cast<std::int64_t>(in_use_) > spec_.pressure_threshold ? 1 : 0);
  }

  // hostnet-audit: skip(spec_, construction config; the spec table is rebuilt from HostConfig and never mutates)
  CreditPoolSpec spec_{};
  std::uint32_t in_use_ = 0;
  CreditLedger ledger_;  ///< empty shell unless HOSTNET_CHECKED
  RingBuffer<CreditWaiter*> waiters_;
  RingBuffer<CreditWaiter*> privileged_waiters_;
  bool notifying_ = false;

  counters::LatencyStation station_;
  TimeWeighted pressure_;  ///< 0/1 while in_use exceeds the threshold
};

HOSTNET_SNAPSHOT_COVERS(CreditPool);

}  // namespace hostnet::flow
