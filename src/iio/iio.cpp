#include "iio/iio.hpp"

#include <cassert>

#include "sim/trace.hpp"

namespace hostnet::iio {

Iio::Iio(sim::Simulator& sim, cha::Cha& cha, const IioConfig& cfg, std::uint16_t id)
    : sim_(sim), cha_(cha), cfg_(cfg), id_(id) {
  // One freed credit wakes one device (which re-tries and re-registers if it
  // loses the race); a device waits at most once per op.
  flow::CreditPoolSpec wr;
  wr.name = "iio.write-credits";
  wr.capacity = cfg_.write_credits;
  wr.wake = flow::WakePolicy::kOnePerNotify;
  wr.dedup_waiters = true;
  write_pool_.configure(wr);
  flow::CreditPoolSpec rd;
  rd.name = "iio.read-credits";
  rd.capacity = cfg_.read_credits;
  rd.wake = flow::WakePolicy::kOnePerNotify;
  rd.dedup_waiters = true;
  read_pool_.configure(rd);
}

bool Iio::try_dma(mem::Op op, std::uint64_t addr, Device* dev, std::uint64_t tag) {
  const Tick now = sim_.now();
  mem::Request req;
  req.addr = addr;
  req.op = op;
  req.source = mem::Source::kPeripheral;
  req.origin = id_;
  req.created = now;
  req.completer = this;

  if (op == mem::Op::kWrite) {
    if (!write_pool_.has_space()) {
      write_pool_.enqueue_waiter(&dev->credit_waiter(op));
      return false;
    }
    write_pool_.acquire(now);
    sim_.schedule(cfg_.t_proc_write + cfg_.t_to_cha, [this, req] { submit(req); });
    return true;
  }

  if (!read_pool_.has_space()) {
    read_pool_.enqueue_waiter(&dev->credit_waiter(op));
    return false;
  }
  read_pool_.acquire(now);
  // Remember who gets the data back.
  std::uint64_t slot = pending_reads_.size();
  for (std::uint64_t i = 0; i < pending_reads_.size(); ++i) {
    if (pending_reads_[i].dev == nullptr) {
      slot = i;
      break;
    }
  }
  if (slot == pending_reads_.size()) pending_reads_.push_back(Pending{});
  pending_reads_[slot] = Pending{dev, tag};
  req.tag = slot;
  sim_.schedule(cfg_.t_proc_read + cfg_.t_to_cha, [this, req] { submit(req); });
  return true;
}

void Iio::submit(mem::Request req) {
  if (cha_.try_submit(req)) {
    cha_.record_admission_wait(req.cls(), 0);
    return;
  }
  auto& q = req.op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  q.push_back(Blocked{req, sim_.now()});
  cha_.wait_for_admission(req.op, this, mem::Source::kPeripheral);
}

bool Iio::on_cha_admission(mem::Op op) {
  auto& q = op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  if (q.empty()) return false;
  Blocked b = q.front();
  if (!cha_.try_submit(b.req)) {
    cha_.wait_for_admission(op, this, mem::Source::kPeripheral);
    return false;
  }
  q.pop_front();
  cha_.record_admission_wait(b.req.cls(), sim_.now() - b.since);
  if (!q.empty()) cha_.wait_for_admission(op, this, mem::Source::kPeripheral);
  return true;
}

void Iio::complete(const mem::Request& req, Tick now) {
  if (req.op == mem::Op::kWrite) {
    // Admitted to the MC WPQ: P2M-Write credit replenished.
    write_pool_.release(now, req.created);
    if (auto* tr = sim::Tracer::global()) {
      tr->complete_event("p2m-write", "domain", req.created, now - req.created,
                         sim::Tracer::kTrackIio);
      tr->counter("iio-write-credits", now, static_cast<double>(write_pool_.in_use()));
    }
    write_pool_.notify();
    return;
  }
  // Data returned to the IIO: P2M-Read credit replenished; complete the
  // PCIe non-posted transaction back to the device.
  read_pool_.release(now, req.created);
  if (auto* tr = sim::Tracer::global())
    tr->complete_event("p2m-read", "domain", req.created, now - req.created,
                       sim::Tracer::kTrackIio);
  const Pending p = pending_reads_[req.tag];
  pending_reads_[req.tag] = Pending{};
  read_pool_.notify();
  if (p.dev != nullptr) {
    sim_.schedule(cfg_.t_complete_read,
                  [this, p] { p.dev->on_read_data(p.tag, sim_.now()); });
  }
}

void Iio::reset_counters(Tick now) {
  write_pool_.reset_telemetry(now);
  read_pool_.reset_telemetry(now);
}

}  // namespace hostnet::iio
