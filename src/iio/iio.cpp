#include "iio/iio.hpp"

#include <cassert>

#include "sim/trace.hpp"

namespace hostnet::iio {

Iio::Iio(sim::Simulator& sim, cha::Cha& cha, const IioConfig& cfg, std::uint16_t id)
    : sim_(sim), cha_(cha), cfg_(cfg), id_(id) {
  write_ledger_.set_capacity(cfg_.write_credits);
  read_ledger_.set_capacity(cfg_.read_credits);
}

bool Iio::try_dma(mem::Op op, std::uint64_t addr, Device* dev, std::uint64_t tag) {
  const Tick now = sim_.now();
  mem::Request req;
  req.addr = addr;
  req.op = op;
  req.source = mem::Source::kPeripheral;
  req.origin = id_;
  req.created = now;
  req.completer = this;

  if (op == mem::Op::kWrite) {
    if (write_in_use_ >= cfg_.write_credits) {
      register_device(op, dev);
      return false;
    }
    ++write_in_use_;
    write_ledger_.acquire();
    write_station_.enter(now);
    sim_.schedule(cfg_.t_proc_write + cfg_.t_to_cha, [this, req] { submit(req); });
    return true;
  }

  if (read_in_use_ >= cfg_.read_credits) {
    register_device(op, dev);
    return false;
  }
  ++read_in_use_;
  read_ledger_.acquire();
  read_station_.enter(now);
  // Remember who gets the data back.
  std::uint64_t slot = pending_reads_.size();
  for (std::uint64_t i = 0; i < pending_reads_.size(); ++i) {
    if (pending_reads_[i].dev == nullptr) {
      slot = i;
      break;
    }
  }
  if (slot == pending_reads_.size()) pending_reads_.push_back(Pending{});
  pending_reads_[slot] = Pending{dev, tag};
  req.tag = slot;
  sim_.schedule(cfg_.t_proc_read + cfg_.t_to_cha, [this, req] { submit(req); });
  return true;
}

void Iio::submit(mem::Request req) {
  if (cha_.try_submit(req)) {
    cha_.record_admission_wait(req.cls(), 0);
    return;
  }
  auto& q = req.op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  q.push_back(Blocked{req, sim_.now()});
  cha_.wait_for_admission(req.op, this, mem::Source::kPeripheral);
}

bool Iio::on_cha_admission(mem::Op op) {
  auto& q = op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  if (q.empty()) return false;
  Blocked b = q.front();
  if (!cha_.try_submit(b.req)) {
    cha_.wait_for_admission(op, this, mem::Source::kPeripheral);
    return false;
  }
  q.pop_front();
  cha_.record_admission_wait(b.req.cls(), sim_.now() - b.since);
  if (!q.empty()) cha_.wait_for_admission(op, this, mem::Source::kPeripheral);
  return true;
}

void Iio::complete(const mem::Request& req, Tick now) {
  if (req.op == mem::Op::kWrite) {
    // Admitted to the MC WPQ: P2M-Write credit replenished.
    assert(write_in_use_ > 0);
    --write_in_use_;
    write_ledger_.release();
    write_station_.leave(now, req.created);
    if (auto* tr = sim::Tracer::global()) {
      tr->complete_event("p2m-write", "domain", req.created, now - req.created,
                         sim::Tracer::kTrackIio);
      tr->counter("iio-write-credits", now, static_cast<double>(write_in_use_));
    }
    notify_devices(mem::Op::kWrite);
    return;
  }
  // Data returned to the IIO: P2M-Read credit replenished; complete the
  // PCIe non-posted transaction back to the device.
  assert(read_in_use_ > 0);
  --read_in_use_;
  read_ledger_.release();
  read_station_.leave(now, req.created);
  if (auto* tr = sim::Tracer::global())
    tr->complete_event("p2m-read", "domain", req.created, now - req.created,
                       sim::Tracer::kTrackIio);
  const Pending p = pending_reads_[req.tag];
  pending_reads_[req.tag] = Pending{};
  notify_devices(mem::Op::kRead);
  if (p.dev != nullptr) {
    sim_.schedule(cfg_.t_complete_read,
                  [this, p] { p.dev->on_read_data(p.tag, sim_.now()); });
  }
}

void Iio::register_device(mem::Op op, Device* dev) {
  auto& q = op == mem::Op::kWrite ? write_waiters_ : read_waiters_;
  for (std::size_t i = 0; i < q.size(); ++i)
    if (q[i] == dev) return;  // already waiting
  q.push_back(dev);
}

void Iio::notify_devices(mem::Op op) {
  auto& q = op == mem::Op::kWrite ? write_waiters_ : read_waiters_;
  if (q.empty()) return;
  Device* d = q.front();
  q.pop_front();
  d->on_credit_available(op);
}

void Iio::reset_counters(Tick now) {
  write_station_.reset(now);
  read_station_.reset(now);
}

}  // namespace hostnet::iio
