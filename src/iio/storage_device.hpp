// NVMe-like storage device generating P2M traffic over PCIe (the paper's
// FIO workloads, section 2.1/2.2):
//
//   * storage READ  -> DMA *writes* into host memory  (P2M-Write)
//   * storage WRITE -> DMA *reads* from host memory   (P2M-Read)
//
// The device streams cacheline TLPs, paced by the PCIe link's effective
// bandwidth, gated by IIO credits. Large sequential requests (8 MB) model
// the paper's FIO configuration; 4 KB queue-depth-1 models the low-load
// probe used to measure the unloaded P2M-Write domain latency (Fig 6c).
#pragma once

#include <cstdint>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "iio/iio.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::iio {

struct StorageConfig {
  mem::Op host_op = mem::Op::kWrite;     ///< memory-side op (kWrite = storage read)
  std::uint64_t request_bytes = 8ull << 20;
  std::uint32_t queue_depth = 4;
  double link_gb_per_s = 14.0;           ///< effective PCIe bandwidth
  Tick per_request_latency = us(8);      ///< device-internal latency per request
  mem::Region region{};
  /// Fraction of requests issued with the *opposite* op (mixed read/write
  /// storage workloads; 0 = pure `host_op`). Chosen per request, so an 8 MB
  /// request is all-read or all-write like FIO's rwmixread behaviour.
  double mixed_fraction = 0.0;
};

class StorageDevice final : public Device {
 public:
  StorageDevice(sim::Simulator& sim, Iio& iio, const StorageConfig& cfg);

  void start();

  // -- iio::Device ------------------------------------------------------------
  void on_credit_available(mem::Op op) override;
  void on_read_data(std::uint64_t tag, Tick now) override;

  // -- measurement ------------------------------------------------------------
  std::uint64_t bytes_transferred() const { return bytes_; }
  std::uint64_t requests_completed() const { return requests_done_; }
  void reset_counters() {
    bytes_ = 0;
    requests_done_ = 0;
  }

  /// One in-flight storage request (queue-depth slot).
  struct Slot {
    bool ready = false;           ///< device-side latency elapsed, lines flowing
    std::uint64_t next_line = 0;  ///< next region line to DMA
    std::uint32_t lines_to_issue = 0;
    std::uint32_t data_pending = 0;  ///< (reads) lines whose data is still in flight
    mem::Op op = mem::Op::kWrite;    ///< this request's memory-side op
  };

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, iio_, cfg_, t_line_) is construction state.
  struct Snapshot {
    Rng rng{0};
    std::vector<Slot> slots;
    RingBuffer<std::uint32_t> ready_order;
    std::uint64_t next_region_line = 0;
    std::uint64_t interleave_counter = 0;
    bool link_busy = false;
    bool waiting_credit = false;
    std::uint64_t bytes = 0;
    std::uint64_t requests_done = 0;
  };

  void save_state(Snapshot& out) const {
    out.rng = rng_;
    out.slots = slots_;
    out.ready_order = ready_order_;
    out.next_region_line = next_region_line_;
    out.interleave_counter = interleave_counter_;
    out.link_busy = link_busy_;
    out.waiting_credit = waiting_credit_;
    out.bytes = bytes_;
    out.requests_done = requests_done_;
  }

  void load_state(const Snapshot& s) {
    rng_ = s.rng;
    slots_ = s.slots;
    ready_order_ = s.ready_order;
    next_region_line_ = s.next_region_line;
    interleave_counter_ = s.interleave_counter;
    link_busy_ = s.link_busy;
    waiting_credit_ = s.waiting_credit;
    bytes_ = s.bytes;
    requests_done_ = s.requests_done;
  }

 private:
  void issue_request(std::uint32_t slot);
  void pump();
  void request_done(std::uint32_t slot);

  sim::Simulator& sim_;
  Iio& iio_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  StorageConfig cfg_;
  // hostnet-audit: skip(t_line_, derived from cfg_ bandwidth at construction; never mutates)
  Tick t_line_;
  Rng rng_{0x5707A6EULL};

  std::vector<Slot> slots_;
  RingBuffer<std::uint32_t> ready_order_;  ///< slots with lines left to issue
  std::uint64_t next_region_line_ = 0;
  std::uint64_t interleave_counter_ = 0;
  static constexpr std::uint64_t kInterleaveLines = 16;  ///< 1 KB bursts per stream
  bool link_busy_ = false;
  bool waiting_credit_ = false;

  std::uint64_t bytes_ = 0;
  std::uint64_t requests_done_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(StorageDevice);

}  // namespace hostnet::iio
