#include "iio/storage_device.hpp"

#include <cassert>

namespace hostnet::iio {

StorageDevice::StorageDevice(sim::Simulator& sim, Iio& iio, const StorageConfig& cfg)
    : sim_(sim),
      iio_(iio),
      cfg_(cfg),
      t_line_(serialization_ticks(kCachelineBytes, cfg.link_gb_per_s)),
      slots_(cfg.queue_depth) {}

void StorageDevice::start() {
  for (std::uint32_t s = 0; s < slots_.size(); ++s) issue_request(s);
}

void StorageDevice::issue_request(std::uint32_t slot) {
  sim_.schedule(cfg_.per_request_latency, [this, slot] {
    Slot& sl = slots_[slot];
    const auto lines = static_cast<std::uint32_t>(cfg_.request_bytes / kCachelineBytes);
    sl.ready = true;
    sl.lines_to_issue = lines;
    sl.data_pending = lines;
    sl.op = cfg_.mixed_fraction > 0 && rng_.chance(cfg_.mixed_fraction)
                ? (cfg_.host_op == mem::Op::kWrite ? mem::Op::kRead : mem::Op::kWrite)
                : cfg_.host_op;
    sl.next_line = next_region_line_;
    next_region_line_ = (next_region_line_ + lines) % cfg_.region.lines();
    ready_order_.push_back(slot);
    pump();
  });
}

void StorageDevice::pump() {
  if (link_busy_ || waiting_credit_ || ready_order_.empty()) return;
  const std::uint32_t slot = ready_order_.front();
  Slot& sl = slots_[slot];
  const std::uint64_t addr = cfg_.region.base + sl.next_line * kCachelineBytes;

  if (!iio_.try_dma(sl.op, addr, this, slot)) {
    waiting_credit_ = true;  // on_credit_available() resumes the stream
    return;
  }

  sl.next_line = (sl.next_line + 1) % cfg_.region.lines();
  --sl.lines_to_issue;
  if (sl.op == mem::Op::kWrite) bytes_ += kCachelineBytes;
  if (sl.lines_to_issue == 0) {
    ready_order_.pop_front();
    // A storage read is complete once all its payload has been DMA-written
    // toward memory; a storage write completes when all data has been read
    // back out of host memory (tracked in on_read_data).
    if (sl.op == mem::Op::kWrite) request_done(slot);
  } else if (interleave_counter_++ % kInterleaveLines == 0 && ready_order_.size() > 1) {
    // Round-robin across outstanding requests: the paper's P2M load comes
    // from several NVMe devices in parallel, so the DMA stream the host
    // sees interleaves multiple sequential request streams.
    ready_order_.push_back(ready_order_.front());
    ready_order_.pop_front();
  }

  link_busy_ = true;
  sim_.schedule(t_line_, [this] {
    link_busy_ = false;
    pump();
  });
}

void StorageDevice::on_credit_available(mem::Op /*op*/) {
  waiting_credit_ = false;
  pump();
}

void StorageDevice::on_read_data(std::uint64_t tag, Tick /*now*/) {
  Slot& sl = slots_[static_cast<std::uint32_t>(tag)];
  bytes_ += kCachelineBytes;
  assert(sl.data_pending > 0);
  --sl.data_pending;
  if (sl.data_pending == 0 && sl.lines_to_issue == 0)
    request_done(static_cast<std::uint32_t>(tag));
}

void StorageDevice::request_done(std::uint32_t slot) {
  ++requests_done_;
  slots_[slot] = Slot{};
  issue_request(slot);
}

}  // namespace hostnet::iio
