// Integrated IO controller (IIO) + PCIe-attached DMA devices.
//
// Every peripheral-to-memory request allocates an entry in the IIO's
// read/write buffer per cacheline; the entry is the P2M domain credit
// (paper sections 3/4.2):
//   * P2M-Write: entry freed when the write is admitted to the MC WPQ
//     (~92 credits, ~300 ns unloaded on the testbeds);
//   * P2M-Read: PCIe reads are non-posted, so the entry is held until data
//     returns from DRAM to the IIO (>164 credits measured; we use 192).
//
// The PCIe link itself serializes one cacheline TLP per t_line; the link's
// effective bandwidth (~14 GB/s writes / ~12.8 GB/s reads per paper
// workloads on Cascade Lake) is what P2M throughput saturates at when
// credits are plentiful.
#pragma once

#include <cstdint>
#include <vector>

#include "cha/cha.hpp"
#include "common/check.hpp"
#include "common/ring_buffer.hpp"
#include "counters/station.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::iio {

struct IioConfig {
  std::uint32_t write_credits = 92;   ///< IIO write buffer entries
  std::uint32_t read_credits = 192;   ///< IIO read buffer entries
  Tick t_proc_write = ns(250);  ///< IIO-internal processing for a DMA write
  Tick t_proc_read = ns(250);   ///< IIO-internal processing for a DMA read
  Tick t_to_cha = ns(40);       ///< IIO -> CHA hop
  Tick t_complete_read = ns(60);///< data-at-IIO -> PCIe completion to device
};

/// A PCIe device is notified when a credit frees (so it can push its next
/// TLP) and when read data comes back.
class Device {
 public:
  virtual ~Device() = default;
  virtual void on_credit_available(mem::Op op) = 0;
  virtual void on_read_data(std::uint64_t tag, Tick now) = 0;
};

class Iio final : public mem::Completer, public cha::ChaClient {
 public:
  Iio(sim::Simulator& sim, cha::Cha& cha, const IioConfig& cfg, std::uint16_t id = 0);

  /// Push one cacheline DMA request into the IIO. Returns false when no
  /// credit is available; the device will get on_credit_available().
  bool try_dma(mem::Op op, std::uint64_t addr, Device* dev, std::uint64_t tag);

  std::uint32_t write_credits_free() const { return cfg_.write_credits - write_in_use_; }
  std::uint32_t read_credits_free() const { return cfg_.read_credits - read_in_use_; }

  // -- mem::Completer / cha::ChaClient ---------------------------------------
  void complete(const mem::Request& req, Tick now) override;
  bool on_cha_admission(mem::Op op) override;

  // -- measurement ------------------------------------------------------------
  /// IIO buffer residency = the P2M domain latency ("IIO latency", Fig 6c).
  counters::LatencyStation& write_station() { return write_station_; }
  counters::LatencyStation& read_station() { return read_station_; }
  void reset_counters(Tick now);

  /// Checked-build audit (no-op otherwise): P2M credit conservation --
  /// credits outstanding plus free equals the configured pool on both the
  /// read and write side.
  void verify_invariants() const {
    write_ledger_.verify(write_in_use_, "iio.write-credits");
    read_ledger_.verify(read_in_use_, "iio.read-credits");
  }

 private:
  struct Blocked {
    mem::Request req;
    Tick since;
  };
  void submit(mem::Request req);
  void register_device(mem::Op op, Device* dev);
  void notify_devices(mem::Op op);

  sim::Simulator& sim_;
  cha::Cha& cha_;
  IioConfig cfg_;
  std::uint16_t id_;

  std::uint32_t write_in_use_ = 0;
  std::uint32_t read_in_use_ = 0;
  CreditLedger write_ledger_;  ///< empty shells unless HOSTNET_CHECKED
  CreditLedger read_ledger_;
  RingBuffer<Blocked> blocked_reads_;
  RingBuffer<Blocked> blocked_writes_;
  RingBuffer<Device*> write_waiters_;
  RingBuffer<Device*> read_waiters_;
  struct Pending {
    Device* dev;
    std::uint64_t tag;
  };
  std::vector<Pending> pending_reads_;  ///< indexed by request tag slot

  counters::LatencyStation write_station_;
  counters::LatencyStation read_station_;
};

}  // namespace hostnet::iio
