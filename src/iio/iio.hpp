// Integrated IO controller (IIO) + PCIe-attached DMA devices.
//
// Every peripheral-to-memory request allocates an entry in the IIO's
// read/write buffer per cacheline; the entry is the P2M domain credit
// (paper sections 3/4.2):
//   * P2M-Write: entry freed when the write is admitted to the MC WPQ
//     (~92 credits, ~300 ns unloaded on the testbeds);
//   * P2M-Read: PCIe reads are non-posted, so the entry is held until data
//     returns from DRAM to the IIO (>164 credits measured; we use 192).
//
// The PCIe link itself serializes one cacheline TLP per t_line; the link's
// effective bandwidth (~14 GB/s writes / ~12.8 GB/s reads per paper
// workloads on Cascade Lake) is what P2M throughput saturates at when
// credits are plentiful.
#pragma once

#include <cstdint>
#include <vector>

#include "cha/cha.hpp"
#include "common/ring_buffer.hpp"
#include "common/snapshot.hpp"
#include "counters/station.hpp"
#include "flow/credit_pool.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::iio {

struct IioConfig {
  std::uint32_t write_credits = 92;   ///< IIO write buffer entries
  std::uint32_t read_credits = 192;   ///< IIO read buffer entries
  Tick t_proc_write = ns(250);  ///< IIO-internal processing for a DMA write
  Tick t_proc_read = ns(250);   ///< IIO-internal processing for a DMA read
  Tick t_to_cha = ns(40);       ///< IIO -> CHA hop
  Tick t_complete_read = ns(60);///< data-at-IIO -> PCIe completion to device
};

/// A PCIe device is notified when a credit frees (so it can push its next
/// TLP) and when read data comes back.
class Device {
 public:
  Device() {
    write_waiter_.dev = this;
    write_waiter_.op = mem::Op::kWrite;
    read_waiter_.dev = this;
    read_waiter_.op = mem::Op::kRead;
  }
  virtual ~Device() = default;
  virtual void on_credit_available(mem::Op op) = 0;
  virtual void on_read_data(std::uint64_t tag, Tick now) = 0;

  /// Per-op adapter for flow::CreditPool waiting: the IIO registers the
  /// adapter matching the exhausted buffer, so the wake carries which op's
  /// credit freed (devices with independent RX/TX pumps need this).
  flow::CreditWaiter& credit_waiter(mem::Op op) {
    return op == mem::Op::kWrite ? write_waiter_ : read_waiter_;
  }

 private:
  struct OpWaiter final : flow::CreditWaiter {
    void on_credit_available(flow::CreditPool&) override {
      dev->on_credit_available(op);
    }
    Device* dev = nullptr;
    mem::Op op = mem::Op::kRead;
  };
  OpWaiter write_waiter_;
  OpWaiter read_waiter_;
};

class Iio final : public mem::Completer, public cha::ChaClient {
 public:
  Iio(sim::Simulator& sim, cha::Cha& cha, const IioConfig& cfg, std::uint16_t id = 0);

  /// Push one cacheline DMA request into the IIO. Returns false when no
  /// credit is available; the device will get on_credit_available().
  bool try_dma(mem::Op op, std::uint64_t addr, Device* dev, std::uint64_t tag);

  std::uint32_t write_credits_free() const { return cfg_.write_credits - write_pool_.in_use(); }
  std::uint32_t read_credits_free() const { return cfg_.read_credits - read_pool_.in_use(); }

  // -- credit pools (registered with flow::DomainRegistry) --------------------
  flow::CreditPool& write_pool() { return write_pool_; }  ///< P2M-Write domain
  flow::CreditPool& read_pool() { return read_pool_; }    ///< P2M-Read domain

  // -- mem::Completer / cha::ChaClient ---------------------------------------
  void complete(const mem::Request& req, Tick now) override;
  bool on_cha_admission(mem::Op op) override;

  // -- measurement ------------------------------------------------------------
  /// IIO buffer residency = the P2M domain latency ("IIO latency", Fig 6c).
  counters::LatencyStation& write_station() { return write_pool_.station(); }
  counters::LatencyStation& read_station() { return read_pool_.station(); }
  void reset_counters(Tick now);

  /// Checked-build audit (no-op otherwise): P2M credit conservation --
  /// credits outstanding plus free equals the configured pool on both the
  /// read and write side.
  void verify_invariants() const {
    write_pool_.verify();
    read_pool_.verify();
  }

  /// A DMA request that failed CHA admission, with when it first blocked.
  struct Blocked {
    mem::Request req;
    Tick since;
  };
  /// A non-posted PCIe read whose data has not yet returned.
  struct Pending {
    Device* dev;
    std::uint64_t tag;
  };

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, cha_, cfg_, id_) is construction state. Blocked requests
  // and pending reads carry raw pointers into the owning host (completer /
  // Device*): same-host restore only.
  struct Snapshot {
    flow::CreditPool::Snapshot write_pool;
    flow::CreditPool::Snapshot read_pool;
    RingBuffer<Blocked> blocked_reads;
    RingBuffer<Blocked> blocked_writes;
    std::vector<Pending> pending_reads;
  };

  void save_state(Snapshot& out) const {
    write_pool_.save_state(out.write_pool);
    read_pool_.save_state(out.read_pool);
    out.blocked_reads = blocked_reads_;
    out.blocked_writes = blocked_writes_;
    out.pending_reads = pending_reads_;
  }

  void load_state(const Snapshot& s) {
    write_pool_.load_state(s.write_pool);
    read_pool_.load_state(s.read_pool);
    blocked_reads_ = s.blocked_reads;
    blocked_writes_ = s.blocked_writes;
    pending_reads_ = s.pending_reads;
  }

 private:
  void submit(mem::Request req);

  sim::Simulator& sim_;
  cha::Cha& cha_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  IioConfig cfg_;
  // hostnet-audit: skip(id_, construction identity; fixed at build)
  std::uint16_t id_;

  flow::CreditPool write_pool_;  ///< P2M-Write credits (IIO write buffer)
  flow::CreditPool read_pool_;   ///< P2M-Read credits (IIO read buffer)
  RingBuffer<Blocked> blocked_reads_;
  RingBuffer<Blocked> blocked_writes_;
  std::vector<Pending> pending_reads_;  ///< indexed by request tag slot
};

HOSTNET_SNAPSHOT_COVERS(Iio);

}  // namespace hostnet::iio
