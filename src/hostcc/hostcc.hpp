// Host congestion control -- the paper's future-work direction of
// "extending ideas in hostCC [2] to the case of all traffic contained
// within a single host" (section 7).
//
// A controller samples the P2M-Write domain latency (the IIO write-buffer
// residency, exactly the signal the paper shows inflating under the red
// regime) at a fixed interval and duty-cycle-throttles the C2M cores when
// the latency exceeds a target. This trades a bounded amount of C2M
// throughput for restoring the P2M side -- the allocation the default host
// network cannot express.
//
//   target exceeded  -> throttle += step   (cores paused for throttle x interval)
//   target met       -> throttle -= step/2 (AIMD-flavored: release slowly)
#pragma once

#include <cstdint>

#include "core/host_system.hpp"

namespace hostnet::hostcc {

struct HostccConfig {
  Tick interval = us(5);                ///< control loop period
  double target_p2m_latency_ns = 400;   ///< keeps P2M >= ~13 GB/s of 14
  double step = 0.10;                   ///< throttle increment per interval
  double max_throttle = 0.95;
};

class HostCongestionController {
 public:
  /// Attaches to `host` (start/reset hooks); throttles every core that is
  /// registered with the host when P2M-Write latency exceeds the target.
  HostCongestionController(core::HostSystem& host, const HostccConfig& cfg);

  double throttle() const { return throttle_; }
  /// Time-average throttle over the measurement window.
  double avg_throttle(Tick now) const;

 private:
  void tick();
  void sample_latency();
  void apply();

  core::HostSystem& host_;
  HostccConfig cfg_;
  double throttle_ = 0.0;
  double last_latency_ns_ = 0.0;

  // Incremental latency sampling over the last interval.
  double prev_latency_sum_ = 0.0;
  std::uint64_t prev_completions_ = 0;

  // Window accounting.
  Tick window_start_ = 0;
  double throttle_integral_ = 0.0;
  Tick last_change_ = 0;
};

}  // namespace hostnet::hostcc
