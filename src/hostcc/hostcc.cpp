#include "hostcc/hostcc.hpp"

#include <algorithm>

namespace hostnet::hostcc {

HostCongestionController::HostCongestionController(core::HostSystem& host,
                                                   const HostccConfig& cfg)
    : host_(host), cfg_(cfg) {
  host_.attach([this] { tick(); },
               [this](Tick now) {
                 window_start_ = now;
                 throttle_integral_ = 0.0;
                 last_change_ = now;
               });
}

void HostCongestionController::sample_latency() {
  auto& st = host_.iio().write_station();
  const double sum = st.mean_latency_ns() * static_cast<double>(st.completions());
  const std::uint64_t n = st.completions();
  if (n > prev_completions_) {
    last_latency_ns_ =
        (sum - prev_latency_sum_) / static_cast<double>(n - prev_completions_);
  }
  // A counter reset (new measurement window) rewinds the totals.
  if (n < prev_completions_ || sum < prev_latency_sum_) last_latency_ns_ = 0.0;
  prev_latency_sum_ = sum;
  prev_completions_ = n;
}

void HostCongestionController::apply() {
  const Tick now = host_.sim().now();
  throttle_integral_ += throttle_ * static_cast<double>(now - last_change_);
  last_change_ = now;

  if (throttle_ <= 0.0) {
    for (auto& c : host_.cores()) c->set_paused(false);
    return;
  }
  // Duty cycle: pause all C2M cores for throttle x interval, then resume.
  for (auto& c : host_.cores()) c->set_paused(true);
  const auto pause = static_cast<Tick>(throttle_ * static_cast<double>(cfg_.interval));
  host_.sim().schedule(pause, [this] {
    for (auto& c : host_.cores()) c->set_paused(false);
  });
}

void HostCongestionController::tick() {
  sample_latency();
  if (last_latency_ns_ > cfg_.target_p2m_latency_ns) {
    throttle_ = std::min(cfg_.max_throttle, throttle_ + cfg_.step);
  } else {
    throttle_ = std::max(0.0, throttle_ - cfg_.step / 2.0);
  }
  apply();
  host_.sim().schedule(cfg_.interval, [this] { tick(); });
}

double HostCongestionController::avg_throttle(Tick now) const {
  const Tick dt = now - window_start_;
  if (dt <= 0) return throttle_;
  return (throttle_integral_ + throttle_ * static_cast<double>(now - last_change_)) /
         static_cast<double>(dt);
}

}  // namespace hostnet::hostcc
