// Discrete-event simulation kernel.
//
// A single Simulator owns the clock and the pending-event queue. Events are
// bucketed by tick with FIFO same-tick buckets (see calendar_queue.hpp), so
// simulations are deterministic by construction: two events scheduled for
// the same tick fire in the order they were scheduled. The schedule/fire
// path performs no heap allocation for closures up to Event::kInlineBytes.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event.hpp"

namespace hostnet::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  void schedule_at(Tick at, Event fn);

  /// Schedule `fn` to run `delay` ticks from now.
  void schedule(Tick delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run events until the queue is empty or the clock passes `until`.
  /// The clock is left at `until`, even if the queue dried up earlier.
  void run_until(Tick until);

  /// Run the single next event; returns false when no events remain.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  struct Snapshot {
    Tick now = 0;
    std::uint64_t executed = 0;
    CalendarQueue::Snapshot queue;
  };

  void save_state(Snapshot& out) const {
    out.now = now_;
    out.executed = executed_;
    queue_.save_state(out.queue);
  }
  void load_state(const Snapshot& s) {
    now_ = s.now;
    executed_ = s.executed;
    queue_.load_state(s.queue);
  }
  static bool audit_identical(const Snapshot& a, const Snapshot& b) {
    return a.now == b.now && a.executed == b.executed &&
           CalendarQueue::audit_identical(a.queue, b.queue);
  }

 private:
  Tick now_ = 0;
  std::uint64_t executed_ = 0;
  CalendarQueue queue_;
};

HOSTNET_SNAPSHOT_COVERS(Simulator);

}  // namespace hostnet::sim
