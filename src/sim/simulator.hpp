// Discrete-event simulation kernel.
//
// A single Simulator owns the clock and the pending-event queue. Events are
// ordered by (time, insertion sequence) so simulations are deterministic:
// two events scheduled for the same tick fire in the order they were
// scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/units.hpp"

namespace hostnet::sim {

using Event = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Tick now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (must be >= now()).
  void schedule_at(Tick at, Event fn);

  /// Schedule `fn` to run `delay` ticks from now.
  void schedule(Tick delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Run events until the queue is empty or the clock passes `until`.
  /// The clock is left at `until` (or at the last event if the queue dried
  /// up earlier and `advance_clock` is true).
  void run_until(Tick until);

  /// Run the single next event; returns false when no events remain.
  bool step();

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending() const { return queue_.size(); }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    Event fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace hostnet::sim
