#include "sim/simulator.hpp"

#include <cassert>

namespace hostnet::sim {

void Simulator::schedule_at(Tick at, Event fn) {
  assert(at >= now_ && "cannot schedule into the past");
  queue_.push(Entry{at, next_seq_++, std::move(fn)});
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // priority_queue::top returns const&; the event is moved out via const_cast
  // which is safe because the entry is popped immediately after.
  auto& top = const_cast<Entry&>(queue_.top());
  Tick at = top.at;
  Event fn = std::move(top.fn);
  queue_.pop();
  now_ = at;
  ++executed_;
  fn();
  return true;
}

void Simulator::run_until(Tick until) {
  while (!queue_.empty() && queue_.top().at <= until) step();
  if (now_ < until) now_ = until;
}

}  // namespace hostnet::sim
