#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

namespace hostnet::sim {

void Simulator::schedule_at(Tick at, Event fn) {
  assert(at >= now_ && "cannot schedule into the past");
  queue_.push(at, std::move(fn));
}

bool Simulator::step() {
  const Tick at = queue_.next_tick();
  if (at == CalendarQueue::kNoEvent) return false;
  Event fn = queue_.pop_at(at);
  now_ = at;
  ++executed_;
  fn();
  return true;
}

void Simulator::run_until(Tick until) {
  for (;;) {
    const Tick at = queue_.next_tick();
    if (at == CalendarQueue::kNoEvent || at > until) break;
    Event fn = queue_.pop_at(at);
    now_ = at;
    ++executed_;
    fn();
  }
  if (now_ < until) now_ = until;
}

}  // namespace hostnet::sim
