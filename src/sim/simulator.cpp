#include "sim/simulator.hpp"

#include <cassert>
#include <utility>

#include "common/check.hpp"

namespace hostnet::sim {

void Simulator::schedule_at(Tick at, Event fn) {
  assert(at >= now_ && "cannot schedule into the past");
  HOSTNET_INVARIANT(at >= now_,
                    "simulator time monotonicity: event scheduled at tick %lld "
                    "but the clock is already at %lld",
                    static_cast<long long>(at), static_cast<long long>(now_));
  queue_.push(at, std::move(fn));
}

bool Simulator::step() {
  const Tick at = queue_.next_tick();
  if (at == CalendarQueue::kNoEvent) return false;
  Event fn = queue_.pop_at(at);
  now_ = at;
  ++executed_;
  fn();
  return true;
}

void Simulator::run_until(Tick until) {
  for (;;) {
    // Bounding next_tick keeps the queue's L0 window at or behind `until`,
    // so anything scheduled after this run (at >= now() = until) can never
    // land behind the window. See CalendarQueue::next_tick.
    const Tick at = queue_.next_tick(until);
    if (at == CalendarQueue::kNoEvent || at > until) break;
    Event fn = queue_.pop_at(at);
    now_ = at;
    ++executed_;
    fn();
  }
  if (now_ < until) now_ = until;
}

}  // namespace hostnet::sim
