// Chrome-tracing (chrome://tracing, Perfetto) event trace for the
// simulator: per-request lifecycle spans, memory-controller mode switches,
// and counter tracks. Load the emitted JSON in a trace viewer to watch a
// write drain blocking reads or the red-regime backlog building up.
//
// Usage:
//   sim::Tracer tracer("run.trace.json");
//   sim::Tracer::set_global(&tracer);   // components pick it up if present
//   ... run ...
//   tracer.flush();                      // or let the destructor do it
//
// The global hook keeps the hot paths free of plumbing; tracing is a
// debugging aid, not a measurement surface, and costs nothing when no
// global tracer is installed.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/units.hpp"

namespace hostnet::sim {

class Tracer {
 public:
  explicit Tracer(std::string path) : path_(std::move(path)) { events_.reserve(1 << 16); }
  ~Tracer() { flush(); }
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// A span: `name` from `start` lasting `dur` on track `tid`.
  void complete_event(const char* name, const char* cat, Tick start, Tick dur,
                      std::uint32_t tid) {
    if (events_.size() >= kMaxEvents) return;
    events_.push_back(Event{name, cat, start, dur, tid, kSpan, 0.0});
  }

  /// A zero-duration marker.
  void instant(const char* name, const char* cat, Tick at, std::uint32_t tid) {
    if (events_.size() >= kMaxEvents) return;
    events_.push_back(Event{name, cat, at, 0, tid, kInstant, 0.0});
  }

  /// A counter sample (rendered as a chart track).
  void counter(const char* name, Tick at, double value) {
    if (events_.size() >= kMaxEvents) return;
    events_.push_back(Event{name, "counter", at, 0, 0, kCounter, value});
  }

  std::size_t size() const { return events_.size(); }

  void flush();

  static Tracer* global() { return global_; }
  static void set_global(Tracer* t) { global_ = t; }

  /// Track-id convention used by the built-in hooks.
  static constexpr std::uint32_t kTrackCore = 100;        ///< + core id
  static constexpr std::uint32_t kTrackIio = 50;
  static constexpr std::uint32_t kTrackChannel = 10;      ///< + channel id

 private:
  enum Kind : std::uint8_t { kSpan, kInstant, kCounter };
  struct Event {
    const char* name;
    const char* cat;
    Tick ts;
    Tick dur;
    std::uint32_t tid;
    Kind kind;
    double value;
  };
  static constexpr std::size_t kMaxEvents = 4u << 20;  // ~hundreds of MB of JSON

  std::string path_;
  std::vector<Event> events_;
  bool flushed_ = false;
  static inline Tracer* global_ = nullptr;
};

}  // namespace hostnet::sim
