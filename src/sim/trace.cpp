#include "sim/trace.hpp"

namespace hostnet::sim {

void Tracer::flush() {
  if (flushed_) return;
  flushed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) return;
  // Chrome tracing JSON array format; timestamps are microseconds (double).
  std::fputs("[\n", f);
  bool first = true;
  for (const Event& e : events_) {
    if (!first) std::fputs(",\n", f);
    first = false;
    const double ts_us = static_cast<double>(e.ts) / kMicrosecond;
    switch (e.kind) {
      case kSpan: {
        const double dur_us = static_cast<double>(e.dur) / kMicrosecond;
        std::fprintf(f,
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.6f,"
                     "\"dur\":%.6f,\"pid\":1,\"tid\":%u}",
                     e.name, e.cat, ts_us, dur_us, e.tid);
        break;
      }
      case kInstant:
        std::fprintf(f,
                     "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"ts\":%.6f,"
                     "\"s\":\"t\",\"pid\":1,\"tid\":%u}",
                     e.name, e.cat, ts_us, e.tid);
        break;
      case kCounter:
        std::fprintf(f,
                     "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.6f,\"pid\":1,"
                     "\"args\":{\"value\":%.3f}}",
                     e.name, ts_us, e.value);
        break;
    }
  }
  std::fputs("\n]\n", f);
  std::fclose(f);
}

}  // namespace hostnet::sim
