#include "sim/calendar_queue.hpp"

#include <bit>

#include "common/check.hpp"

namespace hostnet::sim {

namespace {

/// First set bit at index >= from in `bits` (no wraparound), or npos.
template <std::size_t N>
std::size_t find_bit_ge(const std::array<std::uint64_t, N>& bits, std::size_t from) {
  constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  std::size_t word = from / 64;
  if (word >= N) return kNpos;
  std::uint64_t w = bits[word] & (~std::uint64_t{0} << (from % 64));
  for (;;) {
    if (w != 0) return word * 64 + static_cast<std::size_t>(std::countr_zero(w));
    if (++word == N) return kNpos;
    w = bits[word];
  }
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

}  // namespace

void CalendarQueue::push(Tick at, Event ev) {
  assert(at >= win_start_ && "cannot schedule before the current window");
  // cursor_ is the last popped tick: a push behind it could never fire and
  // would silently break same-tick FIFO determinism.
  HOSTNET_INVARIANT(at >= cursor_ && at >= win_start_,
                    "calendar-queue monotonicity: push at tick %lld behind "
                    "cursor %lld (window start %lld)",
                    static_cast<long long>(at), static_cast<long long>(cursor_),
                    static_cast<long long>(win_start_));
  ++size_;
  if (at < win_start_ + Tick(kNumSlots)) {
    // Hot path: within the current window -- append to the one-tick slot.
    Slot& s = slots_[static_cast<std::size_t>(at & kSlotMask)];
    if (s.events.empty())
      slot_bits_[static_cast<std::size_t>(at & kSlotMask) / 64] |=
          std::uint64_t{1} << (static_cast<std::size_t>(at & kSlotMask) % 64);
    s.events.push_back(std::move(ev));
    return;
  }
  if (at < win_start_ + kHorizon) {
    // If the overflow map still holds this exact tick (scheduled when it was
    // beyond the horizon), append there so the tick's FIFO stays whole.
    if (!overflow_.empty() && overflow_.begin()->first <= at) {
      auto it = overflow_.find(at);
      if (it != overflow_.end()) {
        it->second.push_back(std::move(ev));
        return;
      }
    }
    const std::size_t b = bucket_index(at);
    if (buckets_[b].empty()) bucket_bits_[b / 64] |= std::uint64_t{1} << (b % 64);
    buckets_[b].push_back(TimedEvent{at, std::move(ev)});
    return;
  }
  overflow_[at].push_back(std::move(ev));
}

Tick CalendarQueue::scan_l0(Tick from) const {
  if (from >= win_start_ + Tick(kNumSlots)) return kNoEvent;
  const std::size_t s =
      find_bit_ge(slot_bits_, static_cast<std::size_t>(from < win_start_ ? 0 : from - win_start_));
  return s == kNpos ? kNoEvent : win_start_ + Tick(s);
}

Tick CalendarQueue::next_bucket_base() const {
  const std::size_t cb = bucket_index(win_start_);
  // The current window's bucket is always empty (scattered on advance), so a
  // plain two-segment scan over the ring cannot return a stale hit at cb.
  std::size_t b = find_bit_ge(bucket_bits_, cb + 1);
  if (b == kNpos) b = find_bit_ge(bucket_bits_, 0);
  if (b == kNpos) return kNoEvent;
  const std::size_t dist = (b - cb) & (kNumBuckets - 1);
  return win_start_ + Tick(dist) * Tick(kNumSlots);
}

void CalendarQueue::advance_to(Tick target) {
  win_start_ = target & ~kSlotMask;
  cursor_ = win_start_;
  const std::size_t cb = bucket_index(win_start_);
  auto& bucket = buckets_[cb];
  if (!bucket.empty()) {
    bucket_bits_[cb / 64] &= ~(std::uint64_t{1} << (cb % 64));
    for (TimedEvent& te : bucket) {
      assert(te.at >= win_start_ && te.at < win_start_ + Tick(kNumSlots));
      const std::size_t slot = static_cast<std::size_t>(te.at & kSlotMask);
      Slot& s = slots_[slot];
      if (s.events.empty()) slot_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
      s.events.push_back(std::move(te.fn));
    }
    bucket.clear();
  }
  // Overflow ticks that now fall inside the window move into L0. A tick's
  // FIFO lives either here or in the L1 bucket, never both, so migration
  // order between the two cannot reorder same-tick events.
  while (!overflow_.empty() && overflow_.begin()->first < win_start_ + Tick(kNumSlots)) {
    auto it = overflow_.begin();
    const std::size_t slot = static_cast<std::size_t>(it->first & kSlotMask);
    Slot& s = slots_[slot];
    if (s.events.empty()) slot_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    for (Event& e : it->second) s.events.push_back(std::move(e));
    overflow_.erase(it);
  }
}

Tick CalendarQueue::next_tick(Tick bound) {
  if (size_ == 0) return kNoEvent;
  // Fast path: the slot at the cursor tick still holds unpopped events
  // (common when many events share a tick), so no bitmap scan is needed.
  // Slots hold exactly one tick's events, so a non-drained cursor slot can
  // only mean more events at cursor_ itself.
  const Slot& cur = slots_[static_cast<std::size_t>(cursor_ & kSlotMask)];
  if (cur.head < cur.events.size()) return cursor_;
  for (;;) {
    const Tick t = scan_l0(cursor_ > win_start_ ? cursor_ : win_start_);
    if (t != kNoEvent) return t;
    // Window drained: jump to the earliest populated window (L1 or overflow).
    Tick target = next_bucket_base();
    if (!overflow_.empty()) {
      const Tick k = overflow_.begin()->first & ~kSlotMask;
      if (target == kNoEvent || k < target) target = k;
    }
    assert(target != kNoEvent && "size_ > 0 but no events found");
    // Every pending event is at >= target. If that is past the caller's
    // horizon, report "nothing to run" WITHOUT advancing: the caller's clock
    // stops at `bound`, and a committed jump would strand later pushes in
    // [clock, target) behind the window (they'd be filed into the wrong
    // window's slot and fire late).
    if (target > bound) return kNoEvent;
    advance_to(target);
  }
}

void CalendarQueue::save_state(Snapshot& out) const {
  out.win_start = win_start_;
  out.cursor = cursor_;
  out.l0.clear();
  out.l1.clear();
  out.overflow.clear();
  // win_start_ is kNumSlots-aligned (advance_to masks it), so slot index i
  // holds exactly tick win_start_ + i and index order is tick order.
  assert((win_start_ & kSlotMask) == 0);
  for (std::size_t i = 0; i < kNumSlots; ++i) {
    const Slot& s = slots_[i];
    for (std::size_t j = s.head; j < s.events.size(); ++j) {
      assert(s.events[j].clonable() && "pending event not checkpointable");
      out.l0.push_back(Snapshot::Item{win_start_ + Tick(i), s.events[j].clone()});
    }
  }
  for (std::size_t b = 0; b < kNumBuckets; ++b)
    for (const TimedEvent& te : buckets_[b]) {
      assert(te.fn.clonable() && "pending event not checkpointable");
      out.l1.push_back(Snapshot::Item{te.at, te.fn.clone()});
    }
  for (const auto& [at, events] : overflow_)
    for (const Event& e : events) {
      assert(e.clonable() && "pending event not checkpointable");
      out.overflow.push_back(Snapshot::Item{at, e.clone()});
    }
}

void CalendarQueue::load_state(const Snapshot& s) {
  for (Slot& slot : slots_) {
    slot.events.clear();  // keeps capacity -- restore allocates nothing once warm
    slot.head = 0;
  }
  for (auto& b : buckets_) b.clear();
  slot_bits_ = {};
  bucket_bits_ = {};
  overflow_.clear();
  win_start_ = s.win_start;
  cursor_ = s.cursor;
  size_ = s.l0.size() + s.l1.size() + s.overflow.size();
  for (const Snapshot::Item& it : s.l0) {
    assert(it.at >= win_start_ && it.at < win_start_ + Tick(kNumSlots));
    const auto slot = static_cast<std::size_t>(it.at & kSlotMask);
    slot_bits_[slot / 64] |= std::uint64_t{1} << (slot % 64);
    slots_[slot].events.push_back(it.ev.clone());
  }
  for (const Snapshot::Item& it : s.l1) {
    const std::size_t b = bucket_index(it.at);
    bucket_bits_[b / 64] |= std::uint64_t{1} << (b % 64);
    buckets_[b].push_back(TimedEvent{it.at, it.ev.clone()});
  }
  for (const Snapshot::Item& it : s.overflow) overflow_[it.at].push_back(it.ev.clone());
}

bool CalendarQueue::audit_identical(const Snapshot& a, const Snapshot& b) {
  if (a.win_start != b.win_start || a.cursor != b.cursor) return false;
  const auto levels_match = [](const std::vector<Snapshot::Item>& x,
                               const std::vector<Snapshot::Item>& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i].at != y[i].at || !x[i].ev.audit_identical(y[i].ev)) return false;
    return true;
  };
  return levels_match(a.l0, b.l0) && levels_match(a.l1, b.l1) &&
         levels_match(a.overflow, b.overflow);
}

Event CalendarQueue::pop_at(Tick at) {
  assert(at >= win_start_ && at < win_start_ + Tick(kNumSlots));
  Slot& s = slots_[static_cast<std::size_t>(at & kSlotMask)];
  assert(s.head < s.events.size());
  Event ev = std::move(s.events[s.head++]);
  if (s.head == s.events.size()) {
    s.events.clear();  // keeps capacity for the next lap of the window
    s.head = 0;
    slot_bits_[static_cast<std::size_t>(at & kSlotMask) / 64] &=
        ~(std::uint64_t{1} << (static_cast<std::size_t>(at & kSlotMask) % 64));
  }
  --size_;
  cursor_ = at;
  return ev;
}

}  // namespace hostnet::sim
