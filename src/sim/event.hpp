// Allocation-free event callable for the simulation kernel.
//
// Event is a move-only, type-erased void() callable like std::function, but
// with an inline buffer sized for the simulator's hot-path closures. The
// largest closures on the schedule/fire path capture [this, Request, Tick]
// (64 bytes: an 8-byte object pointer plus the 48-byte mem::Request plus a
// Tick), so kInlineBytes = 64 keeps every event in src/cpu, src/cha,
// src/mc, src/iio and src/net out of the allocator.
//
// Inline storage additionally requires the callable to be trivially
// copyable. That makes a moved Event a raw 64-byte memcpy with no indirect
// call -- moves happen 2-3x per event (into the slot vector, out on pop) so
// this is the difference between ~1 and ~4 indirect calls per simulated
// event. Hot-path closures capture only pointers, Requests and Ticks and
// are all trivially copyable; anything else (owning captures, large or
// over-aligned callables) transparently falls back to the heap, where the
// stored pointer is itself trivially copyable and the same memcpy move
// applies.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace hostnet::sim {

class Event {
 public:
  /// Inline capture capacity; trivially-copyable closures up to this size
  /// (and max_align_t alignment) are stored in place.
  static constexpr std::size_t kInlineBytes = 64;

  Event() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Event> && std::is_invocable_v<D&>>>
  Event(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    if constexpr (fits_inline<D>()) {
      // The three properties the inline representation relies on, spelled
      // out (fits_inline() implies them; restated so a change there cannot
      // silently weaken the contract): the closure must fit the buffer,
      // must not be over-aligned for it, and must tolerate the memcpy-based
      // move in move_from().
      static_assert(sizeof(D) <= kInlineBytes, "closure exceeds the inline event buffer");
      static_assert(alignof(D) <= alignof(std::max_align_t),
                    "over-aligned closure cannot use the inline event buffer");
      static_assert(std::is_trivially_copyable_v<D>,
                    "inline event closures must be trivially copyable (moved by memcpy)");
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::ops;
    } else {
      // Cold fallback for owning/large/over-aligned callables (setup and
      // control paths only); every steady-state closure takes the inline
      // branch above, as enforced by the static_asserts at the hot-path
      // call sites. The stored representation is a plain D*, which is
      // itself trivially copyable, so the same memcpy move applies.
      static_assert(std::is_trivially_copyable_v<D*>);
      // hostnet-lint: allow(hot-alloc)
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  Event(Event&& other) noexcept { move_from(other); }
  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;
  ~Event() { reset(); }

  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no heap allocation).
  /// Exposed for the allocation-probe benchmarks and tests.
  bool inlined() const noexcept { return ops_ != nullptr && ops_->inline_storage; }

  /// Duplicate the event for checkpointing (calendar-queue save_state).
  /// Inline events are a raw 64-byte copy -- same cost as a move; heap
  /// events copy-construct the boxed callable. Only clonable() events may
  /// be cloned: a move-only heap closure cannot be checkpointed, and the
  /// snapshot layer rejects it instead of silently dropping it.
  bool clonable() const noexcept {
    return ops_ == nullptr || ops_->inline_storage || ops_->clone != nullptr;
  }
  Event clone() const {
    Event c;
    if (ops_ == nullptr) return c;
    if (ops_->inline_storage) {
      std::memcpy(c.storage_, storage_, kInlineBytes);
    } else {
      assert(ops_->clone && "cannot snapshot a move-only heap event closure");
      ops_->clone(c.storage_, storage_);
    }
    c.ops_ = ops_;
    return c;
  }

  /// Checkpoint-audit equality (HOSTNET_CHECKED restore audits): same ops
  /// table and, where that is well-defined, identical closure bytes. The
  /// byte comparison covers exactly audit_bytes: the tail of the inline
  /// buffer past the closure is never written, and a closure with padding
  /// holes copies indeterminate source-stack bytes into them (a trivially
  /// copyable lambda is cloned bytewise), so comparing either would make
  /// the audit depend on memory-layout history rather than simulation
  /// state. Heap events and padded closures therefore compare by ops table
  /// (i.e. closure type) only.
  bool audit_identical(const Event& o) const noexcept {
    if (ops_ != o.ops_) return false;
    if (ops_ == nullptr) return true;
    return std::memcmp(storage_, o.storage_, ops_->audit_bytes) == 0;
  }

  void reset() noexcept {
    if (ops_) {
      if (ops_->destroy) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    void (*destroy)(void* self) noexcept;  ///< nullptr when no cleanup is needed
    /// Copy the stored representation of `src` into `dst` (heap events
    /// only; inline events clone by memcpy with no indirect call). nullptr
    /// for move-only heap closures, which cannot be checkpointed.
    void (*clone)(void* dst, const void* src);
    bool inline_storage;
    /// Bytes audit_identical() may memcmp: sizeof(D) for inline closures
    /// whose object representation is unique (no padding holes, so every
    /// byte is determined by the captured values), 0 otherwise (heap boxes
    /// and padded closures, whose bytes are not state-determined).
    std::size_t audit_bytes;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    // Trivial copyability implies a trivial destructor, so inline events
    // need no destroy call and relocation is a plain memcpy.
    return sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
           std::is_trivially_copyable_v<D>;
  }

  // The tree's one reinterpret_cast (audited in DESIGN.md section 4c). It is
  // well-defined because every call site upholds three preconditions:
  //  (1) identity: `s` is storage_ of an Event whose constructor
  //      placement-new'ed exactly a D (inline branch) or a D* (heap branch)
  //      there -- ops_ and D are selected together, so type confusion would
  //      require corrupting ops_;
  //  (2) alignment: storage_ is alignas(max_align_t) and fits_inline()
  //      rejects alignof(D) > max_align_t, so the cast pointer is aligned;
  //  (3) lifetime: the object's lifetime was started by placement new and,
  //      for moved Events, the memcpy in move_from() preserves it because
  //      the stored type is trivially copyable in both branches.
  // std::launder is still required: storage_ is reused across different
  // closure types over the Event's life, and without it the compiler may
  // fold loads from the previous occupant. std::bit_cast is not applicable
  // (it copies values; this must alias in place), and a memcpy into a local
  // would defeat the zero-copy invoke path.
  template <typename D>
  static D* as(void* s) noexcept {
    return std::launder(reinterpret_cast<D*>(s));
  }

  template <typename D>
  static const D* as(const void* s) noexcept {
    return std::launder(reinterpret_cast<const D*>(s));
  }

  template <typename D>
  struct InlineOps {
    static void invoke(void* s) { (*as<D>(s))(); }
    static constexpr Ops ops{&invoke, nullptr, nullptr, true,
                             std::has_unique_object_representations_v<D> ? sizeof(D) : 0};
  };

  template <typename D>
  struct HeapOps {
    static void invoke(void* s) { (**as<D*>(s))(); }
    static void destroy(void* s) noexcept { delete *as<D*>(s); }
    static void clone(void* dst, const void* src) {
      if constexpr (std::is_copy_constructible_v<D>) {
        // Cold path (checkpointing a heap event): the box is copied.
        // hostnet-lint: allow(hot-alloc)
        ::new (dst) D*(new D(**as<D*>(src)));
      }
    }
    static constexpr Ops ops{&invoke, &destroy,
                             std::is_copy_constructible_v<D> ? &clone : nullptr, false, 0};
  };

  void move_from(Event& other) noexcept {
    // Both storage variants (trivially-copyable closure, heap pointer)
    // relocate by byte copy; copying the full buffer unconditionally keeps
    // the move branch-free.
    std::memcpy(storage_, other.storage_, kInlineBytes);
    ops_ = other.ops_;
    other.ops_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace hostnet::sim
