// Calendar/bucket event queue for the simulation kernel.
//
// Replaces the binary heap of (time, seq, std::function) entries: events are
// bucketed by Tick, and every bucket is a FIFO, so two events scheduled for
// the same tick fire in schedule order *by construction* -- no sequence
// counter, no comparator, and determinism cannot be broken by a queue
// rebalance.
//
// Layout (bucket widths documented in DESIGN.md "Event kernel"):
//   L0  -- 4096 one-tick slots covering the current 4096-tick (~4 ns,
//          picosecond clock) window. schedule/fire within the window is an
//          append / indexed pop: O(1), zero allocations once slot vectors
//          have warmed up. A bitmap over the slots finds the next occupied
//          slot with word-sized scans.
//   L1  -- 4096 buckets of 4096 ticks each (~16.8 us horizon). When the
//          clock enters a bucket's window the bucket is scattered into L0 in
//          insertion order, which preserves per-tick FIFO.
//   Map -- ticks beyond the ~16.8 us horizon live in an exact-tick ordered
//          map (rare: device latencies, protocol RTT timers, control loops).
//
// Same-tick FIFO across the three levels is maintained by two rules: (a) a
// level migrates into the one below *before* the clock can reach any of its
// ticks, and earlier-scheduled events land first; (b) a push that targets a
// tick still held by the overflow map appends to that map entry instead of
// the L1 bucket, so one tick's FIFO never straddles two structures.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <vector>

#include "common/snapshot.hpp"
#include "common/units.hpp"
#include "sim/event.hpp"

namespace hostnet::sim {

class CalendarQueue {
 public:
  static constexpr int kSlotBits = 12;
  static constexpr std::size_t kNumSlots = std::size_t{1} << kSlotBits;  ///< L0 window
  static constexpr Tick kSlotMask = Tick(kNumSlots) - 1;
  static constexpr int kBucketBits = 12;
  static constexpr std::size_t kNumBuckets = std::size_t{1} << kBucketBits;
  /// Ticks at or beyond win_start + kHorizon go to the overflow map.
  static constexpr Tick kHorizon = Tick(1) << (kSlotBits + kBucketBits);
  static constexpr Tick kNoEvent = -1;
  /// Default next_tick() bound: never refuse a window advance.
  static constexpr Tick kNoBound = ~(Tick(1) << 63);

  /// Append `ev` to tick `at`'s FIFO. `at` must be >= the last popped tick.
  void push(Tick at, Event ev);

  /// Tick of the earliest pending event, or kNoEvent when empty or when
  /// every pending event is provably later than `bound`. Advances the L0
  /// window (an order-preserving migration) when the current window is
  /// drained -- but never past `bound`: committing the window beyond the
  /// caller's horizon would mis-file later pushes that target ticks between
  /// the caller's clock and the jumped-to window (they would land in a slot
  /// of the wrong window and fire late). A caller that stops at `bound`
  /// (Simulator::run_until) must pass it; unbounded callers (step) use the
  /// default.
  Tick next_tick(Tick bound = kNoBound);

  /// Pop the front event of tick `at`, which must be the value just
  /// returned by next_tick().
  Event pop_at(Tick at);

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  //
  // The snapshot captures the queue's *logical* content -- (tick, event)
  // pairs per level, in firing order -- not its physical layout: L0 slots
  // are head-normalized (already-popped prefixes are dropped), and
  // load_state() rebuilds slots, buckets, overflow map and both bitmaps
  // directly. A push-replay restore would be wrong here: rule (b) above
  // files a within-horizon push into the overflow map when that map still
  // holds the tick, so replaying events through push() could re-file a
  // saved overflow tick into an L1 bucket and break the "one tick's FIFO
  // never straddles two structures" invariant the next advance relies on.
  struct Snapshot {
    struct Item {
      Tick at = 0;
      Event ev;
    };
    Tick win_start = 0;
    Tick cursor = 0;
    std::vector<Item> l0;        ///< current-window events, tick then FIFO order
    std::vector<Item> l1;        ///< L1 events, bucket-index then insertion order
    std::vector<Item> overflow;  ///< beyond-horizon events, map then FIFO order
  };

  /// Copy the full pending-event state into `out` (vectors are reused, so a
  /// recycled Snapshot allocates nothing once warmed). Every pending event
  /// must be clonable() -- asserted, since a non-clonable event would be
  /// silently lost on restore.
  void save_state(Snapshot& out) const;

  /// Restore the state captured by save_state(). Clears in place (slot and
  /// bucket vector capacities are retained) and rebuilds the level
  /// structures and bitmaps directly.
  void load_state(const Snapshot& s);

  /// Checkpoint-audit equality of two snapshots: identical tick sequences
  /// per level and Event::audit_identical() closures. Powers the
  /// HOSTNET_CHECKED restore-then-resave audit in HostSystem::restore().
  static bool audit_identical(const Snapshot& a, const Snapshot& b);

 private:
  struct Slot {
    std::vector<Event> events;  ///< FIFO; capacity is retained across windows
    std::size_t head = 0;       ///< next un-fired event
  };
  struct TimedEvent {
    Tick at;
    Event fn;
  };

  static std::size_t bucket_index(Tick at) {
    return static_cast<std::size_t>(at >> kSlotBits) & (kNumBuckets - 1);
  }

  /// First occupied L0 slot at tick >= from (within the current window), or
  /// kNoEvent.
  Tick scan_l0(Tick from) const;

  /// First occupied L1 bucket after the current window's bucket (ring
  /// order), as an absolute window-base tick; kNoEvent if L1 is empty.
  Tick next_bucket_base() const;

  /// Move the window to the one containing `target`: scatter that window's
  /// L1 bucket into L0 (insertion order), then migrate overflow ticks that
  /// now fall inside the window.
  void advance_to(Tick target);

  Tick win_start_ = 0;  ///< aligned to kNumSlots
  Tick cursor_ = 0;     ///< lower bound for the earliest pending tick
  // hostnet-audit: skip(size_, derived event count; rebuilt on restore from the saved slots, buckets and overflow)
  std::size_t size_ = 0;
  std::array<Slot, kNumSlots> slots_;
  std::array<std::vector<TimedEvent>, kNumBuckets> buckets_;
  // hostnet-audit: skip(slot_bits_, derived occupancy bitmap; rebuilt on restore from the saved slots)
  std::array<std::uint64_t, kNumSlots / 64> slot_bits_{};
  // hostnet-audit: skip(bucket_bits_, derived occupancy bitmap; rebuilt on restore from the saved buckets)
  std::array<std::uint64_t, kNumBuckets / 64> bucket_bits_{};
  // Beyond-horizon ticks are rare (device latencies, protocol timers) and
  // never on the per-event path, so an exact-tick ordered map is fine here.
  // hostnet-lint: allow(hot-alloc)
  std::map<Tick, std::vector<Event>> overflow_;
};

HOSTNET_SNAPSHOT_COVERS(CalendarQueue);

}  // namespace hostnet::sim
