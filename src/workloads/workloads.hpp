// The paper's workload zoo (sections 2.1, 2.2, Appendix B), expressed as
// core / storage-device configurations.
//
// C2M microbenchmarks (modified STREAM, section 2.2):
//   c2m_read        sequential 64 B loads over a 1 GB buffer  (100% reads)
//   c2m_read_write  sequential 64 B stores over a 1 GB buffer (RFO read +
//                   write-back: 50/50 read/write memory traffic)
//
// C2M applications (closed-loop models; parameters chosen to match the
// paper's reported memory intensities, not the apps' absolute throughput):
//   redis_read   YCSB-C over sharded Redis: per query ~2.5 us of compute
//                interleaved with 12 dependent bursts of 8 random misses
//                (~96 cachelines/query; ~1.5 GB/s per core; "spends only a
//                part of its time stalled on memory")
//   redis_write  100% SET: ~50/50 read/write traffic, slightly more
//                memory-intensive than redis_read
//   gapbs_pr     PageRank: random reads at full memory-level parallelism
//                ("stalled on memory accesses nearly all of the time")
//   gapbs_bc     Betweenness centrality: ~80/20 read/write traffic, more
//                compute-intensive (lower per-core bandwidth)
//
// P2M workloads (FIO over locally attached NVMe, section 2.1):
//   fio_p2m_write  100% storage reads, 8 MB sequential  -> DMA writes
//   fio_p2m_read   100% storage writes, 8 MB sequential -> DMA reads
//   fio_4k_qd1     4 KB storage reads at QD1: the low-load probe used to
//                  measure unloaded P2M-Write domain latency (Fig 6c)
#pragma once

#include "core/presets.hpp"
#include "cpu/core.hpp"
#include "iio/storage_device.hpp"
#include "mem/request.hpp"

namespace hostnet::workloads {

// ---------------------------------------------------------------------------
// Address-space layout: distinct workloads use disjoint regions (the paper's
// apps access different address spaces; intermixing them at DRAM is what
// degrades row locality).
// ---------------------------------------------------------------------------
inline mem::Region c2m_core_region(std::uint32_t core_index) {
  return mem::Region{(4ull + core_index) << 30, 1ull << 30};
}
inline mem::Region c2m_shared_region() { return mem::Region{40ull << 30, 5ull << 30}; }
inline mem::Region p2m_region() { return mem::Region{128ull << 30, 4ull << 30}; }

// -- C2M microbenchmarks -----------------------------------------------------

inline cpu::CoreWorkload c2m_read(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kSequential;
  w.region = r;
  return w;
}

inline cpu::CoreWorkload c2m_read_write(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kSequential;
  w.region = r;
  w.write_fraction = 1.0;
  return w;
}

// -- C2M application models ---------------------------------------------------

inline cpu::CoreWorkload redis_read(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kRandom;
  w.region = r;
  w.episode_reads = 8;
  w.episodes_per_query = 12;
  w.episode_compute = ns(210);  // ~2.5 us compute per query, split per episode
  return w;
}

inline cpu::CoreWorkload redis_write(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kRandom;
  w.region = r;
  w.episode_reads = 2;
  w.episode_writes = 6;  // stores: RFO + write-back -> ~43% write traffic
  w.episodes_per_query = 12;
  w.episode_compute = ns(180);
  return w;
}

inline cpu::CoreWorkload gapbs_pr(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kRandom;
  w.region = r;
  return w;
}

inline cpu::CoreWorkload gapbs_bc(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kRandom;
  w.region = r;
  w.write_fraction = 0.25;  // 25% stores -> ~20% of memory traffic is writes
  w.think = ns(14);         // heavier per-access compute than PageRank
  return w;
}

// -- P2M workloads -------------------------------------------------------------

inline iio::StorageConfig fio_p2m_write(const core::HostConfig& host, mem::Region r) {
  iio::StorageConfig s;
  s.host_op = mem::Op::kWrite;  // storage reads DMA-write into memory
  s.request_bytes = 8ull << 20;
  s.queue_depth = 4;
  s.link_gb_per_s = host.pcie_write_gb_per_s;
  s.per_request_latency = us(20);
  s.region = r;
  return s;
}

inline iio::StorageConfig fio_p2m_read(const core::HostConfig& host, mem::Region r) {
  iio::StorageConfig s;
  s.host_op = mem::Op::kRead;  // storage writes DMA-read from memory
  s.request_bytes = 8ull << 20;
  s.queue_depth = 4;
  s.link_gb_per_s = host.pcie_read_gb_per_s;
  s.per_request_latency = us(20);
  s.region = r;
  return s;
}

inline iio::StorageConfig fio_4k_qd1(const core::HostConfig& host, mem::Region r) {
  iio::StorageConfig s;
  s.host_op = mem::Op::kWrite;
  s.request_bytes = 4096;
  s.queue_depth = 1;
  s.link_gb_per_s = host.pcie_write_gb_per_s;
  s.per_request_latency = us(8);
  s.region = r;
  return s;
}

}  // namespace hostnet::workloads
