// One memory-channel scheduler of the memory controller.
//
// Mirrors the MC behaviour the paper reverse-engineers (section 3):
//  * separate Read Pending Queue (RPQ) and Write Pending Queue (WPQ);
//  * the half-duplex channel operates in read mode or write mode, switching
//    costs tRTW / tWTR during which the data bus is idle;
//  * write drains are governed by WPQ high/low watermarks (writes are
//    asynchronous; they are buffered and drained in bursts);
//  * banks prepare rows (PRE/ACT) in parallel and independently of the data
//    bus, in per-bank FIFO order; the data bus issues the *oldest row-ready*
//    request of the active mode (FR-FCFS-lite). Requests can therefore be
//    "blocked on bank processing even when the memory channel is idle"
//    (section 5.1) -- the root cause of queueing before bandwidth saturation.
//
// Hot-path layout (DESIGN.md section 4b): the queues are fixed-capacity
// slot arenas (slot_queue.hpp) -- entries never move, FIFO order is an
// intrusive age list, the FR-FCFS scan walks only the prepped sublist, and
// the next-kick time comes from an incrementally maintained earliest-
// row_ready_at tracker. Scheduling decisions are bit-identical to the
// original deque scans; only the work per decision changed.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.hpp"
#include "common/snapshot.hpp"
#include "counters/mc_counters.hpp"
#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/timing.hpp"
#include "flow/credit_pool.hpp"
#include "mc/slot_queue.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::mc {

struct ChannelConfig {
  std::uint32_t rpq_capacity = 48;
  std::uint32_t wpq_capacity = 24;
  std::uint32_t wpq_high_wm = 22;   ///< enter write drain at this occupancy
  std::uint32_t wpq_low_wm = 8;     ///< leave write drain at this occupancy
  Tick max_write_age = ns(400);     ///< force a drain for stale writes
  /// Read priority: after a write drain, serve reads for at least
  /// `dwell_per_queued_read x RPQ occupancy at switch time` before the next
  /// high-watermark drain (idle drains are exempt). Under read pressure the
  /// MC favors (synchronous) reads over (posted) writes, pushing sustained
  /// write overload back into the CHA tracker; at low read load drains are
  /// unimpeded.
  Tick dwell_per_queued_read = ns(12);
  Tick read_dwell_cap = ns(150);  ///< upper bound on the read-priority dwell
  std::uint32_t prep_window = 24;   ///< queue depth scanned for bank prep
  dram::Timing timing{};
};

/// Callbacks into the CHA.
class ChannelListener {
 public:
  virtual ~ChannelListener() = default;
  /// Read data arrived back at the CHA boundary.
  virtual void on_read_data(const mem::Request& req, Tick now) = 0;
  /// A write left the WPQ for DRAM (a WPQ slot is free again).
  virtual void on_wpq_slot_freed(std::uint32_t channel, Tick now) = 0;
  /// A read left the RPQ (an RPQ slot is free again).
  virtual void on_rpq_slot_freed(std::uint32_t channel, Tick now) = 0;
};

class Channel {
 public:
  Channel(sim::Simulator& sim, const ChannelConfig& cfg, std::uint32_t banks,
          std::uint32_t index, ChannelListener* listener);

  /// The listener (the CHA) is constructed after the MC; it attaches here.
  void set_listener(ChannelListener* l) { listener_ = l; }

  bool rpq_has_space() const { return !rpq_.full(); }
  bool wpq_has_space() const { return !wpq_.full(); }

  /// Caller must have checked *_has_space(). `coord` must be for this channel.
  void enqueue_read(const mem::Request& req, const dram::Coord& coord);
  void enqueue_write(const mem::Request& req, const dram::Coord& coord);

  counters::McChannelCounters& counters() { return counters_; }
  const counters::McChannelCounters& counters() const { return counters_; }
  void reset_counters(Tick now) {
    counters_.reset(now);
    rpq_pool_.reset_telemetry(now);
    wpq_pool_.reset_telemetry(now);
  }

  // -- credit pools (registered with flow::DomainRegistry, interior) ---------
  /// The queues' occupancy pools: in_use mirrors the arena sizes exactly;
  /// the WPQ pool carries the drain watermarks (kHysteresis).
  flow::CreditPool& rpq_pool() { return rpq_pool_; }
  flow::CreditPool& wpq_pool() { return wpq_pool_; }

  std::size_t rpq_size() const { return rpq_.size(); }
  std::size_t wpq_size() const { return wpq_.size(); }

  /// Self-kick bookkeeping: each scheduled wake-up is one calendar-queue
  /// entry; a wake-up superseded by an earlier one fires as a dead no-op
  /// ("cancelled"). `deduped` counts requests that re-used an event already
  /// in flight for the same tick instead of enqueuing a duplicate.
  /// bench_sim_perf's alloc probe and the dead-event regression test bound
  /// cancelled/scheduled.
  struct KickStats {
    std::uint64_t scheduled = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t deduped = 0;
  };
  const KickStats& kick_stats() const { return kick_stats_; }

  /// Checked-build audit (no-op otherwise): slot-arena structure of both
  /// queues, enqueue/issue conservation, and the bank-ownership bijection
  /// between bank_pending_ and the prepped sublists (DESIGN.md section 4c).
  void verify_invariants() const;

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, cfg_, index_, listener_) is construction state. SlotQueue
  // and McChannelCounters have no default constructor, so the snapshot
  // holds them via std::optional (copy-assignment into an engaged optional
  // still reuses the queues' slot arenas). Queue entries carry mem::Request
  // whose completer points into the owning host: same-host restore only.
  // `mode` is the Mode enum's underlying value (the enum itself is private).
  struct Snapshot {
    std::optional<SlotQueue> rpq;
    std::optional<SlotQueue> wpq;
    std::vector<dram::Bank> banks;
    std::vector<std::int64_t> bank_pending;
    std::uint8_t mode = 0;
    bool prep_dirty = true;
    Tick bus_free_at = 0;
    Tick read_dwell_until = 0;
    std::uint64_t next_entry_id = 0;
    Tick next_kick_at = 0;
    std::vector<Tick> kick_inflight;
    KickStats kick_stats;
    flow::CreditPool::Snapshot rpq_pool;
    flow::CreditPool::Snapshot wpq_pool;
    std::optional<counters::McChannelCounters> counters;
  };

  void save_state(Snapshot& out) const;
  void load_state(const Snapshot& s);

 private:
  enum class Mode : std::uint8_t { kRead, kWrite };

  void release_inactive_banks(SlotQueue& q);

  void kick();
  void maybe_switch_mode(Tick now);
  void prep_banks(Tick now);
  bool try_issue(Tick now);
  void schedule_next(Tick now);
  void request_kick_at(Tick at);
  void on_kick_event(Tick at);

  SlotQueue& active_queue() { return mode_ == Mode::kRead ? rpq_ : wpq_; }

  sim::Simulator& sim_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  ChannelConfig cfg_;
  // hostnet-audit: skip(index_, construction identity; fixed at build)
  std::uint32_t index_;
  // hostnet-audit: skip(listener_, observer wiring installed at build; restore targets the same host)
  ChannelListener* listener_;

  SlotQueue rpq_;
  SlotQueue wpq_;
  std::vector<dram::Bank> banks_;
  std::vector<std::int64_t> bank_pending_;  ///< entry id holding each bank, -1 if free

  Mode mode_ = Mode::kRead;
  /// False only when the last prep scan of the active queue completed and
  /// nothing since could have made an entry preppable (see prep_banks).
  bool prep_dirty_ = true;
  Tick bus_free_at_ = 0;
  Tick read_dwell_until_ = 0;
  std::uint64_t next_entry_id_ = 0;
  Tick next_kick_at_ = std::numeric_limits<Tick>::max();
  std::vector<Tick> kick_inflight_;  ///< ticks with a wake-up event in flight
  KickStats kick_stats_;
  flow::CreditPool rpq_pool_;  ///< RPQ occupancy (slots in use)
  flow::CreditPool wpq_pool_;  ///< WPQ occupancy + drain watermarks

  counters::McChannelCounters counters_;
};

HOSTNET_SNAPSHOT_COVERS(Channel);

}  // namespace hostnet::mc
