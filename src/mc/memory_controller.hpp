// The memory controller: one Channel scheduler per memory channel, with
// address-map routing. The CHA talks to this class.
#pragma once

#include <cassert>
#include <memory>
#include <vector>

#include "common/snapshot.hpp"
#include "dram/address_map.hpp"
#include "mc/channel.hpp"

namespace hostnet::mc {

class MemoryController {
 public:
  MemoryController(sim::Simulator& sim, const ChannelConfig& cfg,
                   const dram::AddressMap& map, ChannelListener* listener)
      : map_(map) {
    channels_.reserve(map.channels());
    for (std::uint32_t i = 0; i < map.channels(); ++i)
      channels_.push_back(
          std::make_unique<Channel>(sim, cfg, map.banks_per_channel(), i, listener));
  }

  const dram::AddressMap& address_map() const { return map_; }
  std::uint32_t num_channels() const { return static_cast<std::uint32_t>(channels_.size()); }
  Channel& channel(std::uint32_t i) { return *channels_[i]; }
  const Channel& channel(std::uint32_t i) const { return *channels_[i]; }

  void reset_counters(Tick now) {
    for (auto& c : channels_) c->reset_counters(now);
  }

  /// Checked-build audit of every channel scheduler (no-op otherwise).
  void verify_invariants() const {
    for (const auto& c : channels_) c->verify_invariants();
  }

  void set_listener(ChannelListener* l) {
    for (auto& c : channels_) c->set_listener(l);
  }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  struct Snapshot {
    std::vector<Channel::Snapshot> channels;
  };

  void save_state(Snapshot& out) const {
    out.channels.resize(channels_.size());
    for (std::size_t i = 0; i < channels_.size(); ++i)
      channels_[i]->save_state(out.channels[i]);
  }

  void load_state(const Snapshot& s) {
    assert(s.channels.size() == channels_.size() && "channel count is construction state");
    for (std::size_t i = 0; i < channels_.size(); ++i)
      channels_[i]->load_state(s.channels[i]);
  }

 private:
  // hostnet-audit: skip(map_, construction config; the address map never mutates)
  dram::AddressMap map_;
  std::vector<std::unique_ptr<Channel>> channels_;
};

HOSTNET_SNAPSHOT_COVERS(MemoryController);

}  // namespace hostnet::mc
