#include "mc/channel.hpp"

#include <algorithm>
#include <cassert>

#include "sim/trace.hpp"

namespace hostnet::mc {

Channel::Channel(sim::Simulator& sim, const ChannelConfig& cfg, std::uint32_t banks,
                 std::uint32_t index, ChannelListener* listener)
    : sim_(sim),
      cfg_(cfg),
      index_(index),
      listener_(listener),
      banks_(banks),
      bank_pending_(banks, -1),
      counters_(banks, cfg.wpq_capacity) {}

void Channel::enqueue_read(const mem::Request& req, const dram::Coord& coord) {
  assert(rpq_has_space());
  rpq_.push_back(Entry{req, coord, sim_.now(), next_entry_id_++, false, 0});
  counters_.rpq_occ.add(sim_.now(), +1);
  kick();
}

void Channel::enqueue_write(const mem::Request& req, const dram::Coord& coord) {
  assert(wpq_has_space());
  wpq_.push_back(Entry{req, coord, sim_.now(), next_entry_id_++, false, 0});
  counters_.wpq_occ.add(sim_.now(), +1);
  // A lone write enqueued while the controller idles in read mode must not
  // wait forever: arm the stale-write timer.
  if (mode_ == Mode::kRead) request_kick_at(sim_.now() + cfg_.max_write_age);
  kick();
}

void Channel::maybe_switch_mode(Tick now) {
  if (mode_ == Mode::kRead) {
    const bool dwell_done = now >= read_dwell_until_;
    const bool high = wpq_.size() >= cfg_.wpq_high_wm;
    // Opportunistic drains only for stale writes: switching on momentary RPQ
    // emptiness thrashes the bus direction at low load.
    const bool idle_drain = rpq_.empty() && !wpq_.empty() &&
                            now - wpq_.front().arrival >= cfg_.max_write_age;
    if (high && !dwell_done && !idle_drain) {
      request_kick_at(read_dwell_until_);
      return;
    }
    if ((high && dwell_done) || idle_drain) {
      mode_ = Mode::kWrite;
      bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_rtw;
      release_inactive_banks(rpq_);
      if (auto* tr = sim::Tracer::global()) {
        tr->instant("write-drain", "mc", now, sim::Tracer::kTrackChannel + index_);
        tr->counter("wpq-occupancy", now, static_cast<double>(wpq_.size()));
      }
    }
  } else {
    const bool drained = !rpq_.empty() && wpq_.size() <= cfg_.wpq_low_wm;
    if (drained) {
      mode_ = Mode::kRead;
      read_dwell_until_ =
          now + std::min(cfg_.read_dwell_cap,
                         static_cast<Tick>(rpq_.size()) * cfg_.dwell_per_queued_read);
      bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_wtr;
      ++counters_.switch_cycles;
      release_inactive_banks(wpq_);
    }
  }
}

void Channel::release_inactive_banks(std::deque<Entry>& q) {
  // Entries of the now-inactive queue give up their bank reservations so the
  // active mode can use the banks; they re-prepare on their next turn (row
  // state persists, so an undisturbed row is still a hit). Without this a
  // prepped-but-unissued entry could block the other mode indefinitely.
  for (auto& e : q) {
    if (!e.prepped) continue;
    if (bank_pending_[e.coord.bank] == static_cast<std::int64_t>(e.id))
      bank_pending_[e.coord.bank] = -1;
    e.prepped = false;
  }
}

void Channel::prep_banks(Tick now) {
  auto& q = active_queue();
  std::uint32_t scanned = 0;
  for (auto& e : q) {
    if (++scanned > cfg_.prep_window) break;
    if (e.prepped) continue;
    if (bank_pending_[e.coord.bank] != -1) continue;  // older entry owns the bank
    e.row_result = banks_[e.coord.bank].prepare(now, e.coord.row, cfg_.timing);
    e.prepped = true;
    e.row_ready_at = banks_[e.coord.bank].ready_at();
    bank_pending_[e.coord.bank] = static_cast<std::int64_t>(e.id);
  }
}

bool Channel::try_issue(Tick now) {
  if (bus_free_at_ > now) return false;
  auto& q = active_queue();
  auto it = q.end();
  for (auto i = q.begin(); i != q.end(); ++i) {
    if (i->prepped && i->row_ready_at <= now) {
      it = i;
      break;  // oldest row-ready request wins the data bus
    }
  }
  if (it == q.end()) return false;

  const Entry e = *it;
  q.erase(it);
  bank_pending_[e.coord.bank] = -1;
  // Row-buffer outcomes are accounted per issued line (formula inputs are
  // per-cacheline), using the outcome of the prep that made this issue ready.
  counters_.on_row_result(e.req.op, e.row_result == dram::RowResult::kHit,
                          e.row_result == dram::RowResult::kMissConflict);
  banks_[e.coord.bank].column_access(now, e.req.op == mem::Op::kWrite, cfg_.timing);
  bus_free_at_ = now + cfg_.timing.t_trans;

  if (e.req.op == mem::Op::kRead) {
    counters_.on_read_issued(e.coord.bank);
    counters_.rpq_occ.add(now, -1);
    const Tick done = now + cfg_.timing.t_cas + cfg_.timing.t_trans;
    const mem::Request req = e.req;
    sim_.schedule_at(done, [this, req, done] { listener_->on_read_data(req, done); });
    listener_->on_rpq_slot_freed(index_, now);
  } else {
    ++counters_.lines_written;
    counters_.wpq_occ.add(now, -1);
    const Tick done = now + cfg_.timing.t_trans;
    sim_.schedule_at(done, [this, done] { listener_->on_wpq_slot_freed(index_, done); });
  }
  return true;
}

void Channel::schedule_next(Tick now) {
  const auto& q = active_queue();
  if (q.empty()) {
    // Nothing to do in the active mode; a pending inactive-mode switch is
    // driven by enqueue kicks or the stale-write timer.
    if (mode_ == Mode::kRead && !wpq_.empty())
      request_kick_at(std::max(now + 1, wpq_.front().arrival + cfg_.max_write_age));
    return;
  }
  Tick earliest_ready = std::numeric_limits<Tick>::max();
  bool any_prepped = false;
  std::uint32_t scanned = 0;
  for (const auto& e : q) {
    if (++scanned > cfg_.prep_window) break;
    if (e.prepped) {
      any_prepped = true;
      earliest_ready = std::min(earliest_ready, e.row_ready_at);
    }
  }
  if (!any_prepped) return;  // waiting on a bank owned by the inactive queue
  request_kick_at(std::max({now + 1, bus_free_at_, earliest_ready}));
}

void Channel::request_kick_at(Tick at) {
  if (at >= next_kick_at_) return;
  next_kick_at_ = at;
  sim_.schedule_at(at, [this, at] {
    if (next_kick_at_ != at) return;  // superseded by an earlier kick
    next_kick_at_ = std::numeric_limits<Tick>::max();
    kick();
  });
}

void Channel::kick() {
  const Tick now = sim_.now();
  maybe_switch_mode(now);
  prep_banks(now);
  if (try_issue(now)) {
    // The bus is busy until bus_free_at_; prepare more banks meanwhile.
    maybe_switch_mode(now);
    prep_banks(now);
  }
  schedule_next(now);
}

}  // namespace hostnet::mc
