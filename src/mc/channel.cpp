#include "mc/channel.hpp"

#include <algorithm>
#include <cassert>

#include "sim/trace.hpp"

namespace hostnet::mc {

Channel::Channel(sim::Simulator& sim, const ChannelConfig& cfg, std::uint32_t banks,
                 std::uint32_t index, ChannelListener* listener)
    : sim_(sim),
      cfg_(cfg),
      index_(index),
      listener_(listener),
      rpq_(cfg.rpq_capacity, cfg.prep_window),
      wpq_(cfg.wpq_capacity, cfg.prep_window),
      banks_(banks),
      bank_pending_(banks, -1),
      counters_(banks, cfg.wpq_capacity) {
  // Wake-up events in flight are bounded by the distinct ticks requested
  // between fires (stale-write deadlines plus near-term bus/bank kicks);
  // reserve enough that the tracking itself never allocates in steady state.
  kick_inflight_.reserve(64);
  flow::CreditPoolSpec rpq;
  rpq.name = "mc.rpq";
  rpq.capacity = cfg.rpq_capacity;
  rpq_pool_.configure(rpq);
  flow::CreditPoolSpec wpq;
  wpq.name = "mc.wpq";
  wpq.capacity = cfg.wpq_capacity;
  wpq.backpressure = flow::BackpressurePolicy::kHysteresis;
  wpq.high_watermark = cfg.wpq_high_wm;
  wpq.low_watermark = cfg.wpq_low_wm;
  wpq_pool_.configure(wpq);
}

void Channel::enqueue_read(const mem::Request& req, const dram::Coord& coord) {
  assert(rpq_has_space());
  const auto slot = rpq_.push_back(req, coord, sim_.now(), next_entry_id_++);
  // The new entry matters to the next prep scan only if it is immediately
  // preppable; any later change to that (a bank freeing, the window sliding,
  // a mode switch) marks the scan dirty at its own site.
  if (mode_ == Mode::kRead && rpq_.in_window(slot) && bank_pending_[coord.bank] == -1)
    prep_dirty_ = true;
  rpq_pool_.acquire(sim_.now());
  kick();
}

void Channel::enqueue_write(const mem::Request& req, const dram::Coord& coord) {
  assert(wpq_has_space());
  const auto slot = wpq_.push_back(req, coord, sim_.now(), next_entry_id_++);
  if (mode_ == Mode::kWrite && wpq_.in_window(slot) && bank_pending_[coord.bank] == -1)
    prep_dirty_ = true;
  wpq_pool_.acquire(sim_.now());
  // A lone write enqueued while the controller idles in read mode must not
  // wait forever: arm the stale-write timer.
  if (mode_ == Mode::kRead) request_kick_at(sim_.now() + cfg_.max_write_age);
  kick();
}

void Channel::maybe_switch_mode(Tick now) {
  if (mode_ == Mode::kRead) {
    const bool dwell_done = now >= read_dwell_until_;
    const bool high = wpq_pool_.above_high();
    // Opportunistic drains only for stale writes: switching on momentary RPQ
    // emptiness thrashes the bus direction at low load.
    const bool idle_drain = rpq_.empty() && !wpq_.empty() &&
                            now - wpq_.front().arrival >= cfg_.max_write_age;
    if (high && !dwell_done && !idle_drain) {
      request_kick_at(read_dwell_until_);
      return;
    }
    if ((high && dwell_done) || idle_drain) {
      mode_ = Mode::kWrite;
      prep_dirty_ = true;
      bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_rtw;
      release_inactive_banks(rpq_);
      if (auto* tr = sim::Tracer::global()) {
        tr->instant("write-drain", "mc", now, sim::Tracer::kTrackChannel + index_);
        tr->counter("wpq-occupancy", now, static_cast<double>(wpq_.size()));
      }
    }
  } else {
    const bool drained = !rpq_.empty() && wpq_pool_.at_or_below_low();
    if (drained) {
      mode_ = Mode::kRead;
      prep_dirty_ = true;
      read_dwell_until_ =
          now + std::min(cfg_.read_dwell_cap,
                         static_cast<Tick>(rpq_.size()) * cfg_.dwell_per_queued_read);
      bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_wtr;
      ++counters_.switch_cycles;
      release_inactive_banks(wpq_);
    }
  }
}

void Channel::release_inactive_banks(SlotQueue& q) {
  // Entries of the now-inactive queue give up their bank reservations so the
  // active mode can use the banks; they re-prepare on their next turn (row
  // state persists, so an undisturbed row is still a hit). Without this a
  // prepped-but-unissued entry could block the other mode indefinitely.
  // Walking the prepped sublist visits exactly the entries the full-queue
  // scan used to touch, in the same (age) order.
  auto i = q.prepped_head();
  while (i != SlotQueue::kNil) {
    const auto next = q.prepped_next(i);
    const Entry& e = q.entry(i);
    if (bank_pending_[e.coord.bank] == static_cast<std::int64_t>(e.id))
      bank_pending_[e.coord.bank] = -1;
    q.unprep(i);
    i = next;
  }
}

void Channel::prep_banks(Tick now) {
  // `prep_dirty_` is exact change-tracking: when clear, every unprepped
  // window entry's bank is owned, so the scan below would find nothing. It
  // is set by the only events that create a preppable entry -- an eligible
  // enqueue, a bank freed by issue, the window sliding after an erase
  // (always an issue), and a mode switch (incl. releasing bank ownership).
  if (!prep_dirty_) return;
  auto& q = active_queue();
  // Walk only the unprepped entries inside the prep window, oldest first --
  // the same candidates the full window scan used to visit, in the same
  // order (the sublist is age-ordered and window membership is exact).
  for (auto i = q.unprepped_window_head(); i != SlotQueue::kNil;) {
    const auto next = q.unprepped_window_next(i);
    Entry& e = q.entry(i);
    if (bank_pending_[e.coord.bank] == -1) {
      e.row_result = banks_[e.coord.bank].prepare(now, e.coord.row, cfg_.timing);
      e.row_ready_at = banks_[e.coord.bank].ready_at();
      q.mark_prepped(i);
      bank_pending_[e.coord.bank] = static_cast<std::int64_t>(e.id);
    }
    i = next;
  }
  prep_dirty_ = false;
}

bool Channel::try_issue(Tick now) {
  if (bus_free_at_ > now) return false;
  auto& q = active_queue();
  // FR-FCFS: the oldest row-ready request wins the data bus. The prepped
  // sublist is age-ordered and only prepped entries can match, so walking
  // it finds the same entry the full FIFO scan used to.
  auto it = SlotQueue::kNil;
  for (auto i = q.prepped_head(); i != SlotQueue::kNil; i = q.prepped_next(i)) {
    if (q.entry(i).row_ready_at <= now) {
      it = i;
      break;
    }
  }
  if (it == SlotQueue::kNil) return false;

  const Entry e = q.entry(it);
  q.erase(it);
  bank_pending_[e.coord.bank] = -1;
  prep_dirty_ = true;  // a bank freed and the prep window slid forward
  // Row-buffer outcomes are accounted per issued line (formula inputs are
  // per-cacheline), using the outcome of the prep that made this issue ready.
  counters_.on_row_result(e.req.op, e.row_result == dram::RowResult::kHit,
                          e.row_result == dram::RowResult::kMissConflict);
  banks_[e.coord.bank].column_access(now, e.req.op == mem::Op::kWrite, cfg_.timing);
  bus_free_at_ = now + cfg_.timing.t_trans;

  if (e.req.op == mem::Op::kRead) {
    counters_.on_read_issued(e.coord.bank);
    rpq_pool_.release(now);
    const Tick done = now + cfg_.timing.t_cas + cfg_.timing.t_trans;
    const mem::Request req = e.req;
    auto completion = [this, req, done] { listener_->on_read_data(req, done); };
    static_assert(sizeof(completion) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(completion)>,
                  "read-completion closure must stay in the inline Event buffer");
    sim_.schedule_at(done, completion);
    listener_->on_rpq_slot_freed(index_, now);
  } else {
    ++counters_.lines_written;
    wpq_pool_.release(now);
    const Tick done = now + cfg_.timing.t_trans;
    auto completion = [this, done] { listener_->on_wpq_slot_freed(index_, done); };
    static_assert(sizeof(completion) <= sim::Event::kInlineBytes &&
                      std::is_trivially_copyable_v<decltype(completion)>,
                  "write-completion closure must stay in the inline Event buffer");
    sim_.schedule_at(done, completion);
  }
  return true;
}

void Channel::schedule_next(Tick now) {
  auto& q = active_queue();
  if (q.empty()) {
    // Nothing to do in the active mode; a pending inactive-mode switch is
    // driven by enqueue kicks or the stale-write timer.
    if (mode_ == Mode::kRead && !wpq_.empty())
      request_kick_at(std::max(now + 1, wpq_.front().arrival + cfg_.max_write_age));
    return;
  }
  if (q.prepped_count() == 0) return;  // waiting on a bank owned by the inactive queue
  const Tick earliest_ready = q.earliest_ready();
  request_kick_at(std::max({now + 1, bus_free_at_, earliest_ready}));
}

void Channel::request_kick_at(Tick at) {
  if (at >= next_kick_at_) return;
  next_kick_at_ = at;
  // An event already in flight for this exact tick will run the kick (the
  // earliest-scheduled event at a tick fires first, same as before); do not
  // enqueue a duplicate that could only die as a dead calendar entry.
  for (const Tick t : kick_inflight_)
    if (t == at) {
      ++kick_stats_.deduped;
      return;
    }
  kick_inflight_.push_back(at);
  ++kick_stats_.scheduled;
  sim_.schedule_at(at, [this, at] { on_kick_event(at); });
}

void Channel::on_kick_event(Tick at) {
  for (auto& t : kick_inflight_)
    if (t == at) {
      t = kick_inflight_.back();
      kick_inflight_.pop_back();
      break;
    }
  if (next_kick_at_ != at) {
    ++kick_stats_.cancelled;  // superseded by an earlier kick
    return;
  }
  next_kick_at_ = std::numeric_limits<Tick>::max();
  kick();
}

void Channel::verify_invariants() const {
#if HOSTNET_CHECKED
  rpq_.verify_arena("mc.rpq");
  wpq_.verify_arena("mc.wpq");
  // Request conservation through the channel: every enqueued entry was
  // either issued to DRAM or still occupies an arena slot, and the pools'
  // credit counts track the arenas exactly.
  rpq_pool_.verify();
  wpq_pool_.verify();
  HOSTNET_INVARIANT(rpq_pool_.in_use() == rpq_.size(),
                    "mc.rpq: pool holds %u credits but the arena holds %zu entries",
                    rpq_pool_.in_use(), rpq_.size());
  HOSTNET_INVARIANT(wpq_pool_.in_use() == wpq_.size(),
                    "mc.wpq: pool holds %u credits but the arena holds %zu entries",
                    wpq_pool_.in_use(), wpq_.size());
  // Bank-ownership bijection: every prepped entry owns its bank, and every
  // owned bank names a live prepped entry.
  const SlotQueue* queues[] = {&rpq_, &wpq_};
  std::uint32_t prepped_total = 0;
  for (const SlotQueue* q : queues) {
    for (auto i = q->prepped_head(); i != SlotQueue::kNil; i = q->prepped_next(i)) {
      const Entry& e = q->entry(i);
      HOSTNET_INVARIANT(e.coord.bank < bank_pending_.size() &&
                            bank_pending_[e.coord.bank] == static_cast<std::int64_t>(e.id),
                        "mc.bank-ownership: prepped entry id %llu does not own bank %u "
                        "(owner id %lld)",
                        static_cast<unsigned long long>(e.id), e.coord.bank,
                        static_cast<long long>(
                            e.coord.bank < bank_pending_.size() ? bank_pending_[e.coord.bank]
                                                                : -1));
      ++prepped_total;
    }
  }
  std::uint32_t banks_owned = 0;
  for (const std::int64_t id : bank_pending_)
    if (id >= 0) ++banks_owned;
  HOSTNET_INVARIANT(banks_owned == prepped_total,
                    "mc.bank-ownership: %u banks owned but %u entries prepped", banks_owned,
                    prepped_total);
#endif
}

void Channel::kick() {
  const Tick now = sim_.now();
  maybe_switch_mode(now);
  prep_banks(now);
  if (try_issue(now)) {
    // The bus is busy until bus_free_at_; prepare more banks meanwhile.
    maybe_switch_mode(now);
    prep_banks(now);
  }
  schedule_next(now);
}

void Channel::save_state(Snapshot& out) const {
  out.rpq = rpq_;
  out.wpq = wpq_;
  out.banks = banks_;
  out.bank_pending = bank_pending_;
  out.mode = static_cast<std::uint8_t>(mode_);
  out.prep_dirty = prep_dirty_;
  out.bus_free_at = bus_free_at_;
  out.read_dwell_until = read_dwell_until_;
  out.next_entry_id = next_entry_id_;
  out.next_kick_at = next_kick_at_;
  out.kick_inflight = kick_inflight_;
  out.kick_stats = kick_stats_;
  rpq_pool_.save_state(out.rpq_pool);
  wpq_pool_.save_state(out.wpq_pool);
  out.counters = counters_;
}

void Channel::load_state(const Snapshot& s) {
  assert(s.rpq && s.wpq && s.counters && "restoring from a default Snapshot");
  rpq_ = *s.rpq;
  wpq_ = *s.wpq;
  banks_ = s.banks;
  bank_pending_ = s.bank_pending;
  mode_ = static_cast<Mode>(s.mode);
  prep_dirty_ = s.prep_dirty;
  bus_free_at_ = s.bus_free_at;
  read_dwell_until_ = s.read_dwell_until;
  next_entry_id_ = s.next_entry_id;
  next_kick_at_ = s.next_kick_at;
  kick_inflight_ = s.kick_inflight;
  kick_stats_ = s.kick_stats;
  rpq_pool_.load_state(s.rpq_pool);
  wpq_pool_.load_state(s.wpq_pool);
  counters_ = *s.counters;
}

}  // namespace hostnet::mc
