// Fixed-capacity slot arena for the MC channel's pending queues (RPQ/WPQ).
//
// The RPQ/WPQ used to be std::deque<Entry>: every enqueue/erase shuffled
// 100+-byte entries through the allocator's block chain, and erasing the
// issued entry from the middle shifted half the queue. Real DRAM
// schedulers (Ramulator, DRAMsim3) instead keep requests in fixed request
// slots and schedule through indexes. This arena does the same:
//
//  * entries live in a vector sized once from the configured queue
//    capacity and NEVER move until released -- enqueue pops a free slot,
//    erase pushes it back; zero allocations after construction;
//  * arrival (FIFO) order is an intrusive doubly-linked list over slot
//    indices, so "oldest first" iteration survives middle erasure without
//    shifting memory;
//  * prepped entries (those owning a bank with a row activation in flight)
//    form a second intrusive list, kept sorted by entry id (= age). The
//    FR-FCFS issue scan ("oldest row-ready entry wins the data bus") walks
//    only this list -- bounded by the bank count, not the queue depth --
//    and an incrementally maintained earliest-row_ready_at tracker answers
//    "when can the next issue happen" without rescanning;
//  * the bank-prep window (the first `window` FIFO positions) is tracked
//    explicitly: a fence index marks the first beyond-window slot, erasure
//    advances it in O(1), and the unprepped entries inside the window form
//    a third intrusive (age-ordered) list -- the only entries a prep scan
//    could possibly act on.
//
// Invariants (see DESIGN.md section 4b):
//  * prepped list ⊆ FIFO list, both ordered by ascending entry id;
//  * every prepped entry owns its bank in Channel::bank_pending_ and every
//    bank_pending_ id names a live prepped slot (ownership is released in
//    Channel code before or at the same point the slot is erased/unprepped);
//  * earliest_ready() equals min(row_ready_at) over the prepped list
//    (recomputed lazily after a removal that may have held the minimum);
//  * in_window(i) <=> FIFO position of i < window; prepped ⊆ window
//    (positions only shrink, prep only happens in-window), so the
//    unprepped-in-window list is exactly window \ prepped, age-ordered.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.hpp"
#include "common/units.hpp"
#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "mem/request.hpp"

namespace hostnet::mc {

/// One pending request in a channel queue. Fields mirror the scheduler's
/// per-request state; link fields are managed by SlotQueue.
struct Entry {
  mem::Request req;
  dram::Coord coord;
  Tick arrival = 0;
  std::uint64_t id = 0;  ///< monotonically increasing; defines FIFO age
  bool prepped = false;
  Tick row_ready_at = 0;
  dram::RowResult row_result = dram::RowResult::kHit;
};

class SlotQueue {
 public:
  using SlotIndex = std::uint16_t;
  static constexpr SlotIndex kNil = std::numeric_limits<SlotIndex>::max();
  static constexpr Tick kNoReady = std::numeric_limits<Tick>::max();

  /// `window` is the bank-prep window depth (entries at FIFO positions
  /// >= window are outside it; a window >= capacity means "everything").
  explicit SlotQueue(std::uint32_t capacity, std::uint32_t window)
      : slots_(capacity), window_(window) {
    assert(capacity > 0 && capacity < kNil && window > 0);
    // Seed the free list with all slots (order is irrelevant: FIFO order is
    // defined by the intrusive list, not by slot index).
    for (std::uint32_t i = 0; i < capacity; ++i)
      slots_[i].next = i + 1 < capacity ? static_cast<SlotIndex>(i + 1) : kNil;
    free_head_ = 0;
  }

  bool empty() const { return size_ == 0; }
  bool full() const { return free_head_ == kNil; }
  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  Entry& entry(SlotIndex i) { return slots_[i].e; }
  const Entry& entry(SlotIndex i) const { return slots_[i].e; }

  Entry& front() {
    assert(head_ != kNil);
    return slots_[head_].e;
  }
  const Entry& front() const {
    assert(head_ != kNil);
    return slots_[head_].e;
  }

  // -- FIFO (age) order -------------------------------------------------------
  SlotIndex fifo_head() const { return head_; }
  SlotIndex fifo_next(SlotIndex i) const { return slots_[i].next; }

  // -- prepped sublist (age order) --------------------------------------------
  SlotIndex prepped_head() const { return phead_; }
  SlotIndex prepped_next(SlotIndex i) const { return slots_[i].pnext; }
  std::uint32_t prepped_count() const { return prepped_count_; }
  std::uint32_t unprepped_count() const {
    return static_cast<std::uint32_t>(size_) - prepped_count_;
  }

  // -- unprepped-in-window sublist (age order) --------------------------------
  // The only entries a bank-prep scan can act on: inside the first `window`
  // FIFO positions and not yet owning a bank.
  SlotIndex unprepped_window_head() const { return uw_head_; }
  SlotIndex unprepped_window_next(SlotIndex i) const { return slots_[i].wnext; }
  bool in_window(SlotIndex i) const { return slots_[i].in_window; }

  /// Append a new entry at the FIFO tail. Caller must have checked !full().
  /// Returns its slot; the entry starts unprepped.
  SlotIndex push_back(const mem::Request& req, const dram::Coord& coord, Tick arrival,
                      std::uint64_t id) {
    assert(free_head_ != kNil);
    const SlotIndex i = free_head_;
    Slot& s = slots_[i];
    free_head_ = s.next;
    s.e = Entry{req, coord, arrival, id, false, 0, dram::RowResult::kHit};
    s.next = kNil;
    s.prev = tail_;
    s.pnext = s.pprev = kNil;
    s.wnext = s.wprev = kNil;
    if (tail_ != kNil)
      slots_[tail_].next = i;
    else
      head_ = i;
    tail_ = i;
    ++size_;
    if (size_ <= window_) {
      // Newest entry of the window: append to the unprepped-window tail.
      s.in_window = true;
      uw_append(i);
    } else {
      s.in_window = false;
      if (size_ == window_ + 1) fence_ = i;  // first slot beyond the window
    }
    return i;
  }

  /// Mark slot `i` prepped (row activation issued; row_ready_at must already
  /// be set). Inserts into the prepped list at its age position and folds
  /// row_ready_at into the earliest-ready tracker.
  void mark_prepped(SlotIndex i) {
    Slot& s = slots_[i];
    assert(!s.e.prepped);
    assert(s.in_window);  // prep never reaches beyond the window
    uw_unlink(i);
    s.e.prepped = true;
    ++prepped_count_;
    // Age-ordered insert. prep scans run oldest-first, so the common case
    // appends at the tail; an older entry whose bank only now became free
    // walks a few links back.
    SlotIndex after = ptail_;
    while (after != kNil && slots_[after].e.id > s.e.id) after = slots_[after].pprev;
    s.pprev = after;
    if (after == kNil) {
      s.pnext = phead_;
      if (phead_ != kNil) slots_[phead_].pprev = i;
      phead_ = i;
    } else {
      s.pnext = slots_[after].pnext;
      if (s.pnext != kNil) slots_[s.pnext].pprev = i;
      slots_[after].pnext = i;
    }
    if (s.pnext == kNil) ptail_ = i;
    if (!ready_dirty_) earliest_ready_ = std::min(earliest_ready_, s.e.row_ready_at);
  }

  /// Revert slot `i` to unprepped (bank reservation released on mode switch).
  void unprep(SlotIndex i) {
    Slot& s = slots_[i];
    if (!s.e.prepped) return;
    s.e.prepped = false;
    unlink_prepped(i);
    uw_insert_ordered(i);  // prepped ⊆ window, so it rejoins the window list
  }

  /// Release slot `i` entirely (entry issued). Unpreps first if needed.
  void erase(SlotIndex i) {
    Slot& s = slots_[i];
    if (s.e.prepped) {
      s.e.prepped = false;
      unlink_prepped(i);
    } else if (s.in_window) {
      uw_unlink(i);
    }
    if (s.prev != kNil)
      slots_[s.prev].next = s.next;
    else
      head_ = s.next;
    if (s.next != kNil)
      slots_[s.next].prev = s.prev;
    else
      tail_ = s.prev;
    if (s.in_window) {
      // A window position opened: the fence slot (oldest beyond-window
      // entry, younger than every window entry) slides in at the tail.
      if (fence_ != kNil) {
        const SlotIndex w = fence_;
        fence_ = slots_[w].next;
        slots_[w].in_window = true;
        uw_append(w);  // beyond-window entries are never prepped
      }
    } else if (i == fence_) {
      fence_ = s.next;
    }
    s.next = free_head_;
    free_head_ = i;
    --size_;
  }

#if HOSTNET_CHECKED
  /// Quiesce-point audit of the arena (DESIGN.md section 4c): walks every
  /// intrusive list and cross-checks them against the counters and the
  /// header-comment invariants. The running `<= capacity` guards turn a
  /// cycle in a corrupted list into an abort instead of a hang.
  void verify_arena(const char* name) const {
    const auto cap = static_cast<std::uint32_t>(slots_.size());
    // FIFO list: length == size_, ascending entry ids, prepped ⊆ window.
    std::uint32_t fifo = 0, window_seen = 0;
    std::uint64_t last_id = 0;
    for (SlotIndex i = head_; i != kNil; i = slots_[i].next) {
      const Slot& s = slots_[i];
      HOSTNET_INVARIANT(fifo == 0 || s.e.id > last_id,
                        "%s: FIFO list out of age order at slot %u (id %llu after %llu)",
                        name, i, static_cast<unsigned long long>(s.e.id),
                        static_cast<unsigned long long>(last_id));
      last_id = s.e.id;
      if (s.in_window) ++window_seen;
      HOSTNET_INVARIANT(!s.e.prepped || s.in_window,
                        "%s: prepped entry id %llu sits outside the prep window", name,
                        static_cast<unsigned long long>(s.e.id));
      HOSTNET_INVARIANT(++fifo <= cap, "%s: FIFO list cycles (> %u slots)", name, cap);
    }
    HOSTNET_INVARIANT(fifo == size_, "%s: FIFO list holds %u entries but size() is %u",
                      name, fifo, static_cast<std::uint32_t>(size_));
    HOSTNET_INVARIANT(window_seen == (size_ < window_ ? size_ : window_),
                      "%s: %u entries flagged in-window but the first min(size %u, "
                      "window %u) FIFO positions define the window",
                      name, window_seen, static_cast<std::uint32_t>(size_), window_);
    // Prepped sublist: length == prepped_count_, ascending ids, all flagged.
    std::uint32_t prepped = 0;
    Tick min_ready = kNoReady;
    last_id = 0;
    for (SlotIndex i = phead_; i != kNil; i = slots_[i].pnext) {
      const Slot& s = slots_[i];
      HOSTNET_INVARIANT(s.e.prepped, "%s: unprepped entry id %llu on the prepped list",
                        name, static_cast<unsigned long long>(s.e.id));
      HOSTNET_INVARIANT(prepped == 0 || s.e.id > last_id,
                        "%s: prepped list out of age order at slot %u", name, i);
      last_id = s.e.id;
      min_ready = s.e.row_ready_at < min_ready ? s.e.row_ready_at : min_ready;
      HOSTNET_INVARIANT(++prepped <= cap, "%s: prepped list cycles (> %u slots)", name, cap);
    }
    HOSTNET_INVARIANT(prepped == prepped_count_,
                      "%s: prepped list holds %u entries but prepped_count() is %u", name,
                      prepped, prepped_count_);
    HOSTNET_INVARIANT(ready_dirty_ || earliest_ready_ == min_ready,
                      "%s: earliest_ready tracker %lld != min(row_ready_at) %lld", name,
                      static_cast<long long>(earliest_ready_),
                      static_cast<long long>(min_ready));
    // Unprepped-in-window sublist: exactly window \ prepped, never prepped.
    std::uint32_t uw = 0;
    for (SlotIndex i = uw_head_; i != kNil; i = slots_[i].wnext) {
      const Slot& s = slots_[i];
      HOSTNET_INVARIANT(s.in_window && !s.e.prepped,
                        "%s: unprepped-window list entry id %llu is %s", name,
                        static_cast<unsigned long long>(s.e.id),
                        s.e.prepped ? "prepped" : "outside the window");
      HOSTNET_INVARIANT(++uw <= cap, "%s: unprepped-window list cycles (> %u slots)", name,
                        cap);
    }
    HOSTNET_INVARIANT(uw == window_seen - prepped,
                      "%s: unprepped-window list holds %u entries, expected %u in-window "
                      "minus %u prepped",
                      name, uw, window_seen, prepped);
    // Free list + live entries must tile the arena exactly (slot leak check:
    // "arena occupancy == queue depth").
    std::uint32_t free_slots = 0;
    for (SlotIndex i = free_head_; i != kNil; i = slots_[i].next)
      HOSTNET_INVARIANT(++free_slots <= cap, "%s: free list cycles (> %u slots)", name, cap);
    HOSTNET_INVARIANT(free_slots + size_ == cap,
                      "%s: arena slot leak: %u free + %u live != %u slots", name, free_slots,
                      static_cast<std::uint32_t>(size_), cap);
  }
#else
  void verify_arena(const char*) const {}
#endif

  /// min(row_ready_at) over prepped entries, kNoReady when none are prepped.
  /// Maintained incrementally; recomputes (bounded by the bank count) only
  /// after a removal that may have held the minimum.
  Tick earliest_ready() {
    if (ready_dirty_) {
      earliest_ready_ = kNoReady;
      for (SlotIndex i = phead_; i != kNil; i = slots_[i].pnext)
        earliest_ready_ = std::min(earliest_ready_, slots_[i].e.row_ready_at);
      ready_dirty_ = false;
    }
    return earliest_ready_;
  }

 private:
  struct Slot {
    Entry e;
    SlotIndex next = kNil, prev = kNil;    ///< FIFO list (doubles as free list via next)
    SlotIndex pnext = kNil, pprev = kNil;  ///< prepped sublist
    SlotIndex wnext = kNil, wprev = kNil;  ///< unprepped-in-window sublist
    bool in_window = false;
  };

  void uw_append(SlotIndex i) {
    Slot& s = slots_[i];
    s.wnext = kNil;
    s.wprev = uw_tail_;
    if (uw_tail_ != kNil)
      slots_[uw_tail_].wnext = i;
    else
      uw_head_ = i;
    uw_tail_ = i;
  }

  void uw_unlink(SlotIndex i) {
    Slot& s = slots_[i];
    if (s.wprev != kNil)
      slots_[s.wprev].wnext = s.wnext;
    else
      uw_head_ = s.wnext;
    if (s.wnext != kNil)
      slots_[s.wnext].wprev = s.wprev;
    else
      uw_tail_ = s.wprev;
    s.wnext = s.wprev = kNil;
  }

  /// Age-ordered insert (for unprep: a mode-switch release returns old
  /// entries, so walk forward from the head -- usually few steps).
  void uw_insert_ordered(SlotIndex i) {
    Slot& s = slots_[i];
    SlotIndex before = uw_head_;
    while (before != kNil && slots_[before].e.id < s.e.id) before = slots_[before].wnext;
    s.wnext = before;
    if (before == kNil) {
      s.wprev = uw_tail_;
      if (uw_tail_ != kNil)
        slots_[uw_tail_].wnext = i;
      else
        uw_head_ = i;
      uw_tail_ = i;
    } else {
      s.wprev = slots_[before].wprev;
      if (s.wprev != kNil)
        slots_[s.wprev].wnext = i;
      else
        uw_head_ = i;
      slots_[before].wprev = i;
    }
  }

  void unlink_prepped(SlotIndex i) {
    Slot& s = slots_[i];
    if (s.pprev != kNil)
      slots_[s.pprev].pnext = s.pnext;
    else
      phead_ = s.pnext;
    if (s.pnext != kNil)
      slots_[s.pnext].pprev = s.pprev;
    else
      ptail_ = s.pprev;
    s.pnext = s.pprev = kNil;
    --prepped_count_;
    if (prepped_count_ == 0) {
      earliest_ready_ = kNoReady;
      ready_dirty_ = false;
    } else if (!ready_dirty_ && s.e.row_ready_at <= earliest_ready_) {
      ready_dirty_ = true;  // may have held the minimum
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t window_;
  SlotIndex head_ = kNil, tail_ = kNil;
  SlotIndex phead_ = kNil, ptail_ = kNil;
  SlotIndex uw_head_ = kNil, uw_tail_ = kNil;
  SlotIndex fence_ = kNil;  ///< first beyond-window slot (kNil if none)
  SlotIndex free_head_ = kNil;
  std::uint32_t size_ = 0;
  std::uint32_t prepped_count_ = 0;
  Tick earliest_ready_ = kNoReady;
  bool ready_dirty_ = false;
};

}  // namespace hostnet::mc
