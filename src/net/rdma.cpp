#include "net/rdma.hpp"

#include "workloads/workloads.hpp"

namespace hostnet::net {

namespace {

void add_c2m_cores(core::HostSystem& host, const core::C2MSpec& spec) {
  for (std::uint32_t i = 0; i < spec.cores; ++i) {
    cpu::CoreWorkload wl = spec.workload;
    if (spec.per_core_region)
      wl.region.base += static_cast<std::uint64_t>(i) * spec.region_stride;
    host.add_core(wl);
  }
}

}  // namespace

RdmaHost make_rdma_host(const core::HostConfig& hc,
                        const std::optional<core::C2MSpec>& c2m,
                        const std::optional<RdmaSpec>& rdma, std::uint64_t seed) {
  RdmaHost r;
  r.host = std::make_unique<core::HostSystem>(hc, seed);
  if (c2m) add_c2m_cores(*r.host, *c2m);
  if (rdma) {
    if (rdma->write_traffic) {
      NicConfig nc = rdma->nic;
      nc.wire_gb_per_s = rdma->wire_gb_per_s;
      nc.pcie_gb_per_s = hc.pcie_write_gb_per_s;
      nc.autonomous = true;
      nc.pfc = true;
      if (nc.region.bytes == 0 || nc.region.base == 0) nc.region = workloads::p2m_region();
      r.nic_storage = std::make_unique<NicDevice>(r.host->sim(), r.host->iio(), nc);
      r.nic = r.nic_storage.get();
      NicDevice* nic = r.nic;
      r.host->attach(core::ExternalHooks{
          [nic] { nic->start(); },
          [nic](Tick now) { nic->reset_counters(now); },
          [nic]() -> std::shared_ptr<const void> {
            auto snap = std::make_shared<NicDevice::Snapshot>();
            nic->save_state(*snap);
            return snap;
          },
          [nic](const std::shared_ptr<const void>& blob) {
            nic->load_state(*static_cast<const NicDevice::Snapshot*>(blob.get()));
          }});
    } else {
      // ib_read_bw: the NIC streams server memory out to the wire -- a
      // line-rate sequential DMA reader.
      iio::StorageConfig sc;
      sc.host_op = mem::Op::kRead;
      sc.request_bytes = 1ull << 20;
      sc.queue_depth = 8;
      sc.link_gb_per_s = rdma->wire_gb_per_s;
      sc.per_request_latency = us(2);
      sc.region = workloads::p2m_region();
      r.host->add_storage(sc);
    }
  }
  return r;
}

RdmaRunOutcome run_rdma(const core::HostConfig& hc,
                        const std::optional<core::C2MSpec>& c2m,
                        const std::optional<RdmaSpec>& rdma, const core::RunOptions& opt) {
  RdmaHost rh = make_rdma_host(hc, c2m, rdma, opt.seed);
  rh.host->run(opt.warmup, opt.measure);
  RdmaRunOutcome out;
  out.metrics = rh.host->collect();
  if (c2m) {
    const bool episodic = c2m->workload.episode_reads + c2m->workload.episode_writes > 0;
    out.c2m_score = episodic ? out.metrics.queries_per_sec : out.metrics.c2m_app_gbps;
  }
  if (rdma) {
    if (rdma->write_traffic && rh.nic != nullptr) {
      out.p2m_score =
          gb_per_s(rh.nic->bytes_accepted(), ns(out.metrics.window_ns));
      out.pause_fraction = rh.nic->pause_fraction(rh.host->sim().now());
    } else {
      out.p2m_score = out.metrics.p2m_dev_gbps;
    }
  }
  return out;
}

RdmaColocationOutcome run_rdma_colocation(const core::HostConfig& hc,
                                          const core::C2MSpec& c2m, const RdmaSpec& rdma,
                                          const core::RunOptions& opt) {
  RdmaColocationOutcome o;
  o.iso_c2m = run_rdma(hc, c2m, std::nullopt, opt);
  o.iso_p2m = run_rdma(hc, std::nullopt, rdma, opt);
  o.colo = run_rdma(hc, c2m, rdma, opt);
  return o;
}

}  // namespace hostnet::net
