// DCTCP receiver case study (paper Appendix C.2/D.2).
//
// A sender pushes long flows over a lossy fabric into the receiver NIC; the
// NIC DMA-writes packets into kernel socket buffers (P2M-Write); kernel
// copy cores move payload from socket buffers to application buffers,
// generating C2M traffic (read of the socket buffer + RFO/write-back of the
// app buffer) plus protocol processing. Two coupling loops reproduce the
// paper's observations:
//
//  * blue regime: C2M latency inflation slows the copy -> the receive
//    window (free ring slots) shrinks -> the sender slows. No drops.
//  * red regime: P2M-Write degradation backs up the NIC's RX buffer ->
//    drops -> DCTCP congestion response at the sender.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "counters/station.hpp"
#include "flow/credit_pool.hpp"
#include "net/nic_device.hpp"

namespace hostnet::net {

struct DctcpConfig {
  double wire_gb_per_s = 12.25;       ///< 100 Gbps link, effective
  std::uint32_t mtu_bytes = 9216;     ///< jumbo frames (144 cachelines)
  std::uint32_t copy_cores = 4;       ///< iperf receiver cores
  /// Outstanding cachelines per copy core (the LFB bounds the copy's MLP;
  /// proto_ns_per_packet is sized so 4 cores just saturate 100 Gbps in
  /// isolation, matching the paper's "sufficient to saturate" setup).
  std::uint32_t copy_width = 12;
  /// iperf reuses a small receive buffer that stays cache-resident: the
  /// copy's destination stores hit the LLC and generate no memory traffic.
  /// Set false to model a streaming (non-resident) destination buffer.
  bool app_buffer_cache_resident = true;
  std::uint32_t ring_packets = 192;   ///< socket buffer / receive window
  Tick base_rtt = us(40);
  Tick proto_ns_per_packet = ns(1900);///< non-copy kernel processing per packet
  double dctcp_g = 0.0625;
  double initial_cwnd = 64;           ///< packets
  /// Lossy + ECN settings; a shallower RX buffer than the RoCE default so
  /// red-regime DMA backpressure can outrun the ECN response and drop.
  NicConfig nic = [] {
    NicConfig n;
    n.rx_buffer_bytes = 96 << 10;
    n.ecn_threshold = 56 << 10;
    return n;
  }();
};

/// One kernel copy core: pops packets from the RX ring and copies them.
/// Per cacheline: socket-buffer read, then app-buffer RFO + write-back;
/// the LFB slot is held through all three trips.
class CopyCore final : public mem::Completer, public cha::ChaClient {
 public:
  CopyCore(sim::Simulator& sim, cha::Cha& cha, const cpu::CoreConfig& cfg,
           mem::Region socket_buf, mem::Region app_buf, Tick proto_time,
           std::uint32_t lines_per_packet, bool app_in_cache, std::uint16_t id);

  /// Called by the receiver when a packet is available; the core pulls via
  /// the shared ring through `pop` when idle.
  void notify_work();
  void set_ring(std::deque<Tick>* ring, std::function<void()> on_packet_copied) {
    ring_ = ring;
    on_packet_copied_ = std::move(on_packet_copied);
  }

  void complete(const mem::Request& req, Tick now) override;
  bool on_cha_admission(mem::Op op) override;

  counters::LatencyStation& lfb_station() { return lfb_pool_.station(); }
  std::uint64_t packets_copied() const { return packets_copied_; }
  std::uint64_t lines_copied() const { return lines_copied_; }
  void reset_counters(Tick now) {
    lfb_pool_.reset_telemetry(now);
    packets_copied_ = 0;
    lines_copied_ = 0;
  }

 private:
  void try_start_packet();
  void pump();
  void issue(std::uint64_t addr, std::uint64_t phase);
  void send_to_cha(mem::Request req);

  sim::Simulator& sim_;
  cha::Cha& cha_;
  cpu::CoreConfig cfg_;
  mem::Region socket_buf_;
  mem::Region app_buf_;
  Tick proto_time_;
  std::uint32_t lines_per_packet_;
  bool app_in_cache_;
  std::uint16_t id_;

  std::deque<Tick>* ring_ = nullptr;
  std::function<void()> on_packet_copied_;

  bool busy_ = false;           ///< processing a packet (incl. proto time)
  std::uint32_t lines_to_issue_ = 0;
  std::uint32_t lines_outstanding_ = 0;
  std::uint64_t line_cursor_ = 0;

  struct Blocked {
    mem::Request req;
    Tick since;
  };
  std::deque<Blocked> blocked_reads_;
  std::deque<Blocked> blocked_writes_;

  /// Copy-MLP bound (the core's LFB). A case-study component, not part of
  /// the HostSystem, so it stays off the DomainRegistry.
  flow::CreditPool lfb_pool_;
  std::uint64_t packets_copied_ = 0;
  std::uint64_t lines_copied_ = 0;
};

/// The full receiver: NIC (lossy, ECN) + RX ring + copy cores + a DCTCP
/// sender model with receive-window flow control.
class TcpReceiver {
 public:
  TcpReceiver(core::HostSystem& host, const DctcpConfig& cfg);

  // -- measurement ------------------------------------------------------------
  /// Application goodput: copied payload bytes over the window (GB/s).
  double goodput_gbps(Tick now) const;
  /// P2M throughput: bytes the NIC DMA-wrote toward memory (GB/s).
  double p2m_gbps(Tick now) const;
  double loss_rate() const;        ///< dropped / offered packets
  double mark_fraction() const;    ///< ECN-marked / accepted packets
  double avg_cwnd() const;
  double copy_lfb_latency_ns() const;
  double copy_lfb_occupancy(Tick now) const;
  const NicDevice& nic() const { return *nic_; }
  std::vector<std::unique_ptr<CopyCore>>& copy_cores() { return copy_cores_; }

 private:
  void start();
  void reset(Tick now);
  void sender_pump();
  void on_packet_delivered(Tick now);
  void on_packet_copied();
  void rtt_epoch();

  core::HostSystem& host_;
  DctcpConfig cfg_;
  std::unique_ptr<NicDevice> nic_;
  std::vector<std::unique_ptr<CopyCore>> copy_cores_;
  std::deque<Tick> ring_;  ///< arrival time of packets awaiting copy

  // Sender state.
  double cwnd_ = 16;
  double alpha_ = 0;
  // Wire-side packets in flight against the sender's cwnd -- a transport
  // window, not a host credit domain. hostnet-lint: allow(raw-credit-counter)
  std::uint32_t inflight_ = 0;
  bool wire_busy_ = false;
  std::uint64_t epoch_acks_ = 0;
  std::uint64_t epoch_marks_ = 0;
  std::uint64_t epoch_drops_ = 0;

  // Window counters.
  Tick window_start_ = 0;
  std::uint64_t packets_copied_ = 0;
  std::uint64_t packets_offered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_marked_ = 0;
  std::uint64_t packets_accepted_ = 0;
  double cwnd_sum_ = 0;
  std::uint64_t cwnd_samples_ = 0;
};

}  // namespace hostnet::net
