// DCTCP receiver case study (paper Appendix C.2/D.2).
//
// A sender pushes long flows over a lossy fabric into the receiver NIC; the
// NIC DMA-writes packets into kernel socket buffers (P2M-Write); kernel
// copy cores move payload from socket buffers to application buffers,
// generating C2M traffic (read of the socket buffer + RFO/write-back of the
// app buffer) plus protocol processing. Two coupling loops reproduce the
// paper's observations:
//
//  * blue regime: C2M latency inflation slows the copy -> the receive
//    window (free ring slots) shrinks -> the sender slows. No drops.
//  * red regime: P2M-Write degradation backs up the NIC's RX buffer ->
//    drops -> DCTCP congestion response at the sender.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/ring_buffer.hpp"
#include "common/snapshot.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "counters/station.hpp"
#include "flow/credit_pool.hpp"
#include "net/nic_device.hpp"
#include "net/tcp_stack.hpp"

namespace hostnet::net {

struct TcpConfig {
  /// Which congestion-control stack drives the sender (net/tcp_stack.hpp).
  core::TcpStackKind stack = core::TcpStackKind::kDctcp;
  double wire_gb_per_s = 12.25;       ///< 100 Gbps link, effective
  std::uint32_t mtu_bytes = 9216;     ///< jumbo frames (144 cachelines)
  std::uint32_t copy_cores = 4;       ///< iperf receiver cores
  /// Outstanding cachelines per copy core (the LFB bounds the copy's MLP;
  /// proto_ns_per_packet is sized so 4 cores just saturate 100 Gbps in
  /// isolation, matching the paper's "sufficient to saturate" setup).
  std::uint32_t copy_width = 12;
  /// iperf reuses a small receive buffer that stays cache-resident: the
  /// copy's destination stores hit the LLC and generate no memory traffic.
  /// Set false to model a streaming (non-resident) destination buffer.
  bool app_buffer_cache_resident = true;
  std::uint32_t ring_packets = 192;   ///< socket buffer / receive window
  Tick base_rtt = us(40);
  Tick proto_ns_per_packet = ns(1900);///< non-copy kernel processing per packet
  double dctcp_g = 0.0625;
  double initial_cwnd = 64;           ///< packets
  /// Lossy + ECN settings; a shallower RX buffer than the RoCE default so
  /// red-regime DMA backpressure can outrun the ECN response and drop.
  NicConfig nic = [] {
    NicConfig n;
    n.rx_buffer_bytes = 96 << 10;
    n.ecn_threshold = 56 << 10;
    return n;
  }();
};

/// Historical name from the DCTCP-only days; the config now selects any
/// stack and DctcpConfig{} still means "the paper's DCTCP receiver".
using DctcpConfig = TcpConfig;

/// One kernel copy core: pops packets from the RX ring and copies them.
/// Per cacheline: socket-buffer read, then app-buffer RFO + write-back;
/// the LFB slot is held through all three trips.
class CopyCore final : public mem::Completer, public cha::ChaClient {
 public:
  CopyCore(sim::Simulator& sim, cha::Cha& cha, const cpu::CoreConfig& cfg,
           mem::Region socket_buf, mem::Region app_buf, Tick proto_time,
           std::uint32_t lines_per_packet, bool app_in_cache, std::uint16_t id);

  /// Called by the receiver when a packet is available; the core pulls via
  /// the shared ring through `pop` when idle.
  void notify_work();
  // One-time wiring from the owning TcpReceiver (std::function is fine
  // here: installed at construction, invoked -- never created -- per packet).
  // hostnet-lint: allow(hot-alloc)
  void set_ring(RingBuffer<Tick>* ring, std::function<void()> on_packet_copied) {
    ring_ = ring;
    on_packet_copied_ = std::move(on_packet_copied);
  }

  void complete(const mem::Request& req, Tick now) override;
  bool on_cha_admission(mem::Op op) override;

  counters::LatencyStation& lfb_station() { return lfb_pool_.station(); }
  std::uint64_t packets_copied() const { return packets_copied_; }
  std::uint64_t lines_copied() const { return lines_copied_; }
  void reset_counters(Tick now) {
    lfb_pool_.reset_telemetry(now);
    packets_copied_ = 0;
    lines_copied_ = 0;
  }

  /// A copy access that failed CHA admission, with when it first blocked.
  struct Blocked {
    mem::Request req;
    Tick since;
  };

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config and the ring_/on_packet_copied_ wiring are construction state.
  // Blocked requests carry completer pointers into this core: same-host
  // restore only.
  struct Snapshot {
    bool busy = false;
    std::uint32_t lines_to_issue = 0;
    std::uint32_t lines_outstanding = 0;
    std::uint64_t line_cursor = 0;
    RingBuffer<Blocked> blocked_reads;
    RingBuffer<Blocked> blocked_writes;
    flow::CreditPool::Snapshot lfb_pool;
    std::uint64_t packets_copied = 0;
    std::uint64_t lines_copied = 0;
  };

  void save_state(Snapshot& out) const {
    out.busy = busy_;
    out.lines_to_issue = lines_to_issue_;
    out.lines_outstanding = lines_outstanding_;
    out.line_cursor = line_cursor_;
    out.blocked_reads = blocked_reads_;
    out.blocked_writes = blocked_writes_;
    lfb_pool_.save_state(out.lfb_pool);
    out.packets_copied = packets_copied_;
    out.lines_copied = lines_copied_;
  }

  void load_state(const Snapshot& s) {
    busy_ = s.busy;
    lines_to_issue_ = s.lines_to_issue;
    lines_outstanding_ = s.lines_outstanding;
    line_cursor_ = s.line_cursor;
    blocked_reads_ = s.blocked_reads;
    blocked_writes_ = s.blocked_writes;
    lfb_pool_.load_state(s.lfb_pool);
    packets_copied_ = s.packets_copied;
    lines_copied_ = s.lines_copied;
  }

 private:
  void try_start_packet();
  void pump();
  void issue(std::uint64_t addr, std::uint64_t phase);
  void send_to_cha(mem::Request req);

  sim::Simulator& sim_;
  cha::Cha& cha_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  cpu::CoreConfig cfg_;
  // hostnet-audit: skip(socket_buf_, fixed buffer geometry chosen at construction)
  mem::Region socket_buf_;
  // hostnet-audit: skip(app_buf_, fixed buffer geometry chosen at construction)
  mem::Region app_buf_;
  // hostnet-audit: skip(proto_time_, derived from cfg_ at construction; never mutates)
  Tick proto_time_;
  // hostnet-audit: skip(lines_per_packet_, derived from cfg_ at construction; never mutates)
  std::uint32_t lines_per_packet_;
  // hostnet-audit: skip(app_in_cache_, construction config; immutable after build)
  bool app_in_cache_;
  // hostnet-audit: skip(id_, construction identity; fixed at build)
  std::uint16_t id_;

  // hostnet-audit: skip(ring_, wiring to the owning TcpReceiver's queue; the owner snapshots the queue itself)
  RingBuffer<Tick>* ring_ = nullptr;
  // hostnet-audit: skip(on_packet_copied_, callback wiring installed at build; restore targets the same host)
  // hostnet-lint: allow(hot-alloc)  -- invoked per packet, assigned once at build
  std::function<void()> on_packet_copied_;

  bool busy_ = false;           ///< processing a packet (incl. proto time)
  std::uint32_t lines_to_issue_ = 0;
  std::uint32_t lines_outstanding_ = 0;
  std::uint64_t line_cursor_ = 0;

  RingBuffer<Blocked> blocked_reads_;
  RingBuffer<Blocked> blocked_writes_;

  /// Copy-MLP bound (the core's LFB). A case-study component, not part of
  /// the HostSystem, so it stays off the DomainRegistry.
  // hostnet-audit: allow(pool-unregistered, case-study component outside the HostSystem; no DomainRegistry exists here)
  flow::CreditPool lfb_pool_;
  std::uint64_t packets_copied_ = 0;
  std::uint64_t lines_copied_ = 0;
};

/// The stack-agnostic transport engine: NIC (lossy, ECN) + RX ring + copy
/// cores + a sender model with receive-window flow control. Congestion
/// control lives behind the TcpStack the config selects; the engine owns
/// the event sites (send, accept/drop, ACK, epoch) and feeds them through
/// TransportTelemetry.
class TcpReceiver final : public core::TcpTransport {
 public:
  TcpReceiver(core::HostSystem& host, const TcpConfig& cfg);

  // -- measurement ------------------------------------------------------------
  /// Application goodput: copied payload bytes over the window (GB/s).
  double goodput_gbps(Tick now) const override;
  /// P2M throughput: bytes the NIC DMA-wrote toward memory (GB/s).
  double p2m_gbps(Tick now) const;
  double loss_rate() const override;  ///< dropped / offered packets
  double mark_fraction() const;       ///< ECN-marked / accepted packets
  double avg_cwnd() const override;
  double copy_lfb_latency_ns() const;
  double copy_lfb_occupancy(Tick now) const;
  const NicDevice& nic() const { return *nic_; }
  const TcpStack& stack() const { return *stack_; }
  std::vector<std::unique_ptr<CopyCore>>& copy_cores() { return copy_cores_; }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Registered with HostSystem::attach as external save/load hooks, so
  // HostSystem::snapshot() carries the receiver's transport state alongside
  // the host's own.
  struct Snapshot {
    NicDevice::Snapshot nic;
    std::vector<CopyCore::Snapshot> copy_cores;
    RingBuffer<Tick> ring;
    std::shared_ptr<const void> stack;  ///< the stack's own POD Snapshot
    TransportTelemetry telemetry;
    std::uint32_t inflight = 0;
    bool wire_busy = false;
    bool pacing_wait = false;
    RingBuffer<Tick> pending_acks;
    Tick window_start = 0;
    std::uint64_t packets_copied = 0;
    std::uint64_t packets_offered = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_marked = 0;
    std::uint64_t packets_accepted = 0;
  };

  void save_state(Snapshot& out) const {
    nic_->save_state(out.nic);
    out.copy_cores.resize(copy_cores_.size());
    for (std::size_t i = 0; i < copy_cores_.size(); ++i)
      copy_cores_[i]->save_state(out.copy_cores[i]);
    out.ring = ring_;
    out.stack = stack_->save_blob();
    out.telemetry = telemetry_;
    out.inflight = inflight_;
    out.wire_busy = wire_busy_;
    out.pacing_wait = pacing_wait_;
    out.pending_acks = pending_acks_;
    out.window_start = window_start_;
    out.packets_copied = packets_copied_;
    out.packets_offered = packets_offered_;
    out.packets_dropped = packets_dropped_;
    out.packets_marked = packets_marked_;
    out.packets_accepted = packets_accepted_;
  }

  void load_state(const Snapshot& s) {
    nic_->load_state(s.nic);
    assert(s.copy_cores.size() == copy_cores_.size());
    for (std::size_t i = 0; i < copy_cores_.size(); ++i)
      copy_cores_[i]->load_state(s.copy_cores[i]);
    ring_ = s.ring;
    stack_->load_blob(s.stack.get());
    telemetry_ = s.telemetry;
    inflight_ = s.inflight;
    wire_busy_ = s.wire_busy;
    pacing_wait_ = s.pacing_wait;
    pending_acks_ = s.pending_acks;
    window_start_ = s.window_start;
    packets_copied_ = s.packets_copied;
    packets_offered_ = s.packets_offered;
    packets_dropped_ = s.packets_dropped;
    packets_marked_ = s.packets_marked;
    packets_accepted_ = s.packets_accepted;
  }

 private:
  void start();
  void reset(Tick now);
  void sender_pump();
  void on_ack(Tick sent);
  void on_packet_delivered(Tick now);
  void on_packet_copied();
  void rtt_epoch();

  core::HostSystem& host_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  TcpConfig cfg_;
  std::unique_ptr<NicDevice> nic_;
  std::vector<std::unique_ptr<CopyCore>> copy_cores_;
  RingBuffer<Tick> ring_;  ///< arrival time of packets awaiting copy

  // Sender state. The congestion-control half lives inside stack_ (its own
  // Snapshot, carried as an opaque blob above); the engine keeps only the
  // transport window and the CC inputs.
  std::unique_ptr<TcpStack> stack_;
  TransportTelemetry telemetry_;
  // Wire-side packets in flight against the sender's cwnd -- a transport
  // window, not a host credit domain. hostnet-lint: allow(raw-credit-counter)
  std::uint32_t inflight_ = 0;
  bool wire_busy_ = false;
  bool pacing_wait_ = false;  ///< a pacing-gate timer is already scheduled
  /// Send timestamps of accepted packets awaiting a delivery-clocked ACK
  /// (ack_on_delivery() stacks only; deliveries happen in accept order, so
  /// FIFO pairing is exact). Always empty for DCTCP.
  RingBuffer<Tick> pending_acks_;

  // Window counters.
  Tick window_start_ = 0;
  std::uint64_t packets_copied_ = 0;
  std::uint64_t packets_offered_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_marked_ = 0;
  std::uint64_t packets_accepted_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(CopyCore);
HOSTNET_SNAPSHOT_COVERS(TcpReceiver);

}  // namespace hostnet::net
