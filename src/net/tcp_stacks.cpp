#include "net/tcp_stack.hpp"

#include <memory>
#include <optional>
#include <string>

#include "net/dctcp.hpp"

namespace hostnet::net {

// ---------------------------------------------------------------------------
// DctcpStack
// ---------------------------------------------------------------------------

void DctcpStack::on_epoch(const TransportTelemetry& t, Tick now) {
  // Verbatim pre-refactor TcpReceiver::rtt_epoch() arithmetic, in the same
  // order: tests/test_tcp_stacks.cpp pins the formula, the fig goldens pin
  // the whole receiver.
  (void)now;
  if (t.epoch_drops > 0) {
    cwnd_ = std::max(kMinCwnd, cwnd_ / 2.0);
  } else if (t.epoch_acks > 0) {
    const double frac =
        static_cast<double>(t.epoch_marks) / static_cast<double>(t.epoch_acks);
    alpha_ = (1.0 - g_) * alpha_ + g_ * frac;
    if (frac > 0)
      cwnd_ = std::max(kMinCwnd, cwnd_ * (1.0 - alpha_ / 2.0));
    else
      cwnd_ += 1.0;
  }
  cwnd_ = std::min(cwnd_, kMaxCwnd);
}

std::shared_ptr<const void> DctcpStack::save_blob() const {
  auto snap = std::make_shared<Snapshot>();
  save_state(*snap);
  return snap;
}

void DctcpStack::load_blob(const void* blob) {
  load_state(*static_cast<const Snapshot*>(blob));
}

// ---------------------------------------------------------------------------
// BbrStack
// ---------------------------------------------------------------------------

namespace {
/// Probe 25% above the estimate for one epoch, drain the queue it built the
/// next, then cruise at the estimate -- BBR's ProbeBW cycle recast onto the
/// receiver's base-RTT epochs.
constexpr std::array<double, BbrStack::kGainPhases> kGainCycle = {
    1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr double kCwndGain = 2.0;  ///< inflight cap: 2x estimated BDP
constexpr double kBbrMinCwnd = 4.0;
}  // namespace

void BbrStack::on_send(Tick now) {
  if (pace_interval_ > 0) next_send_ = std::max(next_send_, now) + pace_interval_;
}

double BbrStack::max_bw_packets_per_epoch() const {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(epochs_, kWindowEpochs));
  double best = 0;
  for (std::size_t i = 0; i < n; ++i) best = std::max(best, bw_window_[i]);
  return best;
}

Tick BbrStack::min_rtt() const {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(epochs_, kWindowEpochs));
  Tick best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rtt_window_[i] > 0 && (best == 0 || rtt_window_[i] < best)) best = rtt_window_[i];
  }
  return best;
}

void BbrStack::on_epoch(const TransportTelemetry& t, Tick now) {
  (void)now;
  const auto slot = static_cast<std::size_t>(epochs_ % kWindowEpochs);
  bw_window_[slot] = static_cast<double>(t.epoch_acks);
  rtt_window_[slot] = t.epoch_rtt_min;
  ++epochs_;
  gain_idx_ = (gain_idx_ + 1) % static_cast<std::uint32_t>(kGainPhases);

  const double bw = max_bw_packets_per_epoch();  // packets per base-RTT epoch
  const Tick rtt = min_rtt();
  if (bw > 0 && rtt > 0) {
    const double gain = kGainCycle[gain_idx_];
    // Departure spacing at gain x estimated bandwidth. Losses are not acted
    // on here: a delivery collapse shows up in the bw filter directly.
    pace_interval_ =
        static_cast<Tick>(static_cast<double>(base_rtt_) / (bw * gain));
    const double bdp =
        bw * static_cast<double>(rtt) / static_cast<double>(base_rtt_);
    cwnd_ = std::max(kBbrMinCwnd, kCwndGain * bdp);
  } else {
    // Startup: no complete estimate yet; grow exponentially like BBR's
    // startup phase until the filters fill.
    cwnd_ *= 2.0;
  }
  cwnd_ = std::min(cwnd_, kMaxCwnd);
}

std::shared_ptr<const void> BbrStack::save_blob() const {
  auto snap = std::make_shared<Snapshot>();
  save_state(*snap);
  return snap;
}

void BbrStack::load_blob(const void* blob) {
  load_state(*static_cast<const Snapshot*>(blob));
}

// ---------------------------------------------------------------------------
// DavisStack
// ---------------------------------------------------------------------------

Tick DavisStack::min_rtt() const {
  const std::size_t n = static_cast<std::size_t>(
      std::min<std::uint64_t>(epochs_, kWindowEpochs));
  Tick best = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rtt_window_[i] > 0 && (best == 0 || rtt_window_[i] < best)) best = rtt_window_[i];
  }
  return best;
}

void DavisStack::on_epoch(const TransportTelemetry& t, Tick now) {
  (void)now;
  const auto slot = static_cast<std::size_t>(epochs_ % kWindowEpochs);
  rtt_window_[slot] = t.epoch_rtt_min;
  ++epochs_;

  if (t.epoch_drops > 0) {
    cwnd_ = std::max(kMinCwnd, cwnd_ / 2.0);
  } else {
    const Tick base = min_rtt();
    const Tick avg = t.epoch_avg_rtt();
    if (base > 0 && avg > 0) {
      const Tick queue = avg > base ? avg - base : 0;
      if (queue > queue_tolerance_)
        cwnd_ = std::max(kMinCwnd, cwnd_ * kBackoff);
      else
        cwnd_ += 1.0;
    } else if (t.epoch_acks > 0) {
      cwnd_ += 1.0;
    }
  }
  cwnd_ = std::min(cwnd_, kMaxCwnd);
}

std::shared_ptr<const void> DavisStack::save_blob() const {
  auto snap = std::make_shared<Snapshot>();
  save_state(*snap);
  return snap;
}

void DavisStack::load_blob(const void* blob) {
  load_state(*static_cast<const Snapshot*>(blob));
}

// ---------------------------------------------------------------------------
// Stack/spec zoo + transport factory
// ---------------------------------------------------------------------------

std::unique_ptr<TcpStack> make_tcp_stack(const TcpConfig& cfg) {
  switch (cfg.stack) {
    case core::TcpStackKind::kBbr:
      return std::make_unique<BbrStack>(cfg.initial_cwnd, cfg.base_rtt);
    case core::TcpStackKind::kDavis:
      return std::make_unique<DavisStack>(cfg.initial_cwnd, cfg.base_rtt);
    case core::TcpStackKind::kDctcp:
      break;
  }
  return std::make_unique<DctcpStack>(cfg.initial_cwnd, cfg.dctcp_g);
}

TcpConfig tcp_config(const core::TcpSpec& spec) {
  TcpConfig cfg;
  cfg.stack = spec.stack;
  cfg.wire_gb_per_s = spec.wire_gb_per_s;
  cfg.mtu_bytes = spec.mtu_bytes;
  cfg.copy_cores = spec.copy_cores;
  cfg.ring_packets = spec.ring_packets;
  cfg.base_rtt = spec.base_rtt;
  return cfg;
}

core::TcpSpec tcp_spec(core::TcpStackKind kind) {
  core::TcpSpec spec;
  spec.stack = kind;
  spec.name = "tcp_" + core::to_string(kind);
  return spec;
}

std::optional<core::TcpSpec> tcp_p2m_workload(const std::string& name) {
  if (name == "tcp_dctcp") return tcp_spec(core::TcpStackKind::kDctcp);
  if (name == "tcp_bbr") return tcp_spec(core::TcpStackKind::kBbr);
  if (name == "tcp_davis") return tcp_spec(core::TcpStackKind::kDavis);
  return std::nullopt;
}

std::optional<core::TcpStackKind> tcp_stack_kind(const std::string& name) {
  if (name == "dctcp") return core::TcpStackKind::kDctcp;
  if (name == "bbr") return core::TcpStackKind::kBbr;
  if (name == "davis") return core::TcpStackKind::kDavis;
  return std::nullopt;
}

namespace {

std::unique_ptr<core::TcpTransport> make_tcp_transport(core::HostSystem& host,
                                                       const core::TcpSpec& spec) {
  return std::make_unique<TcpReceiver>(host, tcp_config(spec));
}

// Self-registration: any binary that references this TU (every TcpReceiver
// user and the fleet grammar do) gets the factory installed before main().
const bool kTcpFactoryInstalled [[maybe_unused]] = [] {
  install_tcp_factory();
  return true;
}();

}  // namespace

void install_tcp_factory() { core::set_tcp_factory(&make_tcp_transport); }

}  // namespace hostnet::net
