#include "net/nic_device.hpp"

#include <cassert>

namespace hostnet::net {

NicDevice::NicDevice(sim::Simulator& sim, iio::Iio& iio, const NicConfig& cfg)
    : sim_(sim),
      iio_(iio),
      cfg_(cfg),
      t_line_(serialization_ticks(kCachelineBytes, cfg.pcie_gb_per_s)),
      t_packet_(serialization_ticks(cfg.mtu_bytes, cfg.wire_gb_per_s)),
      t_tx_line_(cfg.tx_gb_per_s > 0
                     ? serialization_ticks(kCachelineBytes, cfg.tx_gb_per_s)
                     : 0) {
  if (cfg_.tx_region.lines() == 0) cfg_.tx_region = cfg_.region;
}

void NicDevice::start() {
  if (cfg_.autonomous) schedule_arrival();
  if (cfg_.tx_gb_per_s > 0) tx_pump();
}

void NicDevice::schedule_arrival() {
  if (arrival_scheduled_ || paused_) return;
  arrival_scheduled_ = true;
  sim_.schedule(t_packet_, [this] {
    arrival_scheduled_ = false;
    arrival();
  });
}

void NicDevice::arrival() {
  if (paused_) return;
  if (buffer_bytes_ + cfg_.mtu_bytes > cfg_.rx_buffer_bytes) {
    if (cfg_.pfc) {
      // Threshold configuration should pause before overflow; treat an
      // overflowing arrival as paused wire time rather than loss.
      note_pause(sim_.now(), true);
      return;
    }
    ++packets_dropped_;
    schedule_arrival();
    return;
  }
  buffer_bytes_ += cfg_.mtu_bytes;
  bytes_accepted_ += cfg_.mtu_bytes;
  ++packets_accepted_;
  if (cfg_.pfc && buffer_bytes_ >= cfg_.pause_threshold) note_pause(sim_.now(), true);
  pump();
  schedule_arrival();
}

bool NicDevice::offer_packet(bool* ecn_marked) {
  if (ecn_marked != nullptr) *ecn_marked = false;
  if (buffer_bytes_ + cfg_.mtu_bytes > cfg_.rx_buffer_bytes) {
    ++packets_dropped_;
    return false;
  }
  buffer_bytes_ += cfg_.mtu_bytes;
  bytes_accepted_ += cfg_.mtu_bytes;
  ++packets_accepted_;
  if (buffer_bytes_ >= cfg_.ecn_threshold) {
    ++packets_marked_;
    if (ecn_marked != nullptr) *ecn_marked = true;
  }
  pump();
  return true;
}

void NicDevice::pump() {
  if (link_busy_ || waiting_write_credit_) return;
  if (buffer_bytes_ < kCachelineBytes) return;
  const std::uint64_t addr =
      cfg_.region.base + (dma_line_cursor_ % cfg_.region.lines()) * kCachelineBytes;
  if (!iio_.try_dma(mem::Op::kWrite, addr, this, 0)) {
    waiting_write_credit_ = true;
    return;
  }
  buffer_bytes_ -= kCachelineBytes;
  bytes_dma_ += kCachelineBytes;
  ++dma_line_cursor_;
  if (++lines_in_current_packet_ >= cfg_.mtu_bytes / kCachelineBytes) {
    lines_in_current_packet_ = 0;
    if (packet_delivered_) packet_delivered_(sim_.now());
  }
  if (paused_ && buffer_bytes_ <= cfg_.resume_threshold) {
    note_pause(sim_.now(), false);
    schedule_arrival();
  }
  link_busy_ = true;
  sim_.schedule(t_line_, [this] {
    link_busy_ = false;
    pump();
  });
}

// TX: stream DMA reads from host memory at the TX wire rate. Shares the
// device with the RX pump but stalls on the IIO *read* pool, so it must
// wait -- and be woken -- independently of the writes.
void NicDevice::tx_pump() {
  if (tx_link_busy_ || waiting_read_credit_) return;
  const std::uint64_t addr =
      cfg_.tx_region.base +
      (tx_line_cursor_ % cfg_.tx_region.lines()) * kCachelineBytes;
  if (!iio_.try_dma(mem::Op::kRead, addr, this, tx_line_cursor_)) {
    waiting_read_credit_ = true;
    return;
  }
  ++tx_line_cursor_;
  tx_link_busy_ = true;
  sim_.schedule(t_tx_line_, [this] {
    tx_link_busy_ = false;
    tx_pump();
  });
}

void NicDevice::on_credit_available(mem::Op op) {
  if (op == mem::Op::kWrite) {
    waiting_write_credit_ = false;
    pump();
  } else {
    waiting_read_credit_ = false;
    tx_pump();
  }
}

void NicDevice::on_read_data(std::uint64_t /*tag*/, Tick /*now*/) {
  bytes_tx_ += kCachelineBytes;  // payload fetched; hits the wire
}

void NicDevice::note_pause(Tick now, bool pause) {
  if (pause == paused_) return;
  paused_ = pause;
  if (pause) {
    pause_started_ = now;
  } else {
    paused_time_ += now - pause_started_;
  }
}

double NicDevice::pause_fraction(Tick now) const {
  const Tick window = now - window_start_;
  if (window <= 0) return 0;
  Tick paused = paused_time_;
  if (paused_) paused += now - pause_started_;
  return static_cast<double>(paused) / static_cast<double>(window);
}

void NicDevice::reset_counters(Tick now) {
  bytes_accepted_ = bytes_dma_ = bytes_tx_ = 0;
  packets_accepted_ = packets_dropped_ = packets_marked_ = 0;
  paused_time_ = 0;
  if (paused_) pause_started_ = now;
  window_start_ = now;
}

}  // namespace hostnet::net
