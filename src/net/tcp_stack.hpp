// Pluggable TCP congestion-control stacks (ROADMAP item 3).
//
// net::TcpReceiver is a stack-agnostic transport engine: it owns the NIC,
// the RX ring, the copy cores, receive-window flow control and the window
// accounting. Everything congestion control -- cwnd, the per-stack filter
// state, pacing -- lives behind the TcpStack interface below, in the style
// of FreeBSD's modular tcp_stacks. Three stacks answer the open question
// the DCTCP-only case study could not: do pacing-based and delay-based
// senders read the host network's extra latency as congestion?
//
//  * DctcpStack: the paper's baseline, byte-identical to the pre-refactor
//    receiver (the fig goldens enforce this). Reacts to ECN marks + drops.
//  * BbrStack: BBR-like bandwidth probing. A windowed max filter over
//    per-epoch delivery, a windowed min-RTT filter, and a pacing gate on
//    sender_pump() cycling through probe/drain gains. Ignores marks.
//  * DavisStack: Davis-like delay-based control. Backs off multiplicatively
//    when the epoch's average RTT inflates above the windowed min RTT,
//    otherwise grows additively. Ignores marks.
//
// BBR and Davis sense delay through delivery-clocked ACKs: the engine
// releases their ACK only once the packet has fully DMA-completed into
// memory (ack_on_delivery()), so host-side backlog -- the paper's red
// regime precursor -- appears to the sender as RTT inflation.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <memory>

#include "common/snapshot.hpp"
#include "common/units.hpp"
#include "core/experiment.hpp"

namespace hostnet::net {

struct TcpConfig;  // net/dctcp.hpp

/// Shared transport telemetry: the per-epoch CC inputs the engine
/// accumulates at its event sites and every stack consumes in on_epoch(),
/// plus the window-scoped cwnd averaging behind avg_cwnd(). One struct so
/// per-stack telemetry cannot drift from the receiver's window accounting;
/// snapshot-carried wholesale by TcpReceiver.
struct TransportTelemetry {
  // Per-epoch accumulators; the engine clears them after each on_epoch().
  std::uint64_t epoch_acks = 0;
  std::uint64_t epoch_marks = 0;
  std::uint64_t epoch_drops = 0;
  Tick epoch_rtt_sum = 0;
  Tick epoch_rtt_min = 0;  ///< 0 = no RTT sample this epoch
  std::uint64_t epoch_rtt_samples = 0;

  // Measurement-window accumulators; reset_counters() clears them (the
  // epoch accumulators survive a mid-epoch reset on purpose).
  double cwnd_sum = 0;
  std::uint64_t cwnd_samples = 0;

  void note_rtt(Tick rtt) {
    epoch_rtt_sum += rtt;
    ++epoch_rtt_samples;
    if (epoch_rtt_min == 0 || rtt < epoch_rtt_min) epoch_rtt_min = rtt;
  }

  Tick epoch_avg_rtt() const {
    return epoch_rtt_samples > 0
               ? epoch_rtt_sum / static_cast<Tick>(epoch_rtt_samples)
               : 0;
  }

  void clear_epoch() {
    epoch_acks = epoch_marks = epoch_drops = 0;
    epoch_rtt_sum = 0;
    epoch_rtt_min = 0;
    epoch_rtt_samples = 0;
  }

  void reset_window() {
    cwnd_sum = 0;
    cwnd_samples = 0;
  }

  double avg_cwnd(double current_cwnd) const {
    return cwnd_samples > 0 ? cwnd_sum / static_cast<double>(cwnd_samples) : current_cwnd;
  }
};

/// Every stack saturates at the same cap the original receiver used.
inline constexpr double kMaxCwnd = 2048.0;
inline constexpr double kMinCwnd = 2.0;

/// One congestion-control algorithm driving the TcpReceiver engine. The
/// engine calls the hooks at its event sites; the stack owns nothing but CC
/// state, all of it covered by the per-stack Snapshot contract below (the
/// engine carries the snapshot blob inside its own).
class TcpStack {
 public:
  virtual ~TcpStack() = default;

  virtual core::TcpStackKind kind() const = 0;

  /// A packet was handed to the wire (pacing bookkeeping).
  virtual void on_send(Tick now) { (void)now; }
  /// The NIC refused the packet (RX buffer full); counted into
  /// TransportTelemetry::epoch_drops by the engine before this call.
  virtual void on_drop(Tick now) { (void)now; }
  /// An ACK reached the sender; `rtt` is ACK time minus send time.
  virtual void on_ack(Tick rtt, Tick now) {
    (void)rtt;
    (void)now;
  }
  /// Once per base-RTT epoch: consume the epoch's telemetry and update
  /// cwnd. The engine samples cwnd() for avg_cwnd and clears the epoch
  /// accumulators immediately after.
  virtual void on_epoch(const TransportTelemetry& t, Tick now) = 0;

  virtual double cwnd() const = 0;

  /// Ticks until the next packet may enter the wire (0 = send now). Stacks
  /// without pacing return 0, which keeps the engine's event stream free of
  /// pacing timers -- the DCTCP byte-identity guarantee depends on that.
  virtual Tick pacing_gate(Tick now) const {
    (void)now;
    return 0;
  }

  /// When true, the engine clocks this stack's ACKs off DMA-delivery
  /// completion instead of a fixed half-RTT after NIC accept, so measured
  /// RTT carries the host-side backlog (the delay signal).
  virtual bool ack_on_delivery() const { return false; }

  // Type-erased checkpoint plumbing: the engine stores the stack's POD
  // Snapshot as an opaque blob inside TcpReceiver::Snapshot. Same-host
  // restore only, like every external component.
  virtual std::shared_ptr<const void> save_blob() const = 0;
  virtual void load_blob(const void* blob) = 0;
};

/// DCTCP: cwnd follows the ECN mark fraction through the alpha EWMA --
/// the exact arithmetic of the pre-refactor TcpReceiver::rtt_epoch(), in
/// the same order, so goldens stay byte-identical.
class DctcpStack final : public TcpStack {
 public:
  DctcpStack(double initial_cwnd, double g) : cwnd_(initial_cwnd), g_(g) {}

  core::TcpStackKind kind() const override { return core::TcpStackKind::kDctcp; }

  void on_epoch(const TransportTelemetry& t, Tick now) override;

  double cwnd() const override { return cwnd_; }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  struct Snapshot {
    double cwnd = 16;
    double alpha = 0;
  };

  void save_state(Snapshot& out) const {
    out.cwnd = cwnd_;
    out.alpha = alpha_;
  }

  void load_state(const Snapshot& s) {
    cwnd_ = s.cwnd;
    alpha_ = s.alpha;
  }

  std::shared_ptr<const void> save_blob() const override;
  void load_blob(const void* blob) override;

 private:
  double cwnd_;
  double alpha_ = 0;
  // hostnet-audit: skip(g_, construction config (dctcp_g); immutable after build)
  double g_;
};

/// BBR-like: model the pipe, don't fill the buffer. A windowed max filter
/// over per-epoch delivered packets estimates bottleneck bandwidth, a
/// windowed min filter over delivery-clocked RTTs estimates the propagation
/// delay, and packets are paced at gain x estimated bandwidth with a
/// 1.25/0.75 probe-drain cycle. cwnd caps inflight at 2x the estimated
/// BDP. Losses are not a primary signal (the bandwidth filter already sees
/// the delivery collapse), matching BBR's design.
class BbrStack final : public TcpStack {
 public:
  static constexpr std::size_t kWindowEpochs = 10;  ///< bw/RTT filter depth
  static constexpr std::size_t kGainPhases = 8;

  BbrStack(double initial_cwnd, Tick base_rtt) : cwnd_(initial_cwnd), base_rtt_(base_rtt) {}

  core::TcpStackKind kind() const override { return core::TcpStackKind::kBbr; }

  void on_send(Tick now) override;
  void on_epoch(const TransportTelemetry& t, Tick now) override;

  double cwnd() const override { return cwnd_; }
  Tick pacing_gate(Tick now) const override {
    return next_send_ > now ? next_send_ - now : 0;
  }
  bool ack_on_delivery() const override { return true; }

  double max_bw_packets_per_epoch() const;  ///< current bandwidth estimate
  Tick min_rtt() const;                     ///< current propagation estimate

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  struct Snapshot {
    double cwnd = 0;
    std::array<double, kWindowEpochs> bw_window{};
    std::array<Tick, kWindowEpochs> rtt_window{};
    std::uint64_t epochs = 0;
    std::uint32_t gain_idx = 0;
    Tick next_send = 0;
    Tick pace_interval = 0;
  };

  void save_state(Snapshot& out) const {
    out.cwnd = cwnd_;
    out.bw_window = bw_window_;
    out.rtt_window = rtt_window_;
    out.epochs = epochs_;
    out.gain_idx = gain_idx_;
    out.next_send = next_send_;
    out.pace_interval = pace_interval_;
  }

  void load_state(const Snapshot& s) {
    cwnd_ = s.cwnd;
    bw_window_ = s.bw_window;
    rtt_window_ = s.rtt_window;
    epochs_ = s.epochs;
    gain_idx_ = s.gain_idx;
    next_send_ = s.next_send;
    pace_interval_ = s.pace_interval;
  }

  std::shared_ptr<const void> save_blob() const override;
  void load_blob(const void* blob) override;

 private:
  double cwnd_;
  // hostnet-audit: skip(base_rtt_, construction config; immutable after build)
  Tick base_rtt_;
  std::array<double, kWindowEpochs> bw_window_{};  ///< delivered pkts per epoch
  std::array<Tick, kWindowEpochs> rtt_window_{};   ///< per-epoch min RTT (0 = none)
  std::uint64_t epochs_ = 0;                       ///< epochs folded into the filters
  std::uint32_t gain_idx_ = 0;                     ///< position in the gain cycle
  Tick next_send_ = 0;                             ///< pacing gate opens here
  Tick pace_interval_ = 0;                         ///< 0 until first bw estimate
};

/// Davis-like: pure delay-based control. Tracks the minimum RTT over a
/// sliding window of epochs as the congestion-free baseline; when an
/// epoch's average RTT inflates more than kQueueToleranceFrac of base RTT
/// above it, cwnd backs off multiplicatively (x kBackoff), else it grows
/// by one packet per epoch. Drops still halve (delay-based senders are not
/// loss-blind, they just rarely get that far).
class DavisStack final : public TcpStack {
 public:
  static constexpr std::size_t kWindowEpochs = 16;  ///< min-RTT filter depth
  static constexpr double kBackoff = 0.8;

  DavisStack(double initial_cwnd, Tick base_rtt)
      : cwnd_(initial_cwnd), queue_tolerance_(base_rtt / 8) {}

  core::TcpStackKind kind() const override { return core::TcpStackKind::kDavis; }

  void on_epoch(const TransportTelemetry& t, Tick now) override;

  double cwnd() const override { return cwnd_; }
  bool ack_on_delivery() const override { return true; }

  Tick min_rtt() const;  ///< current congestion-free baseline estimate

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  struct Snapshot {
    double cwnd = 0;
    std::array<Tick, kWindowEpochs> rtt_window{};
    std::uint64_t epochs = 0;
  };

  void save_state(Snapshot& out) const {
    out.cwnd = cwnd_;
    out.rtt_window = rtt_window_;
    out.epochs = epochs_;
  }

  void load_state(const Snapshot& s) {
    cwnd_ = s.cwnd;
    rtt_window_ = s.rtt_window;
    epochs_ = s.epochs;
  }

  std::shared_ptr<const void> save_blob() const override;
  void load_blob(const void* blob) override;

 private:
  double cwnd_;
  // hostnet-audit: skip(queue_tolerance_, derived from base_rtt at construction; never mutates)
  Tick queue_tolerance_;
  std::array<Tick, kWindowEpochs> rtt_window_{};  ///< per-epoch min RTT (0 = none)
  std::uint64_t epochs_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(DctcpStack);
HOSTNET_SNAPSHOT_COVERS(BbrStack);
HOSTNET_SNAPSHOT_COVERS(DavisStack);

/// Build the stack a TcpConfig selects (defined in net/tcp_stacks.cpp).
std::unique_ptr<TcpStack> make_tcp_stack(const TcpConfig& cfg);

/// Map a TcpSpec onto the receiver's full config (unspecified knobs keep
/// the TcpConfig defaults).
TcpConfig tcp_config(const core::TcpSpec& spec);

/// Canonical TcpSpec for a stack kind (the fleet grammar's tcp_* zoo).
core::TcpSpec tcp_spec(core::TcpStackKind kind);

/// Fleet p2m-workload zoo entry: "tcp_dctcp" / "tcp_bbr" / "tcp_davis" to a
/// spec, or nullopt for non-TCP workload names.
std::optional<core::TcpSpec> tcp_p2m_workload(const std::string& name);

/// "dctcp" / "bbr" / "davis" to a kind (the `set tcp.stack` values), or
/// nullopt for anything else.
std::optional<core::TcpStackKind> tcp_stack_kind(const std::string& name);

/// Point core::run_workloads at the net-layer transport factory. Idempotent;
/// runs at static-init time whenever this translation unit is linked, and
/// callable explicitly by embedders that want to be certain.
void install_tcp_factory();

}  // namespace hostnet::net
