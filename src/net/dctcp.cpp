#include "net/dctcp.hpp"

#include <algorithm>
#include <cassert>

#include "workloads/workloads.hpp"

namespace hostnet::net {

// ---------------------------------------------------------------------------
// CopyCore
// ---------------------------------------------------------------------------

namespace {
constexpr std::uint64_t kPhaseSocketRead = 0;
constexpr std::uint64_t kPhaseAppRfo = 1;
}  // namespace

CopyCore::CopyCore(sim::Simulator& sim, cha::Cha& cha, const cpu::CoreConfig& cfg,
                   mem::Region socket_buf, mem::Region app_buf, Tick proto_time,
                   std::uint32_t lines_per_packet, bool app_in_cache, std::uint16_t id)
    : sim_(sim),
      cha_(cha),
      cfg_(cfg),
      socket_buf_(socket_buf),
      app_buf_(app_buf),
      proto_time_(proto_time),
      lines_per_packet_(lines_per_packet),
      app_in_cache_(app_in_cache),
      id_(id) {
  flow::CreditPoolSpec spec;
  spec.name = "net.copy.lfb";
  spec.capacity = cfg_.lfb_entries;
  lfb_pool_.configure(spec);
}

void CopyCore::notify_work() { try_start_packet(); }

void CopyCore::try_start_packet() {
  if (busy_ || ring_ == nullptr || ring_->empty()) return;
  ring_->pop_front();
  busy_ = true;
  // Protocol processing (socket bookkeeping, TCP/IP) before the copy; this
  // is the ~50% non-copy CPU time the paper cites from [10].
  sim_.schedule(proto_time_, [this] {
    lines_to_issue_ = lines_per_packet_;
    lines_outstanding_ = lines_per_packet_;
    pump();
  });
}

void CopyCore::pump() {
  while (lfb_pool_.has_space() && lines_to_issue_ > 0) {
    --lines_to_issue_;
    const std::uint64_t line = line_cursor_++ % socket_buf_.lines();
    lfb_pool_.acquire(sim_.now());
    mem::Request req;
    req.addr = socket_buf_.base + line * kCachelineBytes;
    req.op = mem::Op::kRead;
    req.source = mem::Source::kCpu;
    req.origin = id_;
    req.created = sim_.now();
    req.completer = this;
    req.tag = kPhaseSocketRead;
    sim_.schedule(cfg_.t_core_to_cha, [this, req] { send_to_cha(req); });
  }
}

void CopyCore::send_to_cha(mem::Request req) {
  if (cha_.try_submit(req)) {
    cha_.record_admission_wait(req.cls(), 0);
    return;
  }
  auto& q = req.op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  q.push_back(Blocked{req, sim_.now()});
  cha_.wait_for_admission(req.op, this, mem::Source::kCpu);
}

bool CopyCore::on_cha_admission(mem::Op op) {
  auto& q = op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  if (q.empty()) return false;
  Blocked b = q.front();
  if (!cha_.try_submit(b.req)) {
    cha_.wait_for_admission(op, this, mem::Source::kCpu);
    return false;
  }
  q.pop_front();
  cha_.record_admission_wait(b.req.cls(), sim_.now() - b.since);
  if (!q.empty()) cha_.wait_for_admission(op, this, mem::Source::kCpu);
  return true;
}

void CopyCore::complete(const mem::Request& req, Tick now) {
  if (req.op == mem::Op::kRead && req.tag == kPhaseSocketRead && !app_in_cache_) {
    // Socket data in registers; now RFO the destination app-buffer line
    // (same LFB slot, next phase).
    const std::uint64_t line = (req.addr - socket_buf_.base) / kCachelineBytes;
    mem::Request rfo;
    rfo.addr = app_buf_.base + (line % app_buf_.lines()) * kCachelineBytes;
    rfo.op = mem::Op::kRead;
    rfo.source = mem::Source::kCpu;
    rfo.origin = id_;
    rfo.created = req.created;
    rfo.completer = this;
    rfo.tag = kPhaseAppRfo;
    sim_.schedule(cfg_.t_core_to_cha, [this, rfo] { send_to_cha(rfo); });
    return;
  }
  if (req.op == mem::Op::kRead && req.tag == kPhaseAppRfo) {
    // Destination line owned; hand the write to the CHA (C2M-Write domain).
    mem::Request wr;
    wr.addr = req.addr;
    wr.op = mem::Op::kWrite;
    wr.source = mem::Source::kCpu;
    wr.origin = id_;
    wr.created = req.created;
    wr.completer = this;
    sim_.schedule(cfg_.t_wb_to_cha, [this, wr] { send_to_cha(wr); });
    return;
  }

  // Write acknowledged by the CHA: the line is copied, slot freed.
  lfb_pool_.release(now, req.created);
  ++lines_copied_;
  assert(lines_outstanding_ > 0);
  --lines_outstanding_;
  if (lines_outstanding_ == 0 && lines_to_issue_ == 0) {
    ++packets_copied_;
    busy_ = false;
    if (on_packet_copied_) on_packet_copied_();
    try_start_packet();
  } else {
    pump();
  }
}

// ---------------------------------------------------------------------------
// TcpReceiver
// ---------------------------------------------------------------------------

TcpReceiver::TcpReceiver(core::HostSystem& host, const TcpConfig& cfg)
    : host_(host), cfg_(cfg), stack_(make_tcp_stack(cfg)) {
  NicConfig nc = cfg_.nic;
  nc.autonomous = false;
  nc.pfc = false;
  nc.wire_gb_per_s = cfg_.wire_gb_per_s;
  nc.pcie_gb_per_s = host.config().pcie_write_gb_per_s;
  nc.mtu_bytes = cfg_.mtu_bytes;
  if (nc.region.bytes == 0 || nc.region.base == 0) nc.region = workloads::p2m_region();
  nic_ = std::make_unique<NicDevice>(host.sim(), host.iio(), nc);
  nic_->set_packet_delivered_cb([this](Tick now) { on_packet_delivered(now); });

  const std::uint32_t lines_per_packet = cfg_.mtu_bytes / kCachelineBytes;
  cpu::CoreConfig copy_cfg = host.config().core;
  copy_cfg.lfb_entries = cfg_.copy_width;
  for (std::uint32_t i = 0; i < cfg_.copy_cores; ++i) {
    mem::Region app{(160ull + i) << 30, 1ull << 30};
    auto cc = std::make_unique<CopyCore>(host.sim(), host.cha(), copy_cfg, nc.region,
                                         app, cfg_.proto_ns_per_packet, lines_per_packet,
                                         cfg_.app_buffer_cache_resident,
                                         static_cast<std::uint16_t>(1000 + i));
    cc->set_ring(&ring_, [this] { on_packet_copied(); });
    copy_cores_.push_back(std::move(cc));
  }

  host.attach(core::ExternalHooks{
      [this] { start(); },
      [this](Tick now) { reset(now); },
      [this]() -> std::shared_ptr<const void> {
        auto snap = std::make_shared<Snapshot>();
        save_state(*snap);
        return snap;
      },
      [this](const std::shared_ptr<const void>& blob) {
        load_state(*static_cast<const Snapshot*>(blob.get()));
      }});
}

void TcpReceiver::start() {
  sender_pump();
  host_.sim().schedule(cfg_.base_rtt, [this] { rtt_epoch(); });
}

void TcpReceiver::reset(Tick now) {
  nic_->reset_counters(now);
  for (auto& c : copy_cores_) c->reset_counters(now);
  window_start_ = now;
  packets_copied_ = packets_offered_ = packets_dropped_ = 0;
  packets_marked_ = packets_accepted_ = 0;
  telemetry_.reset_window();
}

void TcpReceiver::sender_pump() {
  if (wire_busy_) return;
  const double rwnd = static_cast<double>(cfg_.ring_packets) -
                      static_cast<double>(ring_.size());
  const double window = std::min(stack_->cwnd(), std::max(rwnd, 0.0));
  if (static_cast<double>(inflight_) >= window) return;

  const Tick now = host_.sim().now();
  // Pacing gate (BBR-style stacks). DCTCP's gate is constant 0, so its
  // event stream -- and the fig goldens -- are untouched by this branch.
  const Tick pace = stack_->pacing_gate(now);
  if (pace > 0) {
    if (!pacing_wait_) {
      pacing_wait_ = true;
      host_.sim().schedule(pace, [this] {
        pacing_wait_ = false;
        sender_pump();
      });
    }
    return;
  }

  ++inflight_;
  ++packets_offered_;
  wire_busy_ = true;
  stack_->on_send(now);
  const Tick t_packet = serialization_ticks(cfg_.mtu_bytes, cfg_.wire_gb_per_s);
  host_.sim().schedule(t_packet, [this] {
    wire_busy_ = false;
    sender_pump();
  });
  // One-way latency to the receiver NIC.
  const Tick sent = now;
  host_.sim().schedule(t_packet + cfg_.base_rtt / 2, [this, sent] {
    bool marked = false;
    const bool accepted = nic_->offer_packet(&marked);
    if (!accepted) {
      ++packets_dropped_;
      ++telemetry_.epoch_drops;
      stack_->on_drop(host_.sim().now());
      // Loss detected a round-trip later (fast retransmit).
      host_.sim().schedule(cfg_.base_rtt, [this] {
        assert(inflight_ > 0);
        --inflight_;
        sender_pump();
      });
      return;
    }
    ++packets_accepted_;
    if (marked) {
      ++packets_marked_;
      ++telemetry_.epoch_marks;
    }
    if (stack_->ack_on_delivery()) {
      // ACK released at DMA completion (on_packet_delivered), so the
      // measured RTT carries the host-side backlog.
      pending_acks_.push_back(sent);
    } else {
      // ACK returns after the remaining half RTT.
      host_.sim().schedule(cfg_.base_rtt / 2, [this, sent] { on_ack(sent); });
    }
  });
}

void TcpReceiver::on_ack(Tick sent) {
  const Tick now = host_.sim().now();
  ++telemetry_.epoch_acks;
  telemetry_.note_rtt(now - sent);
  stack_->on_ack(now - sent, now);
  assert(inflight_ > 0);
  --inflight_;
  sender_pump();
}

void TcpReceiver::on_packet_delivered(Tick now) {
  ring_.push_back(now);
  for (auto& c : copy_cores_) c->notify_work();
  if (!pending_acks_.empty()) {
    // Deliveries happen in accept order, so the oldest pending send is the
    // one this DMA completion belongs to. Empty unless ack_on_delivery().
    const Tick sent = pending_acks_.front();
    pending_acks_.pop_front();
    host_.sim().schedule(cfg_.base_rtt / 2, [this, sent] { on_ack(sent); });
  }
}

void TcpReceiver::on_packet_copied() {
  ++packets_copied_;
  sender_pump();  // receive window freed
}

void TcpReceiver::rtt_epoch() {
  stack_->on_epoch(telemetry_, host_.sim().now());
  telemetry_.cwnd_sum += stack_->cwnd();
  ++telemetry_.cwnd_samples;
  telemetry_.clear_epoch();
  host_.sim().schedule(cfg_.base_rtt, [this] { rtt_epoch(); });
}

double TcpReceiver::goodput_gbps(Tick now) const {
  const Tick w = now - window_start_;
  return gb_per_s(packets_copied_ * cfg_.mtu_bytes, w);
}

double TcpReceiver::p2m_gbps(Tick now) const {
  const Tick w = now - window_start_;
  return gb_per_s(nic_->bytes_dma(), w);
}

double TcpReceiver::loss_rate() const {
  return packets_offered_ > 0
             ? static_cast<double>(packets_dropped_) / static_cast<double>(packets_offered_)
             : 0.0;
}

double TcpReceiver::mark_fraction() const {
  return packets_accepted_ > 0
             ? static_cast<double>(packets_marked_) / static_cast<double>(packets_accepted_)
             : 0.0;
}

double TcpReceiver::avg_cwnd() const {
  return telemetry_.avg_cwnd(stack_->cwnd());
}

double TcpReceiver::copy_lfb_latency_ns() const {
  double sum = 0;
  std::uint64_t n = 0;
  for (const auto& c : copy_cores_) {
    auto& s = const_cast<CopyCore&>(*c).lfb_station();
    if (s.completions() > 0) {
      sum += s.mean_latency_ns() * static_cast<double>(s.completions());
      n += s.completions();
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TcpReceiver::copy_lfb_occupancy(Tick now) const {
  double sum = 0;
  for (const auto& c : copy_cores_)
    sum += const_cast<CopyCore&>(*c).lfb_station().avg_occupancy(now);
  return sum;
}

}  // namespace hostnet::net
