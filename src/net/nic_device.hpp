// RDMA-capable NIC model (receive side).
//
// Incoming wire traffic lands in a finite on-NIC RX buffer and is drained
// by DMA writes through the IIO (consuming IIO write-buffer credits). Two
// loss-handling modes, matching the paper's case studies (Appendix C/D):
//
//   * PFC (RoCE): when the RX buffer crosses the pause threshold, the NIC
//     sends PFC pauses upstream -- arrivals stop, nothing is lost, and the
//     paused-time fraction is what the paper reports (22-43% in quadrant 3).
//   * Lossy (+ ECN for DCTCP): packets arriving to a full buffer are
//     dropped; packets are ECN-marked when the buffer exceeds the marking
//     threshold.
//
// The NIC can generate its own line-rate arrivals (ib_write_bw-style), or
// be fed packet-by-packet by a transport model (the DCTCP sender).
#pragma once

#include <cstdint>
#include <functional>

#include "common/snapshot.hpp"
#include "iio/iio.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::net {

struct NicConfig {
  double wire_gb_per_s = 12.25;        ///< 98 Gbps effective
  double pcie_gb_per_s = 14.0;         ///< host-side DMA bandwidth
  std::uint32_t mtu_bytes = 4096;
  std::uint64_t rx_buffer_bytes = 512 << 10;
  bool autonomous = true;              ///< self-generate line-rate arrivals
  // TX (DMA reads from host memory toward the wire); 0 disables the path.
  double tx_gb_per_s = 0;
  mem::Region tx_region{};             ///< TX payload source; defaults to `region`
  // PFC
  bool pfc = true;
  std::uint64_t pause_threshold = 384 << 10;
  std::uint64_t resume_threshold = 192 << 10;
  // ECN (lossy mode)
  std::uint64_t ecn_threshold = 128 << 10;
  mem::Region region{};                ///< DMA target (RX ring buffers)
};

class NicDevice final : public iio::Device {
 public:
  NicDevice(sim::Simulator& sim, iio::Iio& iio, const NicConfig& cfg);

  void start();
  void reset_counters(Tick now);

  /// Feed one packet from a transport model (non-autonomous mode). Returns
  /// false if the packet was dropped (RX buffer full). `*ecn_marked` is set
  /// when the packet was accepted above the marking threshold.
  bool offer_packet(bool* ecn_marked);

  /// Invoked when a packet has been fully DMA-written toward memory (per
  /// accepted packet, in arrival order). Used by the DCTCP model to hand
  /// the packet to the kernel. One-time wiring: the std::function is
  /// assigned at construction and only invoked on the hot path.
  // hostnet-lint: allow(hot-alloc)
  void set_packet_delivered_cb(std::function<void(Tick)> cb) {
    packet_delivered_ = std::move(cb);
  }

  // -- iio::Device ------------------------------------------------------------
  void on_credit_available(mem::Op op) override;
  void on_read_data(std::uint64_t tag, Tick now) override;

  // -- measurement ------------------------------------------------------------
  std::uint64_t bytes_accepted() const { return bytes_accepted_; }
  std::uint64_t bytes_dma() const { return bytes_dma_; }
  std::uint64_t bytes_tx() const { return bytes_tx_; }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  std::uint64_t packets_accepted() const { return packets_accepted_; }
  std::uint64_t packets_marked() const { return packets_marked_; }
  std::uint64_t buffer_occupancy_bytes() const { return buffer_bytes_; }
  bool paused() const { return paused_; }
  double pause_fraction(Tick now) const;

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, iio_, cfg_, t_*) and the packet_delivered_ wiring are
  // construction state; everything the traffic mutates is below.
  struct Snapshot {
    std::uint64_t buffer_bytes = 0;
    std::uint64_t dma_line_cursor = 0;
    std::uint64_t tx_line_cursor = 0;
    std::uint64_t lines_in_current_packet = 0;
    bool link_busy = false;
    bool tx_link_busy = false;
    bool waiting_write_credit = false;
    bool waiting_read_credit = false;
    bool paused = false;
    bool arrival_scheduled = false;
    std::uint64_t bytes_accepted = 0;
    std::uint64_t bytes_dma = 0;
    std::uint64_t bytes_tx = 0;
    std::uint64_t packets_accepted = 0;
    std::uint64_t packets_dropped = 0;
    std::uint64_t packets_marked = 0;
    Tick pause_started = 0;
    Tick paused_time = 0;
    Tick window_start = 0;
  };

  void save_state(Snapshot& out) const {
    out.buffer_bytes = buffer_bytes_;
    out.dma_line_cursor = dma_line_cursor_;
    out.tx_line_cursor = tx_line_cursor_;
    out.lines_in_current_packet = lines_in_current_packet_;
    out.link_busy = link_busy_;
    out.tx_link_busy = tx_link_busy_;
    out.waiting_write_credit = waiting_write_credit_;
    out.waiting_read_credit = waiting_read_credit_;
    out.paused = paused_;
    out.arrival_scheduled = arrival_scheduled_;
    out.bytes_accepted = bytes_accepted_;
    out.bytes_dma = bytes_dma_;
    out.bytes_tx = bytes_tx_;
    out.packets_accepted = packets_accepted_;
    out.packets_dropped = packets_dropped_;
    out.packets_marked = packets_marked_;
    out.pause_started = pause_started_;
    out.paused_time = paused_time_;
    out.window_start = window_start_;
  }

  void load_state(const Snapshot& s) {
    buffer_bytes_ = s.buffer_bytes;
    dma_line_cursor_ = s.dma_line_cursor;
    tx_line_cursor_ = s.tx_line_cursor;
    lines_in_current_packet_ = s.lines_in_current_packet;
    link_busy_ = s.link_busy;
    tx_link_busy_ = s.tx_link_busy;
    waiting_write_credit_ = s.waiting_write_credit;
    waiting_read_credit_ = s.waiting_read_credit;
    paused_ = s.paused;
    arrival_scheduled_ = s.arrival_scheduled;
    bytes_accepted_ = s.bytes_accepted;
    bytes_dma_ = s.bytes_dma;
    bytes_tx_ = s.bytes_tx;
    packets_accepted_ = s.packets_accepted;
    packets_dropped_ = s.packets_dropped;
    packets_marked_ = s.packets_marked;
    pause_started_ = s.pause_started;
    paused_time_ = s.paused_time;
    window_start_ = s.window_start;
  }

 private:
  void arrival();
  void schedule_arrival();
  void pump();
  void tx_pump();
  void note_pause(Tick now, bool pause);

  sim::Simulator& sim_;
  iio::Iio& iio_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  NicConfig cfg_;
  // hostnet-audit: skip(t_line_, derived from cfg_ bandwidth at construction; never mutates)
  Tick t_line_;       ///< PCIe serialization per cacheline
  // hostnet-audit: skip(t_packet_, derived from cfg_ bandwidth at construction; never mutates)
  Tick t_packet_;     ///< wire serialization per MTU packet
  // hostnet-audit: skip(t_tx_line_, derived from cfg_ bandwidth at construction; never mutates)
  Tick t_tx_line_;    ///< TX wire serialization per cacheline (0 = TX off)

  std::uint64_t buffer_bytes_ = 0;
  std::uint64_t dma_line_cursor_ = 0;
  std::uint64_t tx_line_cursor_ = 0;
  std::uint64_t lines_in_current_packet_ = 0;
  bool link_busy_ = false;
  bool tx_link_busy_ = false;
  // RX (DMA write) and TX (DMA read) pumps stall on different IIO pools, so
  // each tracks its own wait; a freed credit of one op must not wake the
  // other pump.
  bool waiting_write_credit_ = false;
  bool waiting_read_credit_ = false;
  bool paused_ = false;
  bool arrival_scheduled_ = false;

  std::uint64_t bytes_accepted_ = 0;
  std::uint64_t bytes_dma_ = 0;
  std::uint64_t bytes_tx_ = 0;
  std::uint64_t packets_accepted_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_marked_ = 0;
  Tick pause_started_ = 0;
  Tick paused_time_ = 0;
  Tick window_start_ = 0;

  // hostnet-audit: skip(packet_delivered_, callback wiring installed at build; restore targets the same host)
  // hostnet-lint: allow(hot-alloc)  -- invoked per packet, assigned once at build
  std::function<void(Tick)> packet_delivered_;
};

HOSTNET_SNAPSHOT_COVERS(NicDevice);

}  // namespace hostnet::net
