// Snapshot-coverage descriptors for the checkpoint/fork layer (DESIGN.md
// section 4e).
//
// Every stateful component declares save_state()/load_state() against a
// hand-maintained Snapshot struct. The failure mode of that pattern is
// silent: a new mutable member compiles fine, runs fine, and simply escapes
// checkpointing -- a restored host then diverges from a cold run in ways
// the differential tests may take a long time to trip over.
//
// HOSTNET_SNAPSHOT_COVERS(T, N) closes the gap with a size tripwire: it
// static_asserts sizeof(T) against the value recorded when T's Snapshot was
// last audited. Adding (or resizing) a member changes sizeof(T) and breaks
// the build at the descriptor, whose message tells the author to extend
// T::Snapshot and save_state()/load_state() before bumping N. hostnet-lint's
// `snapshot-coverage` rule enforces that every class declaring save_state()
// carries a descriptor.
//
// sizeof is ABI-specific, so the assert is active only on the blessed ABI
// every CI configuration shares: x86-64 libstdc++ with the checked-build
// instrumentation off (HOSTNET_CHECKED swaps CreditLedger for a real
// object, changing pool sizes). Everywhere else the descriptor still
// documents coverage and satisfies the lint, but asserts nothing.
#pragma once

#include <cstddef>

// HOSTNET_SNAPSHOT_SIZE_PROBE disables the asserts so a probe translation
// unit can print the authoritative sizes for refreshing descriptors
// (tools/snapshot_sizes.cpp); never define it in a real build.
#if defined(__GLIBCXX__) && defined(__x86_64__) && !defined(_GLIBCXX_DEBUG) && \
    !(defined(HOSTNET_CHECKED) && HOSTNET_CHECKED) &&                          \
    !defined(HOSTNET_SNAPSHOT_SIZE_PROBE)
#define HOSTNET_SNAPSHOT_COVERS(T, N)                                                 \
  static_assert(sizeof(T) == (N),                                                     \
                "sizeof(" #T ") changed: a member was added, removed or resized. "    \
                "Extend " #T "::Snapshot and save_state()/load_state() so the new "   \
                "state cannot escape checkpointing, then update this descriptor")
#else
#define HOSTNET_SNAPSHOT_COVERS(T, N) \
  static_assert(sizeof(T) > 0, "snapshot descriptor (size not asserted on this ABI)")
#endif
