// Snapshot-coverage descriptors for the checkpoint/fork layer (DESIGN.md
// section 4e).
//
// Every stateful component declares save_state()/load_state() against a
// hand-maintained Snapshot struct. The failure mode of that pattern is
// silent: a new mutable member compiles fine, runs fine, and simply escapes
// checkpointing -- a restored host then diverges from a cold run in ways
// the differential tests may take a long time to trip over.
//
// HOSTNET_SNAPSHOT_COVERS(T) marks T as a checkpointable component and
// static_asserts the contract: T must expose a nested `Snapshot` type and a
// `void save_state(Snapshot&) const`. The descriptor is ABI-independent
// (it used to pin sizeof(T), which broke on compiler/ABI drift and could
// not say *which* member a change forgot); the field-level tripwire now
// lives in tools/hostnet_audit.py, which statically verifies that every
// data member of every descriptor-carrying class is mentioned by both
// save_state() and load_state() -- or carries an audited `skip(field,
// reason)` suppression in a hostnet-audit comment -- and records the
// result in the checked-in manifest, tools/snapshot_manifest.json. (That
// suppression spelling is paraphrased here; the literal directive would
// trip the auditor's own bad-directive check outside a class.) After
// changing any
// audited class, refresh it with:
//
//   python3 tools/hostnet_audit.py --write-manifest
//
// hostnet-lint's `snapshot-coverage` rule enforces that every class
// declaring save_state() carries a descriptor, so a new component cannot
// opt out of the audit by accident.
#pragma once

#include <type_traits>
#include <utility>

namespace hostnet::snapshot_detail {

template <typename T, typename = void>
struct has_snapshot_contract : std::false_type {};

template <typename T>
struct has_snapshot_contract<
    T, std::void_t<typename T::Snapshot,
                   decltype(std::declval<const T&>().save_state(
                       std::declval<typename T::Snapshot&>()))>>
    : std::true_type {};

}  // namespace hostnet::snapshot_detail

#define HOSTNET_SNAPSHOT_COVERS(T)                                                \
  static_assert(::hostnet::snapshot_detail::has_snapshot_contract<T>::value,      \
                #T " does not satisfy the snapshot contract: it needs a nested "  \
                   "Snapshot struct and 'void save_state(Snapshot&) const' "      \
                   "(restored via load_state() or, at the composition root, "     \
                   "restore()). See DESIGN.md 4e and tools/hostnet_audit.py")
