// Reusable FIFO ring buffer for the device-model hot paths.
//
// std::deque allocates/frees fixed-size blocks as elements flow through, so
// a steady per-line stream (CHA transit queues, blocked-request lists, IIO
// waiter lists) keeps the allocator on the critical path. RingBuffer keeps
// one power-of-two array that is retained across drain/refill cycles:
// after warm-up, push/pop are a store/mask each and the steady state
// performs zero allocations. Capacity grows by doubling (amortized O(1));
// it never shrinks, which is exactly the reuse we want for queues whose
// occupancy oscillates with load.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace hostnet {

template <typename T>
class RingBuffer {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  T& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  const T& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  /// i-th element from the front (0 = front).
  T& operator[](std::size_t i) {
    assert(i < count_);
    return buf_[(head_ + i) & mask()];
  }
  const T& operator[](std::size_t i) const {
    assert(i < count_);
    return buf_[(head_ + i) & mask()];
  }

  void push_back(T v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & mask()] = std::move(v);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0);
    buf_[head_] = T{};  // drop any held resources eagerly
    head_ = (head_ + 1) & mask();
    --count_;
  }

  /// Insert `v` so it becomes the `pos`-th element from the front, shifting
  /// later elements back by one. O(size - pos); used only on rare control
  /// paths (e.g. peripheral-write priority insertion), never per line.
  void insert(std::size_t pos, T v) {
    assert(pos <= count_);
    if (count_ == buf_.size()) grow();
    ++count_;
    for (std::size_t i = count_ - 1; i > pos; --i)
      buf_[(head_ + i) & mask()] = std::move(buf_[(head_ + i - 1) & mask()]);
    buf_[(head_ + pos) & mask()] = std::move(v);
  }

  void clear() {
    while (count_ > 0) pop_front();
  }

 private:
  std::size_t mask() const { return buf_.size() - 1; }

  void grow() {
    const std::size_t old_cap = buf_.size();
    const std::size_t new_cap = old_cap == 0 ? 8 : old_cap * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & (old_cap - 1)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace hostnet
