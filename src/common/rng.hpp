// Deterministic pseudo-random number generation.
//
// Every stochastic component owns its own Rng seeded from the experiment
// seed, so simulations are exactly reproducible and components do not
// perturb each other's random streams.
#pragma once

#include <cstdint>

namespace hostnet {

/// SplitMix64; used to expand a single seed into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** -- fast, high-quality, 64-bit PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853C49E6748FEA9BULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) (bound > 0). Uses Lemire's method.
  std::uint64_t below(std::uint64_t bound) {
    const std::uint64_t x = next();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability `p`.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent seeded stream (for child components).
  Rng fork() { return Rng{next()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace hostnet
