// Core unit types shared across the simulator.
//
// Time is an integer count of picoseconds so that event ordering is exact and
// runs are reproducible; DRAM timing parameters (e.g. tTrans = 2.73 ns) are
// representable without rounding surprises.
#pragma once

#include <cstdint>

namespace hostnet {

/// Simulated time in picoseconds.
using Tick = std::int64_t;

inline constexpr Tick kPicosecond = 1;
inline constexpr Tick kNanosecond = 1'000;
inline constexpr Tick kMicrosecond = 1'000'000;
inline constexpr Tick kMillisecond = 1'000'000'000;

/// Cacheline size in bytes; the unit of transfer everywhere in the host
/// network (the paper's credit law is expressed in 64 B cachelines).
inline constexpr std::uint64_t kCachelineBytes = 64;

constexpr Tick ns(double v) { return static_cast<Tick>(v * kNanosecond); }
constexpr Tick us(double v) { return static_cast<Tick>(v * kMicrosecond); }
constexpr Tick ms(double v) { return static_cast<Tick>(v * kMillisecond); }

constexpr double to_ns(Tick t) { return static_cast<double>(t) / kNanosecond; }
constexpr double to_us(Tick t) { return static_cast<double>(t) / kMicrosecond; }
constexpr double to_ms(Tick t) { return static_cast<double>(t) / kMillisecond; }
constexpr double to_s(Tick t) { return static_cast<double>(t) / (kMillisecond * 1000); }

/// Throughput of `bytes` transferred over `dt` ticks, in GB/s (1e9 bytes/s).
constexpr double gb_per_s(std::uint64_t bytes, Tick dt) {
  if (dt <= 0) return 0.0;
  return static_cast<double>(bytes) * 1000.0 / static_cast<double>(dt);
}

/// Time to serialize `bytes` at `rate_gb_per_s` (GB/s), in ticks.
constexpr Tick serialization_ticks(std::uint64_t bytes, double rate_gb_per_s) {
  return static_cast<Tick>(static_cast<double>(bytes) * 1000.0 / rate_gb_per_s);
}

}  // namespace hostnet
