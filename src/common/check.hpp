// Checked-invariant build mode (DESIGN.md section 4c).
//
// hostnet-lint (tools/hostnet_lint.py) proves determinism and allocation
// discipline statically, but the accounting invariants the analytical
// formula rests on -- credit conservation, request conservation, event-time
// monotonicity, arena occupancy -- live at runtime seams the lint cannot
// see. HOSTNET_INVARIANT() checks them in builds configured with
// -DHOSTNET_CHECKED=ON (CMake adds -DHOSTNET_CHECKED=1 to every TU) and
// compiles to nothing otherwise: the release hot path must stay byte-for-
// byte identical, which scripts/ci_static_analysis.sh proves by holding
// BM_HostSimulation within 10% of the committed baseline.
//
// Unlike assert(), HOSTNET_INVARIANT survives NDEBUG: checked builds are
// regular RelWithDebInfo builds plus the invariant instrumentation, so the
// full tier-1 suite runs at realistic speed with every seam audited.
//
// The condition expression is NOT evaluated in unchecked builds. State that
// exists only to feed invariants (conservation ledgers) should live in a
// CreditLedger, whose unchecked variant is an empty shell that optimizes
// away entirely.
#pragma once

#ifndef HOSTNET_CHECKED
#define HOSTNET_CHECKED 0
#endif

#if HOSTNET_CHECKED

#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// Abort with a diagnostic when `cond` is false. `...` is a printf-style
/// message (format string first) naming the conserved quantity and the
/// observed values -- death tests match on "HOSTNET_INVARIANT".
#define HOSTNET_INVARIANT(cond, ...)                                          \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "HOSTNET_INVARIANT failed: %s\n  at %s:%d\n  ",    \
                   #cond, __FILE__, __LINE__);                                \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fputc('\n', stderr);                                               \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

namespace hostnet {

/// Double-entry bookkeeping for a credit/request pool. Components keep their
/// own in-use counters on the hot path; the ledger independently counts
/// acquire/release transitions, and verify() cross-checks the two at quiesce
/// points (HostSystem::reset_counters / collect, i.e. between events). A
/// leaked or double-released credit makes the two accounts disagree even
/// when the component's own counter still looks plausible.
class CreditLedger {
 public:
  /// `capacity` of 0 means unbounded (pure conservation, no cap check).
  void set_capacity(std::uint64_t capacity) { capacity_ = capacity; }

  void acquire() { ++acquired_; }
  void release() { ++released_; }

  std::uint64_t acquired() const { return acquired_; }
  std::uint64_t released() const { return released_; }
  std::uint64_t outstanding() const { return acquired_ - released_; }

  /// Conservation at a quiesce point: every acquired credit was either
  /// released or is still held (`in_use`, the component's own counter), and
  /// holdings never exceed the pool capacity.
  void verify(std::uint64_t in_use, const char* pool) const {
    HOSTNET_INVARIANT(released_ <= acquired_,
                      "%s: released %llu credits but only %llu were acquired "
                      "(double release)",
                      pool, static_cast<unsigned long long>(released_),
                      static_cast<unsigned long long>(acquired_));
    HOSTNET_INVARIANT(outstanding() == in_use,
                      "%s: ledger holds %llu credits outstanding but the pool "
                      "counter says %llu (acquired=%llu released=%llu): a credit "
                      "was leaked or double-released",
                      pool, static_cast<unsigned long long>(outstanding()),
                      static_cast<unsigned long long>(in_use),
                      static_cast<unsigned long long>(acquired_),
                      static_cast<unsigned long long>(released_));
    HOSTNET_INVARIANT(capacity_ == 0 || outstanding() <= capacity_,
                      "%s: %llu credits outstanding exceeds capacity %llu",
                      pool, static_cast<unsigned long long>(outstanding()),
                      static_cast<unsigned long long>(capacity_));
  }

 private:
  std::uint64_t capacity_ = 0;
  std::uint64_t acquired_ = 0;
  std::uint64_t released_ = 0;
};

}  // namespace hostnet

#else  // !HOSTNET_CHECKED

/// Compiled out entirely: the condition and message are never evaluated, so
/// invariants are free to reference checked-only state guarded elsewhere.
#define HOSTNET_INVARIANT(cond, ...) \
  do {                               \
  } while (0)

namespace hostnet {

/// Empty shell: every member is an inline no-op, so ledger updates on the
/// hot path vanish in unchecked builds (the perf gate in
/// scripts/ci_static_analysis.sh proves it).
class CreditLedger {
 public:
  void set_capacity(unsigned long long) {}
  void acquire() {}
  void release() {}
  unsigned long long acquired() const { return 0; }
  unsigned long long released() const { return 0; }
  unsigned long long outstanding() const { return 0; }
  void verify(unsigned long long, const char*) const {}
};

}  // namespace hostnet

#endif  // HOSTNET_CHECKED
