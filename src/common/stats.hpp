// Small statistics helpers used by the simulated PMU and the bench harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/units.hpp"

namespace hostnet {

/// Streaming mean / min / max / count over double samples.
class MeanAccumulator {
 public:
  void add(double v) {
    ++n_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  void reset() { *this = {}; }
  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of an integer level (queue occupancy, credits in
/// use, ...). Mirrors how Intel uncore counters aggregate occupancy every
/// cycle; we integrate exactly over event time instead.
class TimeWeighted {
 public:
  void set(Tick now, std::int64_t level) {
    integrate(now);
    level_ = level;
    max_ = std::max(max_, level_);
  }
  void add(Tick now, std::int64_t delta) { set(now, level_ + delta); }

  /// Start a measurement window at `now` (discard history).
  void reset(Tick now) {
    last_ = now;
    start_ = now;
    integral_ = 0.0;
    max_ = level_;
    time_at_cap_ = 0;
  }

  /// Mark `level >= cap` time (used for "WPQ full" fractions).
  void set_cap(std::int64_t cap) { cap_ = cap; }

  std::int64_t level() const { return level_; }
  std::int64_t max_level() const { return max_; }

  double average(Tick now) {
    integrate(now);
    const Tick dt = now - start_;
    return dt > 0 ? integral_ / static_cast<double>(dt) : static_cast<double>(level_);
  }

  /// Fraction of window time spent with level >= cap.
  double fraction_at_cap(Tick now) {
    integrate(now);
    const Tick dt = now - start_;
    return dt > 0 ? static_cast<double>(time_at_cap_) / static_cast<double>(dt) : 0.0;
  }

 private:
  void integrate(Tick now) {
    if (now > last_) {
      integral_ += static_cast<double>(level_) * static_cast<double>(now - last_);
      if (cap_ > 0 && level_ >= cap_) time_at_cap_ += now - last_;
      last_ = now;
    }
  }

  std::int64_t level_ = 0;
  std::int64_t max_ = 0;
  std::int64_t cap_ = 0;
  Tick last_ = 0;
  Tick start_ = 0;
  Tick time_at_cap_ = 0;
  double integral_ = 0.0;
};

/// Collects samples and reports quantiles / CDF points.
class SampleSet {
 public:
  void add(double v) { samples_.push_back(v); }
  void reset() { samples_.clear(); }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (double v : samples_) s += v;
    return s / static_cast<double>(samples_.size());
  }

  /// Quantile in [0,1]; sorts a copy.
  double quantile(double q) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> v = samples_;
    std::sort(v.begin(), v.end());
    const double idx = q * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, v.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v[lo] * (1.0 - frac) + v[hi] * frac;
  }

  /// Fraction of samples >= threshold (for "bank deviation >= 1.5x" stats).
  double fraction_at_least(double threshold) const {
    if (samples_.empty()) return 0.0;
    std::size_t c = 0;
    for (double v : samples_)
      if (v >= threshold) ++c;
    return static_cast<double>(c) / static_cast<double>(samples_.size());
  }

  const std::vector<double>& values() const { return samples_; }

 private:
  std::vector<double> samples_;
};

/// Relative error of an estimate vs. a measurement, in percent; positive
/// means overestimation (the sign convention of the paper's Figure 11).
inline double relative_error_pct(double estimate, double measured) {
  if (measured == 0.0) return 0.0;
  return (estimate - measured) / measured * 100.0;
}

}  // namespace hostnet
