// Minimal aligned-table printer for bench binaries.
//
// Every bench prints the rows/series of one paper table or figure; this
// keeps the output format consistent and diffable.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace hostnet {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  static std::string pct(double v, int precision = 1) { return num(v, precision) + "%"; }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) width[i] = headers_[i].size();
    for (const auto& r : rows_)
      for (std::size_t i = 0; i < r.size() && i < width.size(); ++i)
        width[i] = std::max(width[i], r[i].size());

    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string{};
        os << (i ? "  " : "") << std::left << std::setw(static_cast<int>(width[i])) << c;
      }
      os << '\n';
    };
    emit(headers_);
    std::string rule;
    for (std::size_t i = 0; i < width.size(); ++i) {
      if (i) rule += "  ";
      rule += std::string(width[i], '-');
    }
    os << rule << '\n';
    for (const auto& r : rows_) emit(r);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a figure/section banner so bench output maps 1:1 to the paper.
inline void banner(const std::string& title, std::ostream& os = std::cout) {
  os << '\n' << "== " << title << " ==\n";
}

}  // namespace hostnet
