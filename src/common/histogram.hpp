// Log-bucketed latency histogram (HdrHistogram-style, base-2 buckets with
// linear sub-buckets) for tail-latency analysis. Production datacenter
// studies report host contention as *tail* latency inflation; the
// simulator records full distributions so benches can report p50/p99/p999.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace hostnet {

/// Values are recorded in nanoseconds (as integers); relative error per
/// bucket is <= 1/kSubBuckets.
class LatencyHistogram {
 public:
  static constexpr std::uint32_t kSubBucketBits = 5;  // 32 sub-buckets: ~3% error
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  static constexpr std::uint32_t kBuckets = 40;       // covers [0, ~2^40) ns

  void add(double ns) {
    if (ns < 0) ns = 0;
    const auto v = static_cast<std::uint64_t>(ns);
    ++counts_[index(v)];
    ++total_;
  }

  void reset() {
    counts_ = {};
    total_ = 0;
  }

  /// Fold another histogram into this one (bucket layout is static, so the
  /// merge is exact bucket-wise addition). The fleet aggregator relies on
  /// this: per-shard histograms merge into a fleet-wide one without ever
  /// holding per-host samples.
  void merge(const LatencyHistogram& other) {
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  std::uint64_t count() const { return total_; }

  /// Quantile in [0,1]; returns a representative (upper-bound) value in ns.
  double quantile(double q) const {
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_ - 1));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      seen += counts_[i];
      if (seen > target) return upper_bound(i);
    }
    return upper_bound(counts_.size() - 1);
  }

  double p50() const { return quantile(0.50); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }
  double max() const {
    for (std::size_t i = counts_.size(); i-- > 0;)
      if (counts_[i] > 0) return upper_bound(i);
    return 0.0;
  }

 private:
  static std::size_t index(std::uint64_t v) {
    if (v < kSubBuckets) return static_cast<std::size_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const auto bucket = static_cast<std::uint32_t>(msb) - kSubBucketBits + 1;
    const auto sub = static_cast<std::uint32_t>(v >> (msb - static_cast<int>(kSubBucketBits) + 1)) &
                     (kSubBuckets / 2 - 1);
    const std::size_t idx = kSubBuckets + (bucket - 1) * (kSubBuckets / 2) + sub;
    return idx < kTotalSlots ? idx : kTotalSlots - 1;
  }

  static double upper_bound(std::size_t idx) {
    if (idx < kSubBuckets) return static_cast<double>(idx + 1);
    const std::size_t rel = idx - kSubBuckets;
    const std::uint32_t bucket = static_cast<std::uint32_t>(rel / (kSubBuckets / 2)) + 1;
    const std::uint32_t sub = rel % (kSubBuckets / 2) + kSubBuckets / 2;
    return static_cast<double>((static_cast<std::uint64_t>(sub) + 1) << bucket);
  }

  static constexpr std::size_t kTotalSlots = kSubBuckets + kBuckets * (kSubBuckets / 2);
  std::array<std::uint64_t, kTotalSlots> counts_{};
  std::uint64_t total_ = 0;
};

}  // namespace hostnet
