// Per-memory-channel counters: the inputs of the paper's analytical formula
// (Table 2) plus the root-cause metrics of section 5 (row miss ratio, bank
// load imbalance, WPQ-full fraction, mode switches).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "mem/request.hpp"

namespace hostnet::counters {

struct McChannelCounters {
  explicit McChannelCounters(std::uint32_t banks, std::uint32_t wpq_capacity) {
    bank_window_counts.assign(banks, 0);
    wpq_occ.set_cap(wpq_capacity);
  }

  TimeWeighted rpq_occ;
  TimeWeighted wpq_occ;  ///< cap set to capacity so fraction_at_cap == "WPQ full"

  std::uint64_t lines_read = 0;
  std::uint64_t lines_written = 0;
  std::uint64_t switch_cycles = 0;  ///< completed write->read transitions

  // Row-buffer outcome counts, split by op (formula inputs #ACT, #PRE_conflict).
  std::uint64_t act_read = 0;
  std::uint64_t act_write = 0;
  std::uint64_t pre_conflict_read = 0;
  std::uint64_t pre_conflict_write = 0;
  std::uint64_t row_hit_read = 0;
  std::uint64_t row_hit_write = 0;

  // Bank-load sampling: reads per bank, snapshotted every `sample_every`
  // channel reads into a max/mean "bank deviation" sample over a 4-bank
  // subset -- mirroring the paper's methodology, which monitors 4 banks of
  // one DIMM due to hardware-counter limits (section 5.1, footnote 3).
  std::uint64_t sample_every = 1000;
  std::uint32_t sample_banks = 4;
  std::uint64_t reads_since_sample = 0;
  std::vector<std::uint64_t> bank_window_counts;
  SampleSet bank_deviation;

  void on_read_issued(std::uint32_t bank) {
    ++lines_read;
    ++reads_since_sample;
    ++bank_window_counts[bank];
    if (reads_since_sample >= sample_every) {
      const std::size_t n =
          std::min<std::size_t>(sample_banks, bank_window_counts.size());
      std::uint64_t total = 0;
      std::uint64_t max = 0;
      for (std::size_t i = 0; i < n; ++i) {
        total += bank_window_counts[i];
        max = std::max(max, bank_window_counts[i]);
      }
      if (total > 0) {
        const double mean = static_cast<double>(total) / static_cast<double>(n);
        bank_deviation.add(static_cast<double>(max) / mean);
      }
      for (auto& c : bank_window_counts) c = 0;
      reads_since_sample = 0;
    }
  }

  void on_row_result(mem::Op op, bool hit, bool conflict) {
    if (op == mem::Op::kRead) {
      if (hit) {
        ++row_hit_read;
      } else {
        ++act_read;
        if (conflict) ++pre_conflict_read;
      }
    } else {
      if (hit) {
        ++row_hit_write;
      } else {
        ++act_write;
        if (conflict) ++pre_conflict_write;
      }
    }
  }

  double row_miss_ratio_read() const {
    const std::uint64_t total = row_hit_read + act_read;
    return total ? static_cast<double>(act_read) / static_cast<double>(total) : 0.0;
  }
  double row_miss_ratio_write() const {
    const std::uint64_t total = row_hit_write + act_write;
    return total ? static_cast<double>(act_write) / static_cast<double>(total) : 0.0;
  }

  void reset(Tick now) {
    rpq_occ.reset(now);
    wpq_occ.reset(now);
    lines_read = lines_written = 0;
    switch_cycles = 0;
    act_read = act_write = 0;
    pre_conflict_read = pre_conflict_write = 0;
    row_hit_read = row_hit_write = 0;
    reads_since_sample = 0;
    for (auto& c : bank_window_counts) c = 0;
    bank_deviation.reset();
  }
};

}  // namespace hostnet::counters
