// Latency/occupancy measurement stations -- the simulated analogue of the
// Intel uncore performance monitoring counters the paper uses (section 4.2).
//
// A station tracks (a) the time-weighted occupancy O of a queue/buffer and
// (b) the completion count R over a measurement window. Average latency is
// derived with Little's law, L = O / R -- exactly the paper's methodology.
// The direct per-request latency mean is also tracked so tests can verify
// the two agree.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace hostnet::counters {

class LatencyStation {
 public:
  void enter(Tick now) { occ_.add(now, +1); }

  void leave(Tick now, Tick entered) {
    occ_.add(now, -1);
    ++completions_;
    const double l = to_ns(now - entered);
    latency_sum_ns_ += l;
    histogram_.add(l);
  }

  /// Leave without a latency sample: occupancy-only stations (pools whose
  /// hold latency is measured elsewhere) keep their integral exact without
  /// polluting the completion count or histogram.
  void leave_untimed(Tick now) { occ_.add(now, -1); }

  /// Begin a fresh measurement window at `now` (occupancy level persists).
  void reset(Tick now) {
    occ_.reset(now);
    completions_ = 0;
    latency_sum_ns_ = 0.0;
    histogram_.reset();
    window_start_ = now;
  }

  /// Full latency distribution (tail analysis).
  const LatencyHistogram& histogram() const { return histogram_; }

  std::int64_t occupancy() const { return occ_.level(); }
  std::int64_t max_occupancy() const { return occ_.max_level(); }
  double avg_occupancy(Tick now) { return occ_.average(now); }
  /// Direct access to the occupancy integral (e.g. the CHA exposes its
  /// write-tracker backlog integral as the formula's N_waiting input).
  TimeWeighted& occupancy_integral() { return occ_; }
  std::uint64_t completions() const { return completions_; }

  /// Mean latency from direct per-request measurement.
  double mean_latency_ns() const {
    return completions_ ? latency_sum_ns_ / static_cast<double>(completions_) : 0.0;
  }

  /// Mean latency via Little's law on (occupancy, completion rate); this is
  /// what the real PMU methodology produces.
  double littles_latency_ns(Tick now) {
    if (completions_ == 0) return 0.0;
    const double window_ns = to_ns(now - window_start_);
    if (window_ns <= 0.0) return 0.0;
    const double rate = static_cast<double>(completions_) / window_ns;  // per ns
    return avg_occupancy(now) / rate;
  }

 private:
  TimeWeighted occ_;
  LatencyHistogram histogram_;
  std::uint64_t completions_ = 0;
  double latency_sum_ns_ = 0.0;
  Tick window_start_ = 0;
};

}  // namespace hostnet::counters
