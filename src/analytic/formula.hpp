// The paper's analytical latency formulae (section 6, Figures 9 & 10).
//
// Given PMU-measured inputs (Table 2) the formula predicts the average
// read/write domain latency as a constant (unloaded path latency) plus the
// queueing/admission delay at the memory controller, decomposed into:
//   switching delay, write (read) head-of-line blocking, read (write)
//   head-of-line blocking, and top-of-queue PRE/ACT delay.
// Throughput then follows from Little's law: T = credits x 64 / L.
#pragma once

#include "common/units.hpp"
#include "core/metrics.hpp"
#include "dram/timing.hpp"

namespace hostnet::analytic {

/// Formula inputs (paper Table 2). All "#" quantities are counts over the
/// measurement window, aggregated across channels; occupancies are
/// per-channel averages.
struct FormulaInputs {
  double p_fill_wpq = 0;          ///< probability the WPQ is full
  double n_waiting = 0;           ///< writes awaiting WPQ admission (CHA backlog)
  double switches = 0;            ///< read<->write mode switch cycles
  double lines_read = 0;          ///< cachelines read
  double lines_written = 0;       ///< cachelines written
  double o_rpq = 0;               ///< average RPQ occupancy (per channel)
  double pre_conflict_read = 0;   ///< precharges due to row conflicts (reads)
  double pre_conflict_write = 0;
  double act_read = 0;            ///< activations (reads)
  double act_write = 0;
};

/// Extract the inputs from a measured Metrics snapshot.
FormulaInputs inputs_from_metrics(const core::Metrics& m);

struct Breakdown {
  double switching_ns = 0;
  double hol_other_ns = 0;  ///< write HoL for reads; read HoL for writes
  double hol_same_ns = 0;   ///< read HoL for reads; write HoL for writes
  double top_of_queue_ns = 0;
  double total_ns() const {
    return switching_ns + hol_other_ns + hol_same_ns + top_of_queue_ns;
  }
};

/// QD_read (Figure 9): average queueing delay at the MC for reads.
Breakdown read_queueing_delay(const FormulaInputs& in, const dram::Timing& t);

/// X_write (Figure 10): average waiting time for a write when the WPQ is
/// full. The admission delay AD_write = P_fill * X_write.
Breakdown write_waiting_time(const FormulaInputs& in, const dram::Timing& t);

/// L_read = Constant_read + QD_read.
double read_domain_latency_ns(double constant_ns, const FormulaInputs& in,
                              const dram::Timing& t);

/// L_write = Constant_write + P_fill * X_write.
double write_domain_latency_ns(double constant_ns, const FormulaInputs& in,
                               const dram::Timing& t);

/// Domain throughput estimate from average credits in use and estimated
/// latency (Little's law / the domain law).
double estimate_throughput_gbps(double credits_in_use, double latency_ns);

/// Which latency expression a workload's bottleneck domain uses.
enum class DomainKind { kC2MRead, kC2MReadWrite, kP2MRead, kP2MWrite };

struct ThroughputEstimate {
  double latency_ns = 0;
  double throughput_gbps = 0;
  Breakdown breakdown{};
  double cha_admission_delay_ns = 0;  ///< included only when requested
};

struct EstimateOptions {
  /// Add the measured CHA admission delay to the formula output (the
  /// correction the paper applies for quadrant 3 beyond 4 C2M cores).
  bool add_cha_admission_delay = false;
};

/// End-to-end throughput estimate for a workload class from measured
/// metrics. `constant_ns` values are the unloaded domain latencies (§4.2).
struct Constants {
  double c2m_read_ns = 70;
  double c2m_write_ns = 10;
  double p2m_read_ns = 0;   ///< set from the measured unloaded latency
  double p2m_write_ns = 300;
};

ThroughputEstimate estimate(DomainKind kind, const core::Metrics& m,
                            const dram::Timing& t, const Constants& c,
                            const EstimateOptions& opt = {});

}  // namespace hostnet::analytic
