#include "analytic/formula.hpp"

#include <algorithm>

namespace hostnet::analytic {

FormulaInputs inputs_from_metrics(const core::Metrics& m) {
  FormulaInputs in;
  const double nch = m.channels > 0 ? static_cast<double>(m.channels) : 1.0;
  in.p_fill_wpq = m.wpq_full_fraction;
  // The formula reasons per channel; counts are aggregated across channels,
  // so scale the extensive quantities down. Ratios (e.g. #ACT/lines) are
  // unaffected; N_waiting matters in absolute per-channel terms.
  in.n_waiting = m.n_waiting / nch;
  in.switches = static_cast<double>(m.mc_switch_cycles) / nch;
  in.lines_read = static_cast<double>(m.mc_lines_read) / nch;
  in.lines_written = static_cast<double>(m.mc_lines_written) / nch;
  in.o_rpq = m.avg_rpq_occupancy;
  in.pre_conflict_read = static_cast<double>(m.mc_pre_conflict_read) / nch;
  in.pre_conflict_write = static_cast<double>(m.mc_pre_conflict_write) / nch;
  in.act_read = static_cast<double>(m.mc_act_read) / nch;
  in.act_write = static_cast<double>(m.mc_act_write) / nch;
  return in;
}

Breakdown read_queueing_delay(const FormulaInputs& in, const dram::Timing& t) {
  Breakdown b;
  if (in.lines_read <= 0) return b;
  const double t_wtr = to_ns(t.t_wtr);
  const double t_trans = to_ns(t.t_trans);
  const double t_act = to_ns(t.t_rcd);
  const double t_pre = to_ns(t.t_rp);
  b.switching_ns = in.o_rpq * (in.switches / in.lines_read) * t_wtr;
  b.hol_other_ns = in.o_rpq * (in.lines_written / in.lines_read) * t_trans;
  b.hol_same_ns = std::max(0.0, in.o_rpq - 1.0) * t_trans;
  b.top_of_queue_ns = (in.act_read / in.lines_read) * t_act +
                      (in.pre_conflict_read / in.lines_read) * t_pre;
  return b;
}

Breakdown write_waiting_time(const FormulaInputs& in, const dram::Timing& t) {
  Breakdown b;
  if (in.lines_written <= 0) return b;
  const double t_rtw = to_ns(t.t_rtw);
  const double t_trans = to_ns(t.t_trans);
  const double t_act = to_ns(t.t_rcd);
  const double t_pre = to_ns(t.t_rp);
  b.switching_ns = in.n_waiting * (in.switches / in.lines_written) * t_rtw;
  b.hol_other_ns = in.n_waiting * (in.lines_read / in.lines_written) * t_trans;
  b.hol_same_ns = std::max(0.0, in.n_waiting - 1.0) * t_trans;
  b.top_of_queue_ns = (in.act_write / in.lines_written) * t_act +
                      (in.pre_conflict_write / in.lines_written) * t_pre;
  return b;
}

double read_domain_latency_ns(double constant_ns, const FormulaInputs& in,
                              const dram::Timing& t) {
  return constant_ns + read_queueing_delay(in, t).total_ns();
}

double write_domain_latency_ns(double constant_ns, const FormulaInputs& in,
                               const dram::Timing& t) {
  return constant_ns + in.p_fill_wpq * write_waiting_time(in, t).total_ns();
}

double estimate_throughput_gbps(double credits_in_use, double latency_ns) {
  if (latency_ns <= 0) return 0;
  return credits_in_use * static_cast<double>(kCachelineBytes) / latency_ns;
}

ThroughputEstimate estimate(DomainKind kind, const core::Metrics& m,
                            const dram::Timing& t, const Constants& c,
                            const EstimateOptions& opt) {
  const FormulaInputs in = inputs_from_metrics(m);
  ThroughputEstimate e;
  const auto wait = [&m](mem::TrafficClass cls) {
    return m.cha_admission_wait_ns[static_cast<std::size_t>(cls)];
  };

  switch (kind) {
    case DomainKind::kC2MRead: {
      e.breakdown = read_queueing_delay(in, t);
      e.latency_ns = c.c2m_read_ns + e.breakdown.total_ns();
      if (opt.add_cha_admission_delay)
        e.cha_admission_delay_ns = wait(mem::TrafficClass::kC2MRead);
      // Per-core observation times the core count = host-wide credits in use.
      const double credits = m.domain(core::Domain::kC2MRead).credits_in_use *
                             static_cast<double>(m.c2m_cores);
      e.throughput_gbps =
          estimate_throughput_gbps(credits, e.latency_ns + e.cha_admission_delay_ns);
      break;
    }
    case DomainKind::kC2MReadWrite: {
      // LFB entries are held for the read phase plus the C2M-Write phase.
      e.breakdown = read_queueing_delay(in, t);
      e.latency_ns = c.c2m_read_ns + c.c2m_write_ns + e.breakdown.total_ns();
      if (opt.add_cha_admission_delay)
        e.cha_admission_delay_ns =
            wait(mem::TrafficClass::kC2MRead) + wait(mem::TrafficClass::kC2MWrite);
      const double credits = m.domain(core::Domain::kC2MRead).credits_in_use *
                             static_cast<double>(m.c2m_cores);
      e.throughput_gbps =
          estimate_throughput_gbps(credits, e.latency_ns + e.cha_admission_delay_ns);
      break;
    }
    case DomainKind::kP2MRead: {
      e.breakdown = read_queueing_delay(in, t);
      e.latency_ns = c.p2m_read_ns + e.breakdown.total_ns();
      if (opt.add_cha_admission_delay)
        e.cha_admission_delay_ns = wait(mem::TrafficClass::kP2MRead);
      e.throughput_gbps =
          estimate_throughput_gbps(m.domain(core::Domain::kP2MRead).credits_in_use,
                                   e.latency_ns + e.cha_admission_delay_ns);
      break;
    }
    case DomainKind::kP2MWrite: {
      e.breakdown = write_waiting_time(in, t);
      e.latency_ns = c.p2m_write_ns + in.p_fill_wpq * e.breakdown.total_ns();
      if (opt.add_cha_admission_delay)
        e.cha_admission_delay_ns = wait(mem::TrafficClass::kP2MWrite);
      e.throughput_gbps =
          estimate_throughput_gbps(m.domain(core::Domain::kP2MWrite).credits_in_use,
                                   e.latency_ns + e.cha_admission_delay_ns);
      break;
    }
  }
  return e;
}

}  // namespace hostnet::analytic
