// Configuration-driven performance predictor -- the paper's future-work
// direction of "an analytical model that can predict performance given a
// particular host network hardware configuration" (section 7), i.e. the
// section-6 formula with its measured inputs replaced by modeled ones.
//
// Given a host configuration and an offered workload, the predictor solves
// a fixed point over {per-class throughputs, domain latencies}:
//
//   1. model the MC-level formula inputs (switch rate from the WPQ drain
//      policy, row-miss ratio from the page-close/drain-interruption
//      mechanism, RPQ occupancy via Little's law on MC residency);
//   2. evaluate the paper's read/write domain-latency formulae;
//   3. apply the domain law T = C x 64 / L per class, cap by offered load
//      and by channel capacity, and re-derive rates.
//
// It is intentionally first-order (the paper's formula plus closure
// models); accuracy is validated against the simulator in
// bench_ext_predictor and tests. Use it for what-if sweeps where running
// the simulator per point is too slow.
#pragma once

#include <cstdint>

#include "analytic/formula.hpp"
#include "core/domains.hpp"
#include "core/presets.hpp"

namespace hostnet::analytic {

struct PredictorWorkload {
  std::uint32_t c2m_cores = 0;
  bool c2m_writes = false;   ///< C2M-ReadWrite (STREAM store) vs C2M-Read
  double p2m_write_offered_gbps = 0;  ///< PCIe-limited offered DMA writes
  double p2m_read_offered_gbps = 0;   ///< PCIe-limited offered DMA reads
};

struct Prediction {
  bool converged = false;
  int iterations = 0;

  double c2m_read_latency_ns = 0;   ///< LFB credit-hold estimate
  double c2m_gbps = 0;              ///< C2M read throughput
  double c2m_write_gbps = 0;
  double p2m_write_latency_ns = 0;
  double p2m_write_gbps = 0;
  double p2m_read_gbps = 0;
  double total_mem_gbps = 0;
  double row_miss_ratio = 0;
  double o_rpq = 0;

  /// Regime vs the isolated predictions (computed by predict()).
  core::Regime regime = core::Regime::kNone;
  double c2m_degradation = 1.0;
  double p2m_degradation = 1.0;
};

/// Predict the colocated equilibrium; also solves the two isolated
/// sub-problems to report degradations and the regime.
Prediction predict(const core::HostConfig& host, const PredictorWorkload& wl,
                   const Constants& constants = {});

}  // namespace hostnet::analytic
