#include "analytic/predictor.hpp"

#include <algorithm>
#include <cmath>

namespace hostnet::analytic {

namespace {

/// Solve one workload mix to its fixed point (no degradation bookkeeping).
Prediction solve(const core::HostConfig& host, const PredictorWorkload& wl,
                 const Constants& c) {
  const dram::Timing& t = host.mc.timing;
  const double nch = host.dram.channels;
  const double t_trans = to_ns(t.t_trans);
  const double line_gb = static_cast<double>(kCachelineBytes);

  // Effective per-channel line service rate (GB/s) with ~97% row-hit bus
  // efficiency for the streaming workloads modeled here.
  const double ch_capacity = line_gb / t_trans * 0.97;

  // Drain batch: writes issued per write mode visit (high -> low watermark;
  // refill during the drain extends it by 1/(1-rho_w), capped).
  const double batch_base =
      static_cast<double>(host.mc.wpq_high_wm - host.mc.wpq_low_wm);

  Prediction p;
  double r_c = wl.c2m_cores > 0 ? 5.0 : 0.0;  // GB/s, initial guesses
  double w_p = wl.p2m_write_offered_gbps;
  double r_p = wl.p2m_read_offered_gbps;
  double l_read = c.c2m_read_ns;
  double l_pw = c.p2m_write_ns;

  const auto specs = core::domain_specs(host, wl.c2m_cores);
  const double credits_c2m =
      specs[static_cast<std::size_t>(core::Domain::kC2MRead)].credits;
  const double credits_pw =
      specs[static_cast<std::size_t>(core::Domain::kP2MWrite)].credits;
  const double credits_pr =
      specs[static_cast<std::size_t>(core::Domain::kP2MRead)].credits;

  for (p.iterations = 1; p.iterations <= 200; ++p.iterations) {
    const double w_c = wl.c2m_writes ? r_c : 0.0;
    const double reads = r_c + r_p;
    const double writes = w_c + w_p;

    // Per-channel rates (GB/s).
    const double r_ch = reads / nch;
    const double w_ch = writes / nch;

    // Write service share: the drain policy grants writes bounded channel
    // time; read priority (the dwell) keeps reads first. Model the write
    // capacity as a fraction of the channel.
    const double w_cap_ch = 0.48 * ch_capacity;
    // Smooth overload indicator (a hard threshold makes the fixed point
    // oscillate across the boundary).
    const double overload = std::clamp((w_ch / w_cap_ch - 0.85) * 8.0, 0.0, 1.0);

    // Switch cycles per written line: one write->read switch per drain.
    const double rho_w = std::min(0.9, w_ch / ch_capacity);
    const double batch = batch_base / std::max(0.2, 1.0 - 1.4 * rho_w);
    const double switches_per_wline = writes > 0 ? 1.0 / batch : 0.0;

    // Row-miss closure: sequential base (one ACT per row) plus page-close
    // interruptions -- every drain idles every active read stream's row.
    const double drain_rate_ch = (w_ch / line_gb) * switches_per_wline;  // drains/ns
    const double streams_ch =
        static_cast<double>(wl.c2m_cores) + (w_p + r_p > 0 ? 4.0 : 0.0);
    const double read_line_rate_ch = std::max(1e-6, r_ch / line_gb);  // lines/ns
    double miss =
        1.0 / host.dram.row_bytes * kCachelineBytes +
        (writes > 0 ? std::min(0.25, drain_rate_ch * streams_ch / read_line_rate_ch /
                                          std::max(1.0, streams_ch))
                    : 0.0);
    miss = std::clamp(miss, 0.0, 0.4);

    // RPQ occupancy via Little's law on the estimated MC queueing delay.
    // The 0.55 closure factor accounts for drain-synchronized bursts: the
    // queue builds during write drains and clears right after, so the time
    // average sits below rate x delay.
    const double mc_queueing = std::max(0.0, l_read - c.c2m_read_ns);
    double o_rpq = 0.55 * read_line_rate_ch * mc_queueing;
    // Saturation queueing (M/M/1-flavored): even without drain blocking,
    // reads queue as total channel utilization approaches one.
    const double rho = std::min(0.98, (r_ch + w_ch) / ch_capacity);
    o_rpq += 0.4 * rho * rho / (1.0 - rho);
    o_rpq = std::min(o_rpq, static_cast<double>(host.mc.rpq_capacity));

    // Paper formula inputs, per channel, normalized per read line.
    FormulaInputs in;
    in.o_rpq = o_rpq;
    in.lines_read = 1.0;
    in.lines_written = reads > 0 ? writes / reads : 0.0;
    in.switches = reads > 0 ? switches_per_wline * (writes / reads) : 0.0;
    in.act_read = miss;
    in.pre_conflict_read = miss * 0.3;  // most closes are background (empty)
    in.act_write = miss * in.lines_written;
    in.pre_conflict_write = miss * 0.3 * in.lines_written;
    in.n_waiting = 0;  // set below
    in.p_fill_wpq = 0;

    const double qd_read = read_queueing_delay(in, t).total_ns();
    double l_read_new = c.c2m_read_ns + qd_read;

    // Write path: backlog forms once write demand reaches the write
    // capacity; it is capped by the CHA tracker + WPQ depth.
    const double n_waiting =
        2.0 + overload * static_cast<double>(host.cha.write_tracker) / nch;
    const double p_fill =
        std::max(overload, std::clamp((w_ch / w_cap_ch - 0.75) * 4.0, 0.0, 1.0));
    in.n_waiting = n_waiting;
    in.p_fill_wpq = p_fill;
    // The write formula normalizes per written line.
    FormulaInputs win = in;
    win.lines_written = 1.0;
    win.lines_read = writes > 0 ? reads / writes : 0.0;
    win.switches = switches_per_wline;
    win.act_write = miss;
    win.pre_conflict_write = miss * 0.3;
    const double l_pw_new =
        c.p2m_write_ns + p_fill * write_waiting_time(win, t).total_ns();

    // Phase 2: CPU write-backs stall once the tracker pins full; the LFB
    // write phase then extends until a slot frees.
    double l_write_phase = c.c2m_write_ns;
    if (wl.c2m_writes && overload > 0) {
      const double w_service = w_cap_ch * nch;
      const double cpu_share = w_c / std::max(1e-6, writes);
      l_write_phase += overload * credits_c2m * line_gb /
                       std::max(1e-6, w_service * cpu_share) * 0.25;
    }

    // Domain law.
    double r_c_new = 0.0;
    if (wl.c2m_cores > 0)
      r_c_new = credits_c2m * line_gb / (l_read_new + (wl.c2m_writes ? l_write_phase : 0));
    // Channel feasibility: scale C2M down if total demand exceeds capacity.
    const double cap_total = ch_capacity * nch;
    const double others = (wl.c2m_writes ? r_c_new : 0.0) + w_p + r_p;
    if (r_c_new + others > cap_total) {
      const double avail = std::max(1.0, cap_total - w_p - r_p);
      r_c_new = std::min(r_c_new, avail / (wl.c2m_writes ? 2.0 : 1.0));
    }

    double w_p_new = wl.p2m_write_offered_gbps;
    if (w_p_new > 0) w_p_new = std::min(w_p_new, credits_pw * line_gb / l_pw_new);
    double r_p_new = wl.p2m_read_offered_gbps;
    if (r_p_new > 0)
      r_p_new = std::min(r_p_new, credits_pr * line_gb / (c.p2m_read_ns + qd_read));

    // Damped update with decaying gain so the fixed point always settles.
    const double damp = std::max(0.03, 0.4 * std::pow(0.985, p.iterations));
    const double dl = std::abs(l_read_new - l_read) + std::abs(l_pw_new - l_pw);
    const double dr = std::abs(r_c_new - r_c) + std::abs(w_p_new - w_p) +
                      std::abs(r_p_new - r_p);
    l_read += damp * (l_read_new - l_read);
    l_pw += damp * (l_pw_new - l_pw);
    r_c += damp * (r_c_new - r_c);
    w_p += damp * (w_p_new - w_p);
    r_p += damp * (r_p_new - r_p);

    p.row_miss_ratio = miss;
    p.o_rpq = o_rpq;
    if (dl < 0.25 && dr < 0.05) {
      p.converged = true;
      break;
    }
  }

  p.c2m_read_latency_ns = l_read;
  p.c2m_gbps = r_c;
  p.c2m_write_gbps = wl.c2m_writes ? r_c : 0.0;
  p.p2m_write_latency_ns = l_pw;
  p.p2m_write_gbps = w_p;
  p.p2m_read_gbps = r_p;
  p.total_mem_gbps = r_c + p.c2m_write_gbps + w_p + r_p;
  return p;
}

}  // namespace

Prediction predict(const core::HostConfig& host, const PredictorWorkload& wl,
                   const Constants& constants) {
  Prediction colo = solve(host, wl, constants);

  // Isolated baselines for degradation / regime classification.
  PredictorWorkload only_c2m = wl;
  only_c2m.p2m_write_offered_gbps = 0;
  only_c2m.p2m_read_offered_gbps = 0;
  PredictorWorkload only_p2m = wl;
  only_p2m.c2m_cores = 0;

  if (wl.c2m_cores > 0) {
    const Prediction iso = solve(host, only_c2m, constants);
    if (colo.c2m_gbps > 0) colo.c2m_degradation = iso.c2m_gbps / colo.c2m_gbps;
  }
  if (wl.p2m_write_offered_gbps + wl.p2m_read_offered_gbps > 0) {
    const Prediction iso = solve(host, only_p2m, constants);
    const double iso_p2m = iso.p2m_write_gbps + iso.p2m_read_gbps;
    const double colo_p2m = colo.p2m_write_gbps + colo.p2m_read_gbps;
    if (colo_p2m > 0) colo.p2m_degradation = iso_p2m / colo_p2m;
  }
  colo.regime = core::classify_regime(colo.c2m_degradation, colo.p2m_degradation);
  return colo;
}

}  // namespace hostnet::analytic
