// DRAM bank state machine.
//
// Each bank has a row buffer that holds one row. Accessing a cacheline
// whose row is not in the buffer requires an Activate (ACT, tRCD); if a
// different row is open it must first be flushed with a Precharge
// (PRE, tRP). These bank-level processing delays are the "tProc" the paper
// shows can block requests even while the channel data bus is idle.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/units.hpp"
#include "dram/timing.hpp"

namespace hostnet::dram {

enum class RowResult : std::uint8_t {
  kHit,           ///< row already open
  kMissEmpty,     ///< no row open: ACT only
  kMissConflict,  ///< different row open: PRE then ACT
};

class Bank {
 public:
  /// Prepare the bank so `row` is open. Returns the access classification;
  /// `ready_at()` afterwards gives the time at which a column command for
  /// this row may issue. `now` is when the memory controller starts
  /// preparing the bank (>= previous ready time is not required; the bank
  /// serializes internally).
  RowResult prepare(Tick now, std::uint64_t row, const Timing& t) {
    Tick start = std::max(now, busy_until_);
    // Adaptive page-close policy: a row left idle beyond the timeout has
    // been closed in the background (precharge already paid), so the next
    // access activates a fresh row (miss-empty, ACT only). This is what
    // makes bursty interruptions (write drains) destroy read row locality.
    if (has_open_row_ && now - last_use_ > t.t_page_close_idle) {
      has_open_row_ = false;
      write_recovery_until_ = 0;
    }
    if (has_open_row_ && open_row_ == row) {
      // Row hit: column command can go as soon as the bank is free.
      ready_at_ = start;
      return RowResult::kHit;
    }
    RowResult result = RowResult::kMissEmpty;
    if (has_open_row_) {
      // Precharge respects tRAS (minimum row-open time) and tWR (write
      // recovery after the last write to the open row).
      Tick pre_start = std::max({start, activated_at_ + t.t_ras, write_recovery_until_});
      start = pre_start + t.t_rp;
      result = RowResult::kMissConflict;
    }
    activated_at_ = start;
    busy_until_ = start + t.t_rcd;
    ready_at_ = busy_until_;
    open_row_ = row;
    has_open_row_ = true;
    last_use_ = busy_until_;
    return result;
  }

  /// Record a column access (read or write) to the open row at time `at`.
  void column_access(Tick at, bool is_write, const Timing& t) {
    busy_until_ = std::max(busy_until_, at);
    last_use_ = std::max(last_use_, at);
    if (is_write) write_recovery_until_ = std::max(write_recovery_until_, at + t.t_wr);
  }

  Tick ready_at() const { return ready_at_; }
  bool has_open_row() const { return has_open_row_; }
  std::uint64_t open_row() const { return open_row_; }

 private:
  bool has_open_row_ = false;
  std::uint64_t open_row_ = 0;
  Tick busy_until_ = 0;            ///< bank command bus / internal busy
  Tick ready_at_ = 0;              ///< when the last prepared row is usable
  Tick activated_at_ = 0;
  Tick write_recovery_until_ = 0;
  Tick last_use_ = 0;
};

}  // namespace hostnet::dram
