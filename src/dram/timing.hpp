// DRAM timing parameters (per channel).
//
// Only the constraints the paper reasons about are modeled (section 3,
// "DRAM operation" and the analytical formula of section 6):
//   tTrans -- cacheline transfer time on the half-duplex channel data bus
//   tCAS   -- column access latency for reads (command to first data)
//   tRCD   -- activate (row load) time       ("tACT" in the paper formula)
//   tRP    -- precharge (row flush) time     ("tPRE" in the paper formula)
//   tWTR / tRTW -- write<->read mode switch penalties ("switching delay")
//   tRAS   -- minimum row-open time before a precharge may start
//   tWR    -- write recovery before precharging a bank written to
#pragma once

#include <cstdint>

#include "common/units.hpp"

namespace hostnet::dram {

struct Timing {
  Tick t_trans = ns(2.73);
  Tick t_cas = ns(13.75);
  Tick t_rcd = ns(13.75);
  Tick t_rp = ns(13.75);
  Tick t_wtr = ns(10.0);
  Tick t_rtw = ns(10.0);
  Tick t_ras = ns(32.0);
  Tick t_wr = ns(15.0);
  /// Adaptive page-close: a row idle this long is closed in the background.
  Tick t_page_close_idle = ns(100.0);

  /// Per-request bank processing delay for a row conflict (the paper's
  /// tProc ~ 45 ns on DDR4-2933: tRP + tRCD + tCAS).
  Tick t_proc() const { return t_rp + t_rcd + t_cas; }
};

/// DDR4-2933 (Cascade Lake testbed): 2933 MT/s x 8 B = 23.46 GB/s/channel,
/// 64 B transfer = 2.73 ns.
inline Timing ddr4_2933() { return Timing{}; }

/// DDR4-3200 (Ice Lake testbed): 25.6 GB/s/channel, 64 B transfer = 2.5 ns.
inline Timing ddr4_3200() {
  Timing t;
  t.t_trans = ns(2.5);
  t.t_cas = ns(13.75);
  t.t_rcd = ns(13.75);
  t.t_rp = ns(13.75);
  return t;
}

}  // namespace hostnet::dram
