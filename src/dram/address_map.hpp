// Physical-address -> (channel, bank, row, column) mapping.
//
// Layout (from low address bits to high), mirroring DDR4 practice on Intel
// servers:
//
//   [64B offset][chunk within channel interleave][channel]
//   [bank-interleave chunk -> bank][column-high][row]
//
// Consecutive cachelines interleave across channels every
// `channel_interleave_bytes`, then fill one bank for
// `bank_interleave_bytes` (default: one full 8 KB row) before the hashed
// bank index moves on. A sequential stream therefore opens a row, streams
// it end to end, and moves to the next (pseudo-random) bank -- near-perfect
// row locality in isolation (<4% row misses, Figure 7c). Interleaved
// streams collide in banks and, combined with the MC's adaptive page-close
// policy under bursty write drains, lose that locality -- the paper's
// root cause for queueing before bandwidth saturation (section 5.1).
// Smaller `bank_interleave_bytes` values are exposed for ablations.
//
// Bank-address hashing (DRAMA [56]): the bank index is XOR-permuted with
// folded row bits, so different regions use different bank orders. The
// hash is static and does not guarantee balanced load within a window --
// the second root cause (bank load imbalance) of MC queueing before
// bandwidth saturation. `kLinear` (no row fold) is the ablation baseline.
#pragma once

#include <bit>
#include <cstdint>

#include "common/units.hpp"

namespace hostnet::dram {

enum class BankHash : std::uint8_t { kLinear, kXorHash };

struct Coord {
  std::uint32_t channel = 0;
  std::uint32_t bank = 0;
  std::uint64_t row = 0;
  std::uint32_t col = 0;
};

class AddressMap {
 public:
  /// All counts must be powers of two.
  AddressMap(std::uint32_t channels, std::uint32_t banks_per_channel,
             std::uint32_t row_bytes, std::uint32_t channel_interleave_bytes,
             BankHash hash, std::uint32_t bank_interleave_bytes = 8192)
      : channels_(channels),
        banks_(banks_per_channel),
        row_lines_(row_bytes / kCachelineBytes),
        ch_ilv_lines_(channel_interleave_bytes / kCachelineBytes),
        bank_ilv_lines_(bank_interleave_bytes / kCachelineBytes),
        hash_(hash),
        ch_shift_(std::countr_zero(ch_ilv_lines_)),
        ch_bits_(std::countr_zero(channels_)),
        bank_chunk_shift_(std::countr_zero(bank_ilv_lines_)),
        bank_bits_(std::countr_zero(banks_)),
        colhigh_bits_(std::countr_zero(row_lines_ / bank_ilv_lines_)) {}

  std::uint32_t channels() const { return channels_; }
  std::uint32_t banks_per_channel() const { return banks_; }
  std::uint32_t row_lines() const { return row_lines_; }

  Coord decode(std::uint64_t addr) const {
    const std::uint64_t line = addr / kCachelineBytes;
    const std::uint64_t ch_chunk = line >> ch_shift_;
    Coord c;
    c.channel = static_cast<std::uint32_t>(ch_chunk & (channels_ - 1));
    // Contiguous line index within this channel.
    const std::uint64_t local =
        ((ch_chunk >> ch_bits_) << ch_shift_) | (line & (ch_ilv_lines_ - 1));
    const std::uint64_t chunk = local >> bank_chunk_shift_;
    const auto bank_raw = static_cast<std::uint32_t>(chunk & (banks_ - 1));
    const std::uint64_t col_high = (chunk >> bank_bits_) & ((1ull << colhigh_bits_) - 1);
    c.row = chunk >> (bank_bits_ + colhigh_bits_);
    c.col = static_cast<std::uint32_t>((col_high << bank_chunk_shift_) |
                                       (local & (bank_ilv_lines_ - 1)));
    switch (hash_) {
      case BankHash::kLinear:
        c.bank = bank_raw;
        break;
      case BankHash::kXorHash: {
        std::uint64_t fold = c.row;
        std::uint64_t h = bank_raw;
        while (fold != 0) {
          h ^= fold;
          fold >>= bank_bits_;
        }
        c.bank = static_cast<std::uint32_t>(h & (banks_ - 1));
        break;
      }
    }
    return c;
  }

 private:
  std::uint32_t channels_;
  std::uint32_t banks_;
  std::uint32_t row_lines_;
  std::uint32_t ch_ilv_lines_;
  std::uint32_t bank_ilv_lines_;
  BankHash hash_;
  std::uint32_t ch_shift_;
  std::uint32_t ch_bits_;
  std::uint32_t bank_chunk_shift_;
  std::uint32_t bank_bits_;
  std::uint32_t colhigh_bits_;
};

}  // namespace hostnet::dram
