#include "core/experiment.hpp"

#include <cstdlib>

#include "core/parallel.hpp"

namespace hostnet::core {

RunOptions default_run_options() {
  RunOptions o;
  if (const char* e = std::getenv("HOSTNET_MEASURE_US")) o.measure = us(std::atof(e));
  if (const char* e = std::getenv("HOSTNET_WARMUP_US")) o.warmup = us(std::atof(e));
  return o;
}

namespace {

void add_c2m(HostSystem& host, const C2MSpec& spec) {
  for (std::uint32_t i = 0; i < spec.cores; ++i) {
    cpu::CoreWorkload wl = spec.workload;
    if (spec.per_core_region) wl.region.base += static_cast<std::uint64_t>(i) * spec.region_stride;
    host.add_core(wl);
  }
}

bool episodic(const C2MSpec& spec) {
  return spec.workload.episode_reads + spec.workload.episode_writes > 0;
}

}  // namespace

RunOutcome run_workloads(const HostConfig& hc, const std::optional<C2MSpec>& c2m,
                         const std::optional<P2MSpec>& p2m, const RunOptions& opt) {
  HostSystem host(hc, opt.seed);
  if (c2m) add_c2m(host, *c2m);
  if (p2m && p2m->storage) host.add_storage(*p2m->storage);
  host.run(opt.warmup, opt.measure);

  RunOutcome out;
  out.metrics = host.collect();
  if (c2m)
    out.c2m_score = episodic(*c2m) ? out.metrics.queries_per_sec : out.metrics.c2m_app_gbps;
  if (p2m) out.p2m_score = out.metrics.p2m_dev_gbps;
  return out;
}

ColocationOutcome run_colocation(const HostConfig& host, const C2MSpec& c2m,
                                 const P2MSpec& p2m, const RunOptions& opt) {
  ColocationOutcome o;
  o.iso_c2m = run_workloads(host, c2m, std::nullopt, opt);
  o.iso_p2m = run_workloads(host, std::nullopt, p2m, opt);
  o.colo = run_workloads(host, c2m, p2m, opt);
  return o;
}

std::vector<RunOutcome> run_workload_points(const std::vector<WorkloadPoint>& points,
                                            const RunOptions& opt, unsigned nthreads) {
  std::vector<RunOutcome> out(points.size());
  run_parallel(
      points.size(),
      [&](std::size_t i) {
        const WorkloadPoint& p = points[i];
        out[i] = run_workloads(p.host, p.c2m, p.p2m, opt);
      },
      nthreads);
  return out;
}

std::vector<ColocationOutcome> run_colocation_points(const std::vector<ColocationPoint>& points,
                                                     const RunOptions& opt, unsigned nthreads) {
  std::vector<ColocationOutcome> out(points.size());
  run_parallel(
      points.size() * 3,
      [&](std::size_t job) {
        const ColocationPoint& p = points[job / 3];
        ColocationOutcome& o = out[job / 3];
        switch (job % 3) {
          case 0: o.iso_c2m = run_workloads(p.host, p.c2m, std::nullopt, opt); break;
          case 1: o.iso_p2m = run_workloads(p.host, std::nullopt, p.p2m, opt); break;
          default: o.colo = run_workloads(p.host, p.c2m, p.p2m, opt); break;
        }
      },
      nthreads);
  return out;
}

std::vector<ColocationOutcome> sweep_c2m_cores_parallel(const HostConfig& host, C2MSpec c2m,
                                                        const P2MSpec& p2m,
                                                        const std::vector<std::uint32_t>& cores,
                                                        const RunOptions& opt, unsigned nthreads) {
  std::vector<ColocationOutcome> out(cores.size());
  RunOutcome iso_p2m;
  // Job 0 measures the shared iso_p2m window; jobs 2i+1 / 2i+2 measure point
  // i's iso-C2M and colocated windows.
  run_parallel(
      cores.size() * 2 + 1,
      [&](std::size_t job) {
        if (job == 0) {
          iso_p2m = run_workloads(host, std::nullopt, p2m, opt);
          return;
        }
        C2MSpec spec = c2m;
        spec.cores = cores[(job - 1) / 2];
        ColocationOutcome& o = out[(job - 1) / 2];
        if (job % 2 == 1)
          o.iso_c2m = run_workloads(host, spec, std::nullopt, opt);
        else
          o.colo = run_workloads(host, spec, p2m, opt);
      },
      nthreads);
  for (auto& o : out) o.iso_p2m = iso_p2m;
  return out;
}

std::vector<ColocationOutcome> sweep_c2m_cores(const HostConfig& host, C2MSpec c2m,
                                               const P2MSpec& p2m,
                                               const std::vector<std::uint32_t>& cores,
                                               const RunOptions& opt) {
  const RunOutcome iso_p2m = run_workloads(host, std::nullopt, p2m, opt);
  std::vector<ColocationOutcome> out;
  out.reserve(cores.size());
  for (std::uint32_t n : cores) {
    c2m.cores = n;
    ColocationOutcome o;
    o.iso_c2m = run_workloads(host, c2m, std::nullopt, opt);
    o.iso_p2m = iso_p2m;
    o.colo = run_workloads(host, c2m, p2m, opt);
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace hostnet::core
