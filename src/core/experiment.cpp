#include "core/experiment.hpp"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <type_traits>

#include "core/parallel.hpp"

namespace hostnet::core {

std::string to_string(TcpStackKind kind) {
  switch (kind) {
    case TcpStackKind::kDctcp: return "dctcp";
    case TcpStackKind::kBbr: return "bbr";
    case TcpStackKind::kDavis: return "davis";
  }
  return "?";
}

namespace {
// Installed once at static-init time by src/net; read-only afterwards, so
// parallel sweep workers can share it without synchronization.
TcpFactory installed_tcp_factory = nullptr;
}  // namespace

void set_tcp_factory(TcpFactory f) { installed_tcp_factory = f; }
TcpFactory tcp_factory() { return installed_tcp_factory; }

RunOptions default_run_options() {
  RunOptions o;
  if (const char* e = std::getenv("HOSTNET_MEASURE_US")) o.measure = us(std::atof(e));
  if (const char* e = std::getenv("HOSTNET_WARMUP_US")) o.warmup = us(std::atof(e));
  return o;
}

namespace {

void add_c2m(HostSystem& host, const C2MSpec& spec) {
  for (std::uint32_t i = 0; i < spec.cores; ++i) {
    cpu::CoreWorkload wl = spec.workload;
    if (spec.per_core_region) wl.region.base += static_cast<std::uint64_t>(i) * spec.region_stride;
    host.add_core(wl);
  }
}

bool episodic(const C2MSpec& spec) {
  return spec.workload.episode_reads + spec.workload.episode_writes > 0;
}

// -- config fingerprint -------------------------------------------------------
// Field-by-field canonical byte encoding. Whole-struct memcpy would pull in
// padding bytes (indeterminate), so every field is appended individually;
// enums and bools go through their value representation of fixed width.

template <class T>
void enc(std::string& s, T v) {
  static_assert(std::is_trivially_copyable_v<T> && !std::is_pointer_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  s.append(buf, sizeof(T));
}

void enc_str(std::string& s, const std::string& v) {
  enc(s, static_cast<std::uint64_t>(v.size()));
  s.append(v);
}

void enc_region(std::string& s, const mem::Region& r) {
  enc(s, r.base);
  enc(s, r.bytes);
}

void enc_timing(std::string& s, const dram::Timing& t) {
  enc(s, t.t_trans);
  enc(s, t.t_cas);
  enc(s, t.t_rcd);
  enc(s, t.t_rp);
  enc(s, t.t_wtr);
  enc(s, t.t_rtw);
  enc(s, t.t_ras);
  enc(s, t.t_wr);
  enc(s, t.t_page_close_idle);
}

void enc_host(std::string& s, const HostConfig& c) {
  enc_str(s, c.name);
  enc(s, c.total_cores);
  enc(s, c.core_ghz);
  enc(s, c.dram.channels);
  enc(s, c.dram.banks_per_channel);
  enc(s, c.dram.row_bytes);
  enc(s, c.dram.channel_interleave_bytes);
  enc(s, c.dram.bank_interleave_bytes);
  enc(s, static_cast<std::uint8_t>(c.dram.hash));
  enc(s, c.mc.rpq_capacity);
  enc(s, c.mc.wpq_capacity);
  enc(s, c.mc.wpq_high_wm);
  enc(s, c.mc.wpq_low_wm);
  enc(s, c.mc.max_write_age);
  enc(s, c.mc.dwell_per_queued_read);
  enc(s, c.mc.read_dwell_cap);
  enc(s, c.mc.prep_window);
  enc_timing(s, c.mc.timing);
  enc(s, c.cha.read_tor);
  enc(s, c.cha.write_tracker);
  enc(s, c.cha.read_fwd_window);
  enc(s, c.cha.write_fwd_window);
  enc(s, c.cha.t_read_proc);
  enc(s, c.cha.t_write_proc);
  enc(s, c.cha.t_read_fwd);
  enc(s, c.cha.t_write_fwd);
  enc(s, c.cha.t_write_ack);
  enc(s, c.cha.t_return_core);
  enc(s, c.cha.t_return_iio);
  enc(s, c.cha.ddio);
  enc(s, c.cha.ddio_capacity_bytes);
  enc(s, c.cha.ddio_ways);
  enc(s, c.cha.peripheral_write_priority);
  enc(s, c.cha.write_tracker_peripheral_reserve);
  enc(s, c.core.lfb_entries);
  enc(s, c.core.prefetch_extra);
  enc(s, c.core.t_core_to_cha);
  enc(s, c.core.t_wb_to_cha);
  enc(s, c.iio.write_credits);
  enc(s, c.iio.read_credits);
  enc(s, c.iio.t_proc_write);
  enc(s, c.iio.t_proc_read);
  enc(s, c.iio.t_to_cha);
  enc(s, c.iio.t_complete_read);
  enc(s, c.pcie_write_gb_per_s);
  enc(s, c.pcie_read_gb_per_s);
}

void enc_c2m(std::string& s, const std::optional<C2MSpec>& c2m) {
  enc(s, static_cast<std::uint8_t>(c2m.has_value()));
  if (!c2m) return;
  enc_str(s, c2m->name);
  enc(s, static_cast<std::uint8_t>(c2m->workload.pattern));
  enc_region(s, c2m->workload.region);
  enc(s, c2m->workload.write_fraction);
  enc(s, c2m->workload.think);
  enc(s, c2m->workload.episode_reads);
  enc(s, c2m->workload.episode_writes);
  enc(s, c2m->workload.episode_compute);
  enc(s, c2m->workload.episodes_per_query);
  enc(s, c2m->cores);
  enc(s, c2m->per_core_region);
  enc(s, c2m->region_stride);
}

void enc_p2m(std::string& s, const std::optional<P2MSpec>& p2m) {
  enc(s, static_cast<std::uint8_t>(p2m.has_value()));
  if (!p2m) return;
  enc_str(s, p2m->name);
  enc(s, static_cast<std::uint8_t>(p2m->storage.has_value()));
  if (p2m->storage) {
    const iio::StorageConfig& sc = *p2m->storage;
    enc(s, static_cast<std::uint8_t>(sc.host_op));
    enc(s, sc.request_bytes);
    enc(s, sc.queue_depth);
    enc(s, sc.link_gb_per_s);
    enc(s, sc.per_request_latency);
    enc_region(s, sc.region);
    enc(s, sc.mixed_fraction);
  }
  enc(s, static_cast<std::uint8_t>(p2m->tcp.has_value()));
  if (p2m->tcp) {
    const TcpSpec& tc = *p2m->tcp;
    enc(s, static_cast<std::uint8_t>(tc.stack));
    enc(s, tc.wire_gb_per_s);
    enc(s, tc.mtu_bytes);
    enc(s, tc.copy_cores);
    enc(s, tc.ring_packets);
    enc(s, tc.base_rtt);
  }
}

/// Build the transport requested by `p2m` (nullptr when none). Must run at
/// the same construction position on the cold and fork paths -- after cores
/// and storage -- because the receiver attaches ExternalHooks and event
/// ordering depends on registration order.
std::unique_ptr<TcpTransport> make_tcp(HostSystem& host, const std::optional<P2MSpec>& p2m) {
  if (!p2m || !p2m->tcp) return nullptr;
  TcpFactory f = tcp_factory();
  if (!f)
    throw std::logic_error(
        "P2MSpec requests a TCP transport but no factory is installed; "
        "link hostnet_net (net::install_tcp_factory)");
  return f(host, *p2m->tcp);
}

}  // namespace

std::string config_fingerprint(const HostConfig& host, const std::optional<C2MSpec>& c2m,
                               const std::optional<P2MSpec>& p2m, std::uint64_t seed,
                               Tick warmup) {
  std::string s;
  s.reserve(256);
  enc_host(s, host);
  enc_c2m(s, c2m);
  enc_p2m(s, p2m);
  enc(s, seed);
  enc(s, warmup);
  return s;
}

// -- SweepCache ---------------------------------------------------------------

struct SweepCache::Entry {
  HostSystem host;
  /// The warmed host's TCP receiver, when the point places one: its hooks
  /// capture `this`, so it must live exactly as long as the cached host.
  std::unique_ptr<TcpTransport> tcp;
  HostSnapshot snap;
  Entry(const HostConfig& hc, std::uint64_t seed) : host(hc, seed) {}
};

SweepCache::SweepCache() = default;
SweepCache::~SweepCache() = default;

void SweepCache::clear() {
  checkpoints_.clear();
  outcomes_.clear();
  stats_ = Stats{};
}

SweepCache& thread_sweep_cache() {
  thread_local SweepCache cache;
  return cache;
}

bool fork_sweeps_default() {
  static const bool on = [] {
    const char* e = std::getenv("HOSTNET_FORK_SWEEPS");
    if (!e) return false;
    return std::strcmp(e, "1") == 0 || std::strcmp(e, "on") == 0 ||
           std::strcmp(e, "true") == 0;
  }();
  return on;
}

RunOutcome run_workloads(const HostConfig& hc, const std::optional<C2MSpec>& c2m,
                         const std::optional<P2MSpec>& p2m, const RunOptions& opt,
                         SweepCache* cache, SweepMode mode) {
  if (!cache && (mode == SweepMode::kFork ||
                 (mode == SweepMode::kAuto && fork_sweeps_default())))
    cache = &thread_sweep_cache();
  if (mode == SweepMode::kCold) cache = nullptr;

  if (!cache) {
    // Cold reference path: build, warm, measure -- one host per point.
    HostSystem host(hc, opt.seed);
    if (c2m) add_c2m(host, *c2m);
    if (p2m && p2m->storage) host.add_storage(*p2m->storage);
    const std::unique_ptr<TcpTransport> tcp = make_tcp(host, p2m);
    host.run(opt.warmup, opt.measure);

    RunOutcome out;
    out.metrics = host.collect();
    if (c2m)
      out.c2m_score = episodic(*c2m) ? out.metrics.queries_per_sec : out.metrics.c2m_app_gbps;
    if (p2m)
      out.p2m_score = tcp ? tcp->goodput_gbps(host.sim().now()) : out.metrics.p2m_dev_gbps;
    return out;
  }

  // Fork path. Checkpoint key = everything that shapes construction +
  // warmup; outcome key additionally pins the measure window. A full
  // outcome hit is a deterministic replay, so returning the memoized
  // RunOutcome is bit-identical to re-simulating it.
  const std::string key = config_fingerprint(hc, c2m, p2m, opt.seed, opt.warmup);
  std::string okey = key;
  okey.append(reinterpret_cast<const char*>(&opt.measure), sizeof(opt.measure));
  if (auto it = cache->outcomes_.find(okey); it != cache->outcomes_.end()) {
    ++cache->stats_.outcome_hits;
    return it->second;
  }
  ++cache->stats_.outcome_misses;

  SweepCache::Entry* e;
  if (auto it = cache->checkpoints_.find(key); it != cache->checkpoints_.end()) {
    ++cache->stats_.checkpoint_hits;
    e = it->second.get();
    e->host.restore(e->snap);
  } else {
    ++cache->stats_.checkpoint_misses;
    auto entry = std::make_unique<SweepCache::Entry>(hc, opt.seed);
    // Identical construction order to the cold path (cores, then storage,
    // then the TCP receiver): component seeds and registry order depend on
    // it.
    if (c2m) add_c2m(entry->host, *c2m);
    if (p2m && p2m->storage) entry->host.add_storage(*p2m->storage);
    entry->tcp = make_tcp(entry->host, p2m);
    // run(warmup, 0) warms and resets counters, leaving the host at the
    // measurement quiesce point: run_until() drains every event at or
    // before the boundary tick, so this plus run_more(measure) replays the
    // exact event sequence of a cold run(warmup, measure).
    entry->host.run(opt.warmup, 0);
    entry->host.save_state(entry->snap);
    e = entry.get();
    cache->checkpoints_.emplace(key, std::move(entry));
  }

  e->host.run_more(opt.measure);
  RunOutcome out;
  out.metrics = e->host.collect();
  if (c2m)
    out.c2m_score = episodic(*c2m) ? out.metrics.queries_per_sec : out.metrics.c2m_app_gbps;
  if (p2m)
    out.p2m_score = e->tcp ? e->tcp->goodput_gbps(e->host.sim().now()) : out.metrics.p2m_dev_gbps;
  cache->outcomes_.emplace(std::move(okey), out);
  return out;
}

ColocationOutcome run_colocation(const HostConfig& host, const C2MSpec& c2m,
                                 const P2MSpec& p2m, const RunOptions& opt,
                                 SweepCache* cache, SweepMode mode) {
  ColocationOutcome o;
  o.iso_c2m = run_workloads(host, c2m, std::nullopt, opt, cache, mode);
  o.iso_p2m = run_workloads(host, std::nullopt, p2m, opt, cache, mode);
  o.colo = run_workloads(host, c2m, p2m, opt, cache, mode);
  return o;
}

std::vector<RunOutcome> run_workload_points(const std::vector<WorkloadPoint>& points,
                                            const RunOptions& opt, unsigned nthreads,
                                            SweepMode mode) {
  std::vector<RunOutcome> out(points.size());
  run_parallel(
      points.size(),
      [&](std::size_t i) {
        const WorkloadPoint& p = points[i];
        // cache=nullptr: forking points resolve the worker thread's own
        // thread_sweep_cache(), so threads never share a cache.
        out[i] = run_workloads(p.host, p.c2m, p.p2m, opt, nullptr, mode);
      },
      nthreads);
  return out;
}

std::vector<ColocationOutcome> run_colocation_points(const std::vector<ColocationPoint>& points,
                                                     const RunOptions& opt, unsigned nthreads,
                                                     SweepMode mode) {
  std::vector<ColocationOutcome> out(points.size());
  run_parallel(
      points.size() * 3,
      [&](std::size_t job) {
        const ColocationPoint& p = points[job / 3];
        ColocationOutcome& o = out[job / 3];
        switch (job % 3) {
          case 0: o.iso_c2m = run_workloads(p.host, p.c2m, std::nullopt, opt, nullptr, mode); break;
          case 1: o.iso_p2m = run_workloads(p.host, std::nullopt, p.p2m, opt, nullptr, mode); break;
          default: o.colo = run_workloads(p.host, p.c2m, p.p2m, opt, nullptr, mode); break;
        }
      },
      nthreads);
  return out;
}

std::vector<ColocationOutcome> sweep_c2m_cores_parallel(const HostConfig& host, C2MSpec c2m,
                                                        const P2MSpec& p2m,
                                                        const std::vector<std::uint32_t>& cores,
                                                        const RunOptions& opt, unsigned nthreads,
                                                        SweepMode mode) {
  std::vector<ColocationOutcome> out(cores.size());
  RunOutcome iso_p2m;
  // Job 0 measures the shared iso_p2m window; jobs 2i+1 / 2i+2 measure point
  // i's iso-C2M and colocated windows.
  run_parallel(
      cores.size() * 2 + 1,
      [&](std::size_t job) {
        if (job == 0) {
          iso_p2m = run_workloads(host, std::nullopt, p2m, opt, nullptr, mode);
          return;
        }
        C2MSpec spec = c2m;
        spec.cores = cores[(job - 1) / 2];
        ColocationOutcome& o = out[(job - 1) / 2];
        if (job % 2 == 1)
          o.iso_c2m = run_workloads(host, spec, std::nullopt, opt, nullptr, mode);
        else
          o.colo = run_workloads(host, spec, p2m, opt, nullptr, mode);
      },
      nthreads);
  for (auto& o : out) o.iso_p2m = iso_p2m;
  return out;
}

std::vector<ColocationOutcome> sweep_c2m_cores(const HostConfig& host, C2MSpec c2m,
                                               const P2MSpec& p2m,
                                               const std::vector<std::uint32_t>& cores,
                                               const RunOptions& opt, SweepCache* cache,
                                               SweepMode mode) {
  const RunOutcome iso_p2m = run_workloads(host, std::nullopt, p2m, opt, cache, mode);
  std::vector<ColocationOutcome> out;
  out.reserve(cores.size());
  for (std::uint32_t n : cores) {
    c2m.cores = n;
    ColocationOutcome o;
    o.iso_c2m = run_workloads(host, c2m, std::nullopt, opt, cache, mode);
    o.iso_p2m = iso_p2m;
    o.colo = run_workloads(host, c2m, p2m, opt, cache, mode);
    out.push_back(std::move(o));
  }
  return out;
}

}  // namespace hostnet::core
