// Domain-by-domain credit-based flow control -- the paper's core abstraction
// (section 4).
//
// The host network decomposes into domains (sub-networks), each with an
// independent credit-based flow control mechanism: the sender consumes one
// credit per request and the credit is replenished when the domain's
// receiver acknowledges it. A domain with C credits (in cachelines) and
// latency L can carry at most
//
//     T  <=  C x 64 / L
//
// bytes per unit time. A transfer's end-to-end throughput is the minimum
// over the domains its datapath traverses. The four bottleneck domains:
//
//   C2M-Read  : LFB -> DRAM     (credits = LFB, 10-12;  ~70 ns unloaded)
//   C2M-Write : LFB -> CHA      (credits = LFB;         ~10 ns unloaded)
//   P2M-Read  : IIO -> DRAM     (credits = IIO rd, >164)
//   P2M-Write : IIO -> MC WPQ   (credits = IIO wr, ~92; ~300 ns unloaded)
#pragma once

#include <string>

#include "common/units.hpp"
#include "mem/request.hpp"

namespace hostnet::core {

using Domain = mem::TrafficClass;  // one bottleneck domain per traffic class

/// Static description of a domain's flow-control resources.
struct DomainSpec {
  Domain domain = Domain::kC2MRead;
  double credits = 0;              ///< cachelines the sender may keep in flight
  double unloaded_latency_ns = 0;  ///< latency with no contention
  bool includes_dram = false;      ///< does the domain span DRAM execution?
};

/// Measured state of a domain during an experiment window.
struct DomainObservation {
  double credits_in_use = 0;   ///< average occupancy of the credit pool
  double max_credits_used = 0;
  double latency_ns = 0;       ///< average credit-hold time
  double throughput_gbps = 0;  ///< achieved
};

/// The domain throughput law T <= C*64/L (GB/s for latency in ns).
constexpr double max_throughput_gbps(double credits, double latency_ns) {
  if (latency_ns <= 0) return 0.0;
  return credits * static_cast<double>(kCachelineBytes) / latency_ns;
}

/// Credits needed to sustain `gbps` at latency `latency_ns`.
constexpr double credits_needed(double gbps, double latency_ns) {
  return gbps * latency_ns / static_cast<double>(kCachelineBytes);
}

/// Contention regimes as characterized in section 2.2.
enum class Regime {
  kNone,  ///< neither side degrades materially
  kBlue,  ///< C2M degrades, P2M does not (can occur far below BW saturation)
  kRed,   ///< both degrade (memory bandwidth saturated; write backpressure)
};

/// Classify from isolated/colocated throughput ratios (>= 1).
inline Regime classify_regime(double c2m_degradation, double p2m_degradation,
                              double threshold = 1.07) {
  const bool c2m = c2m_degradation >= threshold;
  const bool p2m = p2m_degradation >= threshold;
  if (c2m && p2m) return Regime::kRed;
  if (c2m) return Regime::kBlue;
  return Regime::kNone;
}

inline std::string to_string(Regime r) {
  switch (r) {
    case Regime::kNone: return "none";
    case Regime::kBlue: return "blue";
    case Regime::kRed: return "red";
  }
  return "?";
}

}  // namespace hostnet::core
