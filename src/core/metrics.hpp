// Aggregated measurement snapshot of one experiment window: the simulated
// equivalent of everything the paper measures with uncore PMU counters,
// plus application-level throughput.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.hpp"
#include "common/units.hpp"
#include "core/domains.hpp"
#include "mem/request.hpp"

namespace hostnet::core {

struct Metrics {
  double window_ns = 0;
  std::uint32_t channels = 0;   ///< memory channels in the host
  std::uint32_t c2m_cores = 0;  ///< cores generating C2M traffic

  // -- memory bandwidth served by DRAM, split by traffic class (GB/s) -------
  std::array<double, mem::kNumTrafficClasses> mem_gbps{};
  double c2m_mem_gbps() const {
    return mem_gbps[0] + mem_gbps[1];  // C2M read + write
  }
  double p2m_mem_gbps() const { return mem_gbps[2] + mem_gbps[3]; }
  double total_mem_gbps() const { return c2m_mem_gbps() + p2m_mem_gbps(); }

  // -- domain observations ----------------------------------------------------
  DomainObservation c2m_read;   ///< LFB station (read-only workloads)
  DomainObservation c2m_write;  ///< core write station
  DomainObservation p2m_read;   ///< IIO read buffer
  DomainObservation p2m_write;  ///< IIO write buffer

  /// Uniform access to the four bottleneck domains (one per traffic class),
  /// so consumers (analytic::formula, benches) need not name the fields.
  const DomainObservation& domain(Domain d) const {
    switch (d) {
      case Domain::kC2MWrite: return c2m_write;
      case Domain::kP2MRead: return p2m_read;
      case Domain::kP2MWrite: return p2m_write;
      case Domain::kC2MRead: break;
    }
    return c2m_read;
  }
  double lfb_latency_ns = 0;        ///< avg LFB credit-hold time across C2M cores
  double lfb_littles_latency_ns = 0;
  double lfb_avg_occupancy = 0;     ///< per-core average
  std::int64_t lfb_max_occupancy = 0;

  // -- CHA measurements ---------------------------------------------------------
  double cha_dram_read_latency_c2m_ns = 0;  ///< "CHA->DRAM read latency"
  double cha_dram_read_latency_p2m_ns = 0;
  double cha_mc_write_latency_ns = 0;       ///< "CHA->MC write latency" (all writes)
  double p2m_reads_in_flight_at_cha = 0;    ///< avg; max below
  std::int64_t p2m_reads_in_flight_at_cha_max = 0;
  double n_waiting = 0;                     ///< writes awaiting WPQ admission (avg)
  std::array<double, mem::kNumTrafficClasses> cha_admission_wait_ns{};

  // -- MC / DRAM measurements ----------------------------------------------------
  double avg_rpq_occupancy = 0;   ///< mean across channels
  double avg_wpq_occupancy = 0;
  double wpq_full_fraction = 0;   ///< fraction of time WPQ at capacity
  double row_miss_ratio_read = 0;
  double row_miss_ratio_write = 0;
  std::uint64_t mc_lines_read = 0;
  std::uint64_t mc_lines_written = 0;
  std::uint64_t mc_switch_cycles = 0;
  std::uint64_t mc_act_read = 0;
  std::uint64_t mc_act_write = 0;
  std::uint64_t mc_pre_conflict_read = 0;
  std::uint64_t mc_pre_conflict_write = 0;
  SampleSet bank_deviation;  ///< max/mean bank load per 1000-read window

  // -- application-level ---------------------------------------------------------
  std::uint64_t c2m_lines_read = 0;     ///< completed by cores
  std::uint64_t c2m_lines_written = 0;  ///< acknowledged by CHA
  double c2m_app_gbps = 0;              ///< core-completed read bytes / window
  double queries_per_sec = 0;           ///< episodic workloads
  double p2m_dev_gbps = 0;              ///< device-level DMA throughput
  double p2m_iops = 0;                  ///< device requests per second
};

}  // namespace hostnet::core
