// HostSystem: wires the full host network together -- cores (LFB), CHA,
// memory controller + DRAM, IIO + PCIe devices -- runs an experiment
// window, and collects Metrics.
//
// This is the main entry point of the library:
//
//   auto cfg = core::cascade_lake();
//   core::HostSystem host(cfg, /*seed=*/42);
//   host.add_core(workloads::c2m_read(region));
//   host.add_storage(workloads::fio_sequential_read(cfg));
//   host.run(ms(0.5), ms(2));
//   core::Metrics m = host.collect();
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "cha/cha.hpp"
#include "common/snapshot.hpp"
#include "core/metrics.hpp"
#include "core/presets.hpp"
#include "cpu/core.hpp"
#include "flow/domain_registry.hpp"
#include "iio/iio.hpp"
#include "iio/storage_device.hpp"
#include "mc/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace hostnet::core {

/// Hooks for an externally-owned component (NIC / transport model) wired
/// into the host's lifecycle. `start` runs when the simulation starts,
/// `reset` on every counter reset. `save`/`load` make the component
/// checkpointable: save returns an opaque state blob, load restores from
/// one. HostSystem::snapshot() refuses (throws) when an attached external
/// has no save hook -- a silent partial checkpoint would fork diverging
/// simulations.
struct ExternalHooks {
  std::function<void()> start;
  std::function<void(Tick)> reset;
  std::function<std::shared_ptr<const void>()> save;
  std::function<void(const std::shared_ptr<const void>&)> load;
};

class HostSystem {
 public:
  explicit HostSystem(const HostConfig& cfg, std::uint64_t seed = 1);

  HostSystem(const HostSystem&) = delete;
  HostSystem& operator=(const HostSystem&) = delete;

  /// Add a core running `wl`. Returns the core for metric inspection.
  cpu::Core& add_core(const cpu::CoreWorkload& wl);

  /// Add a storage device generating P2M traffic, attached to IIO stack
  /// `stack` (0 = the default stack).
  iio::StorageDevice& add_storage(const iio::StorageConfig& scfg, std::size_t stack = 0);

  /// Add another IIO stack (its own credit pools, sharing the CHA), as on
  /// multi-stack servers; returns its index for add_storage(). Must be
  /// called before run().
  std::size_t add_iio_stack(const iio::IioConfig& cfg);

  /// Register an externally-owned component (e.g. a NIC model from the net
  /// library): `start` runs when the simulation starts, `reset` on every
  /// counter reset (with the reset time). Externals attached through this
  /// overload have no save/load hooks, so the host is not checkpointable
  /// (snapshot() throws).
  void attach(std::function<void()> start, std::function<void(Tick)> reset);

  /// Full-hooks overload: components that also provide save/load keep the
  /// host checkpointable.
  void attach(ExternalHooks hooks);

  /// Run `warmup` of simulated time, reset all counters, then run `measure`.
  void run(Tick warmup, Tick measure);

  /// Continue the simulation for `extra` more time (counters keep running).
  void run_more(Tick extra);

  /// Reset every counter now (starts a fresh measurement window).
  void reset_counters();

  /// Snapshot all metrics for the window [measure_start, now].
  /// (Non-const: occupancy integrals are brought up to `now`.)
  Metrics collect();

  /// Audit the whole host at a quiesce point (between events): credit
  /// conservation in every flow-control domain, MC arena integrity, and
  /// bank-ownership bijection. Aborts with a diagnostic under
  /// HOSTNET_CHECKED builds; compiles to nothing otherwise. Called
  /// automatically from reset_counters() and collect(). See DESIGN.md 4c.
  void verify_invariants() const;

  /// The host-wide credit-pool index: every component's flow::CreditPool is
  /// registered here at construction, keyed by the paper's credit domains.
  /// collect() derives the domain observations from it.
  flow::DomainRegistry& domains() { return registry_; }

  const HostConfig& config() const { return cfg_; }
  sim::Simulator& sim() { return sim_; }
  cha::Cha& cha() { return *cha_; }
  mc::MemoryController& mc() { return *mc_; }
  iio::Iio& iio(std::size_t stack = 0) { return *iios_[stack]; }
  std::size_t iio_stacks() const { return iios_.size(); }
  std::vector<std::unique_ptr<cpu::Core>>& cores() { return cores_; }
  std::vector<std::unique_ptr<iio::StorageDevice>>& storage() { return storage_; }

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  //
  // A Snapshot captures every stateful component plus the pending-event
  // queue at a quiesce point (between events -- after run()/run_more()
  // returns). Component snapshots carry raw pointers into THIS host (event
  // closures' `this` captures, CreditWaiter*, mem::Request::completer), so
  // a snapshot restores only into the host that produced it: `owner` is
  // checked and restore() throws std::logic_error on mismatch. Topology
  // (cores/stacks/devices added) is construction state and must match by
  // construction -- asserted, not saved.
  struct Snapshot {
    const void* owner = nullptr;  ///< the producing HostSystem
    sim::Simulator::Snapshot sim;
    mc::MemoryController::Snapshot mc;
    cha::Cha::Snapshot cha;
    std::vector<iio::Iio::Snapshot> iios;
    std::vector<cpu::Core::Snapshot> cores;
    std::vector<iio::StorageDevice::Snapshot> storage;
    std::vector<std::shared_ptr<const void>> externals;
    bool started = false;
    Tick measure_start = 0;
  };

  /// Save the full host state into `out` (recycled Snapshots allocate
  /// nothing once warm). Throws std::logic_error if an attached external
  /// has no save hook. Under HOSTNET_CHECKED also audits pool invariants.
  void save_state(Snapshot& out) const;
  Snapshot snapshot() const {
    Snapshot s;
    save_state(s);
    return s;
  }

  /// Restore the state captured by save_state()/snapshot(). Throws
  /// std::logic_error when `s` was produced by a different HostSystem.
  /// Under HOSTNET_CHECKED, re-saves the event queue after the restore and
  /// audits it is identical to the snapshot (restore-then-collect would
  /// bit-match), then verifies host invariants.
  void restore(const Snapshot& s);

 private:
  void register_iio_pools(std::size_t stack);

  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  HostConfig cfg_;
  // hostnet-audit: skip(seed_, construction config; per-run RNG root never mutates)
  std::uint64_t seed_;
  sim::Simulator sim_;
  // hostnet-audit: skip(registry_, holds pointers to pools saved by their owners; re-registering would dangle)
  flow::DomainRegistry registry_;
  std::unique_ptr<mc::MemoryController> mc_;
  std::unique_ptr<cha::Cha> cha_;
  std::vector<std::unique_ptr<iio::Iio>> iios_;
  std::vector<std::unique_ptr<cpu::Core>> cores_;
  std::vector<std::unique_ptr<iio::StorageDevice>> storage_;
  std::vector<ExternalHooks> externals_;
  bool started_ = false;
  Tick measure_start_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(HostSystem);

/// Namespace-level alias: the checkpoint most callers pass around.
using HostSnapshot = HostSystem::Snapshot;

}  // namespace hostnet::core
