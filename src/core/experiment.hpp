// Colocation experiment harness: run a C2M workload and a P2M workload in
// isolation and colocated, and report per-side performance degradation --
// the measurement protocol behind every figure in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/domains.hpp"
#include "core/host_system.hpp"
#include "core/metrics.hpp"
#include "core/presets.hpp"
#include "cpu/core.hpp"
#include "iio/storage_device.hpp"

namespace hostnet::core {

struct C2MSpec {
  std::string name = "c2m";
  cpu::CoreWorkload workload{};
  std::uint32_t cores = 1;
  /// When true, core i's region is workload.region shifted by i strides
  /// (independent address spaces, e.g. Redis shards / STREAM buffers);
  /// when false all cores share workload.region (e.g. one GAPBS graph).
  bool per_core_region = true;
  std::uint64_t region_stride = 1ull << 30;
  /// Score measuring app performance: queries/s for episodic workloads,
  /// read GB/s otherwise (chosen automatically).
};

struct P2MSpec {
  std::string name = "p2m";
  std::optional<iio::StorageConfig> storage{};
};

struct RunOptions {
  Tick warmup = us(400);
  Tick measure = us(1500);
  std::uint64_t seed = 1;
};

/// Reads the default measurement window, honoring HOSTNET_MEASURE_US and
/// HOSTNET_WARMUP_US environment overrides (useful to shorten CI runs).
RunOptions default_run_options();

struct RunOutcome {
  Metrics metrics{};
  double c2m_score = 0;  ///< queries/s (episodic) or core read GB/s
  double p2m_score = 0;  ///< device DMA GB/s
};

/// Build a host with the given workloads and run one measurement window.
RunOutcome run_workloads(const HostConfig& host, const std::optional<C2MSpec>& c2m,
                         const std::optional<P2MSpec>& p2m, const RunOptions& opt);

struct ColocationOutcome {
  RunOutcome iso_c2m;
  RunOutcome iso_p2m;
  RunOutcome colo;

  /// Ratio of isolated to colocated performance (>= ~1; higher = worse).
  double c2m_degradation() const {
    return colo.c2m_score > 0 ? iso_c2m.c2m_score / colo.c2m_score : 0;
  }
  double p2m_degradation() const {
    return colo.p2m_score > 0 ? iso_p2m.p2m_score / colo.p2m_score : 0;
  }
  Regime regime() const { return classify_regime(c2m_degradation(), p2m_degradation()); }
};

/// The full isolation/colocation protocol for one configuration point.
ColocationOutcome run_colocation(const HostConfig& host, const C2MSpec& c2m,
                                 const P2MSpec& p2m, const RunOptions& opt);

/// Sweep the number of C2M cores (the x-axis of most paper figures).
/// iso_p2m is measured once and shared across points.
std::vector<ColocationOutcome> sweep_c2m_cores(const HostConfig& host, C2MSpec c2m,
                                               const P2MSpec& p2m,
                                               const std::vector<std::uint32_t>& cores,
                                               const RunOptions& opt);

// -- parallel sweep engine ---------------------------------------------------
//
// Every sweep point builds its own HostSystem from the same (config, seed)
// inputs as the serial path and shares no mutable state with other points,
// so the parallel variants below return results bit-identical to running the
// same points serially, in input order. Worker count: explicit `nthreads`,
// else the HOSTNET_THREADS environment override, else hardware concurrency
// (see core/parallel.hpp).

/// One (host, workload) configuration of a batched run_workloads sweep.
struct WorkloadPoint {
  HostConfig host;
  std::optional<C2MSpec> c2m;
  std::optional<P2MSpec> p2m;
};

/// Parallel map of run_workloads over `points`; results in input order.
std::vector<RunOutcome> run_workload_points(const std::vector<WorkloadPoint>& points,
                                            const RunOptions& opt, unsigned nthreads = 0);

/// One colocation configuration (the unit of a multi-point sweep).
struct ColocationPoint {
  HostConfig host;
  C2MSpec c2m;
  P2MSpec p2m;
};

/// Parallel variant of run_colocation over many points. Each point expands
/// to its three measurement windows (iso C2M, iso P2M, colocated), which are
/// scheduled as independent jobs for load balancing.
std::vector<ColocationOutcome> run_colocation_points(const std::vector<ColocationPoint>& points,
                                                     const RunOptions& opt, unsigned nthreads = 0);

/// Parallel variant of sweep_c2m_cores: identical protocol (iso_p2m is
/// measured once and shared across points) and bit-identical results.
std::vector<ColocationOutcome> sweep_c2m_cores_parallel(const HostConfig& host, C2MSpec c2m,
                                                        const P2MSpec& p2m,
                                                        const std::vector<std::uint32_t>& cores,
                                                        const RunOptions& opt,
                                                        unsigned nthreads = 0);

}  // namespace hostnet::core
