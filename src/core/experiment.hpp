// Colocation experiment harness: run a C2M workload and a P2M workload in
// isolation and colocated, and report per-side performance degradation --
// the measurement protocol behind every figure in the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/domains.hpp"
#include "core/host_system.hpp"
#include "core/metrics.hpp"
#include "core/presets.hpp"
#include "cpu/core.hpp"
#include "iio/storage_device.hpp"

namespace hostnet::core {

struct C2MSpec {
  std::string name = "c2m";
  cpu::CoreWorkload workload{};
  std::uint32_t cores = 1;
  /// When true, core i's region is workload.region shifted by i strides
  /// (independent address spaces, e.g. Redis shards / STREAM buffers);
  /// when false all cores share workload.region (e.g. one GAPBS graph).
  bool per_core_region = true;
  std::uint64_t region_stride = 1ull << 30;
  /// Score measuring app performance: queries/s for episodic workloads,
  /// read GB/s otherwise (chosen automatically).
};

// -- TCP transports (the pluggable-stack seam; implemented in src/net) --------
//
// The DCTCP receiver case study grew into a family of congestion-control
// stacks (net::TcpStack). The experiment harness stays net-agnostic: a
// P2MSpec may request a TCP transport by spec, and the concrete receiver is
// built through a factory that src/net installs (core cannot link net).

/// Which congestion-control stack drives the TCP sender model.
enum class TcpStackKind : std::uint8_t {
  kDctcp = 0,  ///< ECN-fraction response (the paper's baseline, Fig 19)
  kBbr = 1,    ///< bandwidth-probing with a pacing gate (BBR-like)
  kDavis = 2,  ///< delay-based, backs off on measured RTT inflation
};

std::string to_string(TcpStackKind kind);

/// The construction-shaping knobs of a TCP receiver placement. Every field
/// is covered by config_fingerprint(), so SweepCache forking and fleet
/// sharding distinguish stacks (and stack configs) structurally; per-stack
/// CC constants beyond these stay fixed inside src/net.
struct TcpSpec {
  std::string name = "tcp";
  TcpStackKind stack = TcpStackKind::kDctcp;
  double wire_gb_per_s = 12.25;    ///< 100 Gbps link, effective
  std::uint32_t mtu_bytes = 9216;  ///< jumbo frames
  std::uint32_t copy_cores = 4;    ///< kernel copy cores at the receiver
  std::uint32_t ring_packets = 192;///< socket buffer / receive window
  Tick base_rtt = us(40);
};

/// What the harness needs from a running TCP receiver: the measurement
/// surface that scores a TCP-backed P2M placement. Implemented by
/// net::TcpReceiver; owned by the caller of the factory (the receiver
/// registers its simulation hooks with the HostSystem itself).
class TcpTransport {
 public:
  virtual ~TcpTransport() = default;
  virtual double goodput_gbps(Tick now) const = 0;  ///< copied payload GB/s
  virtual double loss_rate() const = 0;             ///< dropped / offered
  virtual double avg_cwnd() const = 0;              ///< epoch-sampled mean cwnd
};

/// Factory building a concrete transport onto `host` per `spec`. Installed
/// once at startup by src/net (net::install_tcp_factory); run_workloads
/// throws std::logic_error on a TCP spec when no factory is present.
using TcpFactory = std::unique_ptr<TcpTransport> (*)(HostSystem& host, const TcpSpec& spec);
void set_tcp_factory(TcpFactory f);
TcpFactory tcp_factory();

struct P2MSpec {
  std::string name = "p2m";
  std::optional<iio::StorageConfig> storage{};
  /// TCP receiver placement (DMA writes through the IIO, like storage
  /// writes, plus kernel-copy C2M traffic). Scored by transport goodput.
  std::optional<TcpSpec> tcp{};
};

struct RunOptions {
  Tick warmup = us(400);
  Tick measure = us(1500);
  std::uint64_t seed = 1;
};

/// Reads the default measurement window, honoring HOSTNET_MEASURE_US and
/// HOSTNET_WARMUP_US environment overrides (useful to shorten CI runs).
RunOptions default_run_options();

struct RunOutcome {
  Metrics metrics{};
  double c2m_score = 0;  ///< queries/s (episodic) or core read GB/s
  double p2m_score = 0;  ///< device DMA GB/s
};

// -- checkpoint/fork sweeps (DESIGN.md section 4e) ----------------------------
//
// A sweep measures many points that share a (host config, workloads, seed,
// warmup) prefix. The fork engine warms a prototype host once per shared
// prefix, snapshots it at the post-warmup reset_counters() quiesce point,
// and forks every subsequent point of that prefix from the checkpoint
// instead of re-warming.
//
// Warmup-sharing caveat: two points share a warmed checkpoint ONLY when
// config_fingerprint() -- a canonical field-by-field encoding of every
// simulation input -- matches exactly. A point whose warmup genuinely
// differs (any config field, workload field, seed, or warmup length) gets a
// different fingerprint and warms independently; sharing is explicit and
// auditable through SweepCache::stats(). Forked outcomes are bit-identical
// to cold runs because the simulation is deterministic and the checkpoint
// restores the complete host state, including the pending-event queue.

/// How run_workloads executes a point.
enum class SweepMode : std::uint8_t {
  kAuto,  ///< fork iff a cache is passed or HOSTNET_FORK_SWEEPS=1 is set
  kCold,  ///< always build + warm a fresh host (reference behaviour)
  kFork,  ///< fork from the calling thread's SweepCache checkpoints
};

/// Canonical fingerprint of one simulation configuration: every field of
/// the host config and workload specs plus seed and warmup, encoded
/// field-by-field (never whole-struct memcpy -- padding bytes are
/// indeterminate). Equal fingerprints guarantee identical construction and
/// warmup; used as the SweepCache checkpoint key.
std::string config_fingerprint(const HostConfig& host, const std::optional<C2MSpec>& c2m,
                               const std::optional<P2MSpec>& p2m, std::uint64_t seed,
                               Tick warmup);

class SweepCache;

/// Build a host with the given workloads and run one measurement window.
/// With a cache (explicit, or resolved per `mode`), the warmed host is
/// checkpointed and reused: same-fingerprint points restore instead of
/// re-warming, and fully-identical (fingerprint + measure) reruns return
/// the memoized outcome -- legitimate because the simulation is
/// deterministic. Results are bit-identical to cold runs either way.
RunOutcome run_workloads(const HostConfig& host, const std::optional<C2MSpec>& c2m,
                         const std::optional<P2MSpec>& p2m, const RunOptions& opt,
                         SweepCache* cache = nullptr, SweepMode mode = SweepMode::kAuto);

/// Checkpoint + outcome cache for forked sweeps. Single-threaded (use one
/// per thread; thread_sweep_cache() below); owns the warmed prototype
/// hosts, so it is expensive while alive and cheap to clear().
class SweepCache {
 public:
  SweepCache();
  ~SweepCache();
  SweepCache(const SweepCache&) = delete;
  SweepCache& operator=(const SweepCache&) = delete;

  struct Stats {
    std::uint64_t checkpoint_hits = 0;    ///< points forked from a warm host
    std::uint64_t checkpoint_misses = 0;  ///< prefixes warmed cold
    std::uint64_t outcome_hits = 0;       ///< fully-memoized reruns
    std::uint64_t outcome_misses = 0;

    /// Fold another cache's counters in (the fleet runner sums its shards'
    /// caches into one observable fork-reuse figure; fleet/runner.hpp).
    void add(const Stats& o) {
      checkpoint_hits += o.checkpoint_hits;
      checkpoint_misses += o.checkpoint_misses;
      outcome_hits += o.outcome_hits;
      outcome_misses += o.outcome_misses;
    }
  };
  const Stats& stats() const { return stats_; }

  std::size_t checkpoints() const { return checkpoints_.size(); }
  std::size_t outcomes() const { return outcomes_.size(); }
  void clear();

 private:
  friend RunOutcome run_workloads(const HostConfig&, const std::optional<C2MSpec>&,
                                  const std::optional<P2MSpec>&, const RunOptions&,
                                  SweepCache*, SweepMode);
  struct Entry;  ///< a warmed HostSystem + its quiesce-point checkpoint
  std::unordered_map<std::string, std::unique_ptr<Entry>> checkpoints_;
  std::unordered_map<std::string, RunOutcome> outcomes_;  ///< key + measure window
  Stats stats_;
};

/// The calling thread's SweepCache (function-local thread_local: persistent
/// worker-pool threads keep their caches across batches; destroyed at
/// thread exit).
SweepCache& thread_sweep_cache();

/// True when HOSTNET_FORK_SWEEPS=1/on/true is set: SweepMode::kAuto points
/// then fork through thread_sweep_cache(). Read once per process.
bool fork_sweeps_default();

struct ColocationOutcome {
  RunOutcome iso_c2m;
  RunOutcome iso_p2m;
  RunOutcome colo;

  /// Ratio of isolated to colocated performance (>= ~1; higher = worse).
  double c2m_degradation() const {
    return colo.c2m_score > 0 ? iso_c2m.c2m_score / colo.c2m_score : 0;
  }
  double p2m_degradation() const {
    return colo.p2m_score > 0 ? iso_p2m.p2m_score / colo.p2m_score : 0;
  }
  Regime regime() const { return classify_regime(c2m_degradation(), p2m_degradation()); }
};

/// The full isolation/colocation protocol for one configuration point.
ColocationOutcome run_colocation(const HostConfig& host, const C2MSpec& c2m,
                                 const P2MSpec& p2m, const RunOptions& opt,
                                 SweepCache* cache = nullptr,
                                 SweepMode mode = SweepMode::kAuto);

/// Sweep the number of C2M cores (the x-axis of most paper figures).
/// iso_p2m is measured once and shared across points. With a cache/fork
/// mode the iso-P2M prefix (which every point shares) and each per-count
/// prefix warm once; see the warmup-sharing caveat above.
std::vector<ColocationOutcome> sweep_c2m_cores(const HostConfig& host, C2MSpec c2m,
                                               const P2MSpec& p2m,
                                               const std::vector<std::uint32_t>& cores,
                                               const RunOptions& opt,
                                               SweepCache* cache = nullptr,
                                               SweepMode mode = SweepMode::kAuto);

// -- parallel sweep engine ---------------------------------------------------
//
// Every sweep point builds its own HostSystem from the same (config, seed)
// inputs as the serial path and shares no mutable state with other points,
// so the parallel variants below return results bit-identical to running the
// same points serially, in input order. Worker count: explicit `nthreads`,
// else the HOSTNET_THREADS environment override, else hardware concurrency
// (see core/parallel.hpp).

/// One (host, workload) configuration of a batched run_workloads sweep.
struct WorkloadPoint {
  HostConfig host;
  std::optional<C2MSpec> c2m;
  std::optional<P2MSpec> p2m;
};

/// Parallel map of run_workloads over `points`; results in input order.
/// Forking points (`mode`, or HOSTNET_FORK_SWEEPS under kAuto) use each
/// worker thread's thread_sweep_cache(), which persists across batches on
/// the worker pool.
std::vector<RunOutcome> run_workload_points(const std::vector<WorkloadPoint>& points,
                                            const RunOptions& opt, unsigned nthreads = 0,
                                            SweepMode mode = SweepMode::kAuto);

/// One colocation configuration (the unit of a multi-point sweep).
struct ColocationPoint {
  HostConfig host;
  C2MSpec c2m;
  P2MSpec p2m;
};

/// Parallel variant of run_colocation over many points. Each point expands
/// to its three measurement windows (iso C2M, iso P2M, colocated), which are
/// scheduled as independent jobs for load balancing.
std::vector<ColocationOutcome> run_colocation_points(const std::vector<ColocationPoint>& points,
                                                     const RunOptions& opt, unsigned nthreads = 0,
                                                     SweepMode mode = SweepMode::kAuto);

/// Parallel variant of sweep_c2m_cores: identical protocol (iso_p2m is
/// measured once and shared across points) and bit-identical results.
std::vector<ColocationOutcome> sweep_c2m_cores_parallel(const HostConfig& host, C2MSpec c2m,
                                                        const P2MSpec& p2m,
                                                        const std::vector<std::uint32_t>& cores,
                                                        const RunOptions& opt,
                                                        unsigned nthreads = 0,
                                                        SweepMode mode = SweepMode::kAuto);

}  // namespace hostnet::core
