// Worker-pool parallel-for for sweep workloads.
//
// Every paper figure is a sweep of independent simulation points; each point
// owns its HostSystem (and therefore its Simulator, RNG streams, and
// counters), so points can run on separate threads with no shared mutable
// state and bit-identical results to a serial run. This header provides the
// minimal engine for that: run N independent jobs on a PERSISTENT pool --
// worker threads are spawned on first use and reused across batches, so a
// sweep of many small batches pays thread spawn/teardown once, and
// thread_local state on the workers (the fork engine's SweepCache) survives
// between batches.
//
// Thread-count policy: the HOSTNET_THREADS environment variable overrides;
// otherwise std::thread::hardware_concurrency() is used. A batch admits at
// most the requested worker count regardless of pool size, and the calling
// thread always participates, so the policy is identical to the old
// spawn-per-call engine. A nested run_parallel from inside a pool job runs
// serially inline.
//
// Caveat: sim::Tracer::set_global installs a process-wide trace sink; do not
// enable it while running parallel sweeps (see DESIGN.md, threading model).
#pragma once

#include <cstddef>
#include <functional>

namespace hostnet::core {

/// Worker threads to use for parallel sweeps: the HOSTNET_THREADS
/// environment variable if set (min 1), else hardware_concurrency().
unsigned parallel_threads();

/// Run `body(0) .. body(count-1)` across `nthreads` workers (0 = use
/// parallel_threads()). Jobs are claimed from a shared atomic counter; the
/// call returns after every claimed job has finished. The calling thread
/// participates as a worker. If a job throws, remaining unclaimed jobs are
/// abandoned, all workers are joined, and the first exception is rethrown --
/// the pool never deadlocks on a throwing job.
void run_parallel(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned nthreads = 0);

}  // namespace hostnet::core
