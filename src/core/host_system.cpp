#include "core/host_system.hpp"

#include <cassert>
#include <stdexcept>
#include <string>

#include "common/check.hpp"

namespace hostnet::core {

HostSystem::HostSystem(const HostConfig& cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {
  const std::string err = cfg_.validate();
  if (!err.empty()) throw std::invalid_argument("HostConfig: " + err);
  mc_ = std::make_unique<mc::MemoryController>(sim_, cfg_.mc, cfg_.make_address_map(),
                                               nullptr);
  cha_ = std::make_unique<cha::Cha>(sim_, cfg_.cha, *mc_);
  mc_->set_listener(cha_.get());
  // Every credit pool in the host joins the registry in construction order;
  // registration order is the registry's (deterministic) iteration order.
  for (std::uint32_t ch = 0; ch < mc_->num_channels(); ++ch) {
    const std::string prefix = "mc.ch" + std::to_string(ch);
    registry_.add_interior(prefix + ".rpq", &mc_->channel(ch).rpq_pool());
    registry_.add_interior(prefix + ".wpq", &mc_->channel(ch).wpq_pool());
  }
  registry_.add_interior("cha.read-tor", &cha_->read_pool());
  registry_.add_interior("cha.write-tracker", &cha_->write_pool());
  iios_.push_back(std::make_unique<iio::Iio>(sim_, *cha_, cfg_.iio, 0));
  register_iio_pools(0);
}

void HostSystem::register_iio_pools(std::size_t stack) {
  const std::string prefix = "iio" + std::to_string(stack);
  registry_.add(Domain::kP2MWrite, prefix + ".write-credits", &iios_[stack]->write_pool());
  registry_.add(Domain::kP2MRead, prefix + ".read-credits", &iios_[stack]->read_pool());
}

std::size_t HostSystem::add_iio_stack(const iio::IioConfig& icfg) {
  assert(!started_ && "add components before run()");
  iios_.push_back(std::make_unique<iio::Iio>(
      sim_, *cha_, icfg, static_cast<std::uint16_t>(iios_.size())));
  register_iio_pools(iios_.size() - 1);
  return iios_.size() - 1;
}

cpu::Core& HostSystem::add_core(const cpu::CoreWorkload& wl) {
  assert(!started_ && "add components before run()");
  const auto id = static_cast<std::uint16_t>(cores_.size());
  std::uint64_t sm = seed_ + 0x1000 + id;
  cores_.push_back(
      std::make_unique<cpu::Core>(sim_, *cha_, cfg_.core, wl, id, splitmix64(sm)));
  const std::string prefix = "cpu" + std::to_string(id);
  registry_.add(Domain::kC2MRead, prefix + ".lfb", &cores_.back()->lfb_pool());
  registry_.add(Domain::kC2MWrite, prefix + ".c2m-write", &cores_.back()->write_pool());
  return *cores_.back();
}

iio::StorageDevice& HostSystem::add_storage(const iio::StorageConfig& scfg,
                                             std::size_t stack) {
  assert(!started_ && "add components before run()");
  assert(stack < iios_.size());
  storage_.push_back(std::make_unique<iio::StorageDevice>(sim_, *iios_[stack], scfg));
  return *storage_.back();
}

void HostSystem::attach(std::function<void()> start, std::function<void(Tick)> reset) {
  attach(ExternalHooks{std::move(start), std::move(reset), nullptr, nullptr});
}

void HostSystem::attach(ExternalHooks hooks) {
  assert(!started_ && "attach components before run()");
  externals_.push_back(std::move(hooks));
}

void HostSystem::run(Tick warmup, Tick measure) {
  if (!started_) {
    started_ = true;
    for (auto& c : cores_) c->start();
    for (auto& d : storage_) d->start();
    for (auto& e : externals_)
      if (e.start) e.start();
  }
  sim_.run_until(sim_.now() + warmup);
  reset_counters();
  sim_.run_until(sim_.now() + measure);
}

void HostSystem::run_more(Tick extra) { sim_.run_until(sim_.now() + extra); }

void HostSystem::verify_invariants() const {
  mc_->verify_invariants();
  cha_->verify_invariants();
  for (const auto& i : iios_) i->verify_invariants();
  for (const auto& c : cores_) c->verify_invariants();
  registry_.verify();  // every registered pool's ledger, host-wide
}

void HostSystem::reset_counters() {
  verify_invariants();
  const Tick now = sim_.now();
  measure_start_ = now;
  mc_->reset_counters(now);
  cha_->reset_counters(now);
  for (auto& i : iios_) i->reset_counters(now);
  for (auto& c : cores_) c->reset_counters(now);
  for (auto& d : storage_) d->reset_counters();
  for (auto& e : externals_)
    if (e.reset) e.reset(now);
}

void HostSystem::save_state(Snapshot& out) const {
  for (const auto& e : externals_)
    if (!e.save)
      throw std::logic_error(
          "HostSystem::snapshot: an attached external component has no save "
          "hook; attach(ExternalHooks) with save/load to checkpoint this host");
  out.owner = this;
  sim_.save_state(out.sim);
  mc_->save_state(out.mc);
  cha_->save_state(out.cha);
  out.iios.resize(iios_.size());
  for (std::size_t i = 0; i < iios_.size(); ++i) iios_[i]->save_state(out.iios[i]);
  out.cores.resize(cores_.size());
  for (std::size_t i = 0; i < cores_.size(); ++i) cores_[i]->save_state(out.cores[i]);
  out.storage.resize(storage_.size());
  for (std::size_t i = 0; i < storage_.size(); ++i) storage_[i]->save_state(out.storage[i]);
  out.externals.clear();
  for (const auto& e : externals_) out.externals.push_back(e.save());
  out.started = started_;
  out.measure_start = measure_start_;
}

void HostSystem::restore(const Snapshot& s) {
  // Component snapshots embed raw pointers into the producing host (event
  // `this` captures, CreditWaiter*, mem::Request::completer): restoring
  // into any other host would dangle every one of them.
  if (s.owner != this)
    throw std::logic_error(
        "HostSystem::restore: snapshot was produced by a different host "
        "(component snapshots hold pointers into the producing HostSystem)");
  assert(s.iios.size() == iios_.size() && s.cores.size() == cores_.size() &&
         s.storage.size() == storage_.size() && s.externals.size() == externals_.size() &&
         "host topology is construction state and must match the snapshot");
  sim_.load_state(s.sim);
  mc_->load_state(s.mc);
  cha_->load_state(s.cha);
  for (std::size_t i = 0; i < iios_.size(); ++i) iios_[i]->load_state(s.iios[i]);
  for (std::size_t i = 0; i < cores_.size(); ++i) cores_[i]->load_state(s.cores[i]);
  for (std::size_t i = 0; i < storage_.size(); ++i) storage_[i]->load_state(s.storage[i]);
  for (std::size_t i = 0; i < externals_.size(); ++i) externals_[i].load(s.externals[i]);
  started_ = s.started;
  measure_start_ = s.measure_start;
#if defined(HOSTNET_CHECKED) && HOSTNET_CHECKED
  // Restore audit: re-saving the restored event queue must reproduce the
  // snapshot exactly -- i.e. a restore-then-collect run replays the same
  // event sequence the saved run would. Value members are copy-assigned and
  // cannot diverge; the reconstructed calendar queue is the part to audit.
  sim::Simulator::Snapshot resaved;
  sim_.save_state(resaved);
  HOSTNET_INVARIANT(sim::Simulator::audit_identical(s.sim, resaved),
                    "HostSystem::restore: restored event queue is not "
                    "identical to the snapshot");
  verify_invariants();
#endif
}

Metrics HostSystem::collect() {
  verify_invariants();
  const Tick now = sim_.now();
  Metrics m;
  m.window_ns = to_ns(now - measure_start_);
  m.channels = mc_->num_channels();
  m.c2m_cores = static_cast<std::uint32_t>(cores_.size());
  const Tick window = now - measure_start_;
  if (window <= 0) return m;

  // Memory bandwidth by class, from CHA line counts (DRAM-serviced).
  for (int c = 0; c < mem::kNumTrafficClasses; ++c) {
    const auto cls = static_cast<mem::TrafficClass>(c);
    const std::uint64_t bytes =
        (cha_->lines_read(cls) + cha_->lines_written(cls)) * kCachelineBytes;
    m.mem_gbps[static_cast<std::size_t>(c)] = gb_per_s(bytes, window);
  }

  // C2M domain observations, derived from the registry (the cores' LFB
  // pools under C2M-Read -- averaged per core, as the paper reports -- and
  // their write-phase pools under C2M-Write, summed).
  m.c2m_read = registry_.observe(Domain::kC2MRead, now, window,
                                 flow::OccAggregation::kMean);
  m.c2m_write = registry_.observe(Domain::kC2MWrite, now, window,
                                  flow::OccAggregation::kSum);
  m.lfb_latency_ns = m.c2m_read.latency_ns;
  m.lfb_avg_occupancy = m.c2m_read.credits_in_use;
  m.lfb_max_occupancy = static_cast<std::int64_t>(m.c2m_read.max_credits_used);
  // Little's-law latency is a per-pool derived quantity observe() does not
  // carry; weight it by completions over the same entries.
  {
    double lit_sum = 0;
    std::uint64_t completions = 0;
    registry_.for_each(Domain::kC2MRead, [&](flow::DomainRegistry::Entry& e) {
      auto& s = e.pool->station();
      if (s.completions() > 0) {
        lit_sum += s.littles_latency_ns(now) * static_cast<double>(s.completions());
        completions += s.completions();
      }
    });
    if (completions > 0)
      m.lfb_littles_latency_ns = lit_sum / static_cast<double>(completions);
  }
  for (auto& c : cores_) {
    m.c2m_lines_read += c->lines_read();
    m.c2m_lines_written += c->lines_written();
  }
  // The LFB pool completes reads and store write-backs alike, so the C2M
  // throughputs come from the cores' line counters, not pool completions.
  m.c2m_read.throughput_gbps =
      gb_per_s(m.c2m_lines_read * kCachelineBytes, window);
  m.c2m_app_gbps = m.c2m_read.throughput_gbps;
  m.c2m_write.throughput_gbps = gb_per_s(m.c2m_lines_written * kCachelineBytes, window);

  // Queries (episodic workloads).
  std::uint64_t queries = 0;
  for (auto& c : cores_) queries += c->queries();
  m.queries_per_sec = static_cast<double>(queries) / (m.window_ns * 1e-9);

  // P2M domain observations (the IIO stacks' buffers; disjoint pools of one
  // domain, so occupancies sum and throughput follows from the pooled
  // completions -- one cacheline per credit).
  m.p2m_write = registry_.observe(Domain::kP2MWrite, now, window,
                                  flow::OccAggregation::kSum);
  m.p2m_read = registry_.observe(Domain::kP2MRead, now, window,
                                 flow::OccAggregation::kSum);

  // CHA stations.
  m.cha_dram_read_latency_c2m_ns =
      cha_->station(mem::TrafficClass::kC2MRead).mean_latency_ns();
  m.cha_dram_read_latency_p2m_ns =
      cha_->station(mem::TrafficClass::kP2MRead).mean_latency_ns();
  {
    auto& cw = cha_->station(mem::TrafficClass::kC2MWrite);
    auto& pw = cha_->station(mem::TrafficClass::kP2MWrite);
    const std::uint64_t n = cw.completions() + pw.completions();
    if (n > 0)
      m.cha_mc_write_latency_ns =
          (cw.mean_latency_ns() * static_cast<double>(cw.completions()) +
           pw.mean_latency_ns() * static_cast<double>(pw.completions())) /
          static_cast<double>(n);
  }
  m.p2m_reads_in_flight_at_cha =
      cha_->station(mem::TrafficClass::kP2MRead).avg_occupancy(now);
  m.p2m_reads_in_flight_at_cha_max =
      cha_->station(mem::TrafficClass::kP2MRead).max_occupancy();
  m.n_waiting = cha_->write_backlog_occupancy().average(now);
  m.wpq_full_fraction = cha_->wpq_blocked_fraction(now);
  for (int c = 0; c < mem::kNumTrafficClasses; ++c)
    m.cha_admission_wait_ns[static_cast<std::size_t>(c)] =
        cha_->mean_admission_wait_ns(static_cast<mem::TrafficClass>(c));

  // MC aggregates across channels.
  const std::uint32_t nch = mc_->num_channels();
  std::uint64_t hit_r = 0, hit_w = 0;
  for (std::uint32_t i = 0; i < nch; ++i) {
    auto& chan = mc_->channel(i);
    auto& cc = chan.counters();
    m.avg_rpq_occupancy += chan.rpq_pool().station().avg_occupancy(now) / nch;
    m.avg_wpq_occupancy += chan.wpq_pool().station().avg_occupancy(now) / nch;
    m.mc_lines_read += cc.lines_read;
    m.mc_lines_written += cc.lines_written;
    m.mc_switch_cycles += cc.switch_cycles;
    m.mc_act_read += cc.act_read;
    m.mc_act_write += cc.act_write;
    m.mc_pre_conflict_read += cc.pre_conflict_read;
    m.mc_pre_conflict_write += cc.pre_conflict_write;
    hit_r += cc.row_hit_read;
    hit_w += cc.row_hit_write;
    for (double v : cc.bank_deviation.values()) m.bank_deviation.add(v);
  }
  if (m.mc_act_read + hit_r > 0)
    m.row_miss_ratio_read =
        static_cast<double>(m.mc_act_read) / static_cast<double>(m.mc_act_read + hit_r);
  if (m.mc_act_write + hit_w > 0)
    m.row_miss_ratio_write =
        static_cast<double>(m.mc_act_write) / static_cast<double>(m.mc_act_write + hit_w);

  // Devices.
  std::uint64_t dev_bytes = 0, dev_reqs = 0;
  for (auto& d : storage_) {
    dev_bytes += d->bytes_transferred();
    dev_reqs += d->requests_completed();
  }
  m.p2m_dev_gbps = gb_per_s(dev_bytes, window);
  m.p2m_iops = static_cast<double>(dev_reqs) / (m.window_ns * 1e-9);

  return m;
}

}  // namespace hostnet::core
