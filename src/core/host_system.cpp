#include "core/host_system.hpp"

#include <cassert>
#include <stdexcept>

namespace hostnet::core {

HostSystem::HostSystem(const HostConfig& cfg, std::uint64_t seed) : cfg_(cfg), seed_(seed) {
  const std::string err = cfg_.validate();
  if (!err.empty()) throw std::invalid_argument("HostConfig: " + err);
  mc_ = std::make_unique<mc::MemoryController>(sim_, cfg_.mc, cfg_.make_address_map(),
                                               nullptr);
  cha_ = std::make_unique<cha::Cha>(sim_, cfg_.cha, *mc_);
  mc_->set_listener(cha_.get());
  iios_.push_back(std::make_unique<iio::Iio>(sim_, *cha_, cfg_.iio, 0));
}

std::size_t HostSystem::add_iio_stack(const iio::IioConfig& icfg) {
  assert(!started_ && "add components before run()");
  iios_.push_back(std::make_unique<iio::Iio>(
      sim_, *cha_, icfg, static_cast<std::uint16_t>(iios_.size())));
  return iios_.size() - 1;
}

cpu::Core& HostSystem::add_core(const cpu::CoreWorkload& wl) {
  assert(!started_ && "add components before run()");
  const auto id = static_cast<std::uint16_t>(cores_.size());
  std::uint64_t sm = seed_ + 0x1000 + id;
  cores_.push_back(
      std::make_unique<cpu::Core>(sim_, *cha_, cfg_.core, wl, id, splitmix64(sm)));
  return *cores_.back();
}

iio::StorageDevice& HostSystem::add_storage(const iio::StorageConfig& scfg,
                                             std::size_t stack) {
  assert(!started_ && "add components before run()");
  assert(stack < iios_.size());
  storage_.push_back(std::make_unique<iio::StorageDevice>(sim_, *iios_[stack], scfg));
  return *storage_.back();
}

void HostSystem::attach(std::function<void()> start, std::function<void(Tick)> reset) {
  assert(!started_ && "attach components before run()");
  if (start) external_starts_.push_back(std::move(start));
  if (reset) external_resets_.push_back(std::move(reset));
}

void HostSystem::run(Tick warmup, Tick measure) {
  if (!started_) {
    started_ = true;
    for (auto& c : cores_) c->start();
    for (auto& d : storage_) d->start();
    for (auto& f : external_starts_) f();
  }
  sim_.run_until(sim_.now() + warmup);
  reset_counters();
  sim_.run_until(sim_.now() + measure);
}

void HostSystem::run_more(Tick extra) { sim_.run_until(sim_.now() + extra); }

void HostSystem::verify_invariants() const {
  mc_->verify_invariants();
  cha_->verify_invariants();
  for (const auto& i : iios_) i->verify_invariants();
  for (const auto& c : cores_) c->verify_invariants();
}

void HostSystem::reset_counters() {
  verify_invariants();
  const Tick now = sim_.now();
  measure_start_ = now;
  mc_->reset_counters(now);
  cha_->reset_counters(now);
  for (auto& i : iios_) i->reset_counters(now);
  for (auto& c : cores_) c->reset_counters(now);
  for (auto& d : storage_) d->reset_counters();
  for (auto& f : external_resets_) f(now);
}

Metrics HostSystem::collect() {
  verify_invariants();
  const Tick now = sim_.now();
  Metrics m;
  m.window_ns = to_ns(now - measure_start_);
  m.channels = mc_->num_channels();
  m.c2m_cores = static_cast<std::uint32_t>(cores_.size());
  const Tick window = now - measure_start_;
  if (window <= 0) return m;

  // Memory bandwidth by class, from CHA line counts (DRAM-serviced).
  for (int c = 0; c < mem::kNumTrafficClasses; ++c) {
    const auto cls = static_cast<mem::TrafficClass>(c);
    const std::uint64_t bytes =
        (cha_->lines_read(cls) + cha_->lines_written(cls)) * kCachelineBytes;
    m.mem_gbps[static_cast<std::size_t>(c)] = gb_per_s(bytes, window);
  }

  // LFB (C2M-Read / combined) domain observation across cores.
  double lat_sum = 0, lit_sum = 0, occ_sum = 0;
  std::uint64_t completions = 0;
  std::int64_t max_occ = 0;
  double wlat_sum = 0;
  std::uint64_t wcomp = 0;
  double wocc = 0;
  for (auto& c : cores_) {
    auto& s = c->lfb_station();
    if (s.completions() > 0) {
      lat_sum += s.mean_latency_ns() * static_cast<double>(s.completions());
      lit_sum += s.littles_latency_ns(now) * static_cast<double>(s.completions());
      completions += s.completions();
    }
    occ_sum += s.avg_occupancy(now);
    max_occ = std::max(max_occ, s.max_occupancy());
    auto& w = c->write_station();
    if (w.completions() > 0) {
      wlat_sum += w.mean_latency_ns() * static_cast<double>(w.completions());
      wcomp += w.completions();
    }
    wocc += w.avg_occupancy(now);
    m.c2m_lines_read += c->lines_read();
    m.c2m_lines_written += c->lines_written();
  }
  if (completions > 0) {
    m.lfb_latency_ns = lat_sum / static_cast<double>(completions);
    m.lfb_littles_latency_ns = lit_sum / static_cast<double>(completions);
  }
  m.lfb_avg_occupancy = cores_.empty() ? 0 : occ_sum / static_cast<double>(cores_.size());
  m.lfb_max_occupancy = max_occ;
  m.c2m_read.credits_in_use = m.lfb_avg_occupancy;
  m.c2m_read.max_credits_used = static_cast<double>(max_occ);
  m.c2m_read.latency_ns = m.lfb_latency_ns;
  m.c2m_read.throughput_gbps =
      gb_per_s(m.c2m_lines_read * kCachelineBytes, window);
  m.c2m_app_gbps = m.c2m_read.throughput_gbps;
  if (wcomp > 0) m.c2m_write.latency_ns = wlat_sum / static_cast<double>(wcomp);
  m.c2m_write.credits_in_use = wocc;
  m.c2m_write.throughput_gbps = gb_per_s(m.c2m_lines_written * kCachelineBytes, window);

  // Queries (episodic workloads).
  std::uint64_t queries = 0;
  for (auto& c : cores_) queries += c->queries();
  m.queries_per_sec = static_cast<double>(queries) / (m.window_ns * 1e-9);

  // IIO domain observations (aggregated across stacks; latency weighted by
  // completions, occupancies summed).
  {
    double wlat = 0, rlat = 0;
    std::uint64_t wn = 0, rn = 0;
    for (auto& i : iios_) {
      auto& w = i->write_station();
      m.p2m_write.credits_in_use += w.avg_occupancy(now);
      m.p2m_write.max_credits_used =
          std::max(m.p2m_write.max_credits_used, static_cast<double>(w.max_occupancy()));
      wlat += w.mean_latency_ns() * static_cast<double>(w.completions());
      wn += w.completions();
      auto& r = i->read_station();
      m.p2m_read.credits_in_use += r.avg_occupancy(now);
      m.p2m_read.max_credits_used =
          std::max(m.p2m_read.max_credits_used, static_cast<double>(r.max_occupancy()));
      rlat += r.mean_latency_ns() * static_cast<double>(r.completions());
      rn += r.completions();
    }
    if (wn > 0) m.p2m_write.latency_ns = wlat / static_cast<double>(wn);
    if (rn > 0) m.p2m_read.latency_ns = rlat / static_cast<double>(rn);
    m.p2m_write.throughput_gbps = gb_per_s(wn * kCachelineBytes, window);
    m.p2m_read.throughput_gbps = gb_per_s(rn * kCachelineBytes, window);
  }

  // CHA stations.
  m.cha_dram_read_latency_c2m_ns =
      cha_->station(mem::TrafficClass::kC2MRead).mean_latency_ns();
  m.cha_dram_read_latency_p2m_ns =
      cha_->station(mem::TrafficClass::kP2MRead).mean_latency_ns();
  {
    auto& cw = cha_->station(mem::TrafficClass::kC2MWrite);
    auto& pw = cha_->station(mem::TrafficClass::kP2MWrite);
    const std::uint64_t n = cw.completions() + pw.completions();
    if (n > 0)
      m.cha_mc_write_latency_ns =
          (cw.mean_latency_ns() * static_cast<double>(cw.completions()) +
           pw.mean_latency_ns() * static_cast<double>(pw.completions())) /
          static_cast<double>(n);
  }
  m.p2m_reads_in_flight_at_cha =
      cha_->station(mem::TrafficClass::kP2MRead).avg_occupancy(now);
  m.p2m_reads_in_flight_at_cha_max =
      cha_->station(mem::TrafficClass::kP2MRead).max_occupancy();
  m.n_waiting = cha_->write_backlog_occupancy().average(now);
  m.wpq_full_fraction = cha_->wpq_blocked_fraction(now);
  for (int c = 0; c < mem::kNumTrafficClasses; ++c)
    m.cha_admission_wait_ns[static_cast<std::size_t>(c)] =
        cha_->mean_admission_wait_ns(static_cast<mem::TrafficClass>(c));

  // MC aggregates across channels.
  const std::uint32_t nch = mc_->num_channels();
  std::uint64_t hit_r = 0, hit_w = 0;
  for (std::uint32_t i = 0; i < nch; ++i) {
    auto& cc = mc_->channel(i).counters();
    m.avg_rpq_occupancy += cc.rpq_occ.average(now) / nch;
    m.avg_wpq_occupancy += cc.wpq_occ.average(now) / nch;
    m.mc_lines_read += cc.lines_read;
    m.mc_lines_written += cc.lines_written;
    m.mc_switch_cycles += cc.switch_cycles;
    m.mc_act_read += cc.act_read;
    m.mc_act_write += cc.act_write;
    m.mc_pre_conflict_read += cc.pre_conflict_read;
    m.mc_pre_conflict_write += cc.pre_conflict_write;
    hit_r += cc.row_hit_read;
    hit_w += cc.row_hit_write;
    for (double v : cc.bank_deviation.values()) m.bank_deviation.add(v);
  }
  if (m.mc_act_read + hit_r > 0)
    m.row_miss_ratio_read =
        static_cast<double>(m.mc_act_read) / static_cast<double>(m.mc_act_read + hit_r);
  if (m.mc_act_write + hit_w > 0)
    m.row_miss_ratio_write =
        static_cast<double>(m.mc_act_write) / static_cast<double>(m.mc_act_write + hit_w);

  // Devices.
  std::uint64_t dev_bytes = 0, dev_reqs = 0;
  for (auto& d : storage_) {
    dev_bytes += d->bytes_transferred();
    dev_reqs += d->requests_completed();
  }
  m.p2m_dev_gbps = gb_per_s(dev_bytes, window);
  m.p2m_iops = static_cast<double>(dev_reqs) / (m.window_ns * 1e-9);

  return m;
}

}  // namespace hostnet::core
