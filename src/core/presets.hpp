// Host configurations modeling the paper's two testbeds (Table 1).
//
//               Ice Lake              Cascade Lake
//   CPU         Xeon Platinum 8362    Xeon Gold 6234
//   Cores       32 @ 2.8 GHz          8 @ 3.3 GHz
//   LLC         48 MB                 24 MB
//   DRAM        4 x 3200 MHz DDR4     2 x 2933 MHz DDR4
//   DRAM BW     102.4 GB/s            46.9 GB/s
//   PCIe        8 x PM173X NVMe       4 x P5800X NVMe
//   PCIe BW     32 GB/s               16 GB/s
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "cha/cha.hpp"
#include "core/domains.hpp"
#include "cpu/core.hpp"
#include "dram/address_map.hpp"
#include "dram/timing.hpp"
#include "iio/iio.hpp"
#include "mc/channel.hpp"

namespace hostnet::core {

struct DramLayout {
  std::uint32_t channels = 2;
  std::uint32_t banks_per_channel = 32;
  std::uint32_t row_bytes = 8192;
  std::uint32_t channel_interleave_bytes = 256;
  std::uint32_t bank_interleave_bytes = 8192;  ///< one row per bank visit
  dram::BankHash hash = dram::BankHash::kXorHash;
};

struct HostConfig {
  std::string name = "cascade-lake";
  std::uint32_t total_cores = 8;
  double core_ghz = 3.3;
  DramLayout dram{};
  mc::ChannelConfig mc{};
  cha::ChaConfig cha{};
  cpu::CoreConfig core{};
  iio::IioConfig iio{};
  double pcie_write_gb_per_s = 14.0;  ///< effective DMA-write (storage read) BW
  double pcie_read_gb_per_s = 12.8;   ///< effective DMA-read (storage write) BW

  /// Theoretical peak memory bandwidth (GB/s).
  double dram_peak_gb_per_s() const {
    return static_cast<double>(dram.channels) * static_cast<double>(kCachelineBytes) *
           1000.0 / static_cast<double>(mc.timing.t_trans);
  }

  /// Sanity-check the configuration; returns an empty string when valid,
  /// else a human-readable description of the first problem found.
  std::string validate() const {
    auto pow2 = [](std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; };
    if (!pow2(dram.channels)) return "dram.channels must be a power of two";
    if (!pow2(dram.banks_per_channel)) return "dram.banks_per_channel must be a power of two";
    if (!pow2(dram.row_bytes)) return "dram.row_bytes must be a power of two";
    if (!pow2(dram.channel_interleave_bytes) || dram.channel_interleave_bytes < 64)
      return "dram.channel_interleave_bytes must be a power of two >= 64";
    if (!pow2(dram.bank_interleave_bytes) || dram.bank_interleave_bytes < 64)
      return "dram.bank_interleave_bytes must be a power of two >= 64";
    if (dram.bank_interleave_bytes > dram.row_bytes)
      return "dram.bank_interleave_bytes cannot exceed dram.row_bytes";
    if (mc.wpq_high_wm >= mc.wpq_capacity) return "wpq_high_wm must be below wpq_capacity";
    if (mc.wpq_low_wm >= mc.wpq_high_wm) return "wpq_low_wm must be below wpq_high_wm";
    if (mc.rpq_capacity == 0 || mc.wpq_capacity == 0) return "MC queues need capacity";
    if (core.lfb_entries == 0) return "core.lfb_entries must be positive";
    if (iio.write_credits == 0 || iio.read_credits == 0) return "IIO needs credits";
    if (cha.read_tor == 0 || cha.write_tracker == 0) return "CHA needs tracker entries";
    if (cha.write_tracker_peripheral_reserve > cha.write_tracker)
      return "peripheral reserve exceeds the write tracker";
    if (pcie_write_gb_per_s <= 0 || pcie_read_gb_per_s <= 0)
      return "PCIe bandwidth must be positive";
    if (mc.timing.t_trans <= 0) return "tTrans must be positive";
    return {};
  }

  dram::AddressMap make_address_map() const {
    return dram::AddressMap(dram.channels, dram.banks_per_channel, dram.row_bytes,
                            dram.channel_interleave_bytes, dram.hash,
                            dram.bank_interleave_bytes);
  }
};

/// Static specs of the four bottleneck domains for this host (paper
/// section 4): credits come from the configured pool capacities, unloaded
/// latencies from the paper's measurements (Table 2). The C2M domains' pools
/// are per-core LFBs, so `c2m_cores` scales their credits. A latency of 0
/// means "measure it" -- the paper derives P2M-Read's unloaded latency from
/// the testbed rather than quoting a constant.
inline std::array<DomainSpec, mem::kNumTrafficClasses> domain_specs(
    const HostConfig& c, std::uint32_t c2m_cores = 1) {
  std::array<DomainSpec, mem::kNumTrafficClasses> specs{};
  auto& cr = specs[static_cast<std::size_t>(Domain::kC2MRead)];
  cr.domain = Domain::kC2MRead;
  cr.credits = static_cast<double>(c2m_cores * c.core.lfb_entries);
  cr.unloaded_latency_ns = 70;
  cr.includes_dram = true;
  auto& cw = specs[static_cast<std::size_t>(Domain::kC2MWrite)];
  cw.domain = Domain::kC2MWrite;
  cw.credits = static_cast<double>(c2m_cores * c.core.lfb_entries);
  cw.unloaded_latency_ns = 10;
  cw.includes_dram = false;  // ends at the CHA acknowledgment
  auto& pr = specs[static_cast<std::size_t>(Domain::kP2MRead)];
  pr.domain = Domain::kP2MRead;
  pr.credits = static_cast<double>(c.iio.read_credits);
  pr.unloaded_latency_ns = 0;
  pr.includes_dram = true;
  auto& pw = specs[static_cast<std::size_t>(Domain::kP2MWrite)];
  pw.domain = Domain::kP2MWrite;
  pw.credits = static_cast<double>(c.iio.write_credits);
  pw.unloaded_latency_ns = 300;
  pw.includes_dram = false;  // ends at WPQ admission
  return specs;
}

/// Cascade Lake testbed: 8 cores, 2x DDR4-2933 (46.9 GB/s), PCIe ~16 GB/s.
inline HostConfig cascade_lake() {
  HostConfig c;
  c.name = "cascade-lake";
  c.total_cores = 8;
  c.core_ghz = 3.3;
  c.dram.channels = 2;
  c.mc.timing = dram::ddr4_2933();
  c.pcie_write_gb_per_s = 14.0;
  c.pcie_read_gb_per_s = 12.8;
  return c;
}

/// Ice Lake testbed: 32 cores, 4x DDR4-3200 (102.4 GB/s), PCIe ~32 GB/s.
/// DDIO is permanently enabled on this platform (paper section 2.1).
inline HostConfig ice_lake() {
  HostConfig c;
  c.name = "ice-lake";
  c.total_cores = 32;
  c.core_ghz = 2.8;
  c.dram.channels = 4;
  c.mc.timing = dram::ddr4_3200();
  c.pcie_write_gb_per_s = 28.0;
  c.pcie_read_gb_per_s = 25.0;
  c.iio.write_credits = 184;  // two IIO stacks' worth of write buffer
  c.iio.read_credits = 384;
  c.cha.read_tor = 512;       // more slices -> more tracker entries
  c.cha.write_tracker = 192;
  c.cha.ddio_capacity_bytes = 8ull << 20;
  return c;
}

}  // namespace hostnet::core
