#include "core/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hostnet::core {

unsigned parallel_threads() {
  if (const char* e = std::getenv("HOSTNET_THREADS")) {
    const long v = std::atol(e);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

void run_parallel(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned nthreads) {
  if (count == 0) return;
  if (nthreads == 0) nthreads = parallel_threads();
  if (nthreads > count) nthreads = static_cast<unsigned>(count);
  if (nthreads <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex err_mu;
  std::exception_ptr err;

  const auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(err_mu);
          if (!err) err = std::current_exception();
        }
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(nthreads - 1);
  for (unsigned t = 1; t < nthreads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  if (err) std::rethrow_exception(err);
}

}  // namespace hostnet::core
