#include "core/parallel.hpp"

#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace hostnet::core {

unsigned parallel_threads() {
  if (const char* e = std::getenv("HOSTNET_THREADS")) {
    const long v = std::atol(e);
    if (v >= 1) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? hw : 1;
}

namespace {

/// Set while a thread is executing a pool job: a nested run_parallel from
/// inside a job runs serially inline instead of deadlocking on the pool.
thread_local bool tl_in_pool_job = false;

/// Persistent worker pool. Threads are spawned on first use, grow to the
/// largest worker count ever requested, and live until process exit --
/// per-batch construction cost (thread spawn, stack faults) is paid once,
/// and thread_local state on the workers (notably the fork engine's
/// SweepCache) persists across batches. One batch runs at a time; the
/// caller participates in its own batch, and a batch admits at most the
/// requested number of pool workers, so HOSTNET_THREADS semantics are
/// unchanged from the spawn-per-call engine.
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& body,
           unsigned nthreads) {
    // Serialize concurrent top-level run_parallel calls (rare; the pool has
    // a single batch slot).
    const std::lock_guard<std::mutex> batch_lock(batch_mu_);
    std::unique_lock<std::mutex> lk(mu_);
    ensure_threads(nthreads - 1);
    body_ = &body;
    count_ = count;
    next_ = 0;
    in_flight_ = 0;
    abort_ = false;
    err_ = nullptr;
    slots_ = nthreads - 1;  // pool workers admitted; the caller is the nth
    ++generation_;
    work_cv_.notify_all();
    drain(lk);
    done_cv_.wait(lk, [&] { return (abort_ || next_ >= count_) && in_flight_ == 0; });
    body_ = nullptr;
    slots_ = 0;
    if (err_) {
      std::exception_ptr e = err_;
      err_ = nullptr;
      std::rethrow_exception(e);
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

 private:
  WorkerPool() = default;

  void ensure_threads(unsigned n) {
    while (threads_.size() < n)
      threads_.emplace_back([this] { worker_loop(); });
  }

  /// Claim-and-run loop shared by the caller and the pool workers. Enter
  /// and leave with the lock held. A worker that wakes late -- after the
  /// batch completed -- no-ops on the loop guard.
  void drain(std::unique_lock<std::mutex>& lk) {
    while (!abort_ && next_ < count_) {
      const std::size_t i = next_++;
      ++in_flight_;
      const std::function<void(std::size_t)>* body = body_;
      lk.unlock();
      const bool was_in_job = tl_in_pool_job;
      tl_in_pool_job = true;
      std::exception_ptr e;
      try {
        (*body)(i);
      } catch (...) {
        e = std::current_exception();
      }
      tl_in_pool_job = was_in_job;
      lk.lock();
      --in_flight_;
      if (e) {
        if (!err_) err_ = e;
        abort_ = true;
      }
      if (in_flight_ == 0 && (abort_ || next_ >= count_)) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::unique_lock<std::mutex> lk(mu_);
    std::uint64_t seen = 0;
    for (;;) {
      work_cv_.wait(lk, [&] {
        return shutdown_ || (generation_ != seen && slots_ > 0 && body_ != nullptr);
      });
      if (shutdown_) return;
      seen = generation_;
      --slots_;
      drain(lk);
    }
  }

  std::mutex batch_mu_;  ///< one batch at a time
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> threads_;

  // Batch state (guarded by mu_).
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  unsigned in_flight_ = 0;
  unsigned slots_ = 0;
  std::uint64_t generation_ = 0;
  bool abort_ = false;
  bool shutdown_ = false;
  std::exception_ptr err_;
};

}  // namespace

void run_parallel(std::size_t count, const std::function<void(std::size_t)>& body,
                  unsigned nthreads) {
  if (count == 0) return;
  if (nthreads == 0) nthreads = parallel_threads();
  if (nthreads > count) nthreads = static_cast<unsigned>(count);
  if (nthreads <= 1 || tl_in_pool_job) {
    // Serial, or nested inside a pool job (run inline; the pool's threads
    // are busy with the outer batch).
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  WorkerPool::instance().run(count, body, nthreads);
}

}  // namespace hostnet::core
