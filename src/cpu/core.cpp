#include "cpu/core.hpp"

#include <cassert>
#include <type_traits>

#include "sim/trace.hpp"

namespace hostnet::cpu {

Core::Core(sim::Simulator& sim, cha::Cha& cha, const CoreConfig& cfg,
           const CoreWorkload& wl, std::uint16_t id, std::uint64_t seed)
    : sim_(sim), cha_(cha), cfg_(cfg), wl_(wl), id_(id), rng_(seed) {
  flow::CreditPoolSpec lfb;
  lfb.name = "cpu.lfb";
  lfb.capacity = lfb_capacity();
  lfb_pool_.configure(lfb);
  flow::CreditPoolSpec wr;
  wr.name = "cpu.c2m-write";
  wr.capacity = 0;  // telemetry-only: the LFB entry is the binding resource
  write_pool_.configure(wr);
}

std::uint32_t Core::lfb_capacity() const {
  // The streaming prefetcher only helps predictable (sequential) patterns;
  // the paper found <5% effect for the random-access workloads.
  const bool seq = wl_.pattern == CoreWorkload::Pattern::kSequential;
  return cfg_.lfb_entries + (seq ? cfg_.prefetch_extra : 0);
}

void Core::start() {
  if (episodic()) {
    begin_episode_after_compute();
  } else {
    pump();
  }
}

std::uint64_t Core::next_seq_addr() {
  const std::uint64_t lines = wl_.region.bytes / kCachelineBytes;
  const std::uint64_t a = wl_.region.base + (seq_line_ % lines) * kCachelineBytes;
  ++seq_line_;
  return a;
}

std::uint64_t Core::random_addr() {
  const std::uint64_t lines = wl_.region.bytes / kCachelineBytes;
  return wl_.region.base + rng_.below(lines) * kCachelineBytes;
}

void Core::set_paused(bool paused) {
  if (paused_ == paused) return;
  paused_ = paused;
  if (!paused_) pump();
}

void Core::pump() {
  if (paused_) return;
  if (episodic()) {
    // Issue the remainder of the current episode as LFB slots free up.
    while (lfb_pool_.has_space() &&
           (episode_reads_to_issue_ > 0 || episode_writes_to_issue_ > 0)) {
      const bool is_store = episode_writes_to_issue_ > 0;
      if (is_store)
        --episode_writes_to_issue_;
      else
        --episode_reads_to_issue_;
      issue_read(random_addr(), is_store);
    }
    return;
  }
  while (lfb_pool_.has_space() && !think_pending_) {
    if (wl_.think > 0) {
      think_pending_ = true;
      sim_.schedule(wl_.think, [this] {
        think_pending_ = false;
        if (paused_) return;
        if (lfb_pool_.has_space()) {
          const bool is_store = wl_.write_fraction > 0.0 && rng_.chance(wl_.write_fraction);
          const std::uint64_t addr = wl_.pattern == CoreWorkload::Pattern::kSequential
                                         ? next_seq_addr()
                                         : random_addr();
          issue_read(addr, is_store);
        }
        pump();
      });
      return;
    }
    const bool is_store = wl_.write_fraction > 0.0 && rng_.chance(wl_.write_fraction);
    const std::uint64_t addr =
        wl_.pattern == CoreWorkload::Pattern::kSequential ? next_seq_addr() : random_addr();
    issue_read(addr, is_store);
  }
}

void Core::issue_read(std::uint64_t addr, bool is_store) {
  const Tick now = sim_.now();
  lfb_pool_.acquire(now);
  mem::Request req;
  req.addr = addr;
  req.op = mem::Op::kRead;  // the store's RFO is a read
  req.source = mem::Source::kCpu;
  req.origin = id_;
  req.created = now;
  req.completer = this;
  req.tag = is_store ? 1 : 0;
  auto miss = [this, req] { send_to_cha(req); };
  static_assert(sizeof(miss) <= sim::Event::kInlineBytes &&
                    std::is_trivially_copyable_v<decltype(miss)>,
                "per-line core->CHA miss hop must stay in the inline Event buffer");
  sim_.schedule(cfg_.t_core_to_cha, miss);
}

void Core::send_to_cha(mem::Request req) {
  if (cha_.try_submit(req)) {
    cha_.record_admission_wait(req.cls(), 0);
    return;
  }
  auto& q = req.op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  q.push_back(Blocked{req, sim_.now()});
  cha_.wait_for_admission(req.op, this, mem::Source::kCpu);
}

bool Core::on_cha_admission(mem::Op op) {
  auto& q = op == mem::Op::kRead ? blocked_reads_ : blocked_writes_;
  if (q.empty()) return false;
  Blocked b = q.front();
  if (!cha_.try_submit(b.req)) {
    // Slot raced away; stay registered for the next one.
    cha_.wait_for_admission(op, this, mem::Source::kCpu);
    return false;
  }
  q.pop_front();
  cha_.record_admission_wait(b.req.cls(), sim_.now() - b.since);
  if (!q.empty()) cha_.wait_for_admission(op, this, mem::Source::kCpu);
  return true;
}

void Core::complete(const mem::Request& req, Tick now) {
  if (req.op == mem::Op::kRead) {
    ++lines_read_;
    if (req.tag == 1) {
      // Store: data (RFO) arrived; the LFB entry is now held for the write
      // phase until the CHA accepts the write (C2M-Write domain).
      write_pool_.acquire(now);
      mem::Request wr;
      wr.addr = req.addr;
      wr.op = mem::Op::kWrite;
      wr.source = mem::Source::kCpu;
      wr.origin = id_;
      wr.created = req.created;            // original issue: keeps LFB latency = read+write
      wr.completer = this;
      wr.tag = static_cast<std::uint64_t>(now);  // write-phase start, for write_station_
      sim_.schedule(cfg_.t_wb_to_cha, [this, wr] { send_to_cha(wr); });
      return;
    }
    lfb_pool_.release(now, req.created);
    if (auto* tr = sim::Tracer::global())
      tr->complete_event("c2m-read", "domain", req.created, now - req.created,
                         sim::Tracer::kTrackCore + id_);
  } else {
    // CHA acknowledged the write: C2M-Write credit replenished.
    ++lines_written_;
    lfb_pool_.release(now, req.created);
    write_pool_.release(now, static_cast<Tick>(req.tag));
    if (auto* tr = sim::Tracer::global())
      tr->complete_event("c2m-store", "domain", req.created, now - req.created,
                         sim::Tracer::kTrackCore + id_);
  }

  if (episodic()) {
    assert(episode_outstanding_ > 0);
    --episode_outstanding_;
    pump();  // issue any not-yet-issued accesses of this episode
    if (episode_outstanding_ == 0 && episode_reads_to_issue_ == 0 &&
        episode_writes_to_issue_ == 0) {
      ++episodes_done_in_query_;
      if (episodes_done_in_query_ >= wl_.episodes_per_query) {
        episodes_done_in_query_ = 0;
        ++queries_;
      }
      begin_episode_after_compute();
    }
    return;
  }
  pump();
}

void Core::begin_episode_after_compute() {
  in_compute_ = true;
  sim_.schedule(wl_.episode_compute, [this] {
    in_compute_ = false;
    issue_episode();
  });
}

void Core::issue_episode() {
  episode_reads_to_issue_ = wl_.episode_reads;
  episode_writes_to_issue_ = wl_.episode_writes;
  episode_outstanding_ = wl_.episode_reads + wl_.episode_writes;
  pump();
}

void Core::reset_counters(Tick now) {
  lfb_pool_.reset_telemetry(now);
  write_pool_.reset_telemetry(now);
  lines_read_ = 0;
  lines_written_ = 0;
  queries_ = 0;
}

}  // namespace hostnet::cpu
