// CPU core model: the Line Fill Buffer (LFB) and traffic generation.
//
// A core can issue instructions orders of magnitude faster than the memory
// round trip, so the LFB (10-12 entries) is the binding credit pool of the
// C2M-Read domain (paper sections 4.1/5.1): a credit is allocated at issue
// and replenished when data returns from DRAM.
//
// For write workloads we model the paper's observation that, for the
// C2M-ReadWrite (STREAM-store) pattern, the measured LFB latency equals the
// *sum* of the C2M-Read and C2M-Write domain latencies: every store first
// RFO-reads its cacheline (C2M-Read domain), then the entry is held until
// the write is handed to the CHA (C2M-Write domain, ~10 ns unloaded). CHA
// write backpressure therefore throttles the core by holding LFB entries --
// which is exactly the "requests blocked at the cores before being admitted
// into the CHA" phase of the red regime.
//
// Three generation modes cover all the paper's C2M workloads:
//  * stream  (sequential, optional write fraction)  -> C2M-Read / C2M-ReadWrite
//  * random  (uniform in a region, optional writes, optional per-access
//             think time)                           -> GAPBS PR / BC
//  * episodic (compute; burst of B parallel reads; barrier) x K per query
//                                                    -> Redis-like apps
#pragma once

#include <cstdint>

#include "cha/cha.hpp"
#include "common/ring_buffer.hpp"
#include "common/rng.hpp"
#include "common/snapshot.hpp"
#include "counters/station.hpp"
#include "flow/credit_pool.hpp"
#include "mem/request.hpp"
#include "sim/simulator.hpp"

namespace hostnet::cpu {

struct CoreWorkload {
  enum class Pattern : std::uint8_t { kSequential, kRandom } pattern = Pattern::kSequential;
  mem::Region region{};
  /// Fraction of accesses that are stores (RFO read + write-back of the
  /// same line). 1.0 models STREAM-store (50/50 read/write memory traffic).
  double write_fraction = 0.0;
  /// Pause between a slot becoming free and the next issue (compute).
  Tick think = 0;

  // Episodic (request/response app) mode; active when episode_reads > 0.
  std::uint32_t episode_reads = 0;     ///< parallel misses per episode
  std::uint32_t episode_writes = 0;    ///< stores per episode (issued with reads)
  Tick episode_compute = 0;            ///< compute before each episode
  std::uint32_t episodes_per_query = 1;
};

struct CoreConfig {
  std::uint32_t lfb_entries = 12;
  /// Extra outstanding-miss slots when the hardware prefetcher helps
  /// (sequential patterns only; L2 streamer running ahead).
  std::uint32_t prefetch_extra = 0;
  Tick t_core_to_cha = ns(20);  ///< L1/L2 miss path + hop to the CHA
  Tick t_wb_to_cha = ns(6);     ///< write handoff to the CHA (C2M-Write hop)
};

class Core final : public mem::Completer, public cha::ChaClient {
 public:
  Core(sim::Simulator& sim, cha::Cha& cha, const CoreConfig& cfg,
       const CoreWorkload& wl, std::uint16_t id, std::uint64_t seed);

  void start();

  /// Duty-cycle throttling hook (used by the hostCC-style controller): a
  /// paused core stops issuing new requests; in-flight ones complete.
  void set_paused(bool paused);
  bool paused() const { return paused_; }

  // -- mem::Completer / cha::ChaClient ---------------------------------------
  void complete(const mem::Request& req, Tick now) override;
  bool on_cha_admission(mem::Op op) override;

  // -- credit pools (registered with flow::DomainRegistry) --------------------
  /// C2M-Read domain pool: the LFB entries themselves.
  flow::CreditPool& lfb_pool() { return lfb_pool_; }
  /// C2M-Write domain pool (telemetry-only, unbounded): an entry is "in use"
  /// from RFO-data arrival until the CHA acknowledges the write.
  flow::CreditPool& write_pool() { return write_pool_; }

  // -- measurement ------------------------------------------------------------
  counters::LatencyStation& lfb_station() { return lfb_pool_.station(); }
  counters::LatencyStation& write_station() { return write_pool_.station(); }
  std::uint64_t lines_read() const { return lines_read_; }
  std::uint64_t lines_written() const { return lines_written_; }
  std::uint64_t queries() const { return queries_; }
  void reset_counters(Tick now);

  /// Checked-build audit (no-op otherwise): C2M request conservation --
  /// every issued access completed or still holds its LFB entry, and the
  /// holdings never exceeded the LFB capacity.
  void verify_invariants() const {
    lfb_pool_.verify();
    write_pool_.verify();
  }

  /// A request that failed CHA admission, with when it first blocked.
  struct Blocked {
    mem::Request req;
    Tick since;
  };

  // -- checkpointing (DESIGN.md section 4e) -----------------------------------
  // Config (sim_, cha_, cfg_, wl_, id_) is construction state; everything
  // the workload mutates is below. Blocked requests carry mem::Request
  // whose completer points back at this Core: same-host restore only.
  struct Snapshot {
    Rng rng{0};
    flow::CreditPool::Snapshot lfb_pool;
    flow::CreditPool::Snapshot write_pool;
    std::uint64_t seq_line = 0;
    bool think_pending = false;
    bool paused = false;
    std::uint32_t episode_outstanding = 0;
    std::uint32_t episode_reads_to_issue = 0;
    std::uint32_t episode_writes_to_issue = 0;
    std::uint32_t episodes_done_in_query = 0;
    bool in_compute = false;
    RingBuffer<Blocked> blocked_reads;
    RingBuffer<Blocked> blocked_writes;
    std::uint64_t lines_read = 0;
    std::uint64_t lines_written = 0;
    std::uint64_t queries = 0;
  };

  void save_state(Snapshot& out) const {
    out.rng = rng_;
    lfb_pool_.save_state(out.lfb_pool);
    write_pool_.save_state(out.write_pool);
    out.seq_line = seq_line_;
    out.think_pending = think_pending_;
    out.paused = paused_;
    out.episode_outstanding = episode_outstanding_;
    out.episode_reads_to_issue = episode_reads_to_issue_;
    out.episode_writes_to_issue = episode_writes_to_issue_;
    out.episodes_done_in_query = episodes_done_in_query_;
    out.in_compute = in_compute_;
    out.blocked_reads = blocked_reads_;
    out.blocked_writes = blocked_writes_;
    out.lines_read = lines_read_;
    out.lines_written = lines_written_;
    out.queries = queries_;
  }

  void load_state(const Snapshot& s) {
    rng_ = s.rng;
    lfb_pool_.load_state(s.lfb_pool);
    write_pool_.load_state(s.write_pool);
    seq_line_ = s.seq_line;
    think_pending_ = s.think_pending;
    paused_ = s.paused;
    episode_outstanding_ = s.episode_outstanding;
    episode_reads_to_issue_ = s.episode_reads_to_issue;
    episode_writes_to_issue_ = s.episode_writes_to_issue;
    episodes_done_in_query_ = s.episodes_done_in_query;
    in_compute_ = s.in_compute;
    blocked_reads_ = s.blocked_reads;
    blocked_writes_ = s.blocked_writes;
    lines_read_ = s.lines_read;
    lines_written_ = s.lines_written;
    queries_ = s.queries;
  }

 private:
  std::uint32_t lfb_capacity() const;
  bool episodic() const { return wl_.episode_reads + wl_.episode_writes > 0; }
  std::uint64_t next_seq_addr();
  std::uint64_t random_addr();
  void pump();
  void issue_read(std::uint64_t addr, bool is_store);
  void send_to_cha(mem::Request req);
  void issue_episode();
  void begin_episode_after_compute();

  sim::Simulator& sim_;
  cha::Cha& cha_;
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  CoreConfig cfg_;
  // hostnet-audit: skip(wl_, workload shape is construction config; episode progress lives in the saved members)
  CoreWorkload wl_;
  // hostnet-audit: skip(id_, construction identity; fixed at build)
  std::uint16_t id_;
  Rng rng_;

  flow::CreditPool lfb_pool_;    ///< LFB entries (C2M-Read credits + hold time)
  flow::CreditPool write_pool_;  ///< C2M-Write phase (send -> CHA ack), unbounded
  std::uint64_t seq_line_ = 0;
  bool think_pending_ = false;
  bool paused_ = false;

  // Episodic state.
  std::uint32_t episode_outstanding_ = 0;
  std::uint32_t episode_reads_to_issue_ = 0;
  std::uint32_t episode_writes_to_issue_ = 0;
  std::uint32_t episodes_done_in_query_ = 0;
  bool in_compute_ = false;

  // Requests that failed CHA admission (see Blocked above).
  RingBuffer<Blocked> blocked_reads_;
  RingBuffer<Blocked> blocked_writes_;

  std::uint64_t lines_read_ = 0;
  std::uint64_t lines_written_ = 0;
  std::uint64_t queries_ = 0;
};

HOSTNET_SNAPSHOT_COVERS(Core);

}  // namespace hostnet::cpu
