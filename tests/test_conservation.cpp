// System-wide conservation and consistency properties, swept over many
// workload mixes (parameterized): whatever the traffic, the host network
// must neither create nor lose cachelines, credits must stay within their
// pools, and the PMU's derived quantities must agree with direct counts.
#include <gtest/gtest.h>

#include <string>

#include "core/host_system.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

struct Mix {
  std::string name;
  std::uint32_t read_cores;
  std::uint32_t rw_cores;
  std::uint32_t random_cores;
  bool p2m_write;
  bool p2m_read;
  std::uint64_t seed;
};

void PrintTo(const Mix& m, std::ostream* os) { *os << m.name; }

class ConservationSweep : public ::testing::TestWithParam<Mix> {};

TEST_P(ConservationSweep, HoldsEverywhere) {
  const Mix mix = GetParam();
  const HostConfig hc = cascade_lake();
  HostSystem host(hc, mix.seed);
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < mix.read_cores; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(idx++)));
  for (std::uint32_t i = 0; i < mix.rw_cores; ++i)
    host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(idx++)));
  for (std::uint32_t i = 0; i < mix.random_cores; ++i)
    host.add_core(workloads::gapbs_pr(workloads::c2m_core_region(idx++)));
  if (mix.p2m_write)
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  if (mix.p2m_read) {
    auto sc = workloads::fio_p2m_read(hc, workloads::p2m_region());
    sc.region.base += 2ull << 30;
    sc.link_gb_per_s = 6.0;  // share the socket when colocated with writes
    host.add_storage(sc);
  }
  host.run(us(150), us(500));
  Metrics m = host.collect();

  // (1) Credit pools never overflow.
  EXPECT_LE(m.lfb_max_occupancy, hc.core.lfb_entries);
  EXPECT_LE(m.p2m_write.max_credits_used, hc.iio.write_credits);
  EXPECT_LE(m.p2m_read.max_credits_used, hc.iio.read_credits);

  // (2) Cacheline conservation: MC-serviced reads match core+device
  // completions within in-flight slack.
  const double slack = 3000;  // queues + trackers + pipelines
  const double dev_read_lines =
      m.p2m_read.throughput_gbps * m.window_ns / kCachelineBytes;
  EXPECT_NEAR(static_cast<double>(m.mc_lines_read),
              static_cast<double>(m.c2m_lines_read) + dev_read_lines, slack);

  // (3) Class bandwidth accounting sums exactly.
  EXPECT_NEAR(m.mem_gbps[0] + m.mem_gbps[1] + m.mem_gbps[2] + m.mem_gbps[3],
              m.total_mem_gbps(), 1e-9);

  // (4) Total memory bandwidth never exceeds the theoretical peak.
  EXPECT_LE(m.total_mem_gbps(), hc.dram_peak_gb_per_s() * 1.001);

  // (5) Little's law self-consistency for the LFB (PMU method vs direct).
  if (m.c2m_lines_read > 10000)
    EXPECT_NEAR(m.lfb_littles_latency_ns / m.lfb_latency_ns, 1.0, 0.06);

  // (6) Row outcomes account for every issued line.
  EXPECT_LE(m.mc_pre_conflict_read, m.mc_act_read);
  EXPECT_LE(m.mc_pre_conflict_write, m.mc_act_write);

  // (7) Non-negative, finite metrics.
  EXPECT_GE(m.row_miss_ratio_read, 0.0);
  EXPECT_LE(m.row_miss_ratio_read, 1.0);
  EXPECT_GE(m.wpq_full_fraction, 0.0);
  EXPECT_LE(m.wpq_full_fraction, 1.0);
  EXPECT_GE(m.n_waiting, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, ConservationSweep,
    ::testing::Values(Mix{"read1", 1, 0, 0, false, false, 1},
                      Mix{"read6", 6, 0, 0, false, false, 2},
                      Mix{"rw4", 0, 4, 0, false, false, 3},
                      Mix{"rand3", 0, 0, 3, false, false, 4},
                      Mix{"q1", 3, 0, 0, true, false, 5},
                      Mix{"q2", 3, 0, 0, false, true, 6},
                      Mix{"q3", 0, 4, 0, true, false, 7},
                      Mix{"q4", 0, 4, 0, false, true, 8},
                      Mix{"mixed_all", 1, 2, 1, true, true, 9},
                      Mix{"p2m_only", 0, 0, 0, true, true, 10}),
    [](const ::testing::TestParamInfo<Mix>& info) { return info.param.name; });

TEST(ConfigValidation, AcceptsPresets) {
  EXPECT_EQ(cascade_lake().validate(), "");
  EXPECT_EQ(ice_lake().validate(), "");
}

TEST(ConfigValidation, RejectsBrokenConfigs) {
  {
    HostConfig c = cascade_lake();
    c.dram.channels = 3;
    EXPECT_NE(c.validate(), "");
    EXPECT_THROW(HostSystem h(c), std::invalid_argument);
  }
  {
    HostConfig c = cascade_lake();
    c.mc.wpq_low_wm = c.mc.wpq_high_wm;
    EXPECT_NE(c.validate(), "");
  }
  {
    HostConfig c = cascade_lake();
    c.mc.wpq_high_wm = c.mc.wpq_capacity;
    EXPECT_NE(c.validate(), "");
  }
  {
    HostConfig c = cascade_lake();
    c.dram.bank_interleave_bytes = 2 * c.dram.row_bytes;
    EXPECT_NE(c.validate(), "");
  }
  {
    HostConfig c = cascade_lake();
    c.cha.write_tracker_peripheral_reserve = c.cha.write_tracker + 1;
    EXPECT_NE(c.validate(), "");
  }
  {
    HostConfig c = cascade_lake();
    c.core.lfb_entries = 0;
    EXPECT_NE(c.validate(), "");
  }
}

}  // namespace
}  // namespace hostnet::core
