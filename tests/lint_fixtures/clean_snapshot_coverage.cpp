// Clean fixture for the snapshot-coverage check: descriptors present,
// suppressions honored, and the non-declaration spellings of save_state
// (member calls, out-of-class definitions) do not trigger.
#include <cstdint>

#define HOSTNET_SNAPSHOT_COVERS(T) static_assert(sizeof(T) > 0, #T)

namespace fixture {

class Covered {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
  };
  void save_state(Snapshot& out) const { out.count = count_; }

 private:
  std::uint64_t count_ = 0;
};
HOSTNET_SNAPSHOT_COVERS(Covered);

// A justified opt-out: the descriptor is platform-gated elsewhere.
class Suppressed {
 public:
  struct Snapshot {};
  // hostnet-lint: allow(snapshot-coverage)
  void save_state(Snapshot&) const {}
};

// Template parameters named `class` and scoped enums are not class heads.
template <class T>
struct Holder {
  T value{};
};
enum class Mode : std::uint8_t { kA, kB };

class Composite {
 public:
  struct Snapshot {
    Covered::Snapshot inner;
  };
  void save_state(Snapshot& out) const {
    inner_.save_state(out.inner);  // member call: not a declaration
  }

 private:
  Covered inner_;
};
HOSTNET_SNAPSHOT_COVERS(Composite);

class OutOfLine;  // forward declaration: no body, no finding

class OutOfLine {
 public:
  struct Snapshot {};
  void save_state(Snapshot& out) const;
};
HOSTNET_SNAPSHOT_COVERS(OutOfLine);

// Out-of-class definition: anchored to the (covered) class, not re-flagged.
void OutOfLine::save_state(Snapshot&) const {}

}  // namespace fixture
