// Fixture: every sanctioned wall-clock source must be flagged.
#include <chrono>
#include <ctime>

long long now_ns() {
  auto t = std::chrono::system_clock::now();  // finding: wall-clock
  return t.time_since_epoch().count();
}

long long mono_ns() {
  auto t = std::chrono::steady_clock::now();  // finding: wall-clock
  return t.time_since_epoch().count();
}

long long unix_s() {
  return time(NULL);  // finding: wall-clock
}
