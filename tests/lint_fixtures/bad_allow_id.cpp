// Fixture: an allow() naming a check id that does not exist is itself an
// error (typos must not silently disable nothing).
#include <cstdlib>

int roll() { return rand() % 6; }  // hostnet-lint: allow(no-such-check)
