// Fixture: range-for over an unordered container declared in this file --
// the iteration order is unspecified and must not feed results.
#include <string>
#include <unordered_map>

double total_latency(const std::unordered_map<int, double>& by_id);

double sum_all() {
  std::unordered_map<std::string, double> stats;
  double sum = 0;
  for (const auto& kv : stats) {  // finding: unordered-iter
    sum += kv.second;
  }
  return sum;
}
