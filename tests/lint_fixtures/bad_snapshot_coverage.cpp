// Deliberately-bad fixture for the snapshot-coverage check: two classes
// declare save_state() but the file carries no HOSTNET_SNAPSHOT_COVERS
// descriptor for either -> two findings.
#include <cstdint>

namespace fixture {

class Widget {
 public:
  struct Snapshot {
    std::uint64_t count = 0;
  };
  void save_state(Snapshot& out) const { out.count = count_; }
  void load_state(const Snapshot& s) { count_ = s.count; }

 private:
  std::uint64_t count_ = 0;
};

struct Gauge {
  struct Snapshot {
    double level = 0;
  };
  void save_state(Snapshot& out) const { out.level = level; }
  double level = 0;
};

}  // namespace fixture
