// Fixture: src/fleet is a hot-path subsystem (the runner's per-host loop
// executes inside every shard), so allocating/indirect types must be
// flagged there exactly like in src/sim.
#include <functional>
#include <string>
#include <unordered_map>

struct ShardJob {
  std::function<void()> body;  // finding: hot-alloc
};

std::unordered_map<std::string, int> fingerprint_ids;  // finding: hot-alloc

ShardJob* spawn() { return new ShardJob(); }  // finding: hot-alloc
