// Fixture: the sanctioned fleet idiom -- flat vectors with linear searches
// for the small fingerprint/tenant id spaces (tens of entries), no closures
// and no node-based containers.
#include <cstddef>
#include <string>
#include <vector>

struct Shard {
  std::vector<std::size_t> hosts;
};

std::vector<std::string> shard_fingerprints;
std::vector<Shard> shards;

std::size_t shard_for(const std::string& fp) {
  std::size_t s = 0;
  while (s < shard_fingerprints.size() && shard_fingerprints[s] != fp) ++s;
  return s;
}
