// Fixture: src/-path file with bare multi-digit literals on Tick lines.
#include <cstdint>

using Tick = std::int64_t;

constexpr Tick kMysteryDelay = 2730;  // finding: magic-tick

Tick stretch(Tick t) { return t + 40000; }  // finding: magic-tick
