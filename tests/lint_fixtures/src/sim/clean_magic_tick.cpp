// Fixture: tick constants spelled via the units.hpp helpers, and big
// literals on non-Tick lines (e.g. byte counts), are fine.
#include <cstdint>

using Tick = std::int64_t;

constexpr Tick ns(double v) { return static_cast<Tick>(v * 1000.0); }

constexpr Tick kRowCycle = ns(46.09);
constexpr std::uint64_t kRegionBytes = 1048576;

Tick stretch(Tick t) { return t + ns(2.5); }
