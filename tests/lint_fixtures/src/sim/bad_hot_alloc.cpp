// Fixture: this file's path puts it in a hot-path subsystem (src/sim), so
// per-element-allocating containers and new-expressions must be flagged.
#include <deque>
#include <functional>
#include <map>

struct Event {
  std::function<void()> fn;  // finding: hot-alloc
};

std::deque<Event> pending;  // finding: hot-alloc

std::map<long long, Event> overflow;  // finding: hot-alloc

Event* make_event() { return new Event(); }  // finding: hot-alloc
