// Fixture: hot-path subsystems may use vectors (growth amortizes to zero at
// steady state), placement new (allocates nothing), and explicitly justified
// setup-path containers behind an allow() directive.
#include <cstddef>
#include <map>
#include <new>
#include <vector>

struct Slot {
  int payload;
};

std::vector<Slot> arena;

Slot* construct_at(void* storage) { return new (storage) Slot{0}; }

// Beyond-horizon ticks are rare and never on the per-event path, so an
// ordered map is acceptable here (mirrors calendar_queue.hpp).
// hostnet-lint: allow(hot-alloc)
std::map<long long, Slot> overflow;
