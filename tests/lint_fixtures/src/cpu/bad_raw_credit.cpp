// Deliberately-bad fixture for the raw-credit-counter check: three ad-hoc
// integral pools in a flow-controlled subsystem (path says src/cpu), each of
// which should be a flow::CreditPool.
#include <cstdint>

struct BadLfb {
  void issue() { ++in_use_; }
  void complete() { --in_use_; }

  std::uint32_t in_use_ = 0;        // finding 1: *_in_use_
  unsigned inflight_ = 0;           // finding 2: *inflight_
  std::uint64_t tracker_used_ = 0;  // finding 3: *_used_
};

int main() { return 0; }
