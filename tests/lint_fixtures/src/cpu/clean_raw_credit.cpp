// Clean fixture for the raw-credit-counter check: the sanctioned spellings
// must produce no findings in a flow-controlled subsystem (path says
// src/cpu).
#include <cstdint>

namespace flow {
struct CreditPool {  // stand-in; the real one lives in src/flow
  void acquire() { ++n_; }
  void release() { --n_; }
  std::uint32_t in_use() const { return n_; }

 private:
  std::uint32_t n_ = 0;
};
}  // namespace flow

struct CleanLfb {
  // The pool owns the accounting.
  flow::CreditPool lfb_pool_;

  // An accessor returning a count is not a counter declaration.
  std::uint32_t credits_used() const { return lfb_pool_.in_use(); }

  // A genuinely non-credit counter, justified and suppressed.
  // hostnet-lint: allow(raw-credit-counter)
  std::uint32_t packets_in_flight_ = 0;  // wire-side, not a host domain

  // Names without the credit markers are untouched.
  std::uint64_t line_cursor_ = 0;
  std::uint32_t lines_to_issue_ = 0;
};

int main() { return 0; }
