// Fixture: src/net joined the hot-path set (the NIC DMA/TX pumps and the
// DCTCP copy loop run per packet), so per-element-allocating containers and
// new-expressions must be flagged there too.
#include <deque>
#include <map>
#include <unordered_map>

struct Packet {
  long long arrival;
};

std::deque<Packet> rx_ring;  // finding: hot-alloc

std::map<long long, Packet> reorder;  // finding: hot-alloc

std::unordered_map<long long, Packet> flows;  // finding: hot-alloc

Packet* alloc_packet() { return new Packet(); }  // finding: hot-alloc
