// Fixture: src/net hot-path code uses RingBuffer for the packet queues and
// vectors for arenas; one-time callback wiring is justified with an allow().
#include <cstdint>
#include <functional>
#include <vector>

struct Packet {
  long long arrival;
};

std::vector<Packet> arena;

// Assigned once at construction, invoked (not created) per packet.
// hostnet-lint: allow(hot-alloc)
std::function<void(long long)> packet_delivered;
