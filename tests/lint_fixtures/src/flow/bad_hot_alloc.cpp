// Fixture: src/flow joined the hot-path set (CreditPool wait/notify runs
// once per event), so per-element-allocating containers and new-expressions
// must be flagged there too.
#include <deque>
#include <functional>
#include <list>

struct Waiter {
  std::function<void()> wake;  // finding: hot-alloc
};

std::deque<Waiter> wait_queue;  // finding: hot-alloc

std::list<Waiter> parked;  // finding: hot-alloc

Waiter* make_waiter() { return new Waiter(); }  // finding: hot-alloc
