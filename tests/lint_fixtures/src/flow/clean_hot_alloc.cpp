// Fixture: src/flow hot-path code may use vectors (growth amortizes out)
// and RingBuffer; one-time setup wiring is justified behind an allow().
#include <cstdint>
#include <functional>
#include <vector>

struct Waiter {
  std::uint64_t id;
};

std::vector<Waiter> arena;

// Installed once when the domain is registered, never per credit.
// hostnet-lint: allow(hot-alloc)
std::function<void()> on_exhausted;
