// Fixture: unseeded / global randomness must be flagged.
#include <cstdlib>
#include <random>

void reseed() { srand(42); }  // finding: raw-rand

int roll() { return rand() % 6; }  // finding: raw-rand

unsigned hw_entropy() {
  std::random_device rd;  // finding: raw-rand
  return rd();
}
