// Fixture: the project header idiom.
#pragma once

struct Guarded {
  int x;
};
