// Fixture: point lookups into an unordered container are deterministic and
// fine; only iteration is order-sensitive. Iterating a sorted vector is the
// sanctioned way to walk aggregated results.
#include <string>
#include <unordered_map>
#include <vector>

double lookup(const std::unordered_map<std::string, double>& stats,
              const std::string& key) {
  auto it = stats.find(key);
  return it == stats.end() ? 0.0 : it->second;
}

double sum_sorted(const std::vector<double>& values) {
  double sum = 0;
  for (double v : values) sum += v;
  return sum;
}
