// Fixture: simulated time from the simulator clock is the sanctioned source.
// Mentions of system_clock inside comments and strings must not be flagged:
// std::chrono::system_clock::now() is fine to *talk* about.
#include <cstdint>

struct Sim {
  std::int64_t now() const { return now_; }
  std::int64_t now_ = 0;
};

const char* kDoc = "never call std::chrono::system_clock::now() here";

std::int64_t now_ticks(const Sim& sim) { return sim.now(); }
