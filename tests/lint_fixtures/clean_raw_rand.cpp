// Fixture: a seeded per-stream RNG (common/rng.hpp idiom) is fine, and
// identifiers that merely contain "rand" must not be flagged.
#include <cstdint>

struct Rng {
  explicit Rng(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next() { return state_ += 0x9E3779B97f4A7C15ull; }
  std::uint64_t state_;
};

std::uint64_t random_addr(Rng& rng) { return rng.next(); }
std::uint64_t operand(Rng& rng) { return rng.next(); }
