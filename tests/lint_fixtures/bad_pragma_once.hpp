// Fixture: a header relying on classic include guards instead of the
// project's pragma-based idiom must be flagged.
#ifndef HOSTNET_TESTS_LINT_FIXTURES_BAD_PRAGMA_ONCE_HPP_
#define HOSTNET_TESTS_LINT_FIXTURES_BAD_PRAGMA_ONCE_HPP_

struct Unguarded {
  int x;
};

#endif
