// Fixture for --stale: the allow() below suppresses nothing -- the code it
// once excused is gone. A plain lint run accepts the file; `--stale` must
// report one stale-allow finding at the directive line.
#include <cstdint>

// hostnet-lint: allow(wall-clock)
std::uint64_t add_one(std::uint64_t x) { return x + 1; }
