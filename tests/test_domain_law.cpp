// The paper's domain throughput law (section 4), checked against the
// DomainRegistry: for every registered credit pool that completed work in
// the window, the observed throughput must satisfy T <= C * 64 / L -- and,
// because C and L are measured as time-averaged occupancy and mean hold
// latency of the *same* pool, Little's law makes the bound tight (equality
// up to window-boundary effects) for the pool's own completions.
#include <gtest/gtest.h>

#include <string>

#include "core/host_system.hpp"
#include "flow/domain_registry.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

struct Scenario {
  std::string name;
  std::uint32_t read_cores;
  std::uint32_t rw_cores;
  bool p2m_write;
  bool p2m_read;
};

void PrintTo(const Scenario& s, std::ostream* os) { *os << s.name; }

class DomainLawSweep : public ::testing::TestWithParam<Scenario> {};

TEST_P(DomainLawSweep, EveryObservationSatisfiesTheLaw) {
  const Scenario sc = GetParam();
  const HostConfig hc = cascade_lake();
  HostSystem host(hc, /*seed=*/7);
  std::uint32_t idx = 0;
  for (std::uint32_t i = 0; i < sc.read_cores; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(idx++)));
  for (std::uint32_t i = 0; i < sc.rw_cores; ++i)
    host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(idx++)));
  if (sc.p2m_write)
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  if (sc.p2m_read) {
    auto dev = workloads::fio_p2m_read(hc, workloads::p2m_region());
    dev.region.base += 2ull << 30;
    host.add_storage(dev);
  }
  host.run(us(200), us(800));
  const Tick now = host.sim().now();
  const Tick window = us(800);

  const Domain kDomains[] = {Domain::kC2MRead, Domain::kC2MWrite,
                             Domain::kP2MRead, Domain::kP2MWrite};
  int checked = 0;
  for (Domain d : kDomains) {
    // Summed observation: disjoint pools of one domain carry additive
    // occupancy and completions, so the law applies to the aggregate too.
    struct {
      double occ = 0;
      double latency_weighted = 0;
      std::uint64_t completions = 0;
    } obs;
    host.domains().for_each(d, [&](flow::DomainRegistry::Entry& e) {
      auto& s = e.pool->station();
      obs.occ += s.avg_occupancy(now);
      if (s.completions() > 0) {
        obs.latency_weighted +=
            s.mean_latency_ns() * static_cast<double>(s.completions());
        obs.completions += s.completions();
      }
    });
    if (obs.completions == 0) continue;
    ++checked;
    const double latency_ns =
        obs.latency_weighted / static_cast<double>(obs.completions);
    const double throughput_gbps =
        gb_per_s(obs.completions * kCachelineBytes, window);
    const double bound_gbps =
        obs.occ * static_cast<double>(kCachelineBytes) / latency_ns;
    SCOPED_TRACE("domain " + std::to_string(static_cast<int>(d)) + " T=" +
                 std::to_string(throughput_gbps) + " bound=" +
                 std::to_string(bound_gbps));
    ASSERT_GT(latency_ns, 0.0);
    // The law proper (with headroom for boundary effects)...
    EXPECT_LE(throughput_gbps, bound_gbps * 1.20);
    // ...and tightness: the pool's own completions track the bound.
    EXPECT_GE(throughput_gbps, bound_gbps * 0.80);
  }
  const int expected = (sc.read_cores + sc.rw_cores > 0 ? 1 : 0) +
                       (sc.rw_cores > 0 ? 1 : 0) + (sc.p2m_write ? 1 : 0) +
                       (sc.p2m_read ? 1 : 0);
  EXPECT_EQ(checked, expected) << "scenario exercised unexpected domains";

  // The registry-derived Metrics must agree with the registry itself.
  Metrics m = host.collect();
  for (Domain d : kDomains) {
    const DomainObservation again = host.domains().observe(
        d, now, window,
        d == Domain::kC2MRead ? flow::OccAggregation::kMean
                              : flow::OccAggregation::kSum);
    EXPECT_DOUBLE_EQ(m.domain(d).credits_in_use, again.credits_in_use);
    EXPECT_DOUBLE_EQ(m.domain(d).latency_ns, again.latency_ns);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fig06Style, DomainLawSweep,
    ::testing::Values(Scenario{"c2m_read_4c", 4, 0, false, false},
                      Scenario{"c2m_rw_3c_p2m_write", 0, 3, true, false},
                      Scenario{"c2m_read_3c_p2m_read", 3, 0, false, true},
                      Scenario{"full_mix", 2, 2, true, true}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace hostnet::core
