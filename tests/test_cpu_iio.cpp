// Unit tests for the core (LFB) and IIO/device models, run against a real
// CHA+MC stack (small, single-purpose scenarios).
#include <gtest/gtest.h>

#include "cha/cha.hpp"
#include "cpu/core.hpp"
#include "iio/iio.hpp"
#include "iio/storage_device.hpp"
#include "mc/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace hostnet {
namespace {

struct Stack {
  sim::Simulator sim;
  dram::AddressMap map{2, 32, 8192, 256, dram::BankHash::kXorHash, 8192};
  mc::MemoryController mc;
  cha::Cha cha;
  iio::Iio iio;

  Stack() : mc(sim, mc::ChannelConfig{}, map, nullptr), cha(sim, {}, mc), iio(sim, cha, {}) {
    mc.set_listener(&cha);
  }
};

TEST(Core, LfbOccupancyNeverExceedsCapacity) {
  Stack s;
  cpu::CoreConfig cfg;
  cfg.lfb_entries = 10;
  cpu::CoreWorkload wl;
  wl.pattern = cpu::CoreWorkload::Pattern::kSequential;
  cpu::Core core(s.sim, s.cha, cfg, wl, 0, 1);
  core.start();
  s.sim.run_until(us(50));
  EXPECT_EQ(core.lfb_station().max_occupancy(), 10);
  EXPECT_GT(core.lines_read(), 1000u);
}

TEST(Core, PrefetchExtraAppliesOnlyToSequential) {
  Stack s;
  cpu::CoreConfig cfg;
  cfg.lfb_entries = 10;
  cfg.prefetch_extra = 6;
  cpu::CoreWorkload seq;
  cpu::Core a(s.sim, s.cha, cfg, seq, 0, 1);
  cpu::CoreWorkload rnd;
  rnd.pattern = cpu::CoreWorkload::Pattern::kRandom;
  rnd.region.base = 4ull << 30;
  cpu::Core b(s.sim, s.cha, cfg, rnd, 1, 2);
  a.start();
  b.start();
  s.sim.run_until(us(50));
  EXPECT_EQ(a.lfb_station().max_occupancy(), 16);
  EXPECT_EQ(b.lfb_station().max_occupancy(), 10);
}

TEST(Core, StoreWorkloadWritesBackEveryLine) {
  Stack s;
  cpu::CoreWorkload wl;
  wl.write_fraction = 1.0;
  cpu::Core core(s.sim, s.cha, {}, wl, 0, 1);
  core.start();
  s.sim.run_until(us(50));
  EXPECT_GT(core.lines_read(), 500u);
  // Every RFO read is followed by a write-back; allow in-flight slack.
  EXPECT_NEAR(static_cast<double>(core.lines_written()),
              static_cast<double>(core.lines_read()), 16.0);
  EXPECT_GT(core.write_station().completions(), 0u);
  EXPECT_NEAR(core.write_station().mean_latency_ns(), 10.0, 3.0);
}

TEST(Core, ThinkTimeThrottlesIssueRate) {
  Stack s;
  cpu::CoreWorkload fast;
  cpu::CoreWorkload slow = fast;
  slow.think = ns(50);
  slow.region.base = 8ull << 30;
  cpu::Core a(s.sim, s.cha, {}, fast, 0, 1);
  cpu::Core b(s.sim, s.cha, {}, slow, 1, 2);
  a.start();
  b.start();
  s.sim.run_until(us(100));
  // ~one access per 50 ns -> ~20 lines/us; the unthrottled core does many more.
  EXPECT_LT(b.lines_read(), 100u * 25);
  EXPECT_GT(a.lines_read(), b.lines_read() * 3);
}

TEST(Core, EpisodicWorkloadCountsQueries) {
  Stack s;
  cpu::CoreWorkload wl;
  wl.pattern = cpu::CoreWorkload::Pattern::kRandom;
  wl.episode_reads = 4;
  wl.episodes_per_query = 3;
  wl.episode_compute = ns(100);
  cpu::Core core(s.sim, s.cha, {}, wl, 0, 1);
  core.start();
  s.sim.run_until(us(100));
  EXPECT_GT(core.queries(), 50u);
  // Each query = 3 episodes x 4 reads.
  EXPECT_NEAR(static_cast<double>(core.lines_read()),
              static_cast<double>(core.queries()) * 12.0, 13.0);
}

TEST(Core, ResetClearsWindowCounters) {
  Stack s;
  cpu::CoreWorkload wl;
  cpu::Core core(s.sim, s.cha, {}, wl, 0, 1);
  core.start();
  s.sim.run_until(us(10));
  core.reset_counters(s.sim.now());
  EXPECT_EQ(core.lines_read(), 0u);
  s.sim.run_until(us(20));
  EXPECT_GT(core.lines_read(), 0u);
}

TEST(Iio, WriteCreditsBoundInFlight) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.link_gb_per_s = 64.0;  // faster than the IIO can drain: credits bind
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(us(100));
  EXPECT_LE(s.iio.write_station().max_occupancy(), 92);
  EXPECT_GE(s.iio.write_station().max_occupancy(), 80);
  EXPECT_GT(dev.bytes_transferred(), 0u);
}

TEST(Iio, ReadCreditsBoundInFlight) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kRead;
  sc.link_gb_per_s = 64.0;
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(us(100));
  EXPECT_LE(s.iio.read_station().max_occupancy(), 192);
  EXPECT_GT(dev.bytes_transferred(), 0u);
}

TEST(Iio, UnloadedWriteLatencyNearCalibration) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.request_bytes = 4096;
  sc.queue_depth = 1;
  sc.per_request_latency = us(8);
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(ms(1));
  EXPECT_NEAR(s.iio.write_station().mean_latency_ns(), 300.0, 15.0);
}

TEST(StorageDevice, LinkPacesThroughput) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.link_gb_per_s = 14.0;
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  const Tick t0 = us(100);
  s.sim.run_until(t0);
  const auto b0 = dev.bytes_transferred();
  s.sim.run_until(t0 + ms(1));
  EXPECT_NEAR(gb_per_s(dev.bytes_transferred() - b0, ms(1)), 14.0, 0.5);
}

TEST(StorageDevice, CompletesRequestsAndCountsIops) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.request_bytes = 64 << 10;
  sc.queue_depth = 2;
  sc.per_request_latency = us(5);
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(ms(1));
  EXPECT_GT(dev.requests_completed(), 50u);
  // Bytes ~ requests x request size (in-flight slack allowed).
  EXPECT_NEAR(static_cast<double>(dev.bytes_transferred()),
              static_cast<double>(dev.requests_completed()) * (64 << 10),
              2.0 * (64 << 10));
}

TEST(StorageDevice, MixedRequestsSplitTraffic) {
  // mixed_fraction flips a fraction of requests to the opposite op: both
  // read and write DMA traffic must appear at the IIO.
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.mixed_fraction = 0.5;
  sc.request_bytes = 16 << 10;
  sc.queue_depth = 4;
  sc.per_request_latency = us(2);
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(ms(1));
  EXPECT_GT(s.iio.write_station().completions(), 100u);
  EXPECT_GT(s.iio.read_station().completions(), 100u);
  const double wr = static_cast<double>(s.iio.write_station().completions());
  const double rd = static_cast<double>(s.iio.read_station().completions());
  EXPECT_NEAR(wr / (wr + rd), 0.5, 0.15);
}

TEST(StorageDevice, PureModeUnaffectedByMixedDefault) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kWrite;
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(us(500));
  EXPECT_EQ(s.iio.read_station().completions(), 0u);
}

TEST(StorageDevice, ReadRequestsRoundTrip) {
  Stack s;
  iio::StorageConfig sc;
  sc.host_op = mem::Op::kRead;
  sc.request_bytes = 16 << 10;
  sc.queue_depth = 2;
  sc.per_request_latency = us(2);
  sc.region.base = 64ull << 30;
  iio::StorageDevice dev(s.sim, s.iio, sc);
  dev.start();
  s.sim.run_until(ms(1));
  EXPECT_GT(dev.requests_completed(), 20u);
}

}  // namespace
}  // namespace hostnet
