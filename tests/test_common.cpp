// Unit tests for common utilities: units, rng, statistics.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace hostnet {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(ns(1.0), 1000);
  EXPECT_EQ(us(1.0), 1'000'000);
  EXPECT_EQ(ms(1.0), 1'000'000'000);
  EXPECT_DOUBLE_EQ(to_ns(ns(2.73)), 2.73);
  EXPECT_DOUBLE_EQ(to_us(us(7.5)), 7.5);
}

TEST(Units, Throughput) {
  // 64 bytes in 2.73 ns -> 23.4 GB/s (one DDR4-2933 channel).
  EXPECT_NEAR(gb_per_s(64, ns(2.73)), 23.44, 0.01);
  // Zero or negative window yields zero.
  EXPECT_EQ(gb_per_s(100, 0), 0.0);
}

TEST(Units, Serialization) {
  // One cacheline at 14 GB/s takes ~4.57 ns.
  EXPECT_NEAR(to_ns(serialization_ticks(64, 14.0)), 4.571, 0.01);
  // Round trip: serialize then measure.
  const Tick t = serialization_ticks(1 << 20, 25.0);
  EXPECT_NEAR(gb_per_s(1 << 20, t), 25.0, 0.1);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    const auto va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= (a2.next() != c.next());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(r.below(37), 37u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(11);
  int counts[8] = {};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.below(8)];
  for (int c : counts) EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(MeanAccumulator, Basics) {
  MeanAccumulator m;
  EXPECT_EQ(m.mean(), 0.0);
  m.add(1.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 1.0);
  EXPECT_DOUBLE_EQ(m.max(), 3.0);
  EXPECT_EQ(m.count(), 2u);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
}

TEST(TimeWeighted, AveragesOverTime) {
  TimeWeighted tw;
  tw.reset(0);
  tw.set(0, 2);
  tw.set(ns(10), 4);  // level 2 for 10 ns
  tw.set(ns(30), 0);  // level 4 for 20 ns
  // Average over [0, 40ns]: (2*10 + 4*20 + 0*10) / 40 = 2.5
  EXPECT_NEAR(tw.average(ns(40)), 2.5, 1e-9);
  EXPECT_EQ(tw.max_level(), 4);
}

TEST(TimeWeighted, FractionAtCap) {
  TimeWeighted tw;
  tw.set_cap(3);
  tw.reset(0);
  tw.set(0, 3);
  tw.set(ns(25), 1);
  EXPECT_NEAR(tw.fraction_at_cap(ns(100)), 0.25, 1e-9);
}

TEST(TimeWeighted, ResetKeepsLevel) {
  TimeWeighted tw;
  tw.set(0, 7);
  tw.reset(ns(5));
  EXPECT_EQ(tw.level(), 7);
  EXPECT_NEAR(tw.average(ns(10)), 7.0, 1e-9);
}

TEST(SampleSet, QuantilesAndFractions) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_NEAR(s.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.quantile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  EXPECT_NEAR(s.fraction_at_least(51.0), 0.5, 1e-9);
  EXPECT_EQ(s.size(), 100u);
}

TEST(Stats, RelativeErrorSignConvention) {
  EXPECT_NEAR(relative_error_pct(11.0, 10.0), 10.0, 1e-9);   // overestimate +
  EXPECT_NEAR(relative_error_pct(9.0, 10.0), -10.0, 1e-9);   // underestimate -
  EXPECT_EQ(relative_error_pct(5.0, 0.0), 0.0);
}

TEST(Table, PrintsAlignedRows) {
  Table t({"a", "long-header"});
  t.row({"xxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("xxxx"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(1.234, 2), "1.23");
  EXPECT_EQ(Table::pct(12.345), "12.3%");
}

}  // namespace
}  // namespace hostnet
