// Unit tests for the DDIO / LLC model.
#include <gtest/gtest.h>

#include <set>

#include "cache/ddio.hpp"

namespace hostnet::cache {
namespace {

TEST(DdioCache, ColdMissesAllocateWithoutVictims) {
  DdioCache c(/*capacity=*/8 * 64, /*ways=*/2);  // 4 sets x 2 ways
  int victims = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const auto out = c.write(i * 64, static_cast<Tick>(i));
    EXPECT_FALSE(out.hit);
    if (out.writeback) ++victims;
  }
  // Cold fill of a cache-sized working set: few or no victims (hash may
  // overload a set, evicting at most a handful).
  EXPECT_LE(victims, 4);
}

TEST(DdioCache, RewriteIsHit) {
  DdioCache c(8 * 64, 2);
  c.write(0, 0);
  const auto out = c.write(0, 1);
  EXPECT_TRUE(out.hit);
  EXPECT_FALSE(out.writeback.has_value());
}

TEST(DdioCache, EvictionReturnsLruVictim) {
  DdioCache c(2 * 64, 2);  // a single set, 2 ways
  c.write(0 * 64, 0);
  c.write(1 * 64, 1);
  c.write(0 * 64, 2);  // touch line 0: line 1 becomes LRU
  const auto out = c.write(2 * 64, 3);
  ASSERT_TRUE(out.writeback.has_value());
  EXPECT_EQ(*out.writeback, 1u * 64);
}

TEST(DdioCache, StreamingLargeBufferAlwaysMissesInSteadyState) {
  // The paper's FIO workload: buffers far exceed the DDIO capacity, so in
  // steady state every DMA write misses and evicts (no absorption).
  DdioCache c(1 << 20, 2);  // 1 MB DDIO region
  const std::uint64_t lines = (8u << 20) / 64;  // 8 MB stream
  std::uint64_t hits = 0, victims = 0;
  for (std::uint64_t pass = 0; pass < 2; ++pass) {
    for (std::uint64_t i = 0; i < lines; ++i) {
      const auto out = c.write(i * 64, static_cast<Tick>(pass * lines + i));
      if (out.hit) ++hits;
      if (out.writeback) ++victims;
    }
  }
  EXPECT_LT(static_cast<double>(hits) / (2 * lines), 0.01);
  EXPECT_GT(victims, lines);  // steady-state: ~one victim per write
}

TEST(DdioCache, VictimStreamIsAddressScrambled) {
  // The mechanism behind the paper's Figure 2 observation: victims come out
  // in hashed-set order, not in the DMA stream's sequential order.
  DdioCache c(1 << 16, 2);
  std::vector<std::uint64_t> victims;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    const auto out = c.write(i * 64, static_cast<Tick>(i));
    if (out.writeback) victims.push_back(*out.writeback);
  }
  ASSERT_GT(victims.size(), 100u);
  std::size_t non_monotonic = 0;
  for (std::size_t i = 1; i < victims.size(); ++i)
    if (victims[i] < victims[i - 1]) ++non_monotonic;
  EXPECT_GT(non_monotonic, victims.size() / 4);
}

TEST(DdioCache, SetHashSpreadsSequentialLines) {
  DdioCache c(1 << 20, 2);
  std::set<std::uint32_t> sets;
  // Probe the private hash indirectly: sequential writes should land in
  // many distinct sets (no victims until a set fills up).
  std::uint64_t early_victims = 0;
  for (std::uint64_t i = 0; i < 64; ++i)
    if (c.write(i * 64, static_cast<Tick>(i)).writeback) ++early_victims;
  EXPECT_EQ(early_victims, 0u);
  EXPECT_EQ(c.ways(), 2u);
  EXPECT_GT(c.sets(), 1000u);
}

}  // namespace
}  // namespace hostnet::cache
