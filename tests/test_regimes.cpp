// Integration tests: the paper's headline phenomena must emerge from the
// simulator -- the blue regime (section 2.2 quadrants 1/2/4), the red
// regime (quadrant 3), and the root-cause signatures of section 5.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

RunOptions fast() {
  RunOptions o;
  o.warmup = us(200);
  o.measure = us(600);
  return o;
}

C2MSpec c2m_read_spec(std::uint32_t cores) {
  C2MSpec s;
  s.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  s.cores = cores;
  return s;
}

C2MSpec c2m_rw_spec(std::uint32_t cores) {
  C2MSpec s;
  s.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  s.cores = cores;
  return s;
}

P2MSpec p2m_write_spec(const HostConfig& hc) {
  P2MSpec s;
  s.storage = workloads::fio_p2m_write(hc, workloads::p2m_region());
  return s;
}

P2MSpec p2m_read_spec(const HostConfig& hc) {
  P2MSpec s;
  s.storage = workloads::fio_p2m_read(hc, workloads::p2m_region());
  return s;
}

TEST(Regimes, Quadrant1IsBlue) {
  // C2M-Read + P2M-Write: C2M degrades even though memory bandwidth is far
  // from saturated; P2M is unaffected (spare domain credits).
  const HostConfig hc = cascade_lake();
  const auto o = run_colocation(hc, c2m_read_spec(2), p2m_write_spec(hc), fast());
  EXPECT_GT(o.c2m_degradation(), 1.15);
  EXPECT_LT(o.p2m_degradation(), 1.05);
  EXPECT_EQ(o.regime(), Regime::kBlue);
  // Far from saturation: the surprise of the paper's section 2.1.
  EXPECT_LT(o.colo.metrics.total_mem_gbps(), 0.75 * hc.dram_peak_gb_per_s());
}

TEST(Regimes, Quadrant2IsBlueAndMilderThanQuadrant1) {
  const HostConfig hc = cascade_lake();
  const auto q1 = run_colocation(hc, c2m_read_spec(2), p2m_write_spec(hc), fast());
  const auto q2 = run_colocation(hc, c2m_read_spec(2), p2m_read_spec(hc), fast());
  EXPECT_LT(q2.p2m_degradation(), 1.05);
  EXPECT_LT(q2.c2m_degradation(), q1.c2m_degradation());
}

TEST(Regimes, Quadrant3TurnsRedOnceBandwidthSaturates) {
  const HostConfig hc = cascade_lake();
  const auto o = run_colocation(hc, c2m_rw_spec(4), p2m_write_spec(hc), fast());
  EXPECT_GT(o.c2m_degradation(), 1.1);
  EXPECT_GT(o.p2m_degradation(), 1.3);
  EXPECT_EQ(o.regime(), Regime::kRed);
  // The paper's antagonism: P2M degrades more than C2M in the red regime.
  EXPECT_GT(o.p2m_degradation(), o.c2m_degradation());
}

TEST(Regimes, Quadrant3LowLoadIsStillBlueish) {
  // With one C2M core, P2M is unaffected (paper: "with 2 or fewer C2M
  // cores, similar to quadrants 1 and 2").
  const HostConfig hc = cascade_lake();
  const auto o = run_colocation(hc, c2m_rw_spec(1), p2m_write_spec(hc), fast());
  EXPECT_LT(o.p2m_degradation(), 1.1);
}

TEST(Regimes, Quadrant4IsBlue) {
  const HostConfig hc = cascade_lake();
  const auto o = run_colocation(hc, c2m_rw_spec(3), p2m_read_spec(hc), fast());
  EXPECT_GT(o.c2m_degradation(), 1.1);
  EXPECT_LT(o.p2m_degradation(), 1.06);
}

TEST(Regimes, BlueRegimeRootCauses) {
  // Section 5.1: colocation inflates C2M-Read domain latency via MC
  // queueing and row-miss increase, while domain credits stay pinned.
  const HostConfig hc = cascade_lake();
  const auto opt = fast();
  const auto iso = run_workloads(hc, c2m_read_spec(2), std::nullopt, opt);
  const auto colo = run_workloads(hc, c2m_read_spec(2), p2m_write_spec(hc), opt);
  EXPECT_GT(colo.metrics.lfb_latency_ns, 1.15 * iso.metrics.lfb_latency_ns);
  EXPECT_GT(colo.metrics.avg_rpq_occupancy, iso.metrics.avg_rpq_occupancy);
  EXPECT_GT(colo.metrics.row_miss_ratio_read, 2.0 * iso.metrics.row_miss_ratio_read);
  EXPECT_EQ(colo.metrics.lfb_max_occupancy, 12);  // credits fully utilized
}

TEST(Regimes, BlueRegimeP2MHasSpareCredits) {
  // The P2M-Write domain tolerates latency inflation because its credits
  // are not fully utilized (~65 of 92 needed at PCIe line rate).
  const HostConfig hc = cascade_lake();
  const auto colo =
      run_workloads(hc, c2m_read_spec(4), p2m_write_spec(hc), fast());
  EXPECT_LT(colo.metrics.p2m_write.credits_in_use, 0.9 * hc.iio.write_credits);
  EXPECT_NEAR(colo.metrics.p2m_dev_gbps, 14.0, 0.5);
}

TEST(Regimes, RedRegimeWpqBackpressureSignature) {
  // Section 5.2: in the red regime the WPQ backpressures persistently and
  // the CHA write backlog (N_waiting) grows; P2M-Write latency inflates
  // and its credits pin at the IIO buffer size.
  const HostConfig hc = cascade_lake();
  const auto opt = fast();
  const auto lo = run_workloads(hc, c2m_rw_spec(1), p2m_write_spec(hc), opt);
  const auto hi = run_workloads(hc, c2m_rw_spec(5), p2m_write_spec(hc), opt);
  EXPECT_GT(hi.metrics.wpq_full_fraction, 0.5);
  EXPECT_GT(hi.metrics.n_waiting, 10 * std::max(1.0, lo.metrics.n_waiting));
  EXPECT_GT(hi.metrics.p2m_write.latency_ns, 1.5 * lo.metrics.p2m_write.latency_ns);
  EXPECT_GT(hi.metrics.p2m_write.max_credits_used, 0.95 * hc.iio.write_credits);
}

TEST(Regimes, CzmWriteDomainShieldedFromMcBackpressure) {
  // Section 5.2's asymmetry: the C2M-Write domain (ends at the CHA) sees
  // far smaller latency inflation than the P2M-Write domain (spans the MC)
  // under write backlog.
  const HostConfig hc = cascade_lake();
  const auto hi = run_workloads(hc, c2m_rw_spec(4), p2m_write_spec(hc), fast());
  EXPECT_LT(hi.metrics.c2m_write.latency_ns, 0.5 * hi.metrics.p2m_write.latency_ns);
}

TEST(Regimes, RegimeClassifier) {
  EXPECT_EQ(classify_regime(1.0, 1.0), Regime::kNone);
  EXPECT_EQ(classify_regime(1.3, 1.0), Regime::kBlue);
  EXPECT_EQ(classify_regime(1.3, 1.4), Regime::kRed);
  EXPECT_EQ(to_string(Regime::kBlue), "blue");
}

TEST(Domains, ThroughputLawAlgebra) {
  // 12 credits at 70 ns -> ~11 GB/s; 92 at 300 ns -> ~19.6 GB/s.
  EXPECT_NEAR(max_throughput_gbps(12, 70), 10.97, 0.01);
  EXPECT_NEAR(max_throughput_gbps(92, 300), 19.63, 0.01);
  EXPECT_EQ(max_throughput_gbps(12, 0), 0.0);
  // The paper's spare-credit argument: 14 GB/s at 300 ns needs ~65 credits.
  EXPECT_NEAR(credits_needed(14.0, 300.0), 65.6, 0.1);
}

class QuadrantSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(QuadrantSweep, P2MWriteNeverDegradesInQuadrant1) {
  // Property over the full core sweep: quadrant 1 stays blue.
  const HostConfig hc = cascade_lake();
  const auto o =
      run_colocation(hc, c2m_read_spec(GetParam()), p2m_write_spec(hc), fast());
  EXPECT_LT(o.p2m_degradation(), 1.05) << GetParam() << " cores";
  EXPECT_GT(o.c2m_degradation(), 1.1) << GetParam() << " cores";
}

INSTANTIATE_TEST_SUITE_P(Cores, QuadrantSweep, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace hostnet::core
