// flow::CreditPool -- unit tests for each policy knob, plus a randomized
// property test against a naive mirror model (plain counter + std::deque
// waiter queues + hand-rolled occupancy integral). The pool replaced four
// hand-written flow-control implementations; the mirror pins down the shared
// semantics they all rely on.
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "flow/credit_pool.hpp"

namespace hostnet::flow {
namespace {

/// Records its wakes so tests can assert order and multiplicity.
struct RecordingWaiter final : CreditWaiter {
  void on_credit_available(CreditPool&) override { ++wakes; }
  int wakes = 0;
};

TEST(CreditPool, AcquireReleaseTracksInUse) {
  CreditPoolSpec spec;
  spec.name = "test.basic";
  spec.capacity = 4;
  CreditPool pool(spec);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_TRUE(pool.has_space());
  pool.acquire(ns(10));
  pool.acquire(ns(10));
  EXPECT_EQ(pool.in_use(), 2u);
  pool.release(ns(30), /*entered=*/ns(10));
  EXPECT_EQ(pool.in_use(), 1u);
  EXPECT_EQ(pool.station().completions(), 1u);
  EXPECT_DOUBLE_EQ(pool.station().mean_latency_ns(), 20.0);
  pool.release(ns(40));  // untimed: occupancy only
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.station().completions(), 1u);
  pool.verify();
}

TEST(CreditPool, ZeroCapacityIsUnbounded) {
  CreditPoolSpec spec;
  spec.name = "test.telemetry";
  CreditPool pool(spec);  // capacity 0: telemetry-only
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.has_space());
    pool.acquire(ns(i));
  }
  EXPECT_EQ(pool.in_use(), 100u);
}

TEST(CreditPool, ReserveIsPrivilegedOnly) {
  CreditPoolSpec spec;
  spec.name = "test.reserve";
  spec.capacity = 4;
  spec.reserve = 2;
  CreditPool pool(spec);
  EXPECT_TRUE(pool.try_acquire(0));
  EXPECT_TRUE(pool.try_acquire(0));
  // Normal acquirers are capped at capacity - reserve = 2.
  EXPECT_FALSE(pool.has_space(/*privileged=*/false));
  EXPECT_FALSE(pool.try_acquire(0, /*privileged=*/false));
  // Privileged ones may use the whole pool.
  EXPECT_TRUE(pool.try_acquire(0, /*privileged=*/true));
  EXPECT_TRUE(pool.try_acquire(0, /*privileged=*/true));
  EXPECT_FALSE(pool.try_acquire(0, /*privileged=*/true));
  EXPECT_EQ(pool.in_use(), 4u);
}

TEST(CreditPool, WhileAvailableDrainsPrivilegedFirst) {
  CreditPoolSpec spec;
  spec.name = "test.wake";
  spec.capacity = 8;
  CreditPool pool(spec);
  RecordingWaiter normal, priv;
  pool.enqueue_waiter(&normal, /*privileged=*/false);
  pool.enqueue_waiter(&priv, /*privileged=*/true);
  EXPECT_EQ(pool.waiting(), 2u);
  pool.notify();  // space for all: both wake, privileged first
  EXPECT_EQ(priv.wakes, 1);
  EXPECT_EQ(normal.wakes, 1);
  EXPECT_EQ(pool.waiting(), 0u);
}

TEST(CreditPool, OnePerNotifyWakesExactlyOne) {
  CreditPoolSpec spec;
  spec.name = "test.one";
  spec.capacity = 8;
  spec.wake = WakePolicy::kOnePerNotify;
  CreditPool pool(spec);
  RecordingWaiter a, b;
  pool.enqueue_waiter(&a);
  pool.enqueue_waiter(&b);
  pool.notify();
  EXPECT_EQ(a.wakes, 1);  // FIFO: first registered wakes first
  EXPECT_EQ(b.wakes, 0);
  pool.notify();
  EXPECT_EQ(b.wakes, 1);
}

TEST(CreditPool, DedupSuppressesDuplicateRegistration) {
  CreditPoolSpec spec;
  spec.name = "test.dedup";
  spec.capacity = 8;
  spec.dedup_waiters = true;
  CreditPool pool(spec);
  RecordingWaiter w;
  pool.enqueue_waiter(&w);
  pool.enqueue_waiter(&w);  // dropped
  EXPECT_EQ(pool.waiting(), 1u);

  CreditPoolSpec dup = spec;
  dup.name = "test.nodedup";
  dup.dedup_waiters = false;
  CreditPool pool2(dup);
  pool2.enqueue_waiter(&w);
  pool2.enqueue_waiter(&w);  // intentional duplicate (CHA client semantics)
  EXPECT_EQ(pool2.waiting(), 2u);
}

TEST(CreditPool, HysteresisWatermarks) {
  CreditPoolSpec spec;
  spec.name = "test.hyst";
  spec.capacity = 32;
  spec.backpressure = BackpressurePolicy::kHysteresis;
  spec.high_watermark = 22;
  spec.low_watermark = 8;
  CreditPool pool(spec);
  for (int i = 0; i < 21; ++i) pool.acquire(0);
  EXPECT_FALSE(pool.above_high());
  pool.acquire(0);
  EXPECT_TRUE(pool.above_high());  // >= high engages
  while (pool.in_use() > 9) pool.release(ns(1));
  EXPECT_FALSE(pool.at_or_below_low());
  pool.release(ns(1));
  EXPECT_TRUE(pool.at_or_below_low());  // <= low disengages
}

TEST(CreditPool, PressureFractionIntegratesOverThreshold) {
  CreditPoolSpec spec;
  spec.name = "test.pressure";
  spec.capacity = 8;
  spec.pressure_threshold = 2;
  CreditPool pool(spec);
  pool.acquire(0);
  pool.acquire(0);
  pool.acquire(0);  // in_use 3 > 2: pressure on from t=0
  pool.release(ns(40));
  pool.release(ns(40));  // pressure off at t=40ns
  // Over [0, 100ns]: 40% of the window above the threshold.
  EXPECT_NEAR(pool.pressure_fraction(ns(100)), 0.4, 1e-12);
}

// ---------------------------------------------------------------------------
// Randomized property test: CreditPool vs a naive mirror.
// ---------------------------------------------------------------------------

/// The simplest possible implementation of the same contract.
struct MirrorPool {
  explicit MirrorPool(const CreditPoolSpec& s) : spec(s) {}

  bool has_space(bool privileged) const {
    if (spec.capacity == 0) return true;
    const std::uint32_t cap = privileged ? spec.capacity
                              : spec.capacity > spec.reserve
                                  ? spec.capacity - spec.reserve
                                  : 0;
    return in_use < cap;
  }
  void advance(Tick now) {
    occupancy_integral += static_cast<double>(in_use) *
                          static_cast<double>(now - last_time);
    last_time = now;
  }
  void acquire(Tick now) {
    advance(now);
    ++in_use;
  }
  void release(Tick now) {
    advance(now);
    --in_use;
  }
  void notify(std::vector<int>* wake_log) {
    if (spec.wake == WakePolicy::kOnePerNotify) {
      if (!waiters.empty()) {
        wake_log->push_back(waiters.front());
        waiters.pop_front();
      }
      return;
    }
    while (!privileged_waiters.empty() && has_space(true)) {
      wake_log->push_back(privileged_waiters.front());
      privileged_waiters.pop_front();
    }
    while (!waiters.empty() && has_space(false)) {
      wake_log->push_back(waiters.front());
      waiters.pop_front();
    }
  }
  void enqueue(int id, bool privileged) {
    auto& q = privileged ? privileged_waiters : waiters;
    if (spec.dedup_waiters)
      for (int queued : q)
        if (queued == id) return;
    q.push_back(id);
  }

  CreditPoolSpec spec;
  std::uint32_t in_use = 0;
  std::deque<int> waiters;
  std::deque<int> privileged_waiters;
  double occupancy_integral = 0;
  Tick last_time = 0;
};

/// Pool-side waiter that appends its id to the same kind of wake log.
struct LoggingWaiter final : CreditWaiter {
  void on_credit_available(CreditPool&) override { log->push_back(id); }
  std::vector<int>* log = nullptr;
  int id = 0;
};

void run_property_trial(std::uint64_t seed, WakePolicy wake, bool dedup,
                        std::uint32_t capacity, std::uint32_t reserve) {
  CreditPoolSpec spec;
  spec.name = "test.property";
  spec.capacity = capacity;
  spec.reserve = reserve;
  spec.wake = wake;
  spec.dedup_waiters = dedup;
  CreditPool pool(spec);
  MirrorPool mirror(spec);

  constexpr int kWaiters = 8;
  LoggingWaiter waiters[kWaiters];
  std::vector<int> pool_log, mirror_log;
  for (int i = 0; i < kWaiters; ++i) {
    waiters[i].log = &pool_log;
    waiters[i].id = i;
  }

  Rng rng(seed);
  Tick now = 0;
  std::vector<Tick> outstanding;  // acquire times of held credits
  for (int step = 0; step < 2000; ++step) {
    now += static_cast<Tick>(rng.below(100));
    const std::uint64_t action = rng.below(10);
    if (action < 4) {  // try-acquire
      const bool privileged = rng.chance(0.3);
      const bool got = pool.try_acquire(now, privileged);
      EXPECT_EQ(got, mirror.has_space(privileged));
      if (got) {
        mirror.acquire(now);
        outstanding.push_back(now);
      }
    } else if (action < 7) {  // release (timed), then notify
      if (!outstanding.empty()) {
        const std::size_t pick = rng.below(outstanding.size());
        const Tick entered = outstanding[pick];
        outstanding[pick] = outstanding.back();
        outstanding.pop_back();
        pool.release(now, entered);
        mirror.release(now);
        pool.notify();
        mirror.notify(&mirror_log);
      }
    } else if (action < 9) {  // enqueue a waiter
      const int id = static_cast<int>(rng.below(kWaiters));
      const bool privileged = wake == WakePolicy::kWhileAvailable && rng.chance(0.25);
      pool.enqueue_waiter(&waiters[id], privileged);
      mirror.enqueue(id, privileged);
    } else {  // spurious notify
      pool.notify();
      mirror.notify(&mirror_log);
    }
    ASSERT_EQ(pool.in_use(), mirror.in_use) << "step " << step;
    ASSERT_EQ(pool.waiting(),
              mirror.waiters.size() + mirror.privileged_waiters.size())
        << "step " << step;
    ASSERT_EQ(pool_log, mirror_log) << "step " << step;
    pool.verify();
  }
  // Time-weighted occupancy must match the hand-rolled integral.
  mirror.advance(now);
  const double window = static_cast<double>(now);
  if (window > 0) {
    EXPECT_NEAR(pool.station().avg_occupancy(now),
                mirror.occupancy_integral / window, 1e-9);
  }
}

TEST(CreditPoolProperty, MatchesNaiveMirrorAcrossPolicies) {
  std::uint64_t sm = 0xC0FFEE;
  for (int trial = 0; trial < 8; ++trial) {
    const std::uint64_t seed = splitmix64(sm);
    SCOPED_TRACE(trial);
    run_property_trial(seed, WakePolicy::kWhileAvailable, /*dedup=*/false,
                       /*capacity=*/12, /*reserve=*/0);
    run_property_trial(seed, WakePolicy::kWhileAvailable, /*dedup=*/false,
                       /*capacity=*/48, /*reserve=*/8);
    run_property_trial(seed, WakePolicy::kOnePerNotify, /*dedup=*/true,
                       /*capacity=*/16, /*reserve=*/0);
    run_property_trial(seed, WakePolicy::kOnePerNotify, /*dedup=*/false,
                       /*capacity=*/6, /*reserve=*/0);
  }
}

}  // namespace
}  // namespace hostnet::flow
