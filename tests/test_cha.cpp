// Unit tests for the CHA: admission, domain completion points, DDIO.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cha/cha.hpp"
#include "mc/memory_controller.hpp"
#include "sim/simulator.hpp"

namespace hostnet::cha {
namespace {

struct RecordingCompleter : mem::Completer {
  std::vector<std::pair<std::uint64_t, Tick>> completions;
  void complete(const mem::Request& req, Tick now) override {
    completions.push_back({req.addr, now});
  }
};

struct RetryClient : ChaClient {
  Cha* cha = nullptr;
  std::optional<mem::Request> pending;
  int notified = 0;
  bool on_cha_admission(mem::Op) override {
    ++notified;
    if (pending && cha->try_submit(*pending)) {
      pending.reset();
      return true;
    }
    return false;
  }
};

struct Fixture {
  sim::Simulator sim;
  dram::AddressMap map{2, 32, 8192, 256, dram::BankHash::kXorHash, 8192};
  mc::MemoryController mc;
  ChaConfig cfg;
  std::unique_ptr<Cha> cha;
  RecordingCompleter done;

  explicit Fixture(ChaConfig c = {})
      : mc(sim, mc::ChannelConfig{}, map, nullptr), cfg(c) {
    cha = std::make_unique<Cha>(sim, cfg, mc);
    mc.set_listener(cha.get());
  }

  mem::Request make(std::uint64_t addr, mem::Op op, mem::Source src) {
    mem::Request r;
    r.addr = addr;
    r.op = op;
    r.source = src;
    r.created = sim.now();
    r.completer = &done;
    return r;
  }
};

TEST(Cha, ReadRoundTripCompletesAtCore) {
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kRead, mem::Source::kCpu)));
  f.sim.run_until(us(1));
  ASSERT_EQ(f.done.completions.size(), 1u);
  // Path: proc + fwd + ACT + CAS + trans + return-to-core.
  const Tick expect = f.cfg.t_read_proc + f.cfg.t_read_fwd + ns(13.75) + ns(13.75) +
                      ns(2.73) + f.cfg.t_return_core;
  EXPECT_EQ(f.done.completions[0].second, expect);
}

TEST(Cha, PeripheralReadReturnsViaIioHop) {
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kRead, mem::Source::kPeripheral)));
  f.sim.run_until(us(1));
  ASSERT_EQ(f.done.completions.size(), 1u);
  const Tick expect = f.cfg.t_read_proc + f.cfg.t_read_fwd + ns(13.75) + ns(13.75) +
                      ns(2.73) + f.cfg.t_return_iio;
  EXPECT_EQ(f.done.completions[0].second, expect);
}

TEST(Cha, CpuWriteCompletesAtAdmission) {
  // The C2M-Write domain ends at the CHA: completion fires after the
  // admission ack, long before the write reaches DRAM.
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(64, mem::Op::kWrite, mem::Source::kCpu)));
  f.sim.run_until(us(1));
  ASSERT_EQ(f.done.completions.size(), 1u);
  EXPECT_EQ(f.done.completions[0].second, f.cfg.t_write_ack);
}

TEST(Cha, PeripheralWriteCompletesAtWpqAdmission) {
  // The P2M-Write domain spans the MC: completion fires at WPQ admission.
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(64, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(1));
  ASSERT_EQ(f.done.completions.size(), 1u);
  EXPECT_EQ(f.done.completions[0].second, f.cfg.t_write_proc + f.cfg.t_write_fwd);
}

TEST(Cha, ReadTorExhaustionBlocksAdmission) {
  ChaConfig c;
  c.read_tor = 4;
  Fixture f(c);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(f.cha->try_submit(f.make(static_cast<std::uint64_t>(i) * 64, mem::Op::kRead,
                                         mem::Source::kCpu)));
  EXPECT_FALSE(f.cha->try_submit(f.make(1024, mem::Op::kRead, mem::Source::kCpu)));
  EXPECT_EQ(f.cha->read_tor_used(), 4u);
  f.sim.run_until(us(1));
  // Entries free once data returns.
  EXPECT_EQ(f.cha->read_tor_used(), 0u);
  EXPECT_TRUE(f.cha->try_submit(f.make(2048, mem::Op::kRead, mem::Source::kCpu)));
}

TEST(Cha, BlockedClientIsNotifiedWhenSpaceFrees) {
  ChaConfig c;
  c.read_tor = 2;
  Fixture f(c);
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kRead, mem::Source::kCpu)));
  ASSERT_TRUE(f.cha->try_submit(f.make(64, mem::Op::kRead, mem::Source::kCpu)));
  RetryClient client;
  client.cha = f.cha.get();
  client.pending = f.make(128, mem::Op::kRead, mem::Source::kCpu);
  ASSERT_FALSE(f.cha->try_submit(*client.pending));
  f.cha->wait_for_admission(mem::Op::kRead, &client);
  f.sim.run_until(us(1));
  EXPECT_GE(client.notified, 1);
  EXPECT_FALSE(client.pending.has_value());
  EXPECT_EQ(f.done.completions.size(), 3u);
}

TEST(Cha, WriteTrackerLimitsOutstandingWrites) {
  ChaConfig c;
  c.write_tracker = 3;
  Fixture f(c);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(f.cha->try_submit(f.make(static_cast<std::uint64_t>(i) * 64, mem::Op::kWrite,
                                         mem::Source::kPeripheral)));
  EXPECT_FALSE(
      f.cha->try_submit(f.make(1024, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(1));
  EXPECT_EQ(f.cha->write_tracker_used(), 0u);
}

TEST(Cha, StationsMeasureResidency) {
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kRead, mem::Source::kCpu)));
  f.sim.run_until(us(1));
  auto& st = f.cha->station(mem::TrafficClass::kC2MRead);
  EXPECT_EQ(st.completions(), 1u);
  // CHA->DRAM read latency excludes the return-to-core hop.
  EXPECT_NEAR(st.mean_latency_ns(),
              to_ns(f.cfg.t_read_proc + f.cfg.t_read_fwd) + 13.75 + 13.75 + 2.73, 0.1);
}

TEST(Cha, LinesAccountedByClass) {
  Fixture f;
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kRead, mem::Source::kCpu)));
  ASSERT_TRUE(f.cha->try_submit(f.make(64, mem::Op::kRead, mem::Source::kPeripheral)));
  ASSERT_TRUE(f.cha->try_submit(f.make(128, mem::Op::kWrite, mem::Source::kCpu)));
  ASSERT_TRUE(f.cha->try_submit(f.make(192, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(1));
  EXPECT_EQ(f.cha->lines_read(mem::TrafficClass::kC2MRead), 1u);
  EXPECT_EQ(f.cha->lines_read(mem::TrafficClass::kP2MRead), 1u);
  EXPECT_EQ(f.cha->lines_written(mem::TrafficClass::kC2MWrite), 1u);
  EXPECT_EQ(f.cha->lines_written(mem::TrafficClass::kP2MWrite), 1u);
}

TEST(Cha, DdioAbsorbsHitAndEmitsVictimWriteback) {
  ChaConfig c;
  c.ddio = true;
  c.ddio_capacity_bytes = 2 * 64;  // 1 set x 2 ways: tiny, forces evictions
  c.ddio_ways = 2;
  Fixture f(c);
  // First two P2M writes allocate (cold, no victim): no memory writes.
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kWrite, mem::Source::kPeripheral)));
  ASSERT_TRUE(f.cha->try_submit(f.make(64, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(1));
  EXPECT_EQ(f.cha->lines_written(mem::TrafficClass::kP2MWrite), 0u);
  // Re-write line 0: DDIO hit, absorbed.
  ASSERT_TRUE(f.cha->try_submit(f.make(0, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(2));
  EXPECT_EQ(f.cha->ddio_hits(), 1u);
  EXPECT_EQ(f.cha->lines_written(mem::TrafficClass::kP2MWrite), 0u);
  // A third distinct line evicts the LRU: exactly one victim write-back.
  ASSERT_TRUE(f.cha->try_submit(f.make(128, mem::Op::kWrite, mem::Source::kPeripheral)));
  f.sim.run_until(us(3));
  EXPECT_EQ(f.cha->lines_written(mem::TrafficClass::kP2MWrite), 1u);
  // All three DMA writes completed back to the IIO (LLC fill semantics).
  EXPECT_EQ(f.done.completions.size(), 4u);
}

TEST(Cha, AdmissionWaitRecorded) {
  Fixture f;
  f.cha->record_admission_wait(mem::TrafficClass::kC2MRead, ns(100));
  f.cha->record_admission_wait(mem::TrafficClass::kC2MRead, 0);
  EXPECT_NEAR(f.cha->mean_admission_wait_ns(mem::TrafficClass::kC2MRead), 50.0, 1e-9);
}

}  // namespace
}  // namespace hostnet::cha
