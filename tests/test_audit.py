#!/usr/bin/env python3
"""Fixture tests for tools/hostnet_audit.py.

Each check has a deliberately-bad snippet (must produce findings with the
right check id) and the clean/edge snippets must produce none, under
tests/audit_fixtures/. The fixtures directory is skipped by tree-wide walks
-- only explicit file arguments reach it -- so the bad snippets never fail
the repo gate that scripts/ci_static_analysis.sh runs. Explicit-path runs
also skip the manifest-drift check, so fixtures need no manifest entries.

Run directly (`python3 tests/test_audit.py`) or via ctest
(hostnet_audit_fixtures).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
AUDIT = os.path.join(REPO, "tools", "hostnet_audit.py")
FIXTURES = os.path.join(REPO, "tests", "audit_fixtures")


def run_audit(*args):
    return subprocess.run(
        [sys.executable, AUDIT, "--root", REPO, *args],
        capture_output=True, text=True, cwd=REPO)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


class BadFixtures(unittest.TestCase):
    """Every seeded violation must be detected with the right check id."""

    def assert_findings(self, path, expected):
        """expected: {check id: count}; no other checks may fire."""
        res = run_audit(path)
        self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
        for check, count in expected.items():
            hits = [l for l in res.stdout.splitlines() if f"[{check}]" in l]
            self.assertEqual(len(hits), count,
                             msg=f"expected {count} [{check}] findings, got:\n"
                                 f"{res.stdout}")
        fired = [l for l in res.stdout.splitlines() if "[" in l]
        self.assertEqual(len(fired), sum(expected.values()),
                         msg=f"unexpected extra findings:\n{res.stdout}")

    def test_save_missing(self):
        self.assert_findings(fixture("bad_save_missing.cpp"),
                             {"snapshot-save-missing": 1})

    def test_load_missing(self):
        self.assert_findings(fixture("bad_load_missing.cpp"),
                             {"snapshot-load-missing": 1})

    def test_stack_uncovered_cc_field(self):
        # A TCP-stack-shaped class whose CC filter window is in neither
        # save_state() nor load_state(): both sides must fire.
        self.assert_findings(fixture("bad_stack_uncovered_cc.cpp"),
                             {"snapshot-save-missing": 1,
                              "snapshot-load-missing": 1})

    def test_asymmetric_snapshot_fields(self):
        # write-only, read-only, and dead Snapshot fields: three findings.
        self.assert_findings(fixture("bad_asymmetric.cpp"),
                             {"snapshot-asymmetry": 3})

    def test_unregistered_pool(self):
        self.assert_findings(fixture("bad_unregistered_pool.cpp"),
                             {"pool-unregistered": 1})

    def test_dead_and_unknown_skip(self):
        self.assert_findings(fixture("bad_dead_skip.cpp"),
                             {"snapshot-dead-skip": 1, "snapshot-skip": 1})

    def test_malformed_directives(self):
        # skip() without a reason + allow() of a non-allowable check.
        self.assert_findings(fixture("bad_directive.cpp"),
                             {"bad-directive": 2})

    def test_stale_allow(self):
        self.assert_findings(fixture("bad_stale_allow.cpp"),
                             {"stale-allow": 1})

    def test_handler_purity(self):
        # The src/sim path component puts the fixture in a handler subsystem.
        self.assert_findings(fixture("src", "sim", "bad_handler_static.cpp"),
                             {"handler-static-state": 1,
                              "handler-global-state": 1})


class CleanFixtures(unittest.TestCase):
    """Clean and parser-edge-case fixtures must produce no findings."""

    CLEAN = [
        "clean_snapshot.cpp",
        "edge_nested_classes.cpp",
        "edge_template_members.cpp",
        "edge_multiline_members.cpp",
        "edge_ifdef_fields.cpp",
    ]

    def test_clean_fixtures(self):
        for name in self.CLEAN:
            with self.subTest(fixture=name):
                res = run_audit(fixture(name))
                self.assertEqual(res.returncode, 0,
                                 msg=res.stdout + res.stderr)

    def test_handler_state_outside_handler_dirs_is_fine(self):
        # The same constructs are legal outside src/{sim,cpu,cha,iio,mc,net}:
        # copy the handler fixture's content under a plain fixtures path and
        # it audits clean.
        res = run_audit(fixture("clean_snapshot.cpp"))
        self.assertNotIn("[handler-static-state]", res.stdout)
        self.assertNotIn("[handler-global-state]", res.stdout)


class TreeAudit(unittest.TestCase):
    """The real tree must audit clean, including the checked-in manifest."""

    def test_tree_is_clean(self):
        res = run_audit()
        self.assertEqual(res.returncode, 0, msg=res.stdout + res.stderr)

    def test_tree_covers_snapshot_classes(self):
        res = run_audit("--json")
        self.assertEqual(res.returncode, 0, msg=res.stdout + res.stderr)
        report = json.loads(res.stdout)
        self.assertTrue(report["ok"])
        self.assertEqual(report["findings"], [])
        # Every HOSTNET_SNAPSHOT_COVERS class must be in the audited set.
        for qual in ("Simulator", "CalendarQueue", "Channel",
                     "MemoryController", "Cha", "Core", "Iio",
                     "StorageDevice", "NicDevice", "CopyCore", "TcpReceiver",
                     "DctcpStack", "BbrStack", "DavisStack",
                     "CreditPool", "HostSystem"):
            self.assertIn(qual, report["classes"])

    def test_manifest_matches_tree(self):
        with open(os.path.join(REPO, "tools", "snapshot_manifest.json"),
                  encoding="utf-8") as f:
            manifest = json.load(f)
        self.assertGreaterEqual(len(manifest["classes"]), 7)
        for qual, entry in manifest["classes"].items():
            with self.subTest(cls=qual):
                # No unexplained fields: every skipped field carries a reason.
                for field, reason in entry["skipped"].items():
                    self.assertTrue(reason.strip(),
                                    msg=f"{qual}.{field} skip has no reason")

    def test_manifest_drift_is_detected(self):
        with open(os.path.join(REPO, "tools", "snapshot_manifest.json"),
                  encoding="utf-8") as f:
            manifest = json.load(f)
        victim = sorted(manifest["classes"])[0]
        manifest["classes"][victim]["state"].append("bogus_member_")
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as tf:
            json.dump(manifest, tf)
            stale = tf.name
        try:
            res = run_audit("--manifest", stale)
            self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
            self.assertIn("[manifest-drift]", res.stdout)
            self.assertIn(victim, res.stdout)
        finally:
            os.unlink(stale)


class ToolInterface(unittest.TestCase):
    def test_list_checks(self):
        res = run_audit("--list-checks")
        self.assertEqual(res.returncode, 0)
        for check in ("snapshot-save-missing", "snapshot-load-missing",
                      "snapshot-asymmetry", "snapshot-skip",
                      "snapshot-dead-skip", "pool-unregistered",
                      "handler-static-state", "handler-global-state",
                      "manifest-drift", "stale-allow", "bad-directive"):
            self.assertIn(check, res.stdout)

    def test_json_reports_findings(self):
        res = run_audit("--json", fixture("bad_save_missing.cpp"))
        self.assertEqual(res.returncode, 1)
        report = json.loads(res.stdout)
        self.assertFalse(report["ok"])
        self.assertEqual(report["findings"][0]["check"], "snapshot-save-missing")

    def test_list_skips(self):
        res = run_audit("--list-skips", fixture("bad_dead_skip.cpp"))
        self.assertEqual(res.returncode, 0)
        self.assertIn("skip(level_)", res.stdout)

    def test_write_manifest_refuses_with_findings(self):
        with tempfile.NamedTemporaryFile(suffix=".json") as tf:
            res = run_audit("--write-manifest", "--manifest", tf.name,
                            fixture("bad_save_missing.cpp"))
            self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
            self.assertIn("refusing to write", res.stdout + res.stderr)

    def test_missing_path_is_usage_error(self):
        res = run_audit("definitely/not/a/path.cpp")
        self.assertEqual(res.returncode, 2)

    def test_tree_walk_skips_fixture_corpus(self):
        # Already covered by TreeAudit, but assert the specific guarantee:
        # the deliberately-bad corpus must not leak into default runs.
        res = run_audit("--json")
        report = json.loads(res.stdout)
        self.assertNotIn("Sloppy", report["classes"])


if __name__ == "__main__":
    unittest.main()
