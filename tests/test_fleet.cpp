// Fleet engine tests (ctest label `fleet`): scenario parsing (positive and
// line-tagged negative cases), expansion determinism, and the runner's two
// determinism contracts -- bit-identical aggregates serial vs parallel, and
// fork vs cold -- plus the structural cache-counter guarantees that prove
// the fingerprint dedup actually happens.
#include <gtest/gtest.h>

#include <string>

#include "common/histogram.hpp"
#include "fleet/runner.hpp"
#include "fleet/scenario.hpp"

namespace hostnet {
namespace {

// Short windows: every runner test below simulates tens of microseconds per
// window, keeping the whole suite in seconds.
constexpr const char* kMixedScenario = R"(
fleet mixed
seed 11
warmup_us 20
measure_us 60

template cache
  preset cascade-lake
  c2m tenant-redis redis_read cores=2
  p2m tenant-fio fio_write
end

template analytics
  preset cascade-lake
  set cha.ddio 1
  c2m tenant-gapbs gapbs_pr cores=4
  p2m tenant-fio fio_read
end

hosts 3 cache
hosts 2 analytics
hosts 2 cache
)";

std::size_t error_line(const std::string& text) {
  try {
    fleet::Scenario::parse(text);
  } catch (const fleet::ScenarioError& e) {
    return e.line();
  }
  ADD_FAILURE() << "expected ScenarioError for:\n" << text;
  return 0;
}

TEST(FleetScenario, ParsesMixedScenario) {
  const fleet::Scenario sc = fleet::Scenario::parse(kMixedScenario);
  EXPECT_EQ(sc.name(), "mixed");
  ASSERT_EQ(sc.templates().size(), 2u);
  EXPECT_EQ(sc.templates()[0].name, "cache");
  EXPECT_EQ(sc.templates()[1].name, "analytics");
  EXPECT_TRUE(sc.templates()[1].host.cha.ddio);   // set override applied
  EXPECT_FALSE(sc.templates()[0].host.cha.ddio);  // preset default untouched
  ASSERT_TRUE(sc.templates()[0].c2m.has_value());
  EXPECT_EQ(sc.templates()[0].c2m->cores, 2u);
  EXPECT_TRUE(sc.templates()[0].c2m->per_core_region);
  EXPECT_FALSE(sc.templates()[1].c2m->per_core_region);  // gapbs: shared graph
  // Tenant ids in first-appearance order.
  ASSERT_EQ(sc.tenants().size(), 3u);
  EXPECT_EQ(sc.tenants()[0], "tenant-redis");
  EXPECT_EQ(sc.tenants()[1], "tenant-fio");
  EXPECT_EQ(sc.tenants()[2], "tenant-gapbs");
  EXPECT_EQ(sc.templates()[1].c2m_tenant, 2u);
  EXPECT_EQ(sc.templates()[1].p2m_tenant, 1u);
  EXPECT_EQ(sc.total_hosts(), 7u);
  EXPECT_EQ(sc.base_options().seed, 11u);
  EXPECT_EQ(sc.base_options().warmup, us(20));
  EXPECT_EQ(sc.base_options().measure, us(60));
}

TEST(FleetScenario, ExpansionIsDeterministicAndOrdered) {
  const fleet::Scenario sc = fleet::Scenario::parse(kMixedScenario);
  const auto a = sc.expand();
  const auto b = sc.expand();
  ASSERT_EQ(a.size(), 7u);
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(a[i].tmpl, b[i].tmpl);
    EXPECT_EQ(a[i].opt.measure, b[i].opt.measure);
    EXPECT_EQ(a[i].opt.seed, b[i].opt.seed);
  }
  // Group order: 3x cache, 2x analytics, 2x cache.
  EXPECT_EQ(a[0].tmpl, 0u);
  EXPECT_EQ(a[3].tmpl, 1u);
  EXPECT_EQ(a[5].tmpl, 0u);
  // No jitter directive -> identical windows everywhere.
  for (const auto& h : a) EXPECT_EQ(h.opt.measure, us(60));
}

TEST(FleetScenario, MeasureJitterPreservesWarmupAndStaggersWindows) {
  std::string text(kMixedScenario);
  text.insert(text.find("template cache"), "measure_jitter_pct 25\n");
  const fleet::Scenario sc = fleet::Scenario::parse(text);
  const auto hosts = sc.expand();
  bool any_different = false;
  for (const auto& h : hosts) {
    EXPECT_GE(h.opt.measure, us(60));
    EXPECT_LE(h.opt.measure, us(75));
    if (h.opt.measure != hosts[0].opt.measure) any_different = true;
  }
  EXPECT_TRUE(any_different) << "25% jitter over 7 hosts should stagger some windows";
  // Same fingerprint before and after jitter: warmup and seed untouched.
  EXPECT_EQ(sc.base_options().warmup, us(20));
}

TEST(FleetScenario, NegativeCasesCarryLineNumbers) {
  EXPECT_EQ(error_line("template t\nend\n"), 1u);  // first directive must be fleet
  EXPECT_EQ(error_line("fleet f\nbogus 1\n"), 2u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  set no.such.key 1\nend\nhosts 1 t\n"), 3u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  c2m a no_such_workload\nend\nhosts 1 t\n"), 3u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  p2m a no_such_fio\nend\nhosts 1 t\n"), 3u);
  EXPECT_EQ(error_line("fleet f\nhosts 1 nope\n"), 2u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  c2m a c2m_read\n"), 2u);  // missing end
  EXPECT_EQ(error_line("fleet f\nend\n"), 2u);                          // end outside template
  EXPECT_EQ(error_line("fleet f\ntemplate t\nend\nhosts 1 t\n"), 3u);   // no workload placed
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  c2m a c2m_read cores=999\nend\nhosts 1 t\n"), 4u);
  EXPECT_EQ(error_line("fleet f\nmeasure_jitter_pct 101\n"), 2u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  c2m a c2m_read\nend\nhosts 0 t\n"), 5u);
  EXPECT_EQ(error_line("fleet f\n"), 1u);  // places no hosts
  // Duplicate template name.
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  c2m a c2m_read\nend\ntemplate t\n"), 5u);
  // tcp.stack: bad value, and override without a tcp_* placement to rewrite.
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  set tcp.stack reno\n  p2m a tcp_dctcp\nend\nhosts 1 t\n"), 3u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  set tcp.stack bbr\n  c2m a c2m_read\nend\nhosts 1 t\n"), 3u);
  EXPECT_EQ(error_line("fleet f\ntemplate t\n  set tcp.stack bbr\n  p2m a fio_write\nend\nhosts 1 t\n"), 3u);
}

// Three receiver templates that differ only in congestion-control stack --
// one via the workload name, one via the `set tcp.stack` override.
constexpr const char* kStacksScenario = R"(
fleet stacks
seed 5
warmup_us 20
measure_us 60

template rx-dctcp
  c2m tenant-app c2m_read cores=2
  p2m tenant-tcp tcp_dctcp
end

template rx-bbr
  c2m tenant-app c2m_read cores=2
  p2m tenant-tcp tcp_bbr
end

template rx-davis
  set tcp.stack davis
  c2m tenant-app c2m_read cores=2
  p2m tenant-tcp tcp_dctcp
end

hosts 2 rx-dctcp
hosts 2 rx-bbr
hosts 2 rx-davis
)";

TEST(FleetScenario, ParsesTcpStackPlacements) {
  const fleet::Scenario sc = fleet::Scenario::parse(kStacksScenario);
  ASSERT_EQ(sc.templates().size(), 3u);
  for (const fleet::HostTemplate& t : sc.templates()) {
    ASSERT_TRUE(t.p2m.has_value());
    ASSERT_TRUE(t.p2m->tcp.has_value());
    EXPECT_FALSE(t.p2m->storage.has_value());
  }
  EXPECT_EQ(sc.templates()[0].p2m->tcp->stack, core::TcpStackKind::kDctcp);
  EXPECT_EQ(sc.templates()[1].p2m->tcp->stack, core::TcpStackKind::kBbr);
  // The override rewrites both the stack and the placement's reported name.
  EXPECT_EQ(sc.templates()[2].p2m->tcp->stack, core::TcpStackKind::kDavis);
  EXPECT_EQ(sc.templates()[2].p2m->name, "tcp_davis");
}

TEST(FleetHistogram, MergeMatchesCombinedStream) {
  LatencyHistogram a, b, both;
  for (int i = 1; i <= 1000; ++i) {
    (i % 2 ? a : b).add(static_cast<double>(i));
    both.add(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), both.count());
  EXPECT_EQ(a.p50(), both.p50());
  EXPECT_EQ(a.p99(), both.p99());
  EXPECT_EQ(a.p999(), both.p999());
}

// ---- runner determinism ----------------------------------------------------

fleet::FleetReport run(const fleet::Scenario& sc, unsigned threads, core::SweepMode mode) {
  fleet::RunnerOptions opt;
  opt.threads = threads;
  opt.mode = mode;
  return fleet::run_fleet(sc, opt);
}

/// Everything except the cache counters (which legitimately differ between
/// fork and cold runs) must match bit-for-bit.
void expect_same_results(const fleet::Scenario& sc, const fleet::FleetReport& x,
                         const fleet::FleetReport& y) {
  EXPECT_EQ(x.hosts, y.hosts);
  EXPECT_EQ(x.agg.hosts, y.agg.hosts);
  EXPECT_EQ(x.agg.regimes, y.agg.regimes);
  EXPECT_EQ(x.agg.total_mem_gbps_sum, y.agg.total_mem_gbps_sum);  // bit-identical, not Near
  ASSERT_EQ(x.agg.tenants.size(), sc.tenants().size());
  ASSERT_EQ(y.agg.tenants.size(), sc.tenants().size());
  for (std::size_t i = 0; i < sc.tenants().size(); ++i) {
    const fleet::TenantAggregate& a = x.agg.tenants[i];
    const fleet::TenantAggregate& b = y.agg.tenants[i];
    EXPECT_EQ(a.placements, b.placements) << sc.tenants()[i];
    EXPECT_EQ(a.colo_score_sum, b.colo_score_sum) << sc.tenants()[i];
    EXPECT_EQ(a.iso_score_sum, b.iso_score_sum) << sc.tenants()[i];
    EXPECT_EQ(a.degradation_sum, b.degradation_sum) << sc.tenants()[i];
    EXPECT_EQ(a.latency.count(), b.latency.count()) << sc.tenants()[i];
    EXPECT_EQ(a.latency.p50(), b.latency.p50()) << sc.tenants()[i];
    EXPECT_EQ(a.latency.p99(), b.latency.p99()) << sc.tenants()[i];
  }
}

TEST(FleetRunner, SerialAndParallelAggregatesAreBitIdentical) {
  const fleet::Scenario sc = fleet::Scenario::parse(kMixedScenario);
  const fleet::FleetReport serial = run(sc, 1, core::SweepMode::kFork);
  const fleet::FleetReport parallel = run(sc, 4, core::SweepMode::kFork);
  expect_same_results(sc, serial, parallel);
  // The cache counters are deterministic too (sharding is by fingerprint,
  // not by thread), so even the full formatted reports match.
  EXPECT_EQ(fleet::format_report(sc, serial), fleet::format_report(sc, parallel));
}

TEST(FleetRunner, ForkMatchesColdOnJitteredMixedFleet) {
  // Jitter forces distinct measurement windows per replica: the fork run
  // must take the checkpoint-restore path (not the outcome memo) and still
  // reproduce the cold reference bit-for-bit.
  std::string text(kMixedScenario);
  text.insert(text.find("template cache"), "measure_jitter_pct 25\n");
  const fleet::Scenario sc = fleet::Scenario::parse(text);
  const fleet::FleetReport fork = run(sc, 2, core::SweepMode::kFork);
  const fleet::FleetReport cold = run(sc, 2, core::SweepMode::kCold);
  expect_same_results(sc, fork, cold);
  EXPECT_GT(fork.cache.checkpoint_hits, 0u) << "jittered replicas must fork, not re-warm";
  EXPECT_EQ(cold.cache.checkpoint_hits + cold.cache.checkpoint_misses, 0u)
      << "cold mode must not touch any cache";
}

TEST(FleetRunner, FingerprintDedupIsStructural) {
  // Two templates with distinct host configs -> 2 fingerprints. No jitter
  // -> replicas are bit-identical, so per fingerprint exactly the 3
  // colocation windows warm cold and every replica window is a memo hit.
  const fleet::Scenario sc = fleet::Scenario::parse(kMixedScenario);
  const fleet::FleetReport r = run(sc, 0, core::SweepMode::kFork);
  EXPECT_EQ(r.fingerprints, 2u);
  EXPECT_EQ(r.shards, 2u);
  EXPECT_EQ(r.hosts, 7u);
  EXPECT_EQ(r.cache.checkpoint_misses, 3u * 2u);
  EXPECT_EQ(r.cache.outcome_hits, 3u * (7u - 2u));
  EXPECT_EQ(r.cache.outcome_misses, 3u * 2u);
  EXPECT_EQ(r.cache.checkpoint_hits, 0u) << "identical replicas memoize; nothing re-runs";
}

TEST(FleetRunner, MixedStacksShardAndForkBitIdentically) {
  // Templates identical except for TcpSpec::stack: the stack kind must
  // reach the fingerprint (3 shards, no cross-stack aliasing) and every
  // stack's replicas must fork bit-identically to a cold run.
  const fleet::Scenario sc = fleet::Scenario::parse(kStacksScenario);
  const fleet::FleetReport fork = run(sc, 2, core::SweepMode::kFork);
  const fleet::FleetReport cold = run(sc, 2, core::SweepMode::kCold);
  expect_same_results(sc, fork, cold);
  EXPECT_EQ(fork.fingerprints, 3u);
  EXPECT_EQ(fork.shards, 3u);
  EXPECT_EQ(fork.hosts, 6u);
  // Per fingerprint: 3 colocation windows warm cold, the identical replica
  // memoizes.
  EXPECT_EQ(fork.cache.checkpoint_misses, 3u * 3u);
  EXPECT_EQ(fork.cache.outcome_hits, 3u * 3u);
}

TEST(FleetRunner, SingleSidedHostsAreRegimeNone) {
  const fleet::Scenario sc = fleet::Scenario::parse(
      "fleet solo\nwarmup_us 20\nmeasure_us 60\n"
      "template c\n  c2m a c2m_read cores=2\nend\n"
      "template p\n  p2m b fio_write\nend\n"
      "hosts 2 c\nhosts 2 p\n");
  const fleet::FleetReport r = run(sc, 0, core::SweepMode::kFork);
  EXPECT_EQ(r.hosts, 4u);
  EXPECT_EQ(r.agg.regime_count(core::Regime::kNone), 4u);
  EXPECT_EQ(r.agg.regime_count(core::Regime::kBlue), 0u);
  EXPECT_EQ(r.agg.regime_count(core::Regime::kRed), 0u);
  // One placement per host side.
  EXPECT_EQ(r.agg.tenants[0].placements, 2u);
  EXPECT_EQ(r.agg.tenants[1].placements, 2u);
  // Single-sided hosts run one window each: degradation is exactly 1.
  EXPECT_EQ(r.agg.tenants[0].mean_degradation(), 1.0);
  EXPECT_EQ(r.agg.tenants[1].mean_degradation(), 1.0);
}

}  // namespace
}  // namespace hostnet
