// Tests for the section-7 future-work extensions: hostCC-style host
// congestion control, CHA isolation scheduling, the configuration-driven
// predictor, and the tail-latency histograms.
#include <gtest/gtest.h>

#include "analytic/predictor.hpp"
#include "common/histogram.hpp"
#include "core/experiment.hpp"
#include "hostcc/hostcc.hpp"
#include "workloads/workloads.hpp"

namespace hostnet {
namespace {

core::RunOptions fast() {
  core::RunOptions o;
  o.warmup = us(200);
  o.measure = us(700);
  return o;
}

// ---------------------------------------------------------------------------
// LatencyHistogram
// ---------------------------------------------------------------------------

TEST(LatencyHistogram, ExactForSmallValues) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.add(7.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.p50(), 8.0, 1.0);  // bucket upper bound
  EXPECT_NEAR(h.p999(), 8.0, 1.0);
}

TEST(LatencyHistogram, QuantilesOrdered) {
  LatencyHistogram h;
  Rng rng(7);
  for (int i = 0; i < 100000; ++i) h.add(static_cast<double>(rng.below(10000)));
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max());
  // Uniform [0,10000): p50 ~ 5000, p99 ~ 9900 within bucket error (~6%).
  EXPECT_NEAR(h.p50(), 5000, 400);
  EXPECT_NEAR(h.p99(), 9900, 700);
}

TEST(LatencyHistogram, LogBucketsRelativeError) {
  LatencyHistogram h;
  for (double v : {100.0, 1000.0, 100000.0, 5e6}) {
    h.reset();
    h.add(v);
    EXPECT_NEAR(h.max(), v, v * 0.07) << v;
  }
}

TEST(LatencyHistogram, TailCapturedInStations) {
  // End-to-end: the P2M-Write station histogram shows red-regime tail.
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  c2m.cores = 4;
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(hc, workloads::p2m_region());
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i) {
    auto wl = c2m.workload;
    wl.region.base += static_cast<std::uint64_t>(i) << 30;
    host.add_core(wl);
  }
  host.add_storage(*p2m.storage);
  host.run(us(200), us(600));
  const auto& h = host.iio().write_station().histogram();
  EXPECT_GT(h.count(), 1000u);
  EXPECT_GT(h.p99(), 1.3 * h.p50());  // heavy tail under write backlog
}

// ---------------------------------------------------------------------------
// hostCC
// ---------------------------------------------------------------------------

TEST(HostCC, ProtectsP2MInRedRegime) {
  const auto hc = core::cascade_lake();
  auto run = [&](bool with_cc) {
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < 5; ++i)
      host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
    std::unique_ptr<hostcc::HostCongestionController> cc;
    if (with_cc) cc = std::make_unique<hostcc::HostCongestionController>(host, hostcc::HostccConfig{});
    host.run(us(300), us(800));
    const auto m = host.collect();
    return std::pair<double, double>{m.p2m_dev_gbps, m.c2m_app_gbps};
  };
  const auto [p2m_off, c2m_off] = run(false);
  const auto [p2m_on, c2m_on] = run(true);
  EXPECT_GT(p2m_on, p2m_off * 1.2);       // P2M substantially restored
  EXPECT_GT(p2m_on, 12.0);                // near PCIe line rate
  EXPECT_LT(c2m_on, c2m_off);             // paid with C2M throughput
  EXPECT_GT(c2m_on, 0.25 * c2m_off);      // ...but not starved
}

TEST(HostCC, IdleInBlueRegime) {
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 3; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  hostcc::HostCongestionController cc(host, {});
  host.run(us(300), us(800));
  EXPECT_LT(cc.avg_throttle(host.sim().now()), 0.05);
  EXPECT_NEAR(host.collect().p2m_dev_gbps, 14.0, 0.5);
}

// ---------------------------------------------------------------------------
// CHA isolation extensions
// ---------------------------------------------------------------------------

TEST(Isolation, PeripheralWritePriorityRestoresP2M) {
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  c2m.cores = 5;
  auto run = [&](bool priority) {
    core::HostConfig host = core::cascade_lake();
    host.cha.peripheral_write_priority = priority;
    host.cha.write_tracker_peripheral_reserve = priority ? 48 : 0;
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
    return core::run_colocation(host, c2m, p2m, fast());
  };
  const auto base = run(false);
  const auto iso = run(true);
  EXPECT_GT(base.p2m_degradation(), 1.4);                        // red regime
  EXPECT_LT(iso.p2m_degradation(), base.p2m_degradation() * 0.8);  // protected
}

TEST(Isolation, ReserveBlocksOnlyCpuWrites) {
  // Unit-level: with the tracker fully reserved for peripherals, CPU writes
  // must be refused while peripheral writes still get in.
  core::HostConfig hc = core::cascade_lake();
  hc.cha.write_tracker = 8;
  hc.cha.write_tracker_peripheral_reserve = 8;
  core::HostSystem host(hc);
  mem::Request cpu_wr;
  cpu_wr.op = mem::Op::kWrite;
  cpu_wr.source = mem::Source::kCpu;
  mem::Request per_wr = cpu_wr;
  per_wr.source = mem::Source::kPeripheral;
  EXPECT_FALSE(host.cha().try_submit(cpu_wr));
  EXPECT_TRUE(host.cha().try_submit(per_wr));
}

// ---------------------------------------------------------------------------
// Multi-IIO stacks
// ---------------------------------------------------------------------------

TEST(MultiIio, StacksHaveIndependentCredits) {
  core::HostConfig hc = core::cascade_lake();
  core::HostSystem host(hc);
  const std::size_t b = host.add_iio_stack(hc.iio);
  EXPECT_EQ(host.iio_stacks(), 2u);
  EXPECT_EQ(b, 1u);
  // Saturate both stacks: each enforces its own 92-credit bound.
  auto dev = workloads::fio_p2m_write(hc, workloads::p2m_region());
  dev.link_gb_per_s = 64.0;
  host.add_storage(dev, 0);
  auto dev2 = dev;
  dev2.region.base += 2ull << 30;
  host.add_storage(dev2, 1);
  host.run(us(100), us(300));
  EXPECT_LE(host.iio(0).write_station().max_occupancy(), 92);
  EXPECT_LE(host.iio(1).write_station().max_occupancy(), 92);
  EXPECT_GT(host.iio(1).write_station().completions(), 0u);
  // Aggregated metrics cover both stacks.
  const auto m = host.collect();
  EXPECT_GT(m.p2m_write.credits_in_use, 100.0);
}

TEST(MultiIio, SplitStacksSurviveRedRegimeBetter) {
  auto run = [&](bool split) {
    core::HostConfig hc = core::cascade_lake();
    core::HostSystem host(hc);
    const std::size_t b = split ? host.add_iio_stack(hc.iio) : 0;
    for (std::uint32_t i = 0; i < 4; ++i)
      host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
    auto dev = workloads::fio_p2m_write(hc, workloads::p2m_region());
    dev.link_gb_per_s = 7.0;
    host.add_storage(dev, 0);
    auto dev2 = dev;
    dev2.region.base += 2ull << 30;
    host.add_storage(dev2, b);
    host.run(us(200), us(600));
    return host.collect().p2m_dev_gbps;
  };
  EXPECT_GT(run(true), run(false) * 1.3);
}

// ---------------------------------------------------------------------------
// Predictor
// ---------------------------------------------------------------------------

TEST(Predictor, ConvergesForAllQuadrants) {
  const auto host = core::cascade_lake();
  for (bool c2m_writes : {false, true}) {
    for (bool p2m_writes : {false, true}) {
      analytic::PredictorWorkload wl;
      wl.c2m_cores = 4;
      wl.c2m_writes = c2m_writes;
      wl.p2m_write_offered_gbps = p2m_writes ? host.pcie_write_gb_per_s : 0;
      wl.p2m_read_offered_gbps = p2m_writes ? 0 : host.pcie_read_gb_per_s;
      const auto p = analytic::predict(host, wl);
      EXPECT_TRUE(p.converged);
      EXPECT_GT(p.c2m_gbps, 0.0);
      EXPECT_LE(p.total_mem_gbps, host.dram_peak_gb_per_s() * 1.01);
    }
  }
}

TEST(Predictor, SingleCoreIsolatedMatchesDomainLaw) {
  const auto host = core::cascade_lake();
  analytic::PredictorWorkload wl;
  wl.c2m_cores = 1;
  const auto p = analytic::predict(host, wl);
  // Unloaded: T = 12 x 64 / ~70ns ~ 11 GB/s.
  EXPECT_NEAR(p.c2m_gbps, 11.0, 1.5);
  EXPECT_EQ(p.regime, core::Regime::kNone);
}

TEST(Predictor, ClassifiesBlueAndRedRegimes) {
  const auto host = core::cascade_lake();
  analytic::PredictorWorkload q1;
  q1.c2m_cores = 3;
  q1.p2m_write_offered_gbps = host.pcie_write_gb_per_s;
  const auto p1 = analytic::predict(host, q1);
  EXPECT_EQ(p1.regime, core::Regime::kBlue);

  analytic::PredictorWorkload q3 = q1;
  q3.c2m_cores = 5;
  q3.c2m_writes = true;
  const auto p3 = analytic::predict(host, q3);
  EXPECT_EQ(p3.regime, core::Regime::kRed);
  EXPECT_GT(p3.p2m_degradation, 1.2);
}

TEST(Predictor, TracksSimulatorWithinCoarseBand) {
  // Quadrant 1 at 4 cores: predictor within ~30% of the simulator.
  const auto host = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 4;
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const auto sim = core::run_colocation(host, c2m, p2m, fast());

  analytic::PredictorWorkload wl;
  wl.c2m_cores = 4;
  wl.p2m_write_offered_gbps = host.pcie_write_gb_per_s;
  const auto pred = analytic::predict(host, wl);
  EXPECT_NEAR(pred.c2m_gbps / sim.colo.c2m_score, 1.0, 0.3);
  EXPECT_NEAR(pred.p2m_write_gbps / sim.colo.p2m_score, 1.0, 0.15);
}

TEST(Predictor, MoreCreditsMoreThroughputUntilSaturation) {
  core::HostConfig host = core::cascade_lake();
  analytic::PredictorWorkload wl;
  wl.c2m_cores = 1;
  double prev = 0;
  for (std::uint32_t lfb : {6u, 12u, 24u}) {
    host.core.lfb_entries = lfb;
    const auto p = analytic::predict(host, wl);
    EXPECT_GT(p.c2m_gbps, prev);
    prev = p.c2m_gbps;
  }
}

}  // namespace
}  // namespace hostnet
