#!/usr/bin/env python3
"""Fixture tests for tools/hostnet_lint.py.

Each check has a deliberately-bad snippet (must produce findings with the
right check id) and a clean snippet (must produce none) under
tests/lint_fixtures/. The fixtures directory is skipped by tree-wide walks
-- only explicit file arguments reach it -- so the bad snippets never fail
the repo gate that scripts/ci_static_analysis.sh runs.

Run directly (`python3 tests/test_lint.py`) or via ctest (hostnet_lint_fixtures).
"""

import os
import subprocess
import sys
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "hostnet_lint.py")
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")


def run_lint(*args):
    return subprocess.run(
        [sys.executable, LINT, "--root", REPO, *args],
        capture_output=True, text=True, cwd=REPO)


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


class BadFixtures(unittest.TestCase):
    """Every bad fixture must fail with findings of the expected check."""

    def assert_findings(self, path, check, expect_count):
        res = run_lint(path)
        self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
        hits = [l for l in res.stdout.splitlines() if f"[{check}]" in l]
        self.assertEqual(len(hits), expect_count,
                         msg=f"expected {expect_count} [{check}] findings, got:\n"
                             f"{res.stdout}")

    def test_wall_clock(self):
        self.assert_findings(fixture("bad_wall_clock.cpp"), "wall-clock", 3)

    def test_raw_rand(self):
        self.assert_findings(fixture("bad_raw_rand.cpp"), "raw-rand", 3)

    def test_unordered_iter(self):
        self.assert_findings(fixture("bad_unordered_iter.cpp"), "unordered-iter", 1)

    def test_hot_alloc(self):
        # deque, function, map, and a new-expression: four findings.
        self.assert_findings(fixture("src", "sim", "bad_hot_alloc.cpp"), "hot-alloc", 4)

    def test_hot_alloc_covers_fleet(self):
        # src/fleet joined the hot-path set with the fleet runner: function,
        # unordered_map, and a new-expression: three findings.
        self.assert_findings(fixture("src", "fleet", "bad_hot_alloc.cpp"), "hot-alloc", 3)

    def test_hot_alloc_covers_flow(self):
        # src/flow joined the hot-path set (CreditPool wait/notify): function,
        # deque, list, and a new-expression: four findings.
        self.assert_findings(fixture("src", "flow", "bad_hot_alloc.cpp"), "hot-alloc", 4)

    def test_hot_alloc_covers_net(self):
        # src/net joined the hot-path set (NIC/TCP per-packet pumps): deque,
        # map, unordered_map, and a new-expression: four findings.
        self.assert_findings(fixture("src", "net", "bad_hot_alloc.cpp"), "hot-alloc", 4)

    def test_stale_allow(self):
        # The directive suppresses nothing; only --stale reports it.
        res = run_lint("--stale", fixture("bad_stale_allow.cpp"))
        self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
        self.assertIn("[stale-allow]", res.stdout)

    def test_pragma_once(self):
        self.assert_findings(fixture("bad_pragma_once.hpp"), "pragma-once", 1)

    def test_magic_tick(self):
        self.assert_findings(fixture("src", "sim", "bad_magic_tick.cpp"), "magic-tick", 2)

    def test_raw_credit_counter(self):
        # *_in_use_, *inflight_, *_used_: three findings.
        self.assert_findings(fixture("src", "cpu", "bad_raw_credit.cpp"),
                             "raw-credit-counter", 3)

    def test_snapshot_coverage(self):
        # Two classes with save_state(), no descriptors: two findings.
        self.assert_findings(fixture("bad_snapshot_coverage.cpp"),
                             "snapshot-coverage", 2)

    def test_unknown_allow_id_is_an_error(self):
        res = run_lint(fixture("bad_allow_id.cpp"))
        self.assertEqual(res.returncode, 1, msg=res.stdout + res.stderr)
        self.assertIn("bad allow() directive", res.stdout)
        self.assertIn("no-such-check", res.stdout)


class CleanFixtures(unittest.TestCase):
    """Every clean fixture must pass: no false positives."""

    CLEAN = [
        ("clean_wall_clock.cpp",),
        ("clean_raw_rand.cpp",),
        ("clean_unordered_iter.cpp",),
        ("src", "sim", "clean_hot_alloc.cpp"),
        ("src", "fleet", "clean_hot_alloc.cpp"),
        ("src", "flow", "clean_hot_alloc.cpp"),
        ("src", "net", "clean_hot_alloc.cpp"),
        ("clean_pragma_once.hpp",),
        ("src", "sim", "clean_magic_tick.cpp"),
        ("src", "cpu", "clean_raw_credit.cpp"),
        ("clean_snapshot_coverage.cpp",),
    ]

    def test_clean_fixtures(self):
        for parts in self.CLEAN:
            with self.subTest(fixture=os.path.join(*parts)):
                res = run_lint(fixture(*parts))
                self.assertEqual(res.returncode, 0,
                                 msg=res.stdout + res.stderr)

    def test_raw_credit_outside_credit_scope_is_fine(self):
        # The same declarations are legal outside src/{cpu,cha,iio,mc,net}:
        # the bad fixture's counters under a plain tests/ path lint clean.
        res = run_lint(fixture("bad_unordered_iter.cpp"))
        self.assertNotIn("[raw-credit-counter]", res.stdout)

    def test_hot_alloc_outside_hot_path_is_fine(self):
        # The same constructs that fail under src/sim are legal elsewhere:
        # the bad_unordered_iter fixture declares an unordered_map (a banned
        # hot-path type) but lives under tests/, so no hot-alloc finding.
        res = run_lint(fixture("bad_unordered_iter.cpp"))
        self.assertNotIn("[hot-alloc]", res.stdout)

    def test_live_allows_are_not_stale(self):
        # A justified allow() that really suppresses a finding stays silent
        # under --stale.
        res = run_lint("--stale", fixture("src", "sim", "clean_hot_alloc.cpp"))
        self.assertEqual(res.returncode, 0, msg=res.stdout + res.stderr)


class ToolInterface(unittest.TestCase):
    def test_list_checks(self):
        res = run_lint("--list-checks")
        self.assertEqual(res.returncode, 0)
        for check in ("wall-clock", "raw-rand", "unordered-iter", "hot-alloc",
                      "pragma-once", "magic-tick", "raw-credit-counter",
                      "snapshot-coverage", "stale-allow"):
            self.assertIn(check, res.stdout)

    def test_list_allows_counts_suppressions(self):
        res = run_lint("--list-allows", fixture("src", "sim", "clean_hot_alloc.cpp"))
        self.assertEqual(res.returncode, 0)
        self.assertIn("allow(hot-alloc)", res.stdout)

    def test_missing_path_is_usage_error(self):
        res = run_lint("definitely/not/a/path.cpp")
        self.assertEqual(res.returncode, 2)

    def test_tree_walk_skips_fixture_corpus(self):
        # A default tree-wide run must stay clean even though the fixture
        # corpus is full of deliberate violations.
        res = run_lint()
        self.assertEqual(res.returncode, 0, msg=res.stdout + res.stderr)

    def test_tree_has_no_stale_allows(self):
        # Every suppression in the real tree must still be earning its keep.
        res = run_lint("--stale")
        self.assertEqual(res.returncode, 0, msg=res.stdout + res.stderr)


if __name__ == "__main__":
    unittest.main()
