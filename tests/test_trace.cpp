// Tests for the chrome-tracing facility.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/host_system.hpp"
#include "sim/trace.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::sim {
namespace {

TEST(Tracer, WritesWellFormedJson) {
  const char* path = "/tmp/hostnet_test_trace.json";
  {
    Tracer t(path);
    t.complete_event("span", "cat", ns(10), ns(5), 3);
    t.instant("marker", "mc", ns(20), 1);
    t.counter("occ", ns(30), 7.5);
    t.flush();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  EXPECT_EQ(s.front(), '[');
  EXPECT_NE(s.find("\"name\":\"span\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(s.find("\"ph\":\"C\""), std::string::npos);
  // Balanced braces (cheap well-formedness check).
  long depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  std::remove(path);
}

TEST(Tracer, GlobalHookCapturesSimulationEvents) {
  const char* path = "/tmp/hostnet_test_trace2.json";
  {
    Tracer t(path);
    const auto hc = core::cascade_lake();
    core::HostSystem host(hc);
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
    host.run(us(50), us(1));
    Tracer::set_global(&t);
    host.run_more(us(20));
    Tracer::set_global(nullptr);
    EXPECT_GT(t.size(), 100u);  // c2m-read spans + p2m-write spans + drains
    t.flush();
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string s = ss.str();
  EXPECT_NE(s.find("c2m-read"), std::string::npos);
  EXPECT_NE(s.find("p2m-write"), std::string::npos);
  EXPECT_NE(s.find("write-drain"), std::string::npos);
  std::remove(path);
}

TEST(Tracer, NoGlobalMeansNoOverheadNoEvents) {
  ASSERT_EQ(Tracer::global(), nullptr);
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  host.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
  host.run(us(20), us(20));  // must not crash without a tracer
  SUCCEED();
}

}  // namespace
}  // namespace hostnet::sim
