// Tests for the workload zoo: parameterization, address-space layout, and
// the traffic signatures each model must produce.
#include <gtest/gtest.h>

#include "core/host_system.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::workloads {
namespace {

TEST(Workloads, RegionsAreDisjoint) {
  // Core regions, the shared graph region, and the P2M region must never
  // overlap (distinct address spaces are part of the experimental design).
  struct R {
    mem::Region r;
  };
  std::vector<mem::Region> regions;
  for (std::uint32_t i = 0; i < 32; ++i) regions.push_back(c2m_core_region(i));
  regions.push_back(c2m_shared_region());
  regions.push_back(p2m_region());
  for (std::size_t i = 0; i < regions.size(); ++i) {
    for (std::size_t j = i + 1; j < regions.size(); ++j) {
      const bool overlap = regions[i].base < regions[j].base + regions[j].bytes &&
                           regions[j].base < regions[i].base + regions[i].bytes;
      EXPECT_FALSE(overlap) << i << " vs " << j;
    }
  }
}

TEST(Workloads, StreamSpecs) {
  const auto r = c2m_read(c2m_core_region(0));
  EXPECT_EQ(r.pattern, cpu::CoreWorkload::Pattern::kSequential);
  EXPECT_EQ(r.write_fraction, 0.0);
  const auto w = c2m_read_write(c2m_core_region(0));
  EXPECT_EQ(w.write_fraction, 1.0);
}

TEST(Workloads, FioSpecsFollowHostPcie) {
  const auto cl = core::cascade_lake();
  const auto il = core::ice_lake();
  EXPECT_DOUBLE_EQ(fio_p2m_write(cl, p2m_region()).link_gb_per_s, cl.pcie_write_gb_per_s);
  EXPECT_DOUBLE_EQ(fio_p2m_write(il, p2m_region()).link_gb_per_s, il.pcie_write_gb_per_s);
  EXPECT_EQ(fio_p2m_write(cl, p2m_region()).host_op, mem::Op::kWrite);
  EXPECT_EQ(fio_p2m_read(cl, p2m_region()).host_op, mem::Op::kRead);
  EXPECT_EQ(fio_4k_qd1(cl, p2m_region()).queue_depth, 1u);
  EXPECT_EQ(fio_4k_qd1(cl, p2m_region()).request_bytes, 4096u);
}

// Traffic-signature checks: run each app model briefly and verify its
// read/write mix matches the paper's characterization.
struct MixResult {
  double read_gbps;
  double write_gbps;
  double write_share;
};

MixResult measure_mix(const cpu::CoreWorkload& wl) {
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  host.add_core(wl);
  host.run(us(100), us(400));
  const auto m = host.collect();
  MixResult r{m.mem_gbps[0], m.mem_gbps[1], 0};
  const double total = r.read_gbps + r.write_gbps;
  r.write_share = total > 0 ? r.write_gbps / total : 0;
  return r;
}

TEST(Workloads, C2MReadIsReadOnly) {
  const auto r = measure_mix(c2m_read(c2m_core_region(0)));
  EXPECT_GT(r.read_gbps, 5.0);
  EXPECT_NEAR(r.write_share, 0.0, 0.01);
}

TEST(Workloads, C2MReadWriteIsHalfWrites) {
  // STREAM-store: every line is RFO-read then written back -> 50/50.
  const auto r = measure_mix(c2m_read_write(c2m_core_region(0)));
  EXPECT_NEAR(r.write_share, 0.5, 0.03);
}

TEST(Workloads, GapbsBcIsRoughly80_20) {
  const auto r = measure_mix(gapbs_bc(c2m_shared_region()));
  EXPECT_NEAR(r.write_share, 0.20, 0.04);
}

TEST(Workloads, GapbsBcLessMemoryIntensiveThanPr) {
  // The paper: BC is more compute-intensive, lower bandwidth per core.
  const auto bc = measure_mix(gapbs_bc(c2m_shared_region()));
  const auto pr = measure_mix(gapbs_pr(c2m_shared_region()));
  EXPECT_LT(bc.read_gbps + bc.write_gbps, 0.8 * (pr.read_gbps + pr.write_gbps));
}

TEST(Workloads, RedisWriteMoreMemoryIntensiveThanRead) {
  const auto rd = measure_mix(redis_read(c2m_core_region(0)));
  const auto wr = measure_mix(redis_write(c2m_core_region(0)));
  EXPECT_GT(wr.read_gbps + wr.write_gbps, rd.read_gbps + rd.write_gbps);
  EXPECT_GT(wr.write_share, 0.3);
  EXPECT_NEAR(rd.write_share, 0.0, 0.01);
}

TEST(Workloads, RedisIsPartiallyComputeBound) {
  // Redis spends only part of its time stalled on memory: per-core
  // bandwidth far below the LFB-limited streaming bound.
  const auto r = measure_mix(redis_read(c2m_core_region(0)));
  EXPECT_LT(r.read_gbps, 4.0);
  EXPECT_GT(r.read_gbps, 0.5);
}

TEST(Workloads, QueriesScaleWithCores) {
  const auto hc = core::cascade_lake();
  auto qps = [&](std::uint32_t cores) {
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < cores; ++i) host.add_core(redis_read(c2m_core_region(i)));
    host.run(us(100), us(400));
    return host.collect().queries_per_sec;
  };
  const double one = qps(1);
  const double four = qps(4);
  EXPECT_NEAR(four / one, 4.0, 0.5);  // near-linear at low load
}

}  // namespace
}  // namespace hostnet::workloads
