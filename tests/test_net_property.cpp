// Property tests for the NIC model and the histogram, parameterized over
// configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "core/host_system.hpp"
#include "net/nic_device.hpp"
#include "workloads/workloads.hpp"

namespace hostnet {
namespace {

// ---------------------------------------------------------------------------
// NIC under a PCIe-rate sweep: conservation and monotone pause behaviour.
// ---------------------------------------------------------------------------

class NicPcieSweep : public ::testing::TestWithParam<double> {};

TEST_P(NicPcieSweep, LosslessAndBounded) {
  const double pcie = GetParam();
  core::HostSystem host(core::cascade_lake());
  net::NicConfig nc;
  nc.region = workloads::p2m_region();
  nc.pcie_gb_per_s = pcie;
  net::NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(150), us(500));

  // PFC: nothing dropped, buffer bounded; over the measurement window the
  // accepted and DMA'd byte counts can differ only by the buffer-level
  // change, which is bounded by the buffer capacity.
  EXPECT_EQ(nic.packets_dropped(), 0u);
  EXPECT_LE(nic.buffer_occupancy_bytes(), nc.rx_buffer_bytes);
  const auto acc = static_cast<std::int64_t>(nic.bytes_accepted());
  const auto dma = static_cast<std::int64_t>(nic.bytes_dma());
  EXPECT_LE(std::abs(acc - dma), static_cast<std::int64_t>(nc.rx_buffer_bytes));
  // Delivered rate can't exceed either the wire or the PCIe drain.
  const double dma_rate = gb_per_s(nic.bytes_dma(), us(500));
  EXPECT_LE(dma_rate, std::min(nc.wire_gb_per_s, pcie) * 1.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, NicPcieSweep, ::testing::Values(3.0, 6.0, 9.0, 12.0, 14.0));

TEST(NicProperty, PauseFractionMonotoneInDrainRate) {
  // Slower PCIe drain -> more PFC pausing. Sweep and assert monotonicity.
  std::vector<double> fractions;
  for (double pcie : {4.0, 8.0, 12.0, 14.0}) {
    core::HostSystem host(core::cascade_lake());
    net::NicConfig nc;
    nc.region = workloads::p2m_region();
    nc.pcie_gb_per_s = pcie;
    net::NicDevice nic(host.sim(), host.iio(), nc);
    host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
    host.run(us(150), us(400));
    fractions.push_back(nic.pause_fraction(host.sim().now()));
  }
  for (std::size_t i = 1; i < fractions.size(); ++i)
    EXPECT_LE(fractions[i], fractions[i - 1] + 0.02) << i;
  EXPECT_GT(fractions.front(), 0.5);   // 4 of 12.25: paused most of the time
  EXPECT_LT(fractions.back(), 0.05);   // 14 of 12.25: effectively never
}

TEST(NicProperty, PausedThroughputMatchesDrainRate) {
  // Under PFC the delivered rate equals the bottleneck drain rate.
  core::HostSystem host(core::cascade_lake());
  net::NicConfig nc;
  nc.region = workloads::p2m_region();
  nc.pcie_gb_per_s = 5.0;
  net::NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(150), us(500));
  EXPECT_NEAR(gb_per_s(nic.bytes_dma(), us(500)), 5.0, 0.4);
}

// ---------------------------------------------------------------------------
// Histogram vs a sorted-reference implementation.
// ---------------------------------------------------------------------------

class HistogramReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HistogramReference, QuantilesWithinBucketError) {
  Rng rng(GetParam());
  LatencyHistogram h;
  std::vector<double> ref;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    // Mixture: mostly ~100 ns with a heavy microsecond tail (like a domain
    // latency under contention).
    double v = 60.0 + static_cast<double>(rng.below(80));
    if (rng.chance(0.02)) v = 500.0 + static_cast<double>(rng.below(5000));
    h.add(v);
    ref.push_back(v);
  }
  std::sort(ref.begin(), ref.end());
  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact = ref[static_cast<std::size_t>(q * (n - 1))];
    EXPECT_NEAR(h.quantile(q), exact, exact * 0.08 + 2.0) << "q=" << q;
  }
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Seeds, HistogramReference, ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace hostnet
