// Tests for the pluggable TCP stack framework (net/tcp_stack.hpp): the
// DCTCP differential against the pre-refactor receiver arithmetic,
// per-stack snapshot -> run -> restore -> replay identity, fork-vs-cold
// bit-identity through core::run_workloads, and the stack kind's reach
// into core::config_fingerprint().
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::net {
namespace {

/// Bitwise equality of the outcome fields a figure is built from; the
/// checkpoint engine promises bit-identical, not approximately-equal.
void expect_identical(const core::RunOutcome& a, const core::RunOutcome& b) {
  EXPECT_EQ(a.c2m_score, b.c2m_score);
  EXPECT_EQ(a.p2m_score, b.p2m_score);
  EXPECT_EQ(a.metrics.window_ns, b.metrics.window_ns);
  for (int c = 0; c < mem::kNumTrafficClasses; ++c)
    EXPECT_EQ(a.metrics.mem_gbps[static_cast<size_t>(c)],
              b.metrics.mem_gbps[static_cast<size_t>(c)]);
  EXPECT_EQ(a.metrics.mc_lines_read, b.metrics.mc_lines_read);
  EXPECT_EQ(a.metrics.mc_lines_written, b.metrics.mc_lines_written);
  EXPECT_EQ(a.metrics.p2m_write.latency_ns, b.metrics.p2m_write.latency_ns);
  EXPECT_EQ(a.metrics.c2m_read.latency_ns, b.metrics.c2m_read.latency_ns);
  EXPECT_EQ(a.metrics.p2m_dev_gbps, b.metrics.p2m_dev_gbps);
}

// -- DCTCP differential ------------------------------------------------------

TEST(TcpStacks, DctcpMatchesPreRefactorFormulaExactly) {
  // Drive the extracted stack with randomized epoch telemetry and run the
  // verbatim pre-refactor TcpReceiver::rtt_epoch() arithmetic beside it.
  // EXPECT_EQ on doubles: the extraction claims byte-identity, and any
  // reordering of the floating-point ops would show up here.
  Rng rng(20260808);
  for (int trial = 0; trial < 8; ++trial) {
    const double g = 0.0625;
    const double initial = 64;
    DctcpStack stack(initial, g);
    double ref_cwnd = initial;
    double ref_alpha = 0;
    TransportTelemetry t;
    for (int epoch = 0; epoch < 300; ++epoch) {
      t.clear_epoch();
      t.epoch_acks = rng.next() % 64;
      t.epoch_marks = t.epoch_acks > 0 ? rng.next() % (t.epoch_acks + 1) : 0;
      t.epoch_drops = rng.chance(0.15) ? 1 + rng.next() % 3 : 0;
      stack.on_epoch(t, 0);

      if (t.epoch_drops > 0) {
        ref_cwnd = std::max(2.0, ref_cwnd / 2.0);
      } else if (t.epoch_acks > 0) {
        const double frac = static_cast<double>(t.epoch_marks) /
                            static_cast<double>(t.epoch_acks);
        ref_alpha = (1.0 - g) * ref_alpha + g * frac;
        if (frac > 0)
          ref_cwnd = std::max(2.0, ref_cwnd * (1.0 - ref_alpha / 2.0));
        else
          ref_cwnd += 1.0;
      }
      ref_cwnd = std::min(ref_cwnd, 2048.0);
      ASSERT_EQ(ref_cwnd, stack.cwnd()) << "trial " << trial << " epoch " << epoch;
    }
  }
}

// -- per-stack unit behavior -------------------------------------------------

TEST(TcpStacks, BbrPacingGateEngagesAfterBandwidthEstimate) {
  BbrStack bbr(64, us(40));
  EXPECT_EQ(bbr.pacing_gate(0), 0);  // startup: unpaced until the filters fill
  TransportTelemetry t;
  t.epoch_acks = 50;
  t.note_rtt(us(40));
  bbr.on_epoch(t, us(40));
  EXPECT_EQ(bbr.max_bw_packets_per_epoch(), 50.0);
  EXPECT_EQ(bbr.min_rtt(), us(40));
  bbr.on_send(us(100));
  EXPECT_GT(bbr.pacing_gate(us(100)), 0);  // next send is spaced out
}

TEST(TcpStacks, DavisBacksOffOnRttInflationWithoutDrops) {
  DavisStack davis(64, us(40));
  TransportTelemetry t;
  t.epoch_acks = 50;
  t.note_rtt(us(40));
  davis.on_epoch(t, us(40));
  const double cruising = davis.cwnd();
  EXPECT_GT(cruising, 64.0);  // at baseline RTT: additive growth

  // Average RTT inflates well past the windowed minimum: multiplicative
  // backoff with zero drops (the delay signal, not the loss signal).
  t.clear_epoch();
  t.epoch_acks = 50;
  for (int i = 0; i < 10; ++i) t.note_rtt(us(60));
  davis.on_epoch(t, us(80));
  EXPECT_EQ(davis.min_rtt(), us(40));
  EXPECT_LT(davis.cwnd(), cruising);
}

TEST(TcpStacks, SnapshotBlobRoundTripsPerStack) {
  // save_blob -> keep mutating -> load_blob must restore the exact CC state.
  for (const core::TcpStackKind kind :
       {core::TcpStackKind::kDctcp, core::TcpStackKind::kBbr, core::TcpStackKind::kDavis}) {
    TcpConfig cfg;
    cfg.stack = kind;
    const auto stack = make_tcp_stack(cfg);
    EXPECT_EQ(stack->kind(), kind);
    TransportTelemetry t;
    t.epoch_acks = 40;
    t.epoch_marks = 8;
    t.note_rtt(us(50));
    stack->on_epoch(t, us(40));
    const double cwnd_at_save = stack->cwnd();
    const auto blob = stack->save_blob();

    // Keep mutating with different telemetry: drops halve the loss-aware
    // stacks, the quadrupled delivery rate moves BBR's bandwidth filter.
    t.epoch_drops = 2;
    t.epoch_acks = 160;
    for (int i = 0; i < 5; ++i) stack->on_epoch(t, us(40) * (i + 2));
    EXPECT_NE(stack->cwnd(), cwnd_at_save) << core::to_string(kind);
    stack->load_blob(blob.get());
    EXPECT_EQ(stack->cwnd(), cwnd_at_save) << core::to_string(kind);
  }
}

// -- receiver-level identity per stack ---------------------------------------

class TcpStackParam : public ::testing::TestWithParam<core::TcpStackKind> {};

TEST_P(TcpStackParam, ReceiverRestoreReplaysIdenticalWindow) {
  // Randomized property per stack: warm the receiver, snapshot, run extra,
  // then restore and re-run -- event counts, clocks, goodput and loss must
  // replay bit-identically (the pacing timer and pending delivery-clocked
  // ACKs ride the simulator's event-queue snapshot).
  Rng rng(917 + static_cast<int>(GetParam()));
  for (int trial = 0; trial < 2; ++trial) {
    const core::HostConfig hc = core::cascade_lake();
    core::HostSystem host(hc, rng.next() % 512 + 1);
    TcpConfig cfg;
    cfg.stack = GetParam();
    TcpReceiver rx(host, cfg);
    const Tick warmup = us(100 + rng.next() % 100);
    const Tick extra = us(150 + rng.next() % 150);
    host.run(warmup, 0);
    const core::HostSnapshot checkpoint = host.snapshot();

    host.run_more(extra);
    const double goodput1 = rx.goodput_gbps(host.sim().now());
    const double loss1 = rx.loss_rate();
    const double cwnd1 = rx.avg_cwnd();
    const std::uint64_t executed1 = host.sim().events_executed();
    const Tick end1 = host.sim().now();

    host.restore(checkpoint);
    host.run_more(extra);
    EXPECT_EQ(goodput1, rx.goodput_gbps(host.sim().now())) << "trial " << trial;
    EXPECT_EQ(loss1, rx.loss_rate()) << "trial " << trial;
    EXPECT_EQ(cwnd1, rx.avg_cwnd()) << "trial " << trial;
    EXPECT_EQ(executed1, host.sim().events_executed()) << "trial " << trial;
    EXPECT_EQ(end1, host.sim().now()) << "trial " << trial;
    EXPECT_GT(goodput1, 0.0);
  }
}

TEST_P(TcpStackParam, ForkSweepBitIdenticalToCold) {
  // The SweepCache path: a TCP transport built through the core factory
  // must fork from its warmup checkpoint bit-identically to a cold run,
  // for every stack.
  core::RunOptions opt;
  opt.warmup = us(30);
  opt.measure = us(100);
  opt.seed = 7;
  const core::HostConfig host = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 2;
  core::P2MSpec p2m;
  p2m.tcp = tcp_spec(GetParam());
  p2m.name = p2m.tcp->name;

  core::SweepCache cache;
  const core::RunOutcome cold =
      core::run_workloads(host, c2m, p2m, opt, nullptr, core::SweepMode::kCold);
  const core::RunOutcome fork1 =
      core::run_workloads(host, c2m, p2m, opt, &cache, core::SweepMode::kFork);
  core::RunOptions longer = opt;
  longer.measure = opt.measure * 2;
  const core::RunOutcome cold_long =
      core::run_workloads(host, c2m, p2m, longer, nullptr, core::SweepMode::kCold);
  const core::RunOutcome fork_long =
      core::run_workloads(host, c2m, p2m, longer, &cache, core::SweepMode::kFork);
  expect_identical(cold, fork1);
  expect_identical(cold_long, fork_long);
  EXPECT_EQ(cache.stats().checkpoint_misses, 1u);
  EXPECT_EQ(cache.stats().checkpoint_hits, 1u);
  EXPECT_GT(cold.p2m_score, 0.0);  // the transport's goodput, not dev_gbps
}

INSTANTIATE_TEST_SUITE_P(AllStacks, TcpStackParam,
                         ::testing::Values(core::TcpStackKind::kDctcp,
                                           core::TcpStackKind::kBbr,
                                           core::TcpStackKind::kDavis),
                         [](const ::testing::TestParamInfo<core::TcpStackKind>& info) {
                           return core::to_string(info.param);
                         });

// -- config plumbing ---------------------------------------------------------

TEST(TcpStacks, FactoryInstalledByLinking) {
  // Linking net/tcp_stacks.cpp installs the transport factory before main.
  ASSERT_NE(core::tcp_factory(), nullptr);
}

TEST(TcpStacks, FingerprintSeparatesStackKinds) {
  // Same host, same everything, different stack: distinct fingerprints, so
  // SweepCache forking and fleet sharding can never alias two stacks.
  const core::HostConfig host = core::cascade_lake();
  core::RunOptions opt;
  opt.seed = 7;
  auto fp = [&](core::TcpStackKind kind) {
    core::P2MSpec p2m;
    p2m.tcp = tcp_spec(kind);
    p2m.name = "tcp";  // identical names: only the stack byte may differ
    p2m.tcp->name = "tcp";
    return core::config_fingerprint(host, std::nullopt, p2m, opt.seed, opt.warmup);
  };
  const std::string dctcp = fp(core::TcpStackKind::kDctcp);
  const std::string bbr = fp(core::TcpStackKind::kBbr);
  const std::string davis = fp(core::TcpStackKind::kDavis);
  EXPECT_NE(dctcp, bbr);
  EXPECT_NE(dctcp, davis);
  EXPECT_NE(bbr, davis);

  // And a tcp placement is distinct from no p2m at all.
  EXPECT_NE(dctcp,
            core::config_fingerprint(host, std::nullopt, std::nullopt, opt.seed, opt.warmup));
}

TEST(TcpStacks, SpecZooAndStackNamesRoundTrip) {
  for (const auto kind : {core::TcpStackKind::kDctcp, core::TcpStackKind::kBbr,
                          core::TcpStackKind::kDavis}) {
    const std::optional<core::TcpSpec> spec = tcp_p2m_workload("tcp_" + core::to_string(kind));
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->stack, kind);
    EXPECT_EQ(tcp_stack_kind(core::to_string(kind)), kind);
  }
  EXPECT_FALSE(tcp_p2m_workload("fio_write").has_value());
  EXPECT_FALSE(tcp_stack_kind("reno").has_value());
}

}  // namespace
}  // namespace hostnet::net
