// Tests for the HOSTNET_CHECKED invariant layer (DESIGN.md section 4c).
//
// In checked builds (-DHOSTNET_CHECKED=ON) the death tests prove each
// invariant actually fires: a credit-leaking toy domain trips conservation,
// out-of-order event injection trips the simulator/queue monotonicity
// checks. In unchecked builds the same file proves the instrumentation
// compiles out: a false HOSTNET_INVARIANT must do nothing, and a loaded
// HostSystem run with verify_invariants() at every quiesce point must pass
// in both modes.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "core/host_system.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace hostnet {
namespace {

#if HOSTNET_CHECKED

// A toy flow-control domain with the same shape as the real ones: its own
// in-use counter plus a CreditLedger, where completing a request "forgets"
// to release the ledger entry -- exactly the single-sided bookkeeping bug
// the double-entry scheme exists to catch.
struct LeakyDomain {
  std::uint64_t in_use = 0;
  CreditLedger ledger;

  void issue() {
    ++in_use;
    ledger.acquire();
  }
  void complete_leaking() {
    --in_use;  // counter looks fine; the ledger entry is never released
  }
  void audit() const { ledger.verify(in_use, "toy.leaky"); }
};

TEST(CheckedInvariantDeathTest, LeakedCreditTripsConservation) {
  LeakyDomain d;
  d.ledger.set_capacity(4);
  d.issue();
  d.issue();
  d.complete_leaking();
  EXPECT_DEATH(d.audit(), "HOSTNET_INVARIANT");
}

TEST(CheckedInvariantDeathTest, DoubleReleaseTripsConservation) {
  LeakyDomain d;
  d.ledger.set_capacity(4);
  d.issue();
  d.ledger.release();
  d.ledger.release();  // replenishing a credit that was already returned
  EXPECT_DEATH(d.audit(), "HOSTNET_INVARIANT");
}

TEST(CheckedInvariantDeathTest, OverCapacityTripsPoolBound) {
  LeakyDomain d;
  d.ledger.set_capacity(1);
  d.issue();
  d.issue();  // two credits from a pool of one
  EXPECT_DEATH(d.audit(), "HOSTNET_INVARIANT");
}

TEST(CheckedInvariantDeathTest, SchedulingIntoThePastTripsMonotonicity) {
  sim::Simulator sim;
  sim.schedule_at(ns(100), [] {});
  sim.run_until(ns(200));
  EXPECT_DEATH(sim.schedule_at(ns(50), [] {}), "HOSTNET_INVARIANT");
}

TEST(CheckedInvariantDeathTest, CalendarPushBehindCursorTripsMonotonicity) {
  sim::CalendarQueue q;
  q.push(ns(10), [] {});
  const Tick at = q.next_tick();
  ASSERT_EQ(at, ns(10));
  (void)q.pop_at(at);  // cursor is now at ns(10)
  EXPECT_DEATH(q.push(ns(2), [] {}), "HOSTNET_INVARIANT");
}

#else  // !HOSTNET_CHECKED

TEST(CheckedInvariantCompiledOut, FalseInvariantIsANoOp) {
  // The condition must not even be evaluated in unchecked builds.
  bool evaluated = false;
  HOSTNET_INVARIANT(([&] {
                      evaluated = true;
                      return false;
                    }()),
                    "never printed");
  EXPECT_FALSE(evaluated);
}

TEST(CheckedInvariantCompiledOut, LedgerShellReportsNothing) {
  CreditLedger ledger;
  ledger.set_capacity(1);
  ledger.acquire();
  ledger.acquire();            // would trip the capacity bound if checked
  ledger.verify(0, "shell");   // and the conservation check; both are no-ops
  EXPECT_EQ(ledger.outstanding(), 0u);
}

#endif  // HOSTNET_CHECKED

// Runs in BOTH modes. In checked builds every reset_counters()/collect()
// audits the full host (credit conservation in all five domains, MC arena
// walks, bank-ownership bijection) against live loaded traffic.
TEST(CheckedInvariant, LoadedHostPassesQuiesceAudits) {
  const core::HostConfig hc = core::cascade_lake();
  core::HostSystem host(hc, /*seed=*/7);
  std::uint32_t idx = 0;
  host.add_core(workloads::c2m_read(workloads::c2m_core_region(idx++)));
  host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(idx++)));
  host.add_core(workloads::gapbs_pr(workloads::c2m_core_region(idx++)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  host.run(us(50), us(200));
  core::Metrics m = host.collect();  // verify_invariants() runs here
  host.verify_invariants();          // and is callable directly
  EXPECT_GT(m.mem_gbps[0] + m.mem_gbps[1] + m.mem_gbps[2] + m.mem_gbps[3], 0.0);
}

}  // namespace
}  // namespace hostnet
