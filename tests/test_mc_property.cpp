// Property tests for the memory-controller channel under randomized
// workloads: conservation, timing legality, and throughput bounds.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "dram/address_map.hpp"
#include "mc/channel.hpp"
#include "sim/simulator.hpp"

namespace hostnet::mc {
namespace {

struct CountingListener : ChannelListener {
  std::uint64_t reads_done = 0;
  std::uint64_t writes_done = 0;
  Tick last_read_at = 0;
  std::vector<Tick> read_times;

  void on_read_data(const mem::Request&, Tick now) override {
    ++reads_done;
    last_read_at = now;
    read_times.push_back(now);
  }
  void on_wpq_slot_freed(std::uint32_t, Tick) override { ++writes_done; }
  void on_rpq_slot_freed(std::uint32_t, Tick) override {}
};

struct Params {
  std::uint64_t seed;
  double write_fraction;
  bool random_addresses;
};

class McRandomWorkload : public ::testing::TestWithParam<Params> {};

TEST_P(McRandomWorkload, ConservationAndBounds) {
  const Params prm = GetParam();
  sim::Simulator sim;
  CountingListener listener;
  ChannelConfig cfg;
  cfg.timing = dram::ddr4_2933();
  Channel ch(sim, cfg, 32, 0, &listener);
  dram::AddressMap map(1, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  Rng rng(prm.seed);

  // Closed-loop injector: keep a bounded number of requests in flight,
  // injecting whenever queues have room.
  std::uint64_t reads_sent = 0, writes_sent = 0;
  std::uint64_t next_line = 0;
  const std::uint64_t target = 3000;
  while (reads_sent + writes_sent < target) {
    const bool is_write = rng.chance(prm.write_fraction);
    const std::uint64_t line =
        prm.random_addresses ? rng.below(1 << 20) : next_line++;
    const std::uint64_t addr = line * kCachelineBytes;
    mem::Request req;
    req.addr = addr;
    req.op = is_write ? mem::Op::kWrite : mem::Op::kRead;
    if (is_write) {
      if (!ch.wpq_has_space()) {
        sim.run_until(sim.now() + ns(50));
        continue;
      }
      ch.enqueue_write(req, map.decode(addr));
      ++writes_sent;
    } else {
      if (!ch.rpq_has_space()) {
        sim.run_until(sim.now() + ns(50));
        continue;
      }
      ch.enqueue_read(req, map.decode(addr));
      ++reads_sent;
    }
    if ((reads_sent + writes_sent) % 8 == 0) sim.run_until(sim.now() + ns(20));
  }
  sim.run_until(sim.now() + ms(1));  // drain

  // Conservation: everything injected completes, exactly once.
  EXPECT_EQ(listener.reads_done, reads_sent);
  EXPECT_EQ(listener.writes_done, writes_sent);
  EXPECT_EQ(ch.rpq_size(), 0u);
  EXPECT_EQ(ch.wpq_size(), 0u);
  EXPECT_EQ(ch.counters().lines_read, reads_sent);
  EXPECT_EQ(ch.counters().lines_written, writes_sent);

  if (reads_sent > 0) {
    // Throughput bound: the bus moves at most one line per tTrans, so the
    // last read cannot complete before all lines' transfer time elapsed.
    const double busy_ns = to_ns(listener.last_read_at);
    const double min_ns =
        static_cast<double>(reads_sent + writes_sent) * to_ns(cfg.timing.t_trans);
    EXPECT_GE(busy_ns, min_ns * 0.9);

    // Reads return strictly after tRCD+tCAS+tTrans from simulation start.
    EXPECT_GE(listener.read_times.front(), cfg.timing.t_cas + cfg.timing.t_trans);
  }

  // Row outcome accounting is complete: hits + activates == issued reads
  // (each issued line has exactly one recorded outcome).
  const auto& c = ch.counters();
  EXPECT_EQ(c.row_hit_read + c.act_read, reads_sent);
  EXPECT_EQ(c.row_hit_write + c.act_write, writes_sent);
  EXPECT_LE(c.pre_conflict_read, c.act_read);
  EXPECT_LE(c.pre_conflict_write, c.act_write);
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, McRandomWorkload,
    ::testing::Values(Params{1, 0.0, false}, Params{2, 0.0, true},
                      Params{3, 0.3, false}, Params{4, 0.3, true},
                      Params{5, 0.7, true}, Params{6, 1.0, false},
                      Params{7, 1.0, true}, Params{8, 0.5, true}));

TEST(McChannelProperty, SequentialReadsMostlyRowHits) {
  sim::Simulator sim;
  CountingListener listener;
  ChannelConfig cfg;
  Channel ch(sim, cfg, 32, 0, &listener);
  dram::AddressMap map(1, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  std::uint64_t sent = 0;
  std::uint64_t line = 0;
  while (sent < 4000) {
    if (ch.rpq_has_space()) {
      mem::Request req;
      req.addr = line * kCachelineBytes;
      ch.enqueue_read(req, map.decode(req.addr));
      ++line;
      ++sent;
    } else {
      sim.run_until(sim.now() + ns(30));
    }
  }
  sim.run_until(sim.now() + ms(1));
  EXPECT_LT(ch.counters().row_miss_ratio_read(), 0.02);
}

TEST(McChannelProperty, RandomReadsMostlyRowMisses) {
  sim::Simulator sim;
  CountingListener listener;
  ChannelConfig cfg;
  Channel ch(sim, cfg, 32, 0, &listener);
  dram::AddressMap map(1, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  Rng rng(11);
  std::uint64_t sent = 0;
  while (sent < 4000) {
    if (ch.rpq_has_space()) {
      mem::Request req;
      req.addr = rng.below(1 << 22) * kCachelineBytes;
      ch.enqueue_read(req, map.decode(req.addr));
      ++sent;
    } else {
      sim.run_until(sim.now() + ns(30));
    }
  }
  sim.run_until(sim.now() + ms(2));
  EXPECT_GT(ch.counters().row_miss_ratio_read(), 0.5);
}

}  // namespace
}  // namespace hostnet::mc
