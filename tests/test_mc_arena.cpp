// Property tests for the slot-arena MC scheduler (DESIGN.md section 4b).
//
// The slot-arena rewrite claims *bit-identical* scheduling vs the seed's
// deque-based channel. That claim is enforced here three ways:
//  * SlotQueueProperty -- the arena container itself against a std::deque
//    reference model over randomized push/erase/prep/unprep streams;
//  * McArenaDifferential -- the full Channel against RefChannel, a faithful
//    copy of the seed's deque implementation, on identical randomized
//    closed-loop workloads: every completion tick, every counter must match
//    exactly (FR-FCFS "oldest row-ready wins", same-tick FIFO by entry id);
//  * McKickStats -- the self-kick dedup keeps dead calendar entries (wake-ups
//    superseded before firing) a bounded fraction of scheduled wake-ups under
//    bursty enqueues.
// Plus LatencyStation window tests: Little's-law latency must agree with the
// directly measured mean across reset() windows (the paper's PMU methodology,
// section 4.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "counters/station.hpp"
#include "dram/address_map.hpp"
#include "mc/channel.hpp"
#include "mc/slot_queue.hpp"
#include "sim/simulator.hpp"

namespace hostnet::mc {
namespace {

// ---- SlotQueue vs std::deque reference -------------------------------------

struct RefSlot {
  std::uint64_t id;
  bool prepped;
  Tick ready;
};

TEST(SlotQueueProperty, MatchesDequeReference) {
  Rng rng(0xA11E7);
  constexpr std::uint32_t kCap = 24;
  constexpr std::uint32_t kWindow = 8;  // < capacity, so the fence does work
  SlotQueue q(kCap, kWindow);
  std::deque<RefSlot> ref;                       // FIFO (age) order
  std::vector<SlotQueue::SlotIndex> slot_of;     // id -> slot index
  std::uint64_t next_id = 0;

  auto check = [&] {
    ASSERT_EQ(q.size(), ref.size());
    ASSERT_EQ(q.empty(), ref.empty());
    ASSERT_EQ(q.full(), ref.size() == kCap);
    // FIFO walk visits exactly the live entries, oldest first.
    std::size_t pos = 0;
    for (auto i = q.fifo_head(); i != SlotQueue::kNil; i = q.fifo_next(i), ++pos) {
      ASSERT_LT(pos, ref.size());
      ASSERT_EQ(q.entry(i).id, ref[pos].id);
      ASSERT_EQ(q.entry(i).prepped, ref[pos].prepped);
    }
    ASSERT_EQ(pos, ref.size());
    // Prepped walk visits exactly the prepped entries, in the same age order,
    // and the incremental earliest-ready tracker matches a full scan.
    Tick min_ready = SlotQueue::kNoReady;
    std::uint32_t prepped = 0;
    auto pi = q.prepped_head();
    for (const RefSlot& r : ref) {
      if (!r.prepped) continue;
      ASSERT_NE(pi, SlotQueue::kNil);
      ASSERT_EQ(q.entry(pi).id, r.id);
      ASSERT_EQ(q.entry(pi).row_ready_at, r.ready);
      min_ready = std::min(min_ready, r.ready);
      ++prepped;
      pi = q.prepped_next(pi);
    }
    ASSERT_EQ(pi, SlotQueue::kNil);
    ASSERT_EQ(q.prepped_count(), prepped);
    ASSERT_EQ(q.unprepped_count(), ref.size() - prepped);
    ASSERT_EQ(q.earliest_ready(), min_ready);
    if (!ref.empty()) {
      ASSERT_EQ(q.front().id, ref.front().id);
    }
    // Window membership is positional, and the unprepped-in-window list
    // holds exactly the unprepped entries among the first kWindow
    // positions, in age order.
    pos = 0;
    auto wi = q.unprepped_window_head();
    for (auto i = q.fifo_head(); i != SlotQueue::kNil; i = q.fifo_next(i), ++pos) {
      ASSERT_EQ(q.in_window(i), pos < kWindow);
      if (pos < kWindow && !q.entry(i).prepped) {
        ASSERT_NE(wi, SlotQueue::kNil);
        ASSERT_EQ(q.entry(wi).id, q.entry(i).id);
        wi = q.unprepped_window_next(wi);
      }
    }
    ASSERT_EQ(wi, SlotQueue::kNil);
  };

  for (int step = 0; step < 30000; ++step) {
    const std::uint64_t action = rng.below(4);
    if (action == 0 && !q.full()) {
      const std::uint64_t id = next_id++;
      const auto idx = q.push_back(mem::Request{}, dram::Coord{}, Tick(step), id);
      slot_of.resize(id + 1);
      slot_of[id] = idx;
      ref.push_back(RefSlot{id, false, 0});
    } else if (action == 1 && !ref.empty()) {
      const std::size_t pos = rng.below(ref.size());
      q.erase(slot_of[ref[pos].id]);
      ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(pos));
    } else if (action == 2 && !ref.empty()) {
      // Prep a random unprepped entry inside the window (prep never reaches
      // beyond the first kWindow positions -- mimics a bank activation).
      const std::size_t limit = std::min<std::size_t>(ref.size(), kWindow);
      const std::size_t start = rng.below(limit);
      for (std::size_t k = 0; k < limit; ++k) {
        RefSlot& r = ref[(start + k) % limit];
        if (r.prepped) continue;
        r.prepped = true;
        r.ready = Tick(rng.below(1000));
        const auto idx = slot_of[r.id];
        q.entry(idx).row_ready_at = r.ready;
        q.mark_prepped(idx);
        break;
      }
    } else if (action == 3 && !ref.empty()) {
      // Unprep a random prepped entry (mimics a mode-switch release).
      const std::size_t start = rng.below(ref.size());
      for (std::size_t k = 0; k < ref.size(); ++k) {
        RefSlot& r = ref[(start + k) % ref.size()];
        if (!r.prepped) continue;
        r.prepped = false;
        q.unprep(slot_of[r.id]);
        break;
      }
    }
    if (step % 7 == 0) check();
  }
  check();
}

// ---- RefChannel: the seed's deque-based scheduler, kept verbatim -----------
// This is the pre-arena Channel implementation (minus tracing), preserved as
// the executable specification of FR-FCFS-lite: full-queue scans over
// std::deque, lazy next_kick_at_ superseding, no slot reuse. Any divergence
// between it and mc::Channel on the same input stream is a scheduling bug.

class RefChannel {
 public:
  RefChannel(sim::Simulator& sim, const ChannelConfig& cfg, std::uint32_t banks,
             std::uint32_t index, ChannelListener* listener)
      : sim_(sim),
        cfg_(cfg),
        index_(index),
        listener_(listener),
        banks_(banks),
        bank_pending_(banks, -1),
        counters_(banks, cfg.wpq_capacity) {}

  bool rpq_has_space() const { return rpq_.size() < cfg_.rpq_capacity; }
  bool wpq_has_space() const { return wpq_.size() < cfg_.wpq_capacity; }
  std::size_t rpq_size() const { return rpq_.size(); }
  std::size_t wpq_size() const { return wpq_.size(); }
  const counters::McChannelCounters& counters() const { return counters_; }

  void enqueue_read(const mem::Request& req, const dram::Coord& coord) {
    rpq_.push_back(RefEntry{req, coord, sim_.now(), next_entry_id_++, false, 0,
                            dram::RowResult::kHit});
    counters_.rpq_occ.add(sim_.now(), +1);
    kick();
  }

  void enqueue_write(const mem::Request& req, const dram::Coord& coord) {
    wpq_.push_back(RefEntry{req, coord, sim_.now(), next_entry_id_++, false, 0,
                            dram::RowResult::kHit});
    counters_.wpq_occ.add(sim_.now(), +1);
    if (mode_ == Mode::kRead) request_kick_at(sim_.now() + cfg_.max_write_age);
    kick();
  }

 private:
  enum class Mode : std::uint8_t { kRead, kWrite };

  struct RefEntry {
    mem::Request req;
    dram::Coord coord;
    Tick arrival;
    std::uint64_t id;
    bool prepped;
    Tick row_ready_at;
    dram::RowResult row_result;
  };

  std::deque<RefEntry>& active_queue() { return mode_ == Mode::kRead ? rpq_ : wpq_; }

  void maybe_switch_mode(Tick now) {
    if (mode_ == Mode::kRead) {
      const bool dwell_done = now >= read_dwell_until_;
      const bool high = wpq_.size() >= cfg_.wpq_high_wm;
      const bool idle_drain = rpq_.empty() && !wpq_.empty() &&
                              now - wpq_.front().arrival >= cfg_.max_write_age;
      if (high && !dwell_done && !idle_drain) {
        request_kick_at(read_dwell_until_);
        return;
      }
      if ((high && dwell_done) || idle_drain) {
        mode_ = Mode::kWrite;
        bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_rtw;
        release_inactive_banks(rpq_);
      }
    } else {
      const bool drained = !rpq_.empty() && wpq_.size() <= cfg_.wpq_low_wm;
      if (drained) {
        mode_ = Mode::kRead;
        read_dwell_until_ =
            now + std::min(cfg_.read_dwell_cap,
                           static_cast<Tick>(rpq_.size()) * cfg_.dwell_per_queued_read);
        bus_free_at_ = std::max(bus_free_at_, now) + cfg_.timing.t_wtr;
        ++counters_.switch_cycles;
        release_inactive_banks(wpq_);
      }
    }
  }

  void release_inactive_banks(std::deque<RefEntry>& q) {
    for (auto& e : q) {
      if (!e.prepped) continue;
      if (bank_pending_[e.coord.bank] == static_cast<std::int64_t>(e.id))
        bank_pending_[e.coord.bank] = -1;
      e.prepped = false;
    }
  }

  void prep_banks(Tick now) {
    auto& q = active_queue();
    std::uint32_t scanned = 0;
    for (auto& e : q) {
      if (++scanned > cfg_.prep_window) break;
      if (e.prepped) continue;
      if (bank_pending_[e.coord.bank] != -1) continue;
      e.row_result = banks_[e.coord.bank].prepare(now, e.coord.row, cfg_.timing);
      e.prepped = true;
      e.row_ready_at = banks_[e.coord.bank].ready_at();
      bank_pending_[e.coord.bank] = static_cast<std::int64_t>(e.id);
    }
  }

  bool try_issue(Tick now) {
    if (bus_free_at_ > now) return false;
    auto& q = active_queue();
    auto it = q.end();
    for (auto i = q.begin(); i != q.end(); ++i) {
      if (i->prepped && i->row_ready_at <= now) {
        it = i;
        break;  // oldest row-ready request wins the data bus
      }
    }
    if (it == q.end()) return false;

    const RefEntry e = *it;
    q.erase(it);
    bank_pending_[e.coord.bank] = -1;
    counters_.on_row_result(e.req.op, e.row_result == dram::RowResult::kHit,
                            e.row_result == dram::RowResult::kMissConflict);
    banks_[e.coord.bank].column_access(now, e.req.op == mem::Op::kWrite, cfg_.timing);
    bus_free_at_ = now + cfg_.timing.t_trans;

    if (e.req.op == mem::Op::kRead) {
      counters_.on_read_issued(e.coord.bank);
      counters_.rpq_occ.add(now, -1);
      const Tick done = now + cfg_.timing.t_cas + cfg_.timing.t_trans;
      const mem::Request req = e.req;
      sim_.schedule_at(done, [this, req, done] { listener_->on_read_data(req, done); });
      listener_->on_rpq_slot_freed(index_, now);
    } else {
      ++counters_.lines_written;
      counters_.wpq_occ.add(now, -1);
      const Tick done = now + cfg_.timing.t_trans;
      sim_.schedule_at(done, [this, done] { listener_->on_wpq_slot_freed(index_, done); });
    }
    return true;
  }

  void schedule_next(Tick now) {
    const auto& q = active_queue();
    if (q.empty()) {
      if (mode_ == Mode::kRead && !wpq_.empty())
        request_kick_at(std::max(now + 1, wpq_.front().arrival + cfg_.max_write_age));
      return;
    }
    Tick earliest_ready = std::numeric_limits<Tick>::max();
    bool any_prepped = false;
    std::uint32_t scanned = 0;
    for (const auto& e : q) {
      if (++scanned > cfg_.prep_window) break;
      if (e.prepped) {
        any_prepped = true;
        earliest_ready = std::min(earliest_ready, e.row_ready_at);
      }
    }
    if (!any_prepped) return;
    request_kick_at(std::max({now + 1, bus_free_at_, earliest_ready}));
  }

  void request_kick_at(Tick at) {
    if (at >= next_kick_at_) return;
    next_kick_at_ = at;
    sim_.schedule_at(at, [this, at] {
      if (next_kick_at_ != at) return;  // superseded by an earlier kick
      next_kick_at_ = std::numeric_limits<Tick>::max();
      kick();
    });
  }

  void kick() {
    const Tick now = sim_.now();
    maybe_switch_mode(now);
    prep_banks(now);
    if (try_issue(now)) {
      maybe_switch_mode(now);
      prep_banks(now);
    }
    schedule_next(now);
  }

  sim::Simulator& sim_;
  ChannelConfig cfg_;
  std::uint32_t index_;
  ChannelListener* listener_;
  std::deque<RefEntry> rpq_;
  std::deque<RefEntry> wpq_;
  std::vector<dram::Bank> banks_;
  std::vector<std::int64_t> bank_pending_;
  Mode mode_ = Mode::kRead;
  Tick bus_free_at_ = 0;
  Tick read_dwell_until_ = 0;
  std::uint64_t next_entry_id_ = 0;
  Tick next_kick_at_ = std::numeric_limits<Tick>::max();
  counters::McChannelCounters counters_;
};

// ---- differential harness ---------------------------------------------------

struct TraceListener : ChannelListener {
  // Full observable behaviour: every callback, with its payload and tick.
  std::vector<std::uint64_t> read_addrs;
  std::vector<Tick> read_times;
  std::vector<Tick> wpq_freed_times;
  std::vector<Tick> rpq_freed_times;

  void on_read_data(const mem::Request& req, Tick now) override {
    read_addrs.push_back(req.addr);
    read_times.push_back(now);
  }
  void on_wpq_slot_freed(std::uint32_t, Tick now) override {
    wpq_freed_times.push_back(now);
  }
  void on_rpq_slot_freed(std::uint32_t, Tick now) override {
    rpq_freed_times.push_back(now);
  }
};

struct StreamParams {
  std::uint64_t seed;
  double write_fraction;
  bool random_addresses;
  std::uint64_t bank_bits;  ///< shrink the bank space to force conflicts
};

// Drive `ch` with the closed-loop randomized stream defined by `prm`. The
// injection decisions depend only on queue occupancy, which must evolve
// identically in both models if scheduling is bit-identical -- so a shared
// seed produces the same input stream, and any divergence shows up as a
// trace mismatch (or, earlier, as a different injection order).
template <typename ChannelT>
void run_stream(sim::Simulator& sim, ChannelT& ch, const StreamParams& prm) {
  dram::AddressMap map(1, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  Rng rng(prm.seed);
  std::uint64_t sent = 0;
  std::uint64_t next_line = 0;
  const std::uint64_t line_space = 1ULL << prm.bank_bits;
  while (sent < 2500) {
    const bool is_write = rng.chance(prm.write_fraction);
    const std::uint64_t line =
        prm.random_addresses ? rng.below(line_space) : next_line++;
    mem::Request req;
    req.addr = line * kCachelineBytes;
    req.op = is_write ? mem::Op::kWrite : mem::Op::kRead;
    if (is_write) {
      if (!ch.wpq_has_space()) {
        sim.run_until(sim.now() + ns(37));
        continue;
      }
      ch.enqueue_write(req, map.decode(req.addr));
    } else {
      if (!ch.rpq_has_space()) {
        sim.run_until(sim.now() + ns(37));
        continue;
      }
      ch.enqueue_read(req, map.decode(req.addr));
    }
    ++sent;
    // Bursty arrivals: occasional gaps, occasional back-to-back enqueues.
    if (rng.chance(0.4)) sim.run_until(sim.now() + Tick(rng.below(ns(60))));
  }
  sim.run_until(sim.now() + ms(2));  // drain
}

class McArenaDifferential : public ::testing::TestWithParam<StreamParams> {};

TEST_P(McArenaDifferential, BitIdenticalToDequeReference) {
  const StreamParams prm = GetParam();
  ChannelConfig cfg;
  cfg.timing = dram::ddr4_2933();

  sim::Simulator sim_new;
  TraceListener trace_new;
  Channel ch_new(sim_new, cfg, 32, 0, &trace_new);
  run_stream(sim_new, ch_new, prm);

  sim::Simulator sim_ref;
  TraceListener trace_ref;
  RefChannel ch_ref(sim_ref, cfg, 32, 0, &trace_ref);
  run_stream(sim_ref, ch_ref, prm);

  // Every observable callback matches: same payloads, same ticks, same order.
  EXPECT_EQ(trace_new.read_addrs, trace_ref.read_addrs);
  EXPECT_EQ(trace_new.read_times, trace_ref.read_times);
  EXPECT_EQ(trace_new.wpq_freed_times, trace_ref.wpq_freed_times);
  EXPECT_EQ(trace_new.rpq_freed_times, trace_ref.rpq_freed_times);
  EXPECT_EQ(ch_new.rpq_size(), ch_ref.rpq_size());
  EXPECT_EQ(ch_new.wpq_size(), ch_ref.wpq_size());

  // Counters (the formula inputs) match exactly too.
  const auto& cn = ch_new.counters();
  const auto& cr = ch_ref.counters();
  EXPECT_EQ(cn.lines_read, cr.lines_read);
  EXPECT_EQ(cn.lines_written, cr.lines_written);
  EXPECT_EQ(cn.switch_cycles, cr.switch_cycles);
  EXPECT_EQ(cn.act_read, cr.act_read);
  EXPECT_EQ(cn.act_write, cr.act_write);
  EXPECT_EQ(cn.pre_conflict_read, cr.pre_conflict_read);
  EXPECT_EQ(cn.pre_conflict_write, cr.pre_conflict_write);
  EXPECT_EQ(cn.row_hit_read, cr.row_hit_read);
  EXPECT_EQ(cn.row_hit_write, cr.row_hit_write);
}

INSTANTIATE_TEST_SUITE_P(
    Streams, McArenaDifferential,
    ::testing::Values(
        // Sequential reads: row hits, deep RPQ, no mode switches.
        StreamParams{11, 0.0, false, 22},
        // Random reads over a big space: misses, bank parallelism.
        StreamParams{12, 0.0, true, 22},
        // Random reads over a tiny space: heavy bank conflicts, the FR-FCFS
        // reorder window and same-tick FIFO tie-breaks do real work here.
        StreamParams{13, 0.0, true, 9},
        // Mixed traffic: watermark drains, dwell, release_inactive_banks.
        StreamParams{14, 0.3, true, 20},
        StreamParams{15, 0.5, true, 10},
        StreamParams{16, 0.7, false, 22},
        // Write-only: stale-write timer and idle drains dominate.
        StreamParams{17, 1.0, true, 12},
        StreamParams{18, 1.0, false, 22}));

// ---- dead calendar entries from superseded kicks ---------------------------

TEST(McKickStats, DeadEventsBoundedUnderBurstyEnqueues) {
  ChannelConfig cfg;
  cfg.timing = dram::ddr4_2933();
  sim::Simulator sim;
  TraceListener trace;
  Channel ch(sim, cfg, 32, 0, &trace);
  dram::AddressMap map(1, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  Rng rng(0xB0B);

  // Bursty mixed traffic with idle gaps: each burst re-arms the stale-write
  // timer and the bank-ready kick repeatedly, which is exactly the pattern
  // that used to pile dead entries into the calendar queue.
  for (int burst = 0; burst < 400; ++burst) {
    const std::uint64_t burst_len = 1 + rng.below(8);
    for (std::uint64_t i = 0; i < burst_len; ++i) {
      mem::Request req;
      req.addr = rng.below(1 << 18) * kCachelineBytes;
      req.op = rng.chance(0.5) ? mem::Op::kWrite : mem::Op::kRead;
      if (req.op == mem::Op::kWrite) {
        if (!ch.wpq_has_space()) continue;
        ch.enqueue_write(req, map.decode(req.addr));
      } else {
        if (!ch.rpq_has_space()) continue;
        ch.enqueue_read(req, map.decode(req.addr));
      }
    }
    // Gaps long enough that stale-write deadlines pass between bursts.
    sim.run_until(sim.now() + Tick(rng.below(ns(600))));
  }
  sim.run_until(sim.now() + ms(2));  // drain

  const auto& ks = ch.kick_stats();
  ASSERT_GT(ks.scheduled, 0u);
  // Dedup must actually engage under this pattern (same-tick re-requests are
  // the dominant source of what used to be dead entries)...
  EXPECT_GT(ks.deduped, 0u);
  // ...and what still dies (an in-flight wake-up superseded by an earlier
  // one) stays a small fraction of scheduled wake-ups.
  const double dead_ratio =
      static_cast<double>(ks.cancelled) / static_cast<double>(ks.scheduled);
  EXPECT_LT(dead_ratio, 0.2) << "cancelled=" << ks.cancelled
                             << " scheduled=" << ks.scheduled;
}

}  // namespace
}  // namespace hostnet::mc

// ---- LatencyStation: Little's law across reset() windows -------------------

namespace hostnet::counters {
namespace {

TEST(McArenaLittlesLaw, ExactWhenWindowsDrain)
{
  // Jobs that start and finish inside one window make Little's law exact:
  // avg occupancy x window = sum of latencies, so O/R-latency == mean.
  LatencyStation st;
  Rng rng(42);
  Tick now = 0;
  for (int window = 0; window < 4; ++window) {
    st.reset(now);
    // Overlapping batches: k jobs enter, then leave in FIFO order.
    std::uint64_t jobs = 0;
    for (int batch = 0; batch < 50; ++batch) {
      const std::uint64_t k = 1 + rng.below(6);
      std::vector<Tick> entered(k);
      for (std::uint64_t j = 0; j < k; ++j) {
        now += Tick(rng.below(ns(15)));
        entered[j] = now;
        st.enter(now);
      }
      for (std::uint64_t j = 0; j < k; ++j) {
        now += Tick(1 + rng.below(ns(40)));
        st.leave(now, entered[j]);
        ++jobs;
      }
    }
    ASSERT_EQ(st.completions(), jobs);
    ASSERT_EQ(st.occupancy(), 0);
    const double littles = st.littles_latency_ns(now);
    const double mean = st.mean_latency_ns();
    EXPECT_NEAR(littles, mean, mean * 1e-9) << "window " << window;
  }
}

TEST(McArenaLittlesLaw, AgreesUnderStationaryLoadAcrossWindows) {
  // Stationary periodic load where jobs straddle reset() boundaries: the
  // occupancy level persists across reset (only the window accounting
  // restarts), so Little's law converges to the true mean in every window.
  LatencyStation st;
  const Tick period = ns(10);
  const Tick latency = ns(50);  // 5 jobs in flight at steady state
  std::deque<Tick> in_flight;
  Tick now = 0;
  // Warm up into steady state before the first measured window.
  for (int k = 0; k < 5; ++k) {
    st.enter(now + Tick(k) * period);
    in_flight.push_back(now + Tick(k) * period);
  }
  now += Tick(4) * period;
  for (int window = 0; window < 3; ++window) {
    st.reset(now);
    for (int k = 0; k < 2000; ++k) {
      now += period;
      st.enter(now);
      in_flight.push_back(now);
      const Tick entered = in_flight.front();
      in_flight.pop_front();
      st.leave(entered + latency, entered);
    }
    const double littles = st.littles_latency_ns(now);
    const double mean = st.mean_latency_ns();
    EXPECT_NEAR(mean, to_ns(latency), 1e-9);
    EXPECT_NEAR(littles, mean, mean * 0.02) << "window " << window;
    EXPECT_EQ(st.completions(), 2000u);
  }
}

}  // namespace
}  // namespace hostnet::counters
