// Tests for the checkpoint/fork engine (DESIGN.md section 4e): snapshot /
// restore replay identity, the same-host and external-hook contracts, and
// fork-from-checkpoint sweeps bit-identical to cold runs across presets.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

/// Exact (bitwise) equality of everything a figure is built from. Doubles
/// compared with EXPECT_EQ deliberately: the checkpoint engine promises
/// bit-identical results, not approximately-equal ones.
void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.window_ns, b.window_ns);
  EXPECT_EQ(a.channels, b.channels);
  EXPECT_EQ(a.c2m_cores, b.c2m_cores);
  for (int c = 0; c < mem::kNumTrafficClasses; ++c) {
    EXPECT_EQ(a.mem_gbps[static_cast<size_t>(c)], b.mem_gbps[static_cast<size_t>(c)]);
    EXPECT_EQ(a.cha_admission_wait_ns[static_cast<size_t>(c)],
              b.cha_admission_wait_ns[static_cast<size_t>(c)]);
  }
  EXPECT_EQ(a.lfb_latency_ns, b.lfb_latency_ns);
  EXPECT_EQ(a.lfb_littles_latency_ns, b.lfb_littles_latency_ns);
  EXPECT_EQ(a.lfb_avg_occupancy, b.lfb_avg_occupancy);
  EXPECT_EQ(a.lfb_max_occupancy, b.lfb_max_occupancy);
  EXPECT_EQ(a.cha_dram_read_latency_c2m_ns, b.cha_dram_read_latency_c2m_ns);
  EXPECT_EQ(a.cha_dram_read_latency_p2m_ns, b.cha_dram_read_latency_p2m_ns);
  EXPECT_EQ(a.cha_mc_write_latency_ns, b.cha_mc_write_latency_ns);
  EXPECT_EQ(a.p2m_reads_in_flight_at_cha, b.p2m_reads_in_flight_at_cha);
  EXPECT_EQ(a.p2m_reads_in_flight_at_cha_max, b.p2m_reads_in_flight_at_cha_max);
  EXPECT_EQ(a.n_waiting, b.n_waiting);
  EXPECT_EQ(a.avg_rpq_occupancy, b.avg_rpq_occupancy);
  EXPECT_EQ(a.avg_wpq_occupancy, b.avg_wpq_occupancy);
  EXPECT_EQ(a.wpq_full_fraction, b.wpq_full_fraction);
  EXPECT_EQ(a.row_miss_ratio_read, b.row_miss_ratio_read);
  EXPECT_EQ(a.row_miss_ratio_write, b.row_miss_ratio_write);
  EXPECT_EQ(a.mc_lines_read, b.mc_lines_read);
  EXPECT_EQ(a.mc_lines_written, b.mc_lines_written);
  EXPECT_EQ(a.mc_switch_cycles, b.mc_switch_cycles);
  EXPECT_EQ(a.mc_act_read, b.mc_act_read);
  EXPECT_EQ(a.mc_act_write, b.mc_act_write);
  EXPECT_EQ(a.mc_pre_conflict_read, b.mc_pre_conflict_read);
  EXPECT_EQ(a.mc_pre_conflict_write, b.mc_pre_conflict_write);
  EXPECT_EQ(a.c2m_lines_read, b.c2m_lines_read);
  EXPECT_EQ(a.c2m_lines_written, b.c2m_lines_written);
  EXPECT_EQ(a.c2m_app_gbps, b.c2m_app_gbps);
  EXPECT_EQ(a.queries_per_sec, b.queries_per_sec);
  EXPECT_EQ(a.p2m_dev_gbps, b.p2m_dev_gbps);
  EXPECT_EQ(a.p2m_iops, b.p2m_iops);
}

void expect_identical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.c2m_score, b.c2m_score);
  EXPECT_EQ(a.p2m_score, b.p2m_score);
  expect_identical(a.metrics, b.metrics);
}

/// The credit-ledger balances of every registered flow-control pool.
std::vector<std::uint32_t> ledger_balances(HostSystem& host) {
  std::vector<std::uint32_t> v;
  for (const auto& e : host.domains().entries()) v.push_back(e.pool->in_use());
  return v;
}

/// One replay of `extra` past a checkpoint: metrics, event trace summary
/// (event count + final clock), and credit balances at the end.
struct Replay {
  Metrics metrics;
  std::uint64_t executed = 0;
  Tick end = 0;
  std::vector<std::uint32_t> balances;
  HostSnapshot end_state;
};

Replay replay(HostSystem& host, Tick extra) {
  Replay r;
  host.run_more(extra);
  r.metrics = host.collect();
  r.executed = host.sim().events_executed();
  r.end = host.sim().now();
  r.balances = ledger_balances(host);
  host.save_state(r.end_state);
  return r;
}

// -- snapshot / restore ------------------------------------------------------

TEST(Checkpoint, RestoreReplaysIdenticalWindow) {
  // Randomized property: snapshot at the quiesce point, run N ticks, then
  // restore and re-run the same N ticks twice. Every replay must produce
  // the identical event trace (count + clock + full end-state snapshot),
  // metrics, and credit-ledger balances. Under HOSTNET_CHECKED, restore()
  // additionally audits the restored event queue event-by-event and
  // re-verifies host invariants.
  Rng rng(20240808);
  for (int trial = 0; trial < 4; ++trial) {
    const HostConfig hc = cascade_lake();
    HostSystem host(hc, /*seed=*/rng.next() % 1024 + 1);
    const auto n_cores = static_cast<std::uint32_t>(rng.next() % 3 + 1);
    for (std::uint32_t i = 0; i < n_cores; ++i) {
      host.add_core(rng.chance(0.5)
                        ? workloads::c2m_read(workloads::c2m_core_region(i))
                        : workloads::c2m_read_write(workloads::c2m_core_region(i)));
    }
    if (rng.chance(0.7))
      host.add_storage(rng.chance(0.5) ? workloads::fio_p2m_write(hc, workloads::p2m_region())
                                       : workloads::fio_p2m_read(hc, workloads::p2m_region()));

    const Tick warmup = us(10 + rng.next() % 40);
    const Tick extra = us(20 + rng.next() % 80);
    host.run(warmup, 0);  // run_until drains every event at ticks <= warmup
    const HostSnapshot checkpoint = host.snapshot();

    const Replay a = replay(host, extra);
    host.restore(checkpoint);
    const Replay b = replay(host, extra);
    host.restore(checkpoint);
    const Replay c = replay(host, extra);

    for (const Replay* r : {&b, &c}) {
      EXPECT_EQ(a.executed, r->executed) << "trial " << trial;
      EXPECT_EQ(a.end, r->end) << "trial " << trial;
      EXPECT_EQ(a.balances, r->balances) << "trial " << trial;
      EXPECT_TRUE(sim::Simulator::audit_identical(a.end_state.sim, r->end_state.sim))
          << "trial " << trial;
      expect_identical(a.metrics, r->metrics);
    }
  }
}

TEST(Checkpoint, RestoreIntoDifferentHostThrows) {
  // Snapshots carry raw pointers into the producing host (event closures'
  // `this` captures, CreditWaiter*), so cross-host restore must be refused
  // even between identically-built hosts.
  const HostConfig hc = cascade_lake();
  HostSystem a(hc, 7);
  HostSystem b(hc, 7);
  a.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
  b.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
  a.run(us(20), 0);
  b.run(us(20), 0);
  const HostSnapshot snap = a.snapshot();
  EXPECT_THROW(b.restore(snap), std::logic_error);
  a.restore(snap);  // same host: fine
}

TEST(Checkpoint, ExternalWithoutSaveHookRefusesSnapshot) {
  // The legacy attach(start, reset) overload registers no save/load hooks;
  // a silent partial checkpoint would fork diverging simulations, so
  // snapshot() must throw instead.
  HostSystem host(cascade_lake());
  host.attach([] {}, [](Tick) {});
  host.run(us(5), 0);
  EXPECT_THROW(host.snapshot(), std::logic_error);
}

TEST(Checkpoint, DctcpReceiverRoundTrips) {
  // TcpReceiver attaches full ExternalHooks: the NIC, copy cores, and
  // congestion state must all replay identically from a checkpoint.
  const HostConfig hc = cascade_lake();
  HostSystem host(hc, 3);
  net::DctcpConfig cfg;
  net::TcpReceiver rx(host, cfg);
  host.run(us(200), 0);
  const HostSnapshot checkpoint = host.snapshot();

  host.run_more(us(400));
  const Metrics m1 = host.collect();
  const double goodput1 = rx.goodput_gbps(host.sim().now());
  const std::uint64_t executed1 = host.sim().events_executed();

  host.restore(checkpoint);
  host.run_more(us(400));
  const Metrics m2 = host.collect();
  EXPECT_EQ(goodput1, rx.goodput_gbps(host.sim().now()));
  EXPECT_EQ(executed1, host.sim().events_executed());
  expect_identical(m1, m2);
  EXPECT_GT(goodput1, 0.0);
}

// -- fork-from-checkpoint sweeps ---------------------------------------------

RunOptions fast_options() {
  RunOptions o;
  o.warmup = us(30);
  o.measure = us(100);
  o.seed = 7;
  return o;
}

struct Preset {
  HostConfig host;
  std::optional<C2MSpec> c2m;
  std::optional<P2MSpec> p2m;
};

/// Three host presets x distinct workload mixes: the differential matrix.
std::vector<Preset> differential_presets() {
  std::vector<Preset> presets;

  {  // Cascade Lake, C2M-Read vs P2M-Write (the paper's Figure 2 quadrant).
    Preset p;
    p.host = cascade_lake();
    C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 2;
    p.c2m = c2m;
    P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(p.host, workloads::p2m_region());
    p.p2m = p2m;
    presets.push_back(p);
  }
  {  // Ice Lake, read-write cores vs P2M-Read.
    Preset p;
    p.host = ice_lake();
    C2MSpec c2m;
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
    c2m.cores = 2;
    p.c2m = c2m;
    P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_read(p.host, workloads::p2m_region());
    p.p2m = p2m;
    presets.push_back(p);
  }
  {  // Single-channel Cascade Lake variant, C2M only.
    Preset p;
    p.host = cascade_lake();
    p.host.name = "cascade-lake-1ch";
    p.host.dram.channels = 1;
    C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 3;
    p.c2m = c2m;
    presets.push_back(p);
  }
  return presets;
}

TEST(ForkSweep, DifferentialBitIdenticalToColdAcrossPresets) {
  const RunOptions opt = fast_options();
  for (const Preset& p : differential_presets()) {
    SweepCache cache;
    const RunOutcome cold = run_workloads(p.host, p.c2m, p.p2m, opt, nullptr, SweepMode::kCold);
    // First forked run warms the checkpoint; the second restores from it.
    // Both must match the cold reference bit-for-bit.
    const RunOutcome fork1 = run_workloads(p.host, p.c2m, p.p2m, opt, &cache, SweepMode::kFork);
    RunOptions longer = opt;
    longer.measure = opt.measure * 2;
    const RunOutcome cold_long =
        run_workloads(p.host, p.c2m, p.p2m, longer, nullptr, SweepMode::kCold);
    const RunOutcome fork_long =
        run_workloads(p.host, p.c2m, p.p2m, longer, &cache, SweepMode::kFork);
    expect_identical(cold, fork1);
    expect_identical(cold_long, fork_long);
    EXPECT_EQ(cache.stats().checkpoint_misses, 1u) << p.host.name;
    EXPECT_EQ(cache.stats().checkpoint_hits, 1u) << p.host.name;
  }
}

TEST(ForkSweep, OutcomeMemoizationAndStats) {
  const RunOptions opt = fast_options();
  const Preset p = differential_presets().front();
  SweepCache cache;

  const RunOutcome first = run_workloads(p.host, p.c2m, p.p2m, opt, &cache);
  EXPECT_EQ(cache.stats().checkpoint_misses, 1u);
  EXPECT_EQ(cache.stats().outcome_misses, 1u);
  EXPECT_EQ(cache.checkpoints(), 1u);

  // Identical (fingerprint, measure) rerun: memoized, no simulation at all.
  const RunOutcome again = run_workloads(p.host, p.c2m, p.p2m, opt, &cache);
  EXPECT_EQ(cache.stats().outcome_hits, 1u);
  expect_identical(first, again);

  // A different seed is a different fingerprint: it must warm its own
  // checkpoint, never share (the warmup-sharing caveat in experiment.hpp).
  RunOptions reseeded = opt;
  reseeded.seed = opt.seed + 1;
  run_workloads(p.host, p.c2m, p.p2m, reseeded, &cache);
  EXPECT_EQ(cache.stats().checkpoint_misses, 2u);
  EXPECT_EQ(cache.checkpoints(), 2u);

  cache.clear();
  EXPECT_EQ(cache.checkpoints(), 0u);
}

TEST(ForkSweep, CoreSweepBitIdenticalToCold) {
  // The headline use: sweep_c2m_cores with forking enabled must reproduce
  // the cold sweep exactly -- every isolated and colocated window.
  const HostConfig host = cascade_lake();
  const RunOptions opt = fast_options();
  C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const std::vector<std::uint32_t> cores{1, 2, 3};

  const auto cold = sweep_c2m_cores(host, c2m, p2m, cores, opt, nullptr, SweepMode::kCold);
  SweepCache cache;
  const auto forked = sweep_c2m_cores(host, c2m, p2m, cores, opt, &cache, SweepMode::kFork);
  ASSERT_EQ(forked.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    expect_identical(forked[i].iso_c2m, cold[i].iso_c2m);
    expect_identical(forked[i].iso_p2m, cold[i].iso_p2m);
    expect_identical(forked[i].colo, cold[i].colo);
  }
  // The shared iso-P2M window is measured once; per-count prefixes each
  // warm their own checkpoint.
  EXPECT_GT(cache.stats().checkpoint_misses, 0u);
}

TEST(ForkSweep, FingerprintSeparatesEveryInput) {
  const Preset p = differential_presets().front();
  const RunOptions opt = fast_options();
  const std::string base =
      config_fingerprint(p.host, p.c2m, p.p2m, opt.seed, opt.warmup);
  EXPECT_EQ(base, config_fingerprint(p.host, p.c2m, p.p2m, opt.seed, opt.warmup));

  EXPECT_NE(base, config_fingerprint(p.host, p.c2m, p.p2m, opt.seed + 1, opt.warmup));
  EXPECT_NE(base, config_fingerprint(p.host, p.c2m, p.p2m, opt.seed, opt.warmup + 1));
  EXPECT_NE(base, config_fingerprint(p.host, p.c2m, std::nullopt, opt.seed, opt.warmup));
  EXPECT_NE(base, config_fingerprint(p.host, std::nullopt, p.p2m, opt.seed, opt.warmup));

  HostConfig other = p.host;
  other.dram.channels += 1;
  EXPECT_NE(base, config_fingerprint(other, p.c2m, p.p2m, opt.seed, opt.warmup));

  C2MSpec more_cores = *p.c2m;
  more_cores.cores += 1;
  EXPECT_NE(base, config_fingerprint(p.host, more_cores, p.p2m, opt.seed, opt.warmup));
}

}  // namespace
}  // namespace hostnet::core
