// Tests for the parallel sweep engine: the worker pool itself
// (core/parallel.hpp) and the parallel experiment sweeps built on it
// (bit-identical to the serial protocol, results in input order).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

RunOptions fast_options() {
  RunOptions o;
  o.warmup = us(20);
  o.measure = us(80);
  o.seed = 7;
  return o;
}

/// Exact (bitwise) equality of the metrics the figures are built from.
/// Doubles are compared with EXPECT_EQ deliberately: the parallel engine
/// promises bit-identical results, not approximately-equal ones.
void expect_identical(const Metrics& a, const Metrics& b) {
  EXPECT_EQ(a.window_ns, b.window_ns);
  for (int c = 0; c < mem::kNumTrafficClasses; ++c) {
    EXPECT_EQ(a.mem_gbps[static_cast<size_t>(c)], b.mem_gbps[static_cast<size_t>(c)]);
    EXPECT_EQ(a.cha_admission_wait_ns[static_cast<size_t>(c)],
              b.cha_admission_wait_ns[static_cast<size_t>(c)]);
  }
  EXPECT_EQ(a.lfb_latency_ns, b.lfb_latency_ns);
  EXPECT_EQ(a.lfb_avg_occupancy, b.lfb_avg_occupancy);
  EXPECT_EQ(a.lfb_max_occupancy, b.lfb_max_occupancy);
  EXPECT_EQ(a.cha_dram_read_latency_c2m_ns, b.cha_dram_read_latency_c2m_ns);
  EXPECT_EQ(a.cha_dram_read_latency_p2m_ns, b.cha_dram_read_latency_p2m_ns);
  EXPECT_EQ(a.cha_mc_write_latency_ns, b.cha_mc_write_latency_ns);
  EXPECT_EQ(a.p2m_reads_in_flight_at_cha_max, b.p2m_reads_in_flight_at_cha_max);
  EXPECT_EQ(a.avg_rpq_occupancy, b.avg_rpq_occupancy);
  EXPECT_EQ(a.avg_wpq_occupancy, b.avg_wpq_occupancy);
  EXPECT_EQ(a.wpq_full_fraction, b.wpq_full_fraction);
  EXPECT_EQ(a.row_miss_ratio_read, b.row_miss_ratio_read);
  EXPECT_EQ(a.row_miss_ratio_write, b.row_miss_ratio_write);
  EXPECT_EQ(a.mc_lines_read, b.mc_lines_read);
  EXPECT_EQ(a.mc_lines_written, b.mc_lines_written);
  EXPECT_EQ(a.mc_switch_cycles, b.mc_switch_cycles);
  EXPECT_EQ(a.c2m_lines_read, b.c2m_lines_read);
  EXPECT_EQ(a.c2m_lines_written, b.c2m_lines_written);
  EXPECT_EQ(a.c2m_app_gbps, b.c2m_app_gbps);
  EXPECT_EQ(a.queries_per_sec, b.queries_per_sec);
  EXPECT_EQ(a.p2m_dev_gbps, b.p2m_dev_gbps);
  EXPECT_EQ(a.p2m_iops, b.p2m_iops);
}

void expect_identical(const RunOutcome& a, const RunOutcome& b) {
  EXPECT_EQ(a.c2m_score, b.c2m_score);
  EXPECT_EQ(a.p2m_score, b.p2m_score);
  expect_identical(a.metrics, b.metrics);
}

void expect_identical(const ColocationOutcome& a, const ColocationOutcome& b) {
  expect_identical(a.iso_c2m, b.iso_c2m);
  expect_identical(a.iso_p2m, b.iso_p2m);
  expect_identical(a.colo, b.colo);
}

TEST(RunParallel, ThreadsEnvOverride) {
  ASSERT_EQ(setenv("HOSTNET_THREADS", "3", 1), 0);
  EXPECT_EQ(parallel_threads(), 3u);
  ASSERT_EQ(unsetenv("HOSTNET_THREADS"), 0);
  EXPECT_GE(parallel_threads(), 1u);
}

TEST(RunParallel, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  run_parallel(hits.size(), [&](std::size_t i) { ++hits[i]; }, 4);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(RunParallel, PreservesInputOrderWithMoreJobsThanThreads) {
  // 64 jobs on 4 threads; even jobs are slowed so completion order differs
  // from input order. results[i] must still correspond to job i.
  std::vector<int> results(64, -1);
  run_parallel(
      results.size(),
      [&](std::size_t i) {
        if (i % 2 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        results[i] = static_cast<int>(i) * 3;
      },
      4);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], static_cast<int>(i) * 3);
}

TEST(RunParallel, ThrowingJobPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      run_parallel(
          32,
          [](std::size_t i) {
            if (i == 5) throw std::runtime_error("boom");
          },
          4),
      std::runtime_error);

  // The pool is per-call: a subsequent run works normally.
  std::atomic<int> n{0};
  run_parallel(8, [&](std::size_t) { ++n; }, 4);
  EXPECT_EQ(n.load(), 8);
}

TEST(ParallelSweep, TwoQuadrantColocationBitIdenticalToSerial) {
  const HostConfig host = cascade_lake();
  const RunOptions opt = fast_options();

  C2MSpec read_spec;
  read_spec.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  read_spec.cores = 2;
  C2MSpec rw_spec;
  rw_spec.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  rw_spec.cores = 2;
  P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  const std::vector<ColocationPoint> points{{host, read_spec, p2m}, {host, rw_spec, p2m}};
  const auto par = run_colocation_points(points, opt, 4);
  ASSERT_EQ(par.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto serial = run_colocation(points[i].host, points[i].c2m, points[i].p2m, opt);
    expect_identical(par[i], serial);
  }
}

TEST(ParallelSweep, CoreSweepBitIdenticalAndInInputOrder) {
  const HostConfig host = cascade_lake();
  const RunOptions opt = fast_options();

  C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const std::vector<std::uint32_t> cores{1, 2, 3};

  const auto serial = sweep_c2m_cores(host, c2m, p2m, cores, opt);
  const auto par = sweep_c2m_cores_parallel(host, c2m, p2m, cores, opt, 4);
  ASSERT_EQ(par.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) expect_identical(par[i], serial[i]);

  // Degradation must grow with core count in this quadrant, which doubles as
  // an input-order check on the parallel results.
  EXPECT_GT(par.back().colo.metrics.c2m_cores, par.front().colo.metrics.c2m_cores);
}

TEST(ParallelSweep, WorkloadPointsMatchDirectRuns) {
  const HostConfig host = cascade_lake();
  const RunOptions opt = fast_options();

  C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 1;
  P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_read(host, workloads::p2m_region());

  const std::vector<WorkloadPoint> points{
      {host, c2m, std::nullopt}, {host, std::nullopt, p2m}, {host, c2m, p2m}};
  const auto par = run_workload_points(points, opt, 3);
  ASSERT_EQ(par.size(), points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto serial = run_workloads(points[i].host, points[i].c2m, points[i].p2m, opt);
    expect_identical(par[i], serial);
  }
}

}  // namespace
}  // namespace hostnet::core
