// Unit tests for the memory-controller channel scheduler.
#include <gtest/gtest.h>

#include <vector>

#include "dram/address_map.hpp"
#include "mc/channel.hpp"
#include "sim/simulator.hpp"

namespace hostnet::mc {
namespace {

struct RecordingListener : ChannelListener {
  struct Done {
    std::uint64_t addr;
    Tick at;
  };
  std::vector<Done> reads;
  std::vector<Tick> writes_issued;
  int rpq_freed = 0;

  void on_read_data(const mem::Request& req, Tick now) override {
    reads.push_back({req.addr, now});
  }
  void on_wpq_slot_freed(std::uint32_t, Tick now) override { writes_issued.push_back(now); }
  void on_rpq_slot_freed(std::uint32_t, Tick) override { ++rpq_freed; }
};

mem::Request read_req(std::uint64_t addr) {
  mem::Request r;
  r.addr = addr;
  r.op = mem::Op::kRead;
  return r;
}

mem::Request write_req(std::uint64_t addr) {
  mem::Request r;
  r.addr = addr;
  r.op = mem::Op::kWrite;
  return r;
}

struct Fixture {
  sim::Simulator sim;
  RecordingListener listener;
  ChannelConfig cfg;
  dram::AddressMap map{1, 32, 8192, 256, dram::BankHash::kXorHash, 8192};
  std::unique_ptr<Channel> ch;

  Fixture() {
    cfg.timing = dram::ddr4_2933();
    ch = std::make_unique<Channel>(sim, cfg, 32, 0, &listener);
  }
  void enqueue_read(std::uint64_t a) { ch->enqueue_read(read_req(a), map.decode(a)); }
  void enqueue_write(std::uint64_t a) { ch->enqueue_write(write_req(a), map.decode(a)); }
};

TEST(McChannel, SingleReadLatencyIsActCasTrans) {
  Fixture f;
  f.enqueue_read(0);
  f.sim.run_until(us(1));
  ASSERT_EQ(f.listener.reads.size(), 1u);
  // Cold bank: ACT (tRCD) + CAS + transfer.
  const Tick expect = f.cfg.timing.t_rcd + f.cfg.timing.t_cas + f.cfg.timing.t_trans;
  EXPECT_EQ(f.listener.reads[0].at, expect);
}

TEST(McChannel, RowHitBackToBackPipelinesOnBus) {
  Fixture f;
  for (int i = 0; i < 8; ++i) f.enqueue_read(static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(us(1));
  ASSERT_EQ(f.listener.reads.size(), 8u);
  // After the first ACT, row hits stream at one per tTrans.
  for (int i = 1; i < 8; ++i)
    EXPECT_EQ(f.listener.reads[i].at - f.listener.reads[i - 1].at, f.cfg.timing.t_trans)
        << i;
}

TEST(McChannel, ReadsCompleteInFifoOrderForSameRow) {
  Fixture f;
  for (int i = 0; i < 16; ++i) f.enqueue_read(static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(us(1));
  ASSERT_EQ(f.listener.reads.size(), 16u);
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(f.listener.reads[i].addr, static_cast<std::uint64_t>(i) * 64);
}

TEST(McChannel, WritesWaitForDrainTrigger) {
  Fixture f;
  // Fewer writes than the high watermark and no reads: only the stale-write
  // timer (max_write_age) may trigger the drain.
  for (int i = 0; i < 4; ++i) f.enqueue_write(static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(f.cfg.max_write_age - ns(20));
  EXPECT_TRUE(f.listener.writes_issued.empty());
  f.sim.run_until(f.cfg.max_write_age + us(1));
  EXPECT_EQ(f.listener.writes_issued.size(), 4u);
}

TEST(McChannel, HighWatermarkTriggersDrain) {
  Fixture f;
  for (std::uint32_t i = 0; i < f.cfg.wpq_high_wm; ++i)
    f.enqueue_write(static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(us(1));
  // Drain runs immediately (no reads pending, watermark hit).
  EXPECT_GE(f.listener.writes_issued.size(), f.cfg.wpq_high_wm - f.cfg.wpq_low_wm);
}

TEST(McChannel, WpqBackpressureExposedToCaller) {
  Fixture f;
  std::uint32_t accepted = 0;
  while (f.ch->wpq_has_space()) {
    f.enqueue_write(accepted * 64ull);
    ++accepted;
    ASSERT_LT(accepted, 1000u);
  }
  EXPECT_EQ(accepted, f.cfg.wpq_capacity);
  f.sim.run_until(us(5));
  EXPECT_TRUE(f.ch->wpq_has_space());  // drained eventually
}

TEST(McChannel, ReadsArePreferredOverQueuedWrites) {
  Fixture f;
  // Writes below the watermark plus a read: the read must complete first.
  for (int i = 0; i < 4; ++i) f.enqueue_write(static_cast<std::uint64_t>(i + 100) * 8192);
  f.enqueue_read(0);
  f.sim.run_until(us(1));
  ASSERT_EQ(f.listener.reads.size(), 1u);
  ASSERT_FALSE(f.listener.writes_issued.empty());
  EXPECT_LT(f.listener.reads[0].at, f.listener.writes_issued[0]);
}

TEST(McChannel, SwitchCyclesCounted) {
  Fixture f;
  // Force a drain then return to reads: one full write->read switch cycle.
  for (std::uint32_t i = 0; i < f.cfg.wpq_high_wm; ++i)
    f.enqueue_write(static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(us(1));
  f.enqueue_read(1 << 20);
  f.sim.run_until(us(2));
  EXPECT_GE(f.ch->counters().switch_cycles, 1u);
  EXPECT_EQ(f.listener.reads.size(), 1u);
}

TEST(McChannel, CountersTrackLinesAndOccupancy) {
  Fixture f;
  for (int i = 0; i < 10; ++i) f.enqueue_read(static_cast<std::uint64_t>(i) * 64);
  for (int i = 0; i < 5; ++i) f.enqueue_write((1ull << 20) + static_cast<std::uint64_t>(i) * 64);
  f.sim.run_until(us(2));
  EXPECT_EQ(f.ch->counters().lines_read, 10u);
  EXPECT_EQ(f.ch->counters().lines_written, 5u);
  EXPECT_EQ(f.listener.rpq_freed, 10);
  EXPECT_EQ(f.ch->rpq_size(), 0u);
  EXPECT_EQ(f.ch->wpq_size(), 0u);
}

TEST(McChannel, RowMissesCountedOnScatteredReads) {
  Fixture f;
  // Same bank, alternating rows -> conflicts. Construct two addresses in
  // the same bank with different rows: with 8 KB bank chunks and the XOR
  // fold, scan for a pair.
  const auto c0 = f.map.decode(0);
  std::uint64_t other = 0;
  for (std::uint64_t a = 8192;; a += 8192) {
    const auto c = f.map.decode(a);
    if (c.bank == c0.bank && c.row != c0.row) {
      other = a;
      break;
    }
  }
  for (int i = 0; i < 4; ++i) {
    f.enqueue_read(i % 2 == 0 ? 0 : other);
    f.sim.run_until(f.sim.now() + us(1));
  }
  EXPECT_GE(f.ch->counters().pre_conflict_read + f.ch->counters().act_read, 3u);
}

TEST(McChannel, ThroughputBoundedByBus) {
  // Saturating row-hit reads cannot exceed one line per tTrans.
  Fixture f;
  const int n = 512;
  for (int i = 0; i < n; ++i) {
    if (f.ch->rpq_has_space()) f.enqueue_read(static_cast<std::uint64_t>(i) * 64);
  }
  f.sim.run_until(us(20));
  const auto lines = f.ch->counters().lines_read;
  const Tick busy = f.listener.reads.back().at;
  EXPECT_GE(static_cast<double>(busy), static_cast<double>(lines) *
                                           static_cast<double>(f.cfg.timing.t_trans) * 0.95);
}

}  // namespace
}  // namespace hostnet::mc
