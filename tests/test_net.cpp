// Tests for the networking case-study models: NIC (PFC / lossy+ECN), the
// RDMA harness, and the DCTCP receiver.
#include <gtest/gtest.h>

#include "core/host_system.hpp"
#include "net/dctcp.hpp"
#include "net/nic_device.hpp"
#include "net/rdma.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::net {
namespace {

core::RunOptions fast() {
  core::RunOptions o;
  o.warmup = us(200);
  o.measure = us(600);
  return o;
}

TEST(NicDevice, AutonomousModeDeliversAtWireRate) {
  core::HostSystem host(core::cascade_lake());
  NicConfig nc;
  nc.region = workloads::p2m_region();
  NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(100), us(500));
  EXPECT_NEAR(gb_per_s(nic.bytes_accepted(), us(500)), 12.25, 0.5);
  EXPECT_EQ(nic.packets_dropped(), 0u);  // PFC: lossless
  EXPECT_LT(nic.pause_fraction(host.sim().now()), 0.05);
}

TEST(NicDevice, PfcPausesUnderDmaBackpressure) {
  // Choke the PCIe side so the RX buffer fills: PFC must pause (not drop).
  core::HostSystem host(core::cascade_lake());
  NicConfig nc;
  nc.region = workloads::p2m_region();
  nc.pcie_gb_per_s = 6.0;  // drain slower than the 12.25 GB/s wire
  NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(100), us(500));
  EXPECT_EQ(nic.packets_dropped(), 0u);
  EXPECT_GT(nic.pause_fraction(host.sim().now()), 0.3);
  EXPECT_NEAR(gb_per_s(nic.bytes_dma(), us(500)), 6.0, 0.5);
}

TEST(NicDevice, LossyModeDropsWhenFull) {
  core::HostSystem host(core::cascade_lake());
  NicConfig nc;
  nc.region = workloads::p2m_region();
  nc.pfc = false;
  nc.autonomous = false;
  nc.rx_buffer_bytes = 16 << 10;
  nc.ecn_threshold = 8 << 10;
  nc.pcie_gb_per_s = 1.0;  // nearly stuck
  NicDevice nic(host.sim(), host.iio(), nc);
  host.run(us(1), us(1));
  int accepted = 0, dropped = 0, marked = 0;
  for (int i = 0; i < 32; ++i) {
    bool mark = false;
    if (nic.offer_packet(&mark)) {
      ++accepted;
      if (mark) ++marked;
    } else {
      ++dropped;
    }
  }
  EXPECT_EQ(accepted, 4);  // 16 KB buffer / 4 KB packets
  EXPECT_EQ(dropped, 28);
  EXPECT_GE(marked, 1);    // packets above the 8 KB ECN threshold
}

TEST(NicDevice, MixedRxTxProgressUnderCreditExhaustion) {
  // Regression for the single waiting_credit_ flag the NIC used to carry:
  // with both the RX (DMA write) and TX (DMA read) pumps blocked on their
  // exhausted IIO pools, a freed credit of one op must wake exactly that
  // pump -- under the shared flag, the read-credit wake cleared the write
  // wait and re-ran only the RX pump, wedging TX permanently.
  auto hc = core::cascade_lake();
  hc.iio.write_credits = 4;  // starve both pools so both pumps block
  hc.iio.read_credits = 4;
  core::HostSystem host(hc);
  NicConfig nc;
  nc.region = workloads::p2m_region();
  nc.tx_gb_per_s = 12.0;
  nc.tx_region = workloads::p2m_region();
  nc.tx_region.base += 4ull << 30;
  NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(100), us(500));
  const double rx_gbps = gb_per_s(nic.bytes_dma(), us(500));
  const double tx_gbps = gb_per_s(nic.bytes_tx(), us(500));
  // Both directions keep flowing (the 4-credit pools throttle hard, but a
  // wedged pump would show ~0): neither starves the other out.
  EXPECT_GT(rx_gbps, 0.3);
  EXPECT_GT(tx_gbps, 0.3);
}

TEST(NicDevice, TxPathOffByDefault) {
  core::HostSystem host(core::cascade_lake());
  NicConfig nc;
  nc.region = workloads::p2m_region();
  NicDevice nic(host.sim(), host.iio(), nc);
  host.attach([&nic] { nic.start(); }, [&nic](Tick t) { nic.reset_counters(t); });
  host.run(us(100), us(200));
  EXPECT_EQ(nic.bytes_tx(), 0u);
}

TEST(Rdma, WriteTrafficShowsBlueRegime) {
  // RDMA quadrant 1 (Appendix C): C2M-Read degrades, RoCE throughput does
  // not, and PFC stays quiet.
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 3;
  RdmaSpec rdma;
  const auto o = run_rdma_colocation(hc, c2m, rdma, fast());
  EXPECT_GT(o.c2m_degradation(), 1.15);
  EXPECT_LT(o.p2m_degradation(), 1.05);
  EXPECT_LT(o.colo.pause_fraction, 0.05);
}

TEST(Rdma, RedRegimeTriggersPfcPauses) {
  // RDMA quadrant 3 at high C2M load: P2M degrades and the NIC spends a
  // significant fraction of time paused (paper: 22-43%).
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  c2m.cores = 5;
  RdmaSpec rdma;
  const auto o = run_rdma_colocation(hc, c2m, rdma, fast());
  EXPECT_GT(o.p2m_degradation(), 1.3);
  EXPECT_GT(o.colo.pause_fraction, 0.15);
  EXPECT_EQ(o.colo.metrics.channels, 2u);
}

TEST(Rdma, ReadTrafficUnaffectedInBlueRegime) {
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 3;
  RdmaSpec rdma;
  rdma.write_traffic = false;
  const auto o = run_rdma_colocation(hc, c2m, rdma, fast());
  EXPECT_LT(o.p2m_degradation(), 1.05);
  EXPECT_GT(o.c2m_degradation(), 1.1);
}

TEST(Dctcp, IsolatedReceiverReachesWireRate) {
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  DctcpConfig cfg;
  TcpReceiver rx(host, cfg);
  host.run(us(400), us(800));
  const Tick now = host.sim().now();
  EXPECT_GT(rx.goodput_gbps(now), 0.85 * cfg.wire_gb_per_s);
  EXPECT_LT(rx.loss_rate(), 0.01);
}

TEST(Dctcp, BlueRegimeThrottlesViaFlowControlNotDrops) {
  // C2M-Read colocation slows the copy; DCTCP flow control (receive
  // window) reduces the sending rate without packet loss (Appendix C.2).
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  DctcpConfig cfg;
  TcpReceiver rx(host, cfg);
  host.run(us(400), us(800));
  const Tick now = host.sim().now();
  EXPECT_LT(rx.goodput_gbps(now), 0.92 * cfg.wire_gb_per_s);  // degraded
  EXPECT_LT(rx.loss_rate(), 0.01);                            // but lossless
}

TEST(Dctcp, RedRegimeCongestionResponse) {
  // C2M-ReadWrite at high load degrades P2M-Write; the NIC buffer backs up
  // and DCTCP reacts -- drops (paper: 0.02-0.36% loss) or, in our fluid
  // model's stable equilibria, persistent ECN marking. Either way the
  // network app's throughput collapses well below the wire rate.
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i)
    host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
  DctcpConfig cfg;
  TcpReceiver rx(host, cfg);
  host.run(us(400), us(1000));
  const Tick now = host.sim().now();
  EXPECT_TRUE(rx.loss_rate() > 0.0001 || rx.mark_fraction() > 0.05)
      << "loss=" << rx.loss_rate() << " marks=" << rx.mark_fraction();
  EXPECT_LT(rx.goodput_gbps(now), 0.7 * cfg.wire_gb_per_s);
}

TEST(Dctcp, CopyGeneratesC2MTraffic) {
  // The kernel copy must show up as C2M reads and writes at the memory
  // controller (the paper's explanation for TCP's different behavior).
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  DctcpConfig cfg;
  TcpReceiver rx(host, cfg);
  host.run(us(300), us(500));
  const auto m = host.collect();
  EXPECT_GT(m.mem_gbps[0], 5.0);  // C2M reads (socket buffer)
  EXPECT_GT(m.mem_gbps[3], 5.0);  // P2M writes (NIC DMA)
  EXPECT_GT(rx.copy_lfb_latency_ns(), 50.0);
}

}  // namespace
}  // namespace hostnet::net
