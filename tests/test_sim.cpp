// Unit tests for the event-driven simulation kernel.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "sim/calendar_queue.hpp"
#include "sim/event.hpp"
#include "sim/simulator.hpp"

namespace hostnet::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, SameTickFifoOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run_until(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RelativeScheduleUsesNow) {
  Simulator s;
  Tick fired_at = -1;
  s.schedule_at(100, [&] { s.schedule(50, [&] { fired_at = s.now(); }); });
  s.run_until(1000);
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 15);
  s.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule(1, chain);
  };
  s.schedule_at(0, chain);
  s.run_until(1000);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.events_executed(), 100u);
}

TEST(Simulator, BoundaryEventIncluded) {
  Simulator s;
  bool fired = false;
  s.schedule_at(10, [&] { fired = true; });
  s.run_until(10);
  EXPECT_TRUE(fired);
}

// -- calendar-queue specific coverage ---------------------------------------

TEST(Simulator, SameTickFifoAcrossSchedulePaths) {
  // Event 1 is scheduled for tick T while T is beyond the first L0 window
  // (L1 bucket path); event 2 is scheduled for the same T at runtime, after
  // the window has advanced (direct L0 append). Schedule order must hold.
  Simulator s;
  std::vector<int> order;
  const Tick T = 10000;  // window [8192, 12288) for the 4096-tick L0 window
  s.schedule_at(T, [&] { order.push_back(1); });
  s.schedule_at(9000, [&] { s.schedule_at(T, [&] { order.push_back(2); }); });
  s.run_until(20000);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, SameTickFifoAcrossBucketArrayWrap) {
  // Tick T sits beyond the whole calendar horizon at schedule time, so the
  // first two events take the overflow-map path; the third is scheduled for
  // the same T at runtime after the bucket array has wrapped around and the
  // overflow entry has migrated into L0. FIFO must follow schedule order:
  // 0 (setup), 2 (setup), then 1 (scheduled last, at runtime).
  Simulator s;
  std::vector<int> order;
  const Tick T = CalendarQueue::kHorizon + 12345;
  s.schedule_at(T, [&] { order.push_back(0); });
  s.schedule_at(T - 3, [&] { s.schedule(3, [&] { order.push_back(1); }); });
  s.schedule_at(T, [&] { order.push_back(2); });
  s.run_until(T);
  EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Simulator, StressOrderingMatchesStableSortByTick) {
  // 20k events over a range spanning many L0 windows, the L1 ring, and the
  // overflow map, with forced same-tick collisions. The firing order must
  // equal a stable sort of the schedule order by tick.
  Simulator s;
  Rng rng(42);
  struct Rec {
    Tick at;
    int seq;
  };
  std::vector<Rec> scheduled;
  std::vector<int> fired;
  const int n = 20000;
  Tick max_at = 0;
  for (int i = 0; i < n; ++i) {
    Tick at = static_cast<Tick>(rng.below(Tick(1) << 22));
    if (rng.chance(0.05)) at += CalendarQueue::kHorizon;  // overflow territory
    at &= ~Tick(63);                                      // force same-tick collisions
    max_at = std::max(max_at, at);
    scheduled.push_back({at, i});
    s.schedule_at(at, [&fired, i] { fired.push_back(i); });
  }
  s.run_until(max_at + 1);
  std::stable_sort(scheduled.begin(), scheduled.end(),
                   [](const Rec& a, const Rec& b) { return a.at < b.at; });
  ASSERT_EQ(fired.size(), scheduled.size());
  for (int i = 0; i < n; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], scheduled[static_cast<size_t>(i)].seq);
  EXPECT_EQ(s.events_executed(), static_cast<std::uint64_t>(n));
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Simulator, LongChainAcrossManyWindowWraps) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 50000) s.schedule(3, chain);  // crosses ~36 window boundaries
  };
  s.schedule_at(0, chain);
  s.run_until(ms(1));
  EXPECT_EQ(depth, 50000);
}

TEST(Simulator, LargeCaptureEventsFallBackToHeapAndRun) {
  Simulator s;
  std::array<std::uint64_t, 16> payload{};  // 128 B: over the inline capacity
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = i;
  std::uint64_t sum = 0;
  s.schedule_at(5, [payload, &sum] {
    for (auto v : payload) sum += v;
  });
  s.run_until(10);
  EXPECT_EQ(sum, 120u);
}

TEST(Event, InlineSmallCaptures) {
  int x = 0;
  Event a([&x] { ++x; });
  EXPECT_TRUE(a.inlined());
  Event b = std::move(a);
  b();
  EXPECT_EQ(x, 1);
}

TEST(Event, HeapFallbackForLargeCaptures) {
  std::array<std::uint64_t, 32> big{};
  big[31] = 7;
  Event e([big] { (void)big[0]; });
  EXPECT_FALSE(e.inlined());
  e();
}

TEST(Event, ReleasesCapturedResources) {
  auto sp = std::make_shared<int>(7);
  {
    // Owning captures are not trivially copyable, so they take the heap
    // path -- and their resources must still be released exactly once.
    Event e([sp] { (void)*sp; });
    EXPECT_FALSE(e.inlined());
    EXPECT_EQ(sp.use_count(), 2);
  }
  EXPECT_EQ(sp.use_count(), 1);

  // Moved-from events must not double-release on destruction.
  {
    Event e([sp] { (void)*sp; });
    Event f = std::move(e);
    EXPECT_EQ(sp.use_count(), 2);
  }
  EXPECT_EQ(sp.use_count(), 1);
}

}  // namespace
}  // namespace hostnet::sim
