// Unit tests for the event-driven simulation kernel.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace hostnet::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_FALSE(s.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.schedule_at(30, [&] { order.push_back(3); });
  s.schedule_at(10, [&] { order.push_back(1); });
  s.schedule_at(20, [&] { order.push_back(2); });
  s.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 100);
}

TEST(Simulator, SameTickFifoOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) s.schedule_at(5, [&order, i] { order.push_back(i); });
  s.run_until(5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, RelativeScheduleUsesNow) {
  Simulator s;
  Tick fired_at = -1;
  s.schedule_at(100, [&] { s.schedule(50, [&] { fired_at = s.now(); }); });
  s.run_until(1000);
  EXPECT_EQ(fired_at, 150);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator s;
  int fired = 0;
  s.schedule_at(10, [&] { ++fired; });
  s.schedule_at(20, [&] { ++fired; });
  s.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 15);
  s.run_until(25);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator s;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) s.schedule(1, chain);
  };
  s.schedule_at(0, chain);
  s.run_until(1000);
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(s.events_executed(), 100u);
}

TEST(Simulator, BoundaryEventIncluded) {
  Simulator s;
  bool fired = false;
  s.schedule_at(10, [&] { fired = true; });
  s.run_until(10);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace hostnet::sim
