// Bad fixture: malformed directives -> two bad-directive findings.
//   * skip() without the mandatory reason
//   * allow() naming a check that snapshot findings may never allow
//     (snapshot coverage is suppressed per-field with skip, never allow)
#include <cstdint>

namespace fixture {

class Sloppy {
 public:
  struct Snapshot {
    std::uint64_t n = 0;
  };

  void save_state(Snapshot& out) const { out.n = n_; }
  void load_state(const Snapshot& s) { n_ = s.n; }

 private:
  // hostnet-audit: skip(n_)
  std::uint64_t n_ = 0;
  // hostnet-audit: allow(snapshot-save-missing, snapshot findings cannot be allowed)
};

}  // namespace fixture
