// Bad fixture: the Snapshot fields are used asymmetrically -> three
// snapshot-asymmetry findings:
//   * `a` is written by save_state() but never read back by load_state()
//   * `b` is read by load_state() but never written by save_state()
//   * `c` is dead: neither saved nor restored
// (Both members are mentioned by both bodies, so no *-missing noise.)
#include <cstdint>

namespace fixture {

class Skewed {
 public:
  struct Snapshot {
    std::uint64_t a = 0;  // finding: snapshot-asymmetry (write-only)
    std::uint64_t b = 0;  // finding: snapshot-asymmetry (read-only)
    std::uint64_t c = 0;  // finding: snapshot-asymmetry (dead)
  };

  void save_state(Snapshot& out) const {
    out.a = a_ + b_;
  }

  void load_state(const Snapshot& s) {
    a_ = s.b;
    b_ = s.b;
  }

 private:
  std::uint64_t a_ = 0;
  std::uint64_t b_ = 0;
};

}  // namespace fixture
