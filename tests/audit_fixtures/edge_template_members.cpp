// Edge fixture: members with comma-carrying template types, a template
// member function, and constexpr class constants. The member extractor must
// find `rows_` and `order_` (and only them); the template function and the
// constants are not state. Everything is covered: no findings.
#include <cstdint>

namespace fixture {

class Table {
 public:
  struct Snapshot {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
    RingBuffer<std::uint32_t> order;
  };

  void save_state(Snapshot& out) const {
    out.rows = rows_;
    out.order = order_;
  }

  void load_state(const Snapshot& s) {
    rows_ = s.rows;
    order_ = s.order;
  }

  template <typename F>
  void for_each(F&& fn) const {
    for (const auto& r : rows_) fn(r);
  }

 private:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows_;
  RingBuffer<std::uint32_t> order_;
  static constexpr std::size_t kWays = 4;      // constexpr: not state
  static const std::uint64_t kMask = 0xffffu;  // static: not instance state
};

}  // namespace fixture
