// Bad fixture: the allow(pool-unregistered) directive is stale -- the pool
// it once excused is now registered, so the directive suppresses nothing ->
// one stale-allow finding.
#include <cstdint>

namespace fixture {

class Hub {
 public:
  flow::CreditPool& pool() { return pool_; }

 private:
  // hostnet-audit: allow(pool-unregistered, registered below; this allow is stale)
  flow::CreditPool pool_;
};

inline void wire(Hub& h, flow::DomainRegistry& registry) {
  registry.add("fixture.hub.pool", h.pool());
}

}  // namespace fixture
