// Bad fixture: `dropped_` feeds save_state() but load_state() never touches
// it -> one snapshot-load-missing finding (restore would keep stale state).
#include <cstdint>

namespace fixture {

class Counter {
 public:
  struct Snapshot {
    std::uint64_t hits = 0;
  };

  void save_state(Snapshot& out) const {
    out.hits = hits_ + dropped_;
  }

  void load_state(const Snapshot& s) {
    hits_ = s.hits;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t dropped_ = 0;  // finding: snapshot-load-missing
};

}  // namespace fixture
