// Bad fixture: suppression hygiene.
//   * skip(level_) is dead -- the member is saved and restored -> one
//     snapshot-dead-skip finding
//   * skip(phantom_) names no data member at all -> one snapshot-skip
//     finding
#include <cstdint>

namespace fixture {

class Gauge {
 public:
  struct Snapshot {
    std::uint64_t level = 0;
  };

  void save_state(Snapshot& out) const { out.level = level_; }
  void load_state(const Snapshot& s) { level_ = s.level; }

 private:
  // hostnet-audit: skip(level_, already saved and restored; this skip is dead)
  std::uint64_t level_ = 0;
  // hostnet-audit: skip(phantom_, names no member of this class)
};

}  // namespace fixture
