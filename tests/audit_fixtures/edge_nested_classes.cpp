// Edge fixture: nested class definitions inside an audited class. The
// nested type's members belong to the nested scope -- they must not be
// attributed to the outer class -- and a nested class with its own Snapshot
// is audited independently. Everything here is covered: no findings.
#include <cstdint>

namespace fixture {

class Outer {
 public:
  class Inner {
   public:
    struct Snapshot {
      std::uint32_t depth = 0;
    };
    void save_state(Snapshot& out) const { out.depth = depth_; }
    void load_state(const Snapshot& s) { depth_ = s.depth; }

   private:
    std::uint32_t depth_ = 0;
  };

  /// A nested plain struct (no Snapshot): its fields are not Outer members.
  struct Entry {
    std::uint64_t key = 0;
    std::uint64_t value = 0;
  };

  struct Snapshot {
    Inner::Snapshot inner;
    std::uint64_t epoch = 0;
  };

  void save_state(Snapshot& out) const {
    inner_.save_state(out.inner);
    out.epoch = epoch_;
  }

  void load_state(const Snapshot& s) {
    inner_.load_state(s.inner);
    epoch_ = s.epoch;
  }

 private:
  Inner inner_;
  std::uint64_t epoch_ = 0;
};

}  // namespace fixture
