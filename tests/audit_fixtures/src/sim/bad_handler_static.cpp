// Bad fixture (handler purity): this file's path puts it in a handler
// subsystem (src/sim), where hidden mutable state breaks checkpoint/fork
// determinism -- a forked host would share or diverge on it.
//   * one handler-global-state finding (namespace-scope mutable variable)
//   * one handler-static-state finding (function-local static counter)
// The const/constexpr variants below are immutable and exempt.
#include <cstdint>

namespace fixture {

std::uint64_t g_event_count = 0;  // finding: handler-global-state

inline std::uint64_t next_id() {
  static std::uint64_t counter = 0;  // finding: handler-static-state
  return ++counter;
}

inline std::uint64_t lookup_bias() {
  static const std::uint64_t kBias = 7;  // const: exempt
  return kBias;
}

constexpr std::uint64_t kLimit = 64;  // constexpr: exempt

}  // namespace fixture
