// Edge fixture: members gated behind #ifdef HOSTNET_CHECKED. The auditor
// blanks preprocessor lines but keeps the code between them, so a gated
// member is always audit-visible -- and its save/load mentions, equally
// gated, keep it covered. No findings.
#include <cstdint>

namespace fixture {

class Checked {
 public:
  struct Snapshot {
    std::uint64_t ticks = 0;
#ifdef HOSTNET_CHECKED
    std::uint64_t audits = 0;
#endif
  };

  void save_state(Snapshot& out) const {
    out.ticks = ticks_;
#ifdef HOSTNET_CHECKED
    out.audits = audits_;
#endif
  }

  void load_state(const Snapshot& s) {
    ticks_ = s.ticks;
#ifdef HOSTNET_CHECKED
    audits_ = s.audits;
#endif
  }

 private:
  std::uint64_t ticks_ = 0;
#ifdef HOSTNET_CHECKED
  std::uint64_t audits_ = 0;
#endif
};

}  // namespace fixture
