// Edge fixture: member declarations that span multiple source lines (the
// type on one line, the name on another; a template type broken across
// lines). Declarations end at `;`, not at newlines, so both members must be
// found. Everything is covered: no findings.
#include <cstdint>

namespace fixture {

class Wide {
 public:
  struct Snapshot {
    std::uint64_t issued = 0;
    std::uint64_t retired = 0;
  };

  void save_state(Snapshot& out) const {
    out.issued = issued_;
    out.retired = retired_;
  }

  void load_state(const Snapshot& s) {
    issued_ = s.issued;
    retired_ = s.retired;
  }

 private:
  std::uint64_t
      issued_ = 0;
  std::vector<
      std::pair<std::uint64_t, std::uint64_t>>
      retired_;
};

}  // namespace fixture
