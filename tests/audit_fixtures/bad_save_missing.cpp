// Bad fixture: `dropped_` is restored by load_state() but never appears in
// save_state() -> one snapshot-save-missing finding. (load_state() resets
// it, so only the save side is out of sync.)
#include <cstdint>

namespace fixture {

class Counter {
 public:
  struct Snapshot {
    std::uint64_t hits = 0;
  };

  void save_state(Snapshot& out) const {
    out.hits = hits_;
  }

  void load_state(const Snapshot& s) {
    hits_ = s.hits;
    dropped_ = 0;
  }

 private:
  std::uint64_t hits_ = 0;
  std::uint64_t dropped_ = 0;  // finding: snapshot-save-missing
};

}  // namespace fixture
