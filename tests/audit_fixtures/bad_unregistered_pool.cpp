// Bad fixture: a by-value flow::CreditPool that never reaches a
// DomainRegistry add()/add_interior() call anywhere in the scanned set ->
// one pool-unregistered finding. (Fixture runs scan only this file, so the
// absence of a registration here is the violation.)
#include <cstdint>

namespace fixture {

class Port {
 public:
  struct Snapshot {
    flow::CreditPool::Snapshot txq;
  };

  void save_state(Snapshot& out) const { txq_.save_state(out.txq); }
  void load_state(const Snapshot& s) { txq_.load_state(s.txq); }

  flow::CreditPool& txq_pool() { return txq_; }

 private:
  flow::CreditPool txq_;  // finding: pool-unregistered
};

}  // namespace fixture
