// Clean fixture for tools/hostnet_audit.py: every data member is mentioned
// by both save_state() and load_state() or carries an audited skip, the
// reference member is exempt automatically, and the by-value CreditPool
// reaches a DomainRegistry add() call through its accessor.
//
// Audit fixtures are parsed, never compiled, so the hostnet types are used
// by name without includes (the auditor is textual, like the lint).
#include <cstdint>

namespace fixture {

class Engine {
 public:
  struct Snapshot {
    std::uint64_t cycles = 0;
    std::uint64_t stalls = 0;
    flow::CreditPool::Snapshot pool;
  };

  void save_state(Snapshot& out) const {
    out.cycles = cycles_;
    out.stalls = stalls_;
    pool_.save_state(out.pool);
  }

  void load_state(const Snapshot& s) {
    cycles_ = s.cycles;
    stalls_ = s.stalls;
    pool_.load_state(s.pool);
  }

  flow::CreditPool& pool() { return pool_; }

 private:
  sim::Simulator& sim_;  // reference member: auto-exempt (construction wiring)
  // hostnet-audit: skip(cfg_, construction config; immutable after build)
  EngineConfig cfg_;
  std::uint64_t cycles_ = 0;
  std::uint64_t stalls_ = 0;
  flow::CreditPool pool_;
};

inline void wire(Engine& e, flow::DomainRegistry& registry) {
  registry.add("fixture.engine.pool", e.pool());
}

}  // namespace fixture
