// Bad fixture: a pluggable-TCP-stack-shaped class (net/tcp_stack.hpp) whose
// congestion-control filter state `min_rtt_window_` is in the Snapshot
// contract of neither save_state() nor load_state(). A restored stack would
// resume with an empty RTT filter and diverge from the warm host -- exactly
// the drift class the auditor exists to catch. Config members carry the
// skip() idiom the real stacks use. Findings: one snapshot-save-missing and
// one snapshot-load-missing, both on min_rtt_window_.
#include <array>
#include <cstdint>

namespace fixture {

class DelayStack {
 public:
  struct Snapshot {
    double cwnd = 16.0;
    std::uint32_t epochs = 0;
  };

  void save_state(Snapshot& out) const {
    out.cwnd = cwnd_;
    out.epochs = epochs_;
  }

  void load_state(const Snapshot& s) {
    cwnd_ = s.cwnd;
    epochs_ = s.epochs;
  }

 private:
  // hostnet-audit: skip(base_rtt_, construction-time config, not evolving state)
  std::int64_t base_rtt_ = 0;
  double cwnd_ = 16.0;
  std::uint32_t epochs_ = 0;
  std::array<std::int64_t, 16> min_rtt_window_{};  // findings: save+load missing
};

}  // namespace fixture
