// Unit + property tests for the DRAM model: address mapping and bank state.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "dram/address_map.hpp"
#include "dram/bank.hpp"
#include "dram/timing.hpp"

namespace hostnet::dram {
namespace {

AddressMap cl_map(BankHash hash = BankHash::kXorHash) {
  return AddressMap(2, 32, 8192, 256, hash, 8192);
}

TEST(AddressMap, CoordinatesWithinBounds) {
  const auto m = cl_map();
  for (std::uint64_t a = 0; a < (8ull << 20); a += 64) {
    const Coord c = m.decode(a);
    EXPECT_LT(c.channel, 2u);
    EXPECT_LT(c.bank, 32u);
    EXPECT_LT(c.col, 128u);
  }
}

TEST(AddressMap, Deterministic) {
  const auto m = cl_map();
  const Coord a = m.decode(0x123456780);
  const Coord b = m.decode(0x123456780);
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.bank, b.bank);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
}

TEST(AddressMap, DistinctLinesDistinctCells) {
  // No two distinct cachelines may map to the same (channel,bank,row,col).
  const auto m = cl_map();
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint32_t>> seen;
  for (std::uint64_t a = 0; a < (4ull << 20); a += 64) {
    const Coord c = m.decode(a);
    EXPECT_TRUE(seen.insert({c.channel, c.bank, c.row, c.col}).second)
        << "aliased address " << a;
  }
}

TEST(AddressMap, ChannelInterleaveGranularity) {
  const auto m = cl_map();
  // Within one 256 B chunk, the channel must not change.
  for (std::uint64_t base = 0; base < (1 << 20); base += 256) {
    const auto ch = m.decode(base).channel;
    for (std::uint64_t off = 64; off < 256; off += 64)
      EXPECT_EQ(m.decode(base + off).channel, ch);
  }
  // Adjacent chunks alternate channels.
  EXPECT_NE(m.decode(0).channel, m.decode(256).channel);
}

TEST(AddressMap, SequentialStreamHasRowLocality) {
  // A sequential stream changes (bank,row) only once per bank-interleave
  // chunk per channel: with 8 KB chunks, 128 lines per channel share a row.
  const auto m = cl_map();
  std::map<std::uint32_t, std::pair<std::uint32_t, std::uint64_t>> current;
  std::map<std::uint32_t, int> changes;
  const int lines = 1 << 16;
  for (int i = 0; i < lines; ++i) {
    const Coord c = m.decode(static_cast<std::uint64_t>(i) * 64);
    auto& cur = current[c.channel];
    if (cur != std::make_pair(c.bank, c.row)) {
      cur = {c.bank, c.row};
      ++changes[c.channel];
    }
  }
  // lines/2 per channel, 128 lines per row visit -> ~256 changes.
  for (auto& [ch, n] : changes) EXPECT_NEAR(n, lines / 2 / 128, 2);
}

TEST(AddressMap, XorHashDecorrelatesRegions) {
  // Streams 1 GB apart must not walk identical bank sequences in lockstep.
  const auto m = cl_map(BankHash::kXorHash);
  int same = 0;
  const int chunks = 256;
  for (int i = 0; i < chunks; ++i) {
    const std::uint64_t a = static_cast<std::uint64_t>(i) * 16384;
    const Coord ca = m.decode(a);
    const Coord cb = m.decode(a + (1ull << 30));
    if (ca.bank == cb.bank) ++same;
  }
  EXPECT_LT(same, chunks / 4);  // far below full correlation
}

TEST(AddressMap, LinearHashKeepsLockstep) {
  // The ablation baseline: 1 GB apart -> identical bank sequence.
  const auto m = cl_map(BankHash::kLinear);
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t a = static_cast<std::uint64_t>(i) * 16384;
    EXPECT_EQ(m.decode(a).bank, m.decode(a + (1ull << 30)).bank);
  }
}

TEST(AddressMap, BankCoverageIsUniformOverLargeRegion) {
  const auto m = cl_map();
  std::vector<int> counts(32, 0);
  const int n = 1 << 14;
  for (int i = 0; i < n; ++i)
    ++counts[m.decode(static_cast<std::uint64_t>(i) * 16384).bank];  // one per chunk
  for (int c : counts) EXPECT_NEAR(c, n / 32, n / 32 * 0.35);
}

struct MapParams {
  std::uint32_t channels;
  std::uint32_t banks;
  std::uint32_t bank_ilv;
};

class AddressMapProperty : public ::testing::TestWithParam<MapParams> {};

TEST_P(AddressMapProperty, NoAliasingAndBounds) {
  const auto p = GetParam();
  const AddressMap m(p.channels, p.banks, 8192, 256, BankHash::kXorHash, p.bank_ilv);
  std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint64_t, std::uint32_t>> seen;
  for (std::uint64_t a = 0; a < (2ull << 20); a += 64) {
    const Coord c = m.decode(a);
    ASSERT_LT(c.channel, p.channels);
    ASSERT_LT(c.bank, p.banks);
    ASSERT_LT(c.col, 8192u / 64);
    ASSERT_TRUE(seen.insert({c.channel, c.bank, c.row, c.col}).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, AddressMapProperty,
                         ::testing::Values(MapParams{2, 32, 8192}, MapParams{4, 32, 8192},
                                           MapParams{2, 16, 8192}, MapParams{2, 32, 256},
                                           MapParams{4, 16, 1024}, MapParams{2, 32, 2048}));

// ---------------------------------------------------------------------------
// Bank state machine
// ---------------------------------------------------------------------------

TEST(Bank, FirstAccessIsMissEmpty) {
  Bank b;
  Timing t;
  EXPECT_EQ(b.prepare(0, 5, t), RowResult::kMissEmpty);
  EXPECT_EQ(b.ready_at(), t.t_rcd);  // ACT only
  EXPECT_TRUE(b.has_open_row());
  EXPECT_EQ(b.open_row(), 5u);
}

TEST(Bank, SameRowIsHit) {
  Bank b;
  Timing t;
  b.prepare(0, 5, t);
  b.column_access(b.ready_at(), false, t);
  const Tick now = b.ready_at() + ns(10);
  EXPECT_EQ(b.prepare(now, 5, t), RowResult::kHit);
  EXPECT_LE(b.ready_at(), now + t.t_rcd);
}

TEST(Bank, DifferentRowIsConflictAndPaysPrecharge) {
  Bank b;
  Timing t;
  t.t_page_close_idle = ms(1);  // disable the idle-close for this test
  b.prepare(0, 5, t);
  b.column_access(b.ready_at(), false, t);
  const Tick now = b.ready_at() + ns(1);
  EXPECT_EQ(b.prepare(now, 6, t), RowResult::kMissConflict);
  // Conflict pays at least tRP + tRCD after tRAS expiry.
  EXPECT_GE(b.ready_at(), t.t_ras + t.t_rp + t.t_rcd);
}

TEST(Bank, RespectsRowOpenMinimumTime) {
  Bank b;
  Timing t;
  t.t_page_close_idle = ms(1);
  b.prepare(0, 1, t);  // activated at 0
  // Immediately conflicting: precharge cannot start before tRAS.
  b.prepare(b.ready_at(), 2, t);
  EXPECT_GE(b.ready_at(), t.t_ras + t.t_rp + t.t_rcd);
}

TEST(Bank, WriteRecoveryDelaysPrecharge) {
  Bank b;
  Timing t;
  t.t_page_close_idle = ms(1);
  b.prepare(0, 1, t);
  const Tick w = std::max(b.ready_at(), t.t_ras);
  b.column_access(w, true, t);  // write at time w
  b.prepare(w + ns(1), 2, t);
  EXPECT_GE(b.ready_at(), w + t.t_wr + t.t_rp + t.t_rcd);
}

TEST(Bank, IdleRowIsClosedByPagePolicy) {
  Bank b;
  Timing t;  // default t_page_close_idle = 100 ns
  b.prepare(0, 5, t);
  b.column_access(b.ready_at(), false, t);
  const Tick idle = b.ready_at() + t.t_page_close_idle + ns(1);
  // Same row after the idle timeout: row was closed -> ACT, not a hit,
  // and no precharge penalty (closed in the background).
  EXPECT_EQ(b.prepare(idle, 5, t), RowResult::kMissEmpty);
  EXPECT_LE(b.ready_at(), idle + t.t_rcd);
}

TEST(Bank, BusyRowKeptOpenByAccesses) {
  Bank b;
  Timing t;
  b.prepare(0, 5, t);
  Tick now = b.ready_at();
  for (int i = 0; i < 10; ++i) {
    b.column_access(now, false, t);
    now += t.t_page_close_idle / 2;  // never idle past the threshold
    EXPECT_EQ(b.prepare(now, 5, t), RowResult::kHit) << i;
  }
}

}  // namespace
}  // namespace hostnet::dram
