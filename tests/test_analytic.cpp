// Tests for the section-6 analytical formula: algebra against hand-computed
// values, and end-to-end accuracy against the simulator.
#include <gtest/gtest.h>

#include "analytic/formula.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::analytic {
namespace {

dram::Timing cl_timing() { return dram::ddr4_2933(); }

TEST(Formula, ReadQueueingDelayHandComputed) {
  FormulaInputs in;
  in.o_rpq = 10.0;
  in.switches = 100;
  in.lines_read = 1000;
  in.lines_written = 500;
  in.act_read = 50;
  in.pre_conflict_read = 20;
  const auto b = read_queueing_delay(in, cl_timing());
  // Switching: 10 * (100/1000) * 10 ns = 10 ns
  EXPECT_NEAR(b.switching_ns, 10.0, 1e-9);
  // Write HoL: 10 * (500/1000) * 2.73 = 13.65 ns
  EXPECT_NEAR(b.hol_other_ns, 13.65, 1e-9);
  // Read HoL: 9 * 2.73 = 24.57 ns
  EXPECT_NEAR(b.hol_same_ns, 24.57, 1e-9);
  // Top of queue: (50/1000)*13.75 + (20/1000)*13.75 = 0.9625 ns
  EXPECT_NEAR(b.top_of_queue_ns, 0.9625, 1e-9);
  EXPECT_NEAR(b.total_ns(), 10.0 + 13.65 + 24.57 + 0.9625, 1e-9);
}

TEST(Formula, WriteWaitingTimeHandComputed) {
  FormulaInputs in;
  in.n_waiting = 50.0;
  in.switches = 200;
  in.lines_written = 2000;
  in.lines_read = 3000;
  in.act_write = 100;
  in.pre_conflict_write = 40;
  const auto b = write_waiting_time(in, cl_timing());
  // Switching: 50 * (200/2000) * tRTW(10) = 50 ns
  EXPECT_NEAR(b.switching_ns, 50.0, 1e-9);
  // Read HoL: 50 * (3000/2000) * 2.73 = 204.75 ns
  EXPECT_NEAR(b.hol_other_ns, 204.75, 1e-9);
  // Write HoL: 49 * 2.73 = 133.77 ns
  EXPECT_NEAR(b.hol_same_ns, 133.77, 1e-9);
  EXPECT_NEAR(b.top_of_queue_ns, (100.0 / 2000) * 13.75 + (40.0 / 2000) * 13.75, 1e-9);
}

TEST(Formula, WriteDomainLatencyGatedByPfill) {
  FormulaInputs in;
  in.n_waiting = 50.0;
  in.lines_written = 1000;
  in.lines_read = 1000;
  in.p_fill_wpq = 0.0;
  EXPECT_NEAR(write_domain_latency_ns(300.0, in, cl_timing()), 300.0, 1e-9);
  in.p_fill_wpq = 1.0;
  const double full = write_domain_latency_ns(300.0, in, cl_timing());
  in.p_fill_wpq = 0.5;
  const double half = write_domain_latency_ns(300.0, in, cl_timing());
  EXPECT_NEAR(half - 300.0, (full - 300.0) / 2, 1e-9);
}

TEST(Formula, EmptyInputsYieldConstants) {
  FormulaInputs in;  // all zeros
  EXPECT_NEAR(read_domain_latency_ns(70.0, in, cl_timing()), 70.0, 1e-9);
  EXPECT_NEAR(write_domain_latency_ns(300.0, in, cl_timing()), 300.0, 1e-9);
}

TEST(Formula, ThroughputEstimateIsDomainLaw) {
  EXPECT_NEAR(estimate_throughput_gbps(12, 70), 12.0 * 64 / 70, 1e-9);
  EXPECT_EQ(estimate_throughput_gbps(12, 0), 0.0);
}

TEST(Formula, InputsFromMetricsScalePerChannel) {
  core::Metrics m;
  m.channels = 2;
  m.mc_lines_read = 1000;
  m.mc_lines_written = 500;
  m.mc_switch_cycles = 10;
  m.mc_act_read = 100;
  m.mc_pre_conflict_read = 40;
  m.n_waiting = 80;
  m.avg_rpq_occupancy = 7;
  m.wpq_full_fraction = 0.4;
  const auto in = inputs_from_metrics(m);
  EXPECT_NEAR(in.lines_read, 500, 1e-9);
  EXPECT_NEAR(in.lines_written, 250, 1e-9);
  EXPECT_NEAR(in.switches, 5, 1e-9);
  EXPECT_NEAR(in.n_waiting, 40, 1e-9);
  EXPECT_NEAR(in.o_rpq, 7, 1e-9);       // already a per-channel average
  EXPECT_NEAR(in.p_fill_wpq, 0.4, 1e-9);
  // Ratios are channel-count invariant.
  EXPECT_NEAR(in.act_read / in.lines_read, 0.1, 1e-9);
}

TEST(Formula, ChaCorrectionOnlyWhenRequested) {
  core::Metrics m;
  m.channels = 2;
  m.c2m_cores = 1;
  m.c2m_read.credits_in_use = 12;  // the formula's credits source (registry)
  m.lfb_avg_occupancy = 12;        // legacy alias, kept in sync by collect()
  m.mc_lines_read = 1000;
  m.cha_admission_wait_ns[0] = 50.0;  // C2M-Read
  const Constants c;
  const auto plain = estimate(DomainKind::kC2MRead, m, cl_timing(), c);
  const auto fixed = estimate(DomainKind::kC2MRead, m, cl_timing(), c,
                              {.add_cha_admission_delay = true});
  EXPECT_EQ(plain.cha_admission_delay_ns, 0.0);
  EXPECT_NEAR(fixed.cha_admission_delay_ns, 50.0, 1e-9);
  EXPECT_GT(plain.throughput_gbps, fixed.throughput_gbps);
}

// ---------------------------------------------------------------------------
// End-to-end: formula vs simulator (the Figure 11 claim).
// ---------------------------------------------------------------------------

core::RunOptions fast() {
  core::RunOptions o;
  o.warmup = us(200);
  o.measure = us(800);
  return o;
}

TEST(FormulaAccuracy, Quadrant1C2MWithinBand) {
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 4;
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(hc, workloads::p2m_region());
  const auto m = core::run_workloads(hc, c2m, p2m, fast()).metrics;
  Constants c;
  c.c2m_read_ns = 69.0;
  const auto e = estimate(DomainKind::kC2MRead, m, hc.mc.timing, c);
  EXPECT_NEAR(relative_error_pct(e.throughput_gbps, m.c2m_read.throughput_gbps), 0.0, 12.0);
}

TEST(FormulaAccuracy, Quadrant1P2MWithinBand) {
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 4;
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(hc, workloads::p2m_region());
  const auto m = core::run_workloads(hc, c2m, p2m, fast()).metrics;
  Constants c;
  c.p2m_write_ns = 302.0;
  const auto e = estimate(DomainKind::kP2MWrite, m, hc.mc.timing, c);
  EXPECT_NEAR(relative_error_pct(e.throughput_gbps, m.p2m_write.throughput_gbps), 0.0, 10.0);
}

TEST(FormulaAccuracy, Quadrant3ChaCorrectionReducesError) {
  // The paper's Figure 11 story: beyond 4 C2M cores the plain formula
  // overestimates badly; adding the measured CHA admission delay fixes it.
  const auto hc = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  c2m.cores = 6;
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(hc, workloads::p2m_region());
  const auto m = core::run_workloads(hc, c2m, p2m, fast()).metrics;
  Constants c;
  c.c2m_read_ns = 69.0;
  const auto plain = estimate(DomainKind::kC2MReadWrite, m, hc.mc.timing, c);
  const auto fixed = estimate(DomainKind::kC2MReadWrite, m, hc.mc.timing, c,
                              {.add_cha_admission_delay = true});
  const double e_plain =
      relative_error_pct(plain.throughput_gbps, m.c2m_read.throughput_gbps);
  const double e_fixed =
      relative_error_pct(fixed.throughput_gbps, m.c2m_read.throughput_gbps);
  EXPECT_GT(e_plain, 25.0);
  EXPECT_LT(std::abs(e_fixed), 20.0);
  EXPECT_LT(std::abs(e_fixed), std::abs(e_plain));
}

}  // namespace
}  // namespace hostnet::analytic
