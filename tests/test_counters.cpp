// Tests for the simulated PMU primitives (stations, MC counters).
#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "common/rng.hpp"
#include "counters/mc_counters.hpp"
#include "counters/station.hpp"

namespace hostnet::counters {
namespace {

TEST(LatencyStation, DirectLatencyMean) {
  LatencyStation s;
  s.reset(0);
  s.enter(0);
  s.leave(ns(100), 0);
  s.enter(ns(100));
  s.leave(ns(300), ns(100));
  EXPECT_DOUBLE_EQ(s.mean_latency_ns(), 150.0);
  EXPECT_EQ(s.completions(), 2u);
}

TEST(LatencyStation, LittlesLawMatchesDirectForSteadyStream) {
  // Deterministic D/D/1-ish stream: arrivals every 10 ns, service 40 ns,
  // 4 in flight steady-state. Little's law: L = O/R must equal 40 ns.
  LatencyStation s;
  s.reset(0);
  std::vector<Tick> entries;
  Tick now = 0;
  for (int i = 0; i < 1000; ++i) {
    now = i * ns(10);
    s.enter(now);
    entries.push_back(now);
    if (i >= 4) s.leave(now, entries[static_cast<size_t>(i - 4)]);
  }
  const Tick end = now;
  EXPECT_NEAR(s.mean_latency_ns(), 40.0, 0.5);
  EXPECT_NEAR(s.littles_latency_ns(end), 40.0, 2.0);
}

TEST(LatencyStation, OccupancyTracksEnterLeave) {
  LatencyStation s;
  s.reset(0);
  s.enter(0);
  s.enter(0);
  EXPECT_EQ(s.occupancy(), 2);
  s.leave(ns(10), 0);
  EXPECT_EQ(s.occupancy(), 1);
  EXPECT_EQ(s.max_occupancy(), 2);
}

class LittlesLawProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LittlesLawProperty, RandomArrivalsAgree) {
  // Random arrivals/services: Little's-law latency and direct mean latency
  // must agree for any traffic pattern once the window is long.
  Rng rng(GetParam());
  LatencyStation s;
  s.reset(0);
  std::deque<Tick> inflight;
  Tick now = 0;
  for (int i = 0; i < 20000; ++i) {
    now += static_cast<Tick>(rng.below(ns(20)));
    if (!inflight.empty() && rng.chance(0.5)) {
      s.leave(now, inflight.front());
      inflight.pop_front();
    } else {
      s.enter(now);
      inflight.push_back(now);
    }
  }
  while (!inflight.empty()) {
    now += static_cast<Tick>(rng.below(ns(20)));
    s.leave(now, inflight.front());
    inflight.pop_front();
  }
  EXPECT_NEAR(s.littles_latency_ns(now) / s.mean_latency_ns(), 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LittlesLawProperty, ::testing::Values(1, 2, 3, 17, 99));

TEST(McChannelCounters, RowResultAccounting) {
  McChannelCounters c(32, 24);
  c.on_row_result(mem::Op::kRead, true, false);
  c.on_row_result(mem::Op::kRead, false, false);   // miss-empty: ACT
  c.on_row_result(mem::Op::kRead, false, true);    // conflict: ACT + PRE
  c.on_row_result(mem::Op::kWrite, false, true);
  EXPECT_EQ(c.row_hit_read, 1u);
  EXPECT_EQ(c.act_read, 2u);
  EXPECT_EQ(c.pre_conflict_read, 1u);
  EXPECT_EQ(c.act_write, 1u);
  EXPECT_EQ(c.pre_conflict_write, 1u);
  EXPECT_NEAR(c.row_miss_ratio_read(), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(c.row_miss_ratio_write(), 1.0, 1e-9);
}

TEST(McChannelCounters, BankDeviationSampling) {
  McChannelCounters c(8, 24);
  c.sample_every = 100;
  c.sample_banks = 4;
  // Concentrate all reads on bank 0: deviation = max/mean = 100/(100/4) = 4.
  for (int i = 0; i < 100; ++i) c.on_read_issued(0);
  ASSERT_EQ(c.bank_deviation.size(), 1u);
  EXPECT_NEAR(c.bank_deviation.values()[0], 4.0, 1e-9);
  // Evenly spread over the 4 sampled banks: deviation 1.
  for (int i = 0; i < 100; ++i) c.on_read_issued(static_cast<std::uint32_t>(i % 4));
  ASSERT_EQ(c.bank_deviation.size(), 2u);
  EXPECT_NEAR(c.bank_deviation.values()[1], 1.0, 1e-9);
}

TEST(McChannelCounters, ResetClearsEverything) {
  McChannelCounters c(8, 24);
  c.on_read_issued(1);
  c.on_row_result(mem::Op::kRead, false, true);
  c.lines_written = 5;
  c.switch_cycles = 2;
  c.reset(ns(100));
  EXPECT_EQ(c.lines_read, 0u);
  EXPECT_EQ(c.lines_written, 0u);
  EXPECT_EQ(c.switch_cycles, 0u);
  EXPECT_EQ(c.act_read, 0u);
  EXPECT_EQ(c.bank_deviation.size(), 0u);
}

}  // namespace
}  // namespace hostnet::counters
