// Integration tests on the assembled host: calibration, conservation laws,
// determinism, and metric self-consistency.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "workloads/workloads.hpp"

namespace hostnet::core {
namespace {

RunOptions fast() {
  RunOptions o;
  o.warmup = us(100);
  o.measure = us(400);
  return o;
}

TEST(HostSystem, SequentialReadsSaturateMemoryBandwidth) {
  // Table 1 calibration: "a simple sequential read microbenchmark saturates
  // more than 90% of theoretical maximum memory bandwidth".
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  for (std::uint32_t i = 0; i < 6; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.run(us(100), us(500));
  const Metrics m = host.collect();
  EXPECT_GT(m.total_mem_gbps(), 0.90 * hc.dram_peak_gb_per_s());
  EXPECT_LE(m.total_mem_gbps(), hc.dram_peak_gb_per_s());
}

TEST(HostSystem, UnloadedLatenciesMatchPaper) {
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  host.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
  host.run(us(100), us(300));
  const Metrics m = host.collect();
  EXPECT_NEAR(m.lfb_latency_ns, 70.0, 5.0);          // ~70 ns C2M-Read
  EXPECT_EQ(m.lfb_max_occupancy, 12);                 // 10-12 LFB credits
}

TEST(HostSystem, FlowConservationLinesInEqualLinesOut) {
  // Over a long window, DRAM-serviced lines match core-completed lines
  // (plus bounded in-flight slack).
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  for (std::uint32_t i = 0; i < 3; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.run(us(100), us(500));
  const Metrics m = host.collect();
  EXPECT_NEAR(static_cast<double>(m.mc_lines_read),
              static_cast<double>(m.c2m_lines_read), 3 * 12 + 64);
}

TEST(HostSystem, MemoryBandwidthByClassSumsToTotal) {
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(0)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  host.run(us(100), us(400));
  const Metrics m = host.collect();
  EXPECT_GT(m.mem_gbps[0], 0.0);  // C2M reads
  EXPECT_GT(m.mem_gbps[1], 0.0);  // C2M writes
  EXPECT_GT(m.mem_gbps[3], 0.0);  // P2M writes
  EXPECT_NEAR(m.c2m_mem_gbps() + m.p2m_mem_gbps(), m.total_mem_gbps(), 1e-9);
}

TEST(HostSystem, DeterministicAcrossRuns) {
  const HostConfig hc = cascade_lake();
  auto run_once = [&] {
    HostSystem host(hc, 42);
    host.add_core(workloads::gapbs_pr(workloads::c2m_shared_region()));
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
    host.run(us(100), us(300));
    return host.collect();
  };
  const Metrics a = run_once();
  const Metrics b = run_once();
  EXPECT_EQ(a.mc_lines_read, b.mc_lines_read);
  EXPECT_EQ(a.mc_lines_written, b.mc_lines_written);
  EXPECT_DOUBLE_EQ(a.lfb_latency_ns, b.lfb_latency_ns);
  EXPECT_DOUBLE_EQ(a.p2m_dev_gbps, b.p2m_dev_gbps);
}

TEST(HostSystem, SeedChangesRandomWorkloadDetails) {
  const HostConfig hc = cascade_lake();
  auto lines = [&](std::uint64_t seed) {
    HostSystem host(hc, seed);
    host.add_core(workloads::gapbs_pr(workloads::c2m_shared_region()));
    host.run(us(50), us(200));
    return host.collect().mc_lines_read;
  };
  EXPECT_NE(lines(1), lines(2));
}

TEST(HostSystem, LittlesLawConsistencyAcrossTheStack) {
  // PMU-style (occupancy/rate) latency must agree with directly measured
  // per-request latency -- the validity condition for the paper's entire
  // measurement methodology.
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  host.run(us(200), us(600));
  const Metrics m = host.collect();
  EXPECT_NEAR(m.lfb_littles_latency_ns / m.lfb_latency_ns, 1.0, 0.05);
}

TEST(HostSystem, DomainThroughputLawHolds) {
  // T <= C*64/L for every observed domain (the paper's central equation).
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  host.run(us(100), us(500));
  const Metrics m = host.collect();
  // C2M-Read: credits = 12 per core x 4 cores.
  EXPECT_LE(m.c2m_read.throughput_gbps,
            1.02 * max_throughput_gbps(4 * 12, m.c2m_read.latency_ns));
  // P2M-Write: credits = IIO write buffer.
  EXPECT_LE(m.p2m_write.throughput_gbps,
            1.02 * max_throughput_gbps(hc.iio.write_credits, m.p2m_write.latency_ns));
}

TEST(HostSystem, RunMoreExtendsWindow) {
  const HostConfig hc = cascade_lake();
  HostSystem host(hc);
  host.add_core(workloads::c2m_read(workloads::c2m_core_region(0)));
  host.run(us(50), us(100));
  const auto a = host.collect().c2m_lines_read;
  host.run_more(us(100));
  const auto b = host.collect().c2m_lines_read;
  EXPECT_GT(b, a);
}

TEST(HostSystem, IceLakePresetScalesBandwidth) {
  const HostConfig hc = ice_lake();
  EXPECT_NEAR(hc.dram_peak_gb_per_s(), 102.4, 0.5);
  HostSystem host(hc);
  for (std::uint32_t i = 0; i < 16; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.run(us(100), us(300));
  const Metrics m = host.collect();
  EXPECT_GT(m.total_mem_gbps(), 0.85 * hc.dram_peak_gb_per_s());
}

TEST(Experiment, DefaultRunOptionsHonorEnv) {
  setenv("HOSTNET_MEASURE_US", "123", 1);
  setenv("HOSTNET_WARMUP_US", "45", 1);
  const RunOptions o = default_run_options();
  EXPECT_EQ(o.measure, us(123));
  EXPECT_EQ(o.warmup, us(45));
  unsetenv("HOSTNET_MEASURE_US");
  unsetenv("HOSTNET_WARMUP_US");
}

TEST(Experiment, PerCoreRegionsAreDisjoint) {
  C2MSpec spec;
  spec.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  spec.cores = 4;
  const HostConfig hc = cascade_lake();
  const auto out = run_workloads(hc, spec, std::nullopt, fast());
  EXPECT_EQ(out.metrics.c2m_cores, 4u);
  EXPECT_GT(out.c2m_score, 0.0);
}

}  // namespace
}  // namespace hostnet::core
