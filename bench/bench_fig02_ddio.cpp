// Figure 2: DDIO can worsen C2M performance degradation when the P2M
// working set does not fit in the cache (Cascade Lake; Redis and GAPBS
// colocated with FIO sequential reads, DDIO on vs off).
//
// Mechanism as modeled (DESIGN.md): with DDIO on, inbound DMA writes
// allocate in the LLC's DDIO ways and the *evicted victims'* write-backs
// reach memory in hashed-set order, destroying the DMA stream's row
// locality and inflating MC queueing -- which hurts the colocated C2M app.
// P2M bandwidth itself is unchanged (same write volume), matching the
// paper's Figure 2(c,d).
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_app(const char* title, const core::C2MSpec& base,
             const std::vector<std::uint32_t>& cores) {
  auto opt = core::default_run_options();
  // DDIO's victim stream needs the DDIO ways warmed (4 MB at 14 GB/s).
  opt.warmup = std::max(opt.warmup, us(600));

  banner(title);
  Table t({"C2M cores", "C2M degr (DDIO on)", "C2M degr (DDIO off)", "P2M degr (on)",
           "P2M degr (off)", "P2M mem GB/s (on/off)"});
  for (auto n : cores) {
    core::C2MSpec c2m = base;
    c2m.cores = n;
    std::array<core::ColocationOutcome, 2> out;
    std::array<double, 2> p2m_bw{};
    for (int ddio = 0; ddio < 2; ++ddio) {
      core::HostConfig host = core::cascade_lake();
      host.cha.ddio = ddio == 1;
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
      out[ddio] = core::run_colocation(host, c2m, p2m, opt);
      p2m_bw[ddio] = out[ddio].colo.metrics.p2m_mem_gbps();
    }
    t.row({std::to_string(n), Table::num(out[1].c2m_degradation()) + "x",
           Table::num(out[0].c2m_degradation()) + "x",
           Table::num(out[1].p2m_degradation()) + "x",
           Table::num(out[0].p2m_degradation()) + "x",
           Table::num(p2m_bw[1], 1) + " / " + Table::num(p2m_bw[0], 1)});
  }
  t.print();
}

}  // namespace

int main() {
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  {
    core::C2MSpec redis;
    redis.workload = workloads::redis_read(workloads::c2m_core_region(0));
    run_app("Fig 2(a,c): Redis + P2M-Write, DDIO on vs off (Cascade Lake)", redis, cores);
  }
  {
    core::C2MSpec gapbs;
    gapbs.workload = workloads::gapbs_pr(workloads::c2m_shared_region());
    gapbs.per_core_region = false;
    run_app("Fig 2(b,d): GAPBS-PR + P2M-Write, DDIO on vs off (Cascade Lake)", gapbs,
            cores);
  }
  return 0;
}
