// Figures 15-17 (Appendix B): application results with all C2M/P2M
// read/write combinations, DDIO on vs off (Cascade Lake).
//
//   Fig 15: Redis-Write and GAPBS-BC (C2M-ReadWrite) + P2M-Write
//   Fig 16: Redis-Read and GAPBS-PR (C2M-Read)      + P2M-Read
//   Fig 17: Redis-Write and GAPBS-BC (C2M-ReadWrite) + P2M-Read
//
// Expected trends: C2M apps degrade, P2M is unaffected; DDIO worsens C2M
// degradation only when colocated with P2M-Write (LLC allocations /
// evictions); with P2M-Read, DDIO on/off is identical.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_combo(const char* title, const core::C2MSpec& base, bool p2m_writes) {
  auto opt = core::default_run_options();
  opt.warmup = std::max(opt.warmup, us(600));
  const std::vector<std::uint32_t> cores{1, 2, 4, 6};

  banner(title);
  Table t({"C2M cores", "C2M degr (DDIO on)", "C2M degr (DDIO off)", "P2M degr (on)",
           "P2M degr (off)"});
  for (auto n : cores) {
    core::C2MSpec c2m = base;
    c2m.cores = n;
    std::array<core::ColocationOutcome, 2> out;
    for (int ddio = 0; ddio < 2; ++ddio) {
      core::HostConfig host = core::cascade_lake();
      host.cha.ddio = ddio == 1;
      core::P2MSpec p2m;
      p2m.storage = p2m_writes ? workloads::fio_p2m_write(host, workloads::p2m_region())
                               : workloads::fio_p2m_read(host, workloads::p2m_region());
      out[ddio] = core::run_colocation(host, c2m, p2m, opt);
    }
    t.row({std::to_string(n), Table::num(out[1].c2m_degradation()) + "x",
           Table::num(out[0].c2m_degradation()) + "x",
           Table::num(out[1].p2m_degradation()) + "x",
           Table::num(out[0].p2m_degradation()) + "x"});
  }
  t.print();
}

core::C2MSpec redis_write_spec() {
  core::C2MSpec s;
  s.name = "Redis-Write";
  s.workload = workloads::redis_write(workloads::c2m_core_region(0));
  return s;
}

core::C2MSpec redis_read_spec() {
  core::C2MSpec s;
  s.name = "Redis-Read";
  s.workload = workloads::redis_read(workloads::c2m_core_region(0));
  return s;
}

core::C2MSpec gapbs_bc_spec() {
  core::C2MSpec s;
  s.name = "GAPBS-BC";
  s.workload = workloads::gapbs_bc(workloads::c2m_shared_region());
  s.per_core_region = false;
  return s;
}

core::C2MSpec gapbs_pr_spec() {
  core::C2MSpec s;
  s.name = "GAPBS-PR";
  s.workload = workloads::gapbs_pr(workloads::c2m_shared_region());
  s.per_core_region = false;
  return s;
}

}  // namespace

int main() {
  run_combo("Fig 15: Redis-Write (C2M-RW) + P2M-Write", redis_write_spec(), true);
  run_combo("Fig 15: GAPBS-BC (C2M-RW) + P2M-Write", gapbs_bc_spec(), true);
  run_combo("Fig 16: Redis-Read (C2M-Read) + P2M-Read", redis_read_spec(), false);
  run_combo("Fig 16: GAPBS-PR (C2M-Read) + P2M-Read", gapbs_pr_spec(), false);
  run_combo("Fig 17: Redis-Write (C2M-RW) + P2M-Read", redis_write_spec(), false);
  run_combo("Fig 17: GAPBS-BC (C2M-RW) + P2M-Read", gapbs_bc_spec(), false);
  return 0;
}
