// Cross-generation check (paper section 2.1): the contention regimes are
// "reproducible across multiple generations of servers with different
// processors, different memory bandwidth to core count ratios, and
// different configurations". Runs quadrants 1 and 3 on the Ice Lake preset
// (4 channels, 102.4 GB/s, ~28 GB/s PCIe) and on a hypothetical
// next-generation host with an even lower memory-to-PCIe ratio.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_host(const core::HostConfig& host, const std::vector<std::uint32_t>& cores) {
  const auto opt = core::default_run_options();
  for (bool c2m_writes : {false, true}) {
    core::C2MSpec c2m;
    c2m.workload = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                              : workloads::c2m_read(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

    banner(host.name + (c2m_writes ? ": quadrant 3" : ": quadrant 1"));
    Table t({"C2M cores", "C2M degr", "P2M degr", "mem util", "regime"});
    const auto sweep = core::sweep_c2m_cores(host, c2m, p2m, cores, opt);
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& o = sweep[i];
      t.row({std::to_string(cores[i]), Table::num(o.c2m_degradation()) + "x",
             Table::num(o.p2m_degradation()) + "x",
             Table::pct(o.colo.metrics.total_mem_gbps() / host.dram_peak_gb_per_s() * 100),
             core::to_string(o.regime())});
    }
    t.print();
  }
}

}  // namespace

int main() {
  run_host(core::ice_lake(), {4, 8, 16, 24, 28});

  // The trend the paper warns about: peripheral bandwidth growing faster
  // than memory bandwidth. Same DRAM as Cascade Lake, doubled PCIe.
  core::HostConfig next = core::cascade_lake();
  next.name = "imbalanced-next-gen (2ch DRAM, 28 GB/s PCIe)";
  next.pcie_write_gb_per_s = 28.0;
  next.iio.write_credits = 184;
  run_host(next, {1, 2, 3, 4});
  std::printf("\nWith PCIe ~60%% of DRAM bandwidth, the red regime arrives at a\n"
              "single C2M core: the resource-imbalance trend of section 1.\n");
  return 0;
}
