// Simulator micro-benchmarks (google-benchmark): event-kernel throughput,
// DRAM decode, full-host simulation speed, and parallel sweep scaling.
// These guard against performance regressions that would make the figure
// benches impractical.
//
// Before/after coverage for the calendar-queue kernel: LegacySimulator below
// is a faithful copy of the seed kernel (binary heap of (time, seq,
// std::function) entries), so BM_EventKernelLegacyHeap vs BM_EventKernel is
// a permanent apples-to-apples comparison on the same closure shape.
//
// Run `ctest -R bench_sim_perf_json` (or this binary with
// --benchmark_out=BENCH_sim_perf.json --benchmark_out_format=json) to emit
// machine-readable results for perf tracking across PRs.
#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <new>
#include <queue>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "dram/address_map.hpp"
#include "fleet/runner.hpp"
#include "fleet/scenario.hpp"
#include "mc/channel.hpp"
#include "net/dctcp.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

// ---- allocation-counting probe ---------------------------------------------
// Counts every global operator new so benchmarks can report allocations per
// event. Only deltas taken inside the measured loops are reported.

namespace {
std::atomic<std::uint64_t> g_allocs{0};

std::uint64_t alloc_count() { return g_allocs.load(std::memory_order_relaxed); }
}  // namespace

// GCC flags free() inside a replaced operator delete as mismatched; the
// pairing is correct (our operator new mallocs), so silence it here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace {

using namespace hostnet;

// ---- the seed event kernel, kept as the "before" baseline ------------------

class LegacySimulator {
 public:
  using Event = std::function<void()>;

  Tick now() const { return now_; }
  void schedule_at(Tick at, Event fn) { queue_.push(Entry{at, next_seq_++, std::move(fn)}); }
  void schedule(Tick delay, Event fn) { schedule_at(now_ + delay, std::move(fn)); }
  std::uint64_t events_executed() const { return executed_; }

  bool step() {
    if (queue_.empty()) return false;
    auto& top = const_cast<Entry&>(queue_.top());
    Tick at = top.at;
    Event fn = std::move(top.fn);
    queue_.pop();
    now_ = at;
    ++executed_;
    fn();
    return true;
  }
  void run_until(Tick until) {
    while (!queue_.empty() && queue_.top().at <= until) step();
    if (now_ < until) now_ = until;
  }

 private:
  struct Entry {
    Tick at;
    std::uint64_t seq;
    Event fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

// ---- event-kernel benchmarks -----------------------------------------------
// The closure mirrors the dominant real schedule sites ([this, mem::Request]
// ~= 56 B): big enough that std::function heap-allocates it, small enough
// that sim::Event stores it inline. Arg = number of concurrent event chains
// (steady-state queue occupancy): a loaded host keeps dozens to hundreds of
// events pending (LFB entries, MC queues, IIO), where the legacy binary heap
// pays O(log n) sift moves of 56-byte entries per operation and the calendar
// queue stays O(1).

// Long enough that slot-vector capacity warm-up (a one-time cost in real
// runs) amortizes away instead of dominating the per-iteration numbers.
constexpr std::uint64_t kChainEvents = 1000000;

template <typename Sim>
struct ChainEvent {
  Sim* s;
  std::uint64_t delay;
  std::array<std::uint64_t, 5> payload;  // pad to the 56 B request-closure shape
  void operator()() const {
    if (s->events_executed() < kChainEvents)
      s->schedule(static_cast<Tick>(delay), ChainEvent{s, delay, payload});
  }
};

template <typename Sim>
void run_event_kernel(benchmark::State& state) {
  const auto chains = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    Sim sim;
    const std::uint64_t a0 = alloc_count();
    for (std::uint64_t c = 0; c < chains; ++c)
      sim.schedule_at(static_cast<Tick>(c & 15), ChainEvent<Sim>{&sim, (c & 15) + 1, {}});
    sim.run_until(ms(1000));
    allocs += alloc_count() - a0;
    events += sim.events_executed();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] =
      static_cast<double>(allocs) / static_cast<double>(events ? events : 1);
}

void BM_EventKernel(benchmark::State& state) { run_event_kernel<sim::Simulator>(state); }
BENCHMARK(BM_EventKernel)->Arg(1)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_EventKernelLegacyHeap(benchmark::State& state) { run_event_kernel<LegacySimulator>(state); }
BENCHMARK(BM_EventKernelLegacyHeap)->Arg(1)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

/// Concurrent chains over the real hop-latency spectrum: CHA forwards
/// (4 ns), core returns (22 ns), IIO processing (250 ns), device latency
/// (8 us) -- exercises the L1 bucket scatter and the overflow map, not just
/// the in-window fast path.
template <typename Sim>
struct MixedChain {
  Sim* s;
  std::uint64_t i;
  std::array<std::uint64_t, 5> payload;  // pad to the inline capacity
  void operator()() const {
    static constexpr Tick kDelays[4] = {ns(4), ns(22), ns(250), us(8)};
    if (s->events_executed() < kChainEvents)
      s->schedule(kDelays[i & 3], MixedChain{s, i + 1, payload});
  }
};

template <typename Sim>
void run_mixed_delays(benchmark::State& state) {
  std::uint64_t events = 0;
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    Sim sim;
    const std::uint64_t a0 = alloc_count();
    for (std::uint64_t c = 0; c < 32; ++c)
      sim.schedule_at(static_cast<Tick>(c), MixedChain<Sim>{&sim, c, {}});
    sim.run_until(ms(1000));
    allocs += alloc_count() - a0;
    events += sim.events_executed();
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["allocs_per_event"] =
      static_cast<double>(allocs) / static_cast<double>(events ? events : 1);
}

void BM_EventKernelMixedDelays(benchmark::State& state) {
  run_mixed_delays<sim::Simulator>(state);
}
BENCHMARK(BM_EventKernelMixedDelays)->Unit(benchmark::kMillisecond);

void BM_EventKernelMixedDelaysLegacyHeap(benchmark::State& state) {
  run_mixed_delays<LegacySimulator>(state);
}
BENCHMARK(BM_EventKernelMixedDelaysLegacyHeap)->Unit(benchmark::kMillisecond);

// ---- MC-channel microbenchmark ---------------------------------------------
// Synthetic closed-loop enqueue stream straight into one mc::Channel -- no
// CHA/CPU above it and (almost) no kernel dispatch beside the channel's own
// events -- so channel-level scheduling wins are measurable in isolation.
// The listener refills the queues synchronously on every freed slot (the
// same reentrant shape as Cha::on_rpq_slot_freed admitting a parked read),
// keeping them near capacity for the whole run. Args: (write %, random
// addressing). Counters: allocations, dead (cancelled) kick events, and
// deduplicated kick requests, all per line.

constexpr std::uint64_t kMcLinesPerIter = 50000;

struct McStream final : mc::ChannelListener {
  sim::Simulator sim;
  dram::AddressMap map{1, 32, 8192, 256, dram::BankHash::kXorHash, 8192};
  mc::ChannelConfig cfg;
  std::unique_ptr<mc::Channel> ch;
  Rng rng{12345};
  double write_fraction;
  bool random_addresses;
  std::uint64_t next_line = 0;
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;

  McStream(double wf, bool random) : write_fraction(wf), random_addresses(random) {
    cfg.timing = dram::ddr4_2933();
    ch = std::make_unique<mc::Channel>(sim, cfg, 32, 0, this);
  }

  void pump() {
    while (sent < kMcLinesPerIter) {
      const bool is_write = write_fraction > 0.0 && rng.chance(write_fraction);
      if (is_write ? !ch->wpq_has_space() : !ch->rpq_has_space()) return;
      const std::uint64_t line = random_addresses ? rng.below(1 << 20) : next_line++;
      mem::Request req;
      req.addr = line * kCachelineBytes;
      req.op = is_write ? mem::Op::kWrite : mem::Op::kRead;
      if (is_write)
        ch->enqueue_write(req, map.decode(req.addr));
      else
        ch->enqueue_read(req, map.decode(req.addr));
      ++sent;
    }
  }

  void on_read_data(const mem::Request&, Tick) override { ++completed; }
  void on_wpq_slot_freed(std::uint32_t, Tick) override {
    ++completed;
    pump();
  }
  void on_rpq_slot_freed(std::uint32_t, Tick) override { pump(); }
};

void BM_McChannelOnly(benchmark::State& state) {
  const double write_fraction = static_cast<double>(state.range(0)) / 100.0;
  const bool random_addresses = state.range(1) != 0;
  std::uint64_t lines = 0;
  std::uint64_t allocs = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deduped = 0;
  // One stream reused across iterations: the first batch warms the calendar
  // queue's slot vectors (a one-time cost in real runs), so the measured
  // iterations report steady-state work -- where allocs/line must be zero.
  McStream s(write_fraction, random_addresses);
  s.pump();
  s.sim.run_until(s.sim.now() + ms(10000));  // runs to idle: batch drained
  for (auto _ : state) {
    s.sent = 0;
    s.completed = 0;
    const std::uint64_t c0 = s.ch->kick_stats().cancelled;
    const std::uint64_t d0 = s.ch->kick_stats().deduped;
    const std::uint64_t a0 = alloc_count();
    s.pump();
    s.sim.run_until(s.sim.now() + ms(10000));
    allocs += alloc_count() - a0;
    lines += s.completed;
    cancelled += s.ch->kick_stats().cancelled - c0;
    deduped += s.ch->kick_stats().deduped - d0;
    benchmark::DoNotOptimize(s.completed);
    if (s.completed != kMcLinesPerIter) state.SkipWithError("stream did not drain");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(lines));
  const double denom = static_cast<double>(lines ? lines : 1);
  state.counters["allocs_per_line"] = static_cast<double>(allocs) / denom;
  state.counters["cancelled_kicks_per_line"] = static_cast<double>(cancelled) / denom;
  state.counters["deduped_kicks_per_line"] = static_cast<double>(deduped) / denom;
}
BENCHMARK(BM_McChannelOnly)
    ->Args({0, 0})    // sequential reads: row-hit streaming
    ->Args({0, 1})    // random reads: row misses, bank conflicts
    ->Args({30, 1})   // mixed read/write: mode switches + drains
    ->Args({100, 0})  // pure writes: watermark drain cycling
    ->Unit(benchmark::kMillisecond);

// ---- existing coverage -----------------------------------------------------

void BM_AddressDecode(benchmark::State& state) {
  const dram::AddressMap map(2, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  std::uint64_t addr = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      addr += 64;
      const auto c = map.decode(addr);
      acc += c.bank + c.channel + c.col + static_cast<std::uint64_t>(c.row);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AddressDecode);

void BM_HostSimulation(benchmark::State& state) {
  // Simulated-time throughput of a loaded host (4 C2M cores + P2M writes).
  std::uint64_t kicks_scheduled = 0;
  std::uint64_t kicks_cancelled = 0;
  for (auto _ : state) {
    const auto hc = core::cascade_lake();
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < 4; ++i)
      host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
    host.run(us(50), us(200));
    benchmark::DoNotOptimize(host.collect().total_mem_gbps());
    for (std::uint32_t c = 0; c < host.mc().num_channels(); ++c) {
      kicks_scheduled += host.mc().channel(c).kick_stats().scheduled;
      kicks_cancelled += host.mc().channel(c).kick_stats().cancelled;
    }
  }
  state.SetLabel("250us simulated per iteration");
  state.counters["dead_kick_ratio"] =
      static_cast<double>(kicks_cancelled) /
      static_cast<double>(kicks_scheduled ? kicks_scheduled : 1);
}
BENCHMARK(BM_HostSimulation)->Unit(benchmark::kMillisecond);

void BM_TcpStackHost(benchmark::State& state) {
  // Host with a TCP receiver under each pluggable stack (Arg = TcpStackKind).
  // The pacing (bbr) and delay-window (davis) stacks schedule extra events
  // per window; this keeps their event-cost delta over dctcp perf-gated.
  const auto kind = static_cast<core::TcpStackKind>(state.range(0));
  for (auto _ : state) {
    const auto hc = core::cascade_lake();
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < 4; ++i)
      host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
    net::TcpConfig cfg;
    cfg.stack = kind;
    net::TcpReceiver rx(host, cfg);
    host.run(us(50), us(200));
    benchmark::DoNotOptimize(rx.goodput_gbps(host.sim().now()));
  }
  state.SetLabel(core::to_string(kind) + ", 250us simulated per iteration");
}
BENCHMARK(BM_TcpStackHost)
    ->Arg(static_cast<int>(core::TcpStackKind::kDctcp))
    ->Arg(static_cast<int>(core::TcpStackKind::kBbr))
    ->Arg(static_cast<int>(core::TcpStackKind::kDavis))
    ->Unit(benchmark::kMillisecond);

// ---- parallel sweep scaling ------------------------------------------------

core::RunOptions sweep_options() {
  core::RunOptions o;
  o.warmup = us(20);
  o.measure = us(60);
  return o;
}

/// The headline sweep on the checkpoint/fork engine: a SweepCache held
/// across sweeps, as a figure driver holds one across its whole figure.
/// The untimed setup sweep warms the per-prefix checkpoints once; the
/// timed iterations then measure the steady-state cost of re-sweeping
/// against the warm cache (forks + memoized windows) -- "warm once, sweep
/// everywhere". BM_ColdQuadrantSweep below is the same sweep built cold
/// and keeps the warm-up path itself gated.
void BM_SerialQuadrantSweep(benchmark::State& state) {
  const auto host = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const std::vector<std::uint32_t> cores{1, 2, 3, 4};
  const auto opt = sweep_options();
  core::SweepCache cache;
  benchmark::DoNotOptimize(
      core::sweep_c2m_cores(host, c2m, p2m, cores, opt, &cache, core::SweepMode::kFork));
  for (auto _ : state) {
    auto sweep =
        core::sweep_c2m_cores(host, c2m, p2m, cores, opt, &cache, core::SweepMode::kFork);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cores.size()));
  state.counters["checkpoints"] = static_cast<double>(cache.checkpoints());
  state.counters["checkpoint_hits"] = static_cast<double>(cache.stats().checkpoint_hits);
  state.counters["checkpoint_misses"] = static_cast<double>(cache.stats().checkpoint_misses);
  state.counters["outcome_hits"] = static_cast<double>(cache.stats().outcome_hits);
  state.counters["outcome_misses"] = static_cast<double>(cache.stats().outcome_misses);
}
BENCHMARK(BM_SerialQuadrantSweep)->Unit(benchmark::kMillisecond)->UseRealTime();

/// The same sweep built cold every time (the pre-fork reference): keeps the
/// cold construction+warmup path itself perf-gated.
void BM_ColdQuadrantSweep(benchmark::State& state) {
  const auto host = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const std::vector<std::uint32_t> cores{1, 2, 3, 4};
  const auto opt = sweep_options();
  for (auto _ : state) {
    auto sweep =
        core::sweep_c2m_cores(host, c2m, p2m, cores, opt, nullptr, core::SweepMode::kCold);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cores.size()));
}
BENCHMARK(BM_ColdQuadrantSweep)->Unit(benchmark::kMillisecond)->UseRealTime();

/// Cost of one checkpoint save + restore on a warmed loaded host -- the
/// per-point overhead a forked sweep pays instead of re-warming.
void BM_SnapshotRestore(benchmark::State& state) {
  const auto hc = core::cascade_lake();
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < 4; ++i)
    host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  host.run(us(50), 0);
  core::HostSnapshot snap = host.snapshot();  // warm the snapshot's buffers
  std::uint64_t allocs = 0;
  for (auto _ : state) {
    const std::uint64_t a0 = alloc_count();
    host.save_state(snap);
    host.restore(snap);
    allocs += alloc_count() - a0;
    benchmark::DoNotOptimize(snap.sim.now);
  }
  state.counters["allocs_per_roundtrip"] =
      static_cast<double>(allocs) /
      static_cast<double>(state.iterations() ? state.iterations() : 1);
}
BENCHMARK(BM_SnapshotRestore)->Unit(benchmark::kMillisecond);

/// Same 4-point sweep on the worker pool; Arg = thread count. Near-linear
/// scaling to 4 threads expected on multi-core hosts (the 9 measurement
/// windows per sweep are fully independent).
void BM_ParallelQuadrantSweep(benchmark::State& state) {
  const auto host = core::cascade_lake();
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
  const std::vector<std::uint32_t> cores{1, 2, 3, 4};
  const auto opt = sweep_options();
  const auto threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto sweep = core::sweep_c2m_cores_parallel(host, c2m, p2m, cores, opt, threads);
    benchmark::DoNotOptimize(sweep.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(cores.size()));
  state.counters["threads"] = threads;
}
BENCHMARK(BM_ParallelQuadrantSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// ---- fleet-scale sweep -----------------------------------------------------

/// A 1000-host fleet with 10 distinct config fingerprints (ISSUE/ROADMAP
/// acceptance scenario). With zero measurement jitter every replica of a
/// fingerprint is a bit-identical simulation, so a full fleet run costs 10
/// fingerprints x 3 cold windows plus 990 x 3 memoized window lookups: the
/// per-host marginal cost is a memo lookup, not a warmup. items/s is
/// hosts/s; the cache counters make the dedup auditable in the JSON output
/// (30 checkpoint misses, 2970 outcome hits per run, every run).
std::string fleet_bench_scenario(int templates, int hosts_per_template) {
  std::string s = "fleet bench\nseed 3\nwarmup_us 20\nmeasure_us 60\n";
  for (int i = 0; i < templates; ++i) {
    // Distinct fingerprints via workload x core-count (the CLX preset has 8
    // cores, so the sweep folds at 5 and switches application).
    s += "template t" + std::to_string(i) + "\n";
    s += std::string("  c2m tenant-c ") + (i < 5 ? "c2m_read" : "redis_read") +
         " cores=" + std::to_string(i % 5 + 1) + "\n";
    s += "  p2m tenant-p fio_write\nend\n";
  }
  for (int i = 0; i < templates; ++i)
    s += "hosts " + std::to_string(hosts_per_template) + " t" + std::to_string(i) + "\n";
  return s;
}

void BM_FleetSweep(benchmark::State& state) {
  const auto sc = fleet::Scenario::parse(fleet_bench_scenario(10, 100));
  fleet::RunnerOptions opt;
  opt.threads = static_cast<unsigned>(state.range(0));
  std::uint64_t hosts = 0;
  std::uint64_t cp_misses = 0;
  std::uint64_t memo_hits = 0;
  for (auto _ : state) {
    const fleet::FleetReport r = fleet::run_fleet(sc, opt);
    hosts += r.hosts;
    cp_misses += r.cache.checkpoint_misses;
    memo_hits += r.cache.outcome_hits;
    benchmark::DoNotOptimize(r.agg.hosts);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(hosts));
  const double iters = static_cast<double>(state.iterations() ? state.iterations() : 1);
  state.counters["checkpoint_misses_per_run"] = static_cast<double>(cp_misses) / iters;
  state.counters["outcome_hits_per_run"] = static_cast<double>(memo_hits) / iters;
}
BENCHMARK(BM_FleetSweep)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
