// Simulator micro-benchmarks (google-benchmark): event-kernel throughput,
// DRAM decode, and full-host simulation speed. These guard against
// performance regressions that would make the figure benches impractical.
#include <benchmark/benchmark.h>

#include "core/host_system.hpp"
#include "dram/address_map.hpp"
#include "sim/simulator.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace hostnet;

void BM_EventKernel(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    const int n = 100000;
    std::function<void()> chain = [&] {
      if (sim.events_executed() < static_cast<std::uint64_t>(n)) sim.schedule(1, chain);
    };
    sim.schedule_at(0, chain);
    sim.run_until(ms(1000));
    benchmark::DoNotOptimize(sim.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_EventKernel)->Unit(benchmark::kMillisecond);

void BM_AddressDecode(benchmark::State& state) {
  const dram::AddressMap map(2, 32, 8192, 256, dram::BankHash::kXorHash, 8192);
  std::uint64_t addr = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1024; ++i) {
      addr += 64;
      const auto c = map.decode(addr);
      acc += c.bank + c.channel + c.col + static_cast<std::uint64_t>(c.row);
    }
  }
  benchmark::DoNotOptimize(acc);
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_AddressDecode);

void BM_HostSimulation(benchmark::State& state) {
  // Simulated-time throughput of a loaded host (4 C2M cores + P2M writes).
  for (auto _ : state) {
    const auto hc = core::cascade_lake();
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < 4; ++i)
      host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
    host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
    host.run(us(50), us(200));
    benchmark::DoNotOptimize(host.collect().total_mem_gbps());
  }
  state.SetLabel("250us simulated per iteration");
}
BENCHMARK(BM_HostSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
