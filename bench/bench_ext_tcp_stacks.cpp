// Extension (ROADMAP item 3): the stack x quadrant matrix. The paper's TCP
// story (Figs 19/25/26/29/30) is DCTCP-only; with congestion control now
// pluggable (net/tcp_stack.hpp) the open question becomes measurable: does
// a pacing-based (BBR-like) or delay-based (Davis-like) sender read the
// host network's extra latency as congestion and self-throttle in the blue
// regime, or sail into the red one?
//
// For each stack x {C2M-Read, C2M-ReadWrite} quadrant the C2M core count is
// swept and the blue/red regime onset (first core count whose colocation
// classifies as each) reported. A per-stack receiver detail table (loss,
// mark fraction, average cwnd) closes the loop with Fig 25/26's root-cause
// view.
#include <optional>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/domains.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Onset {
  std::uint32_t blue = 0;  ///< first core count in the blue regime (0 = never)
  std::uint32_t red = 0;   ///< first core count in the red regime (0 = never)
};

std::string onset_str(std::uint32_t n) { return n ? std::to_string(n) : "-"; }

}  // namespace

int main() {
  const auto opt = core::default_run_options();
  const core::HostConfig hc = core::cascade_lake();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  const std::vector<core::TcpStackKind> stacks{
      core::TcpStackKind::kDctcp, core::TcpStackKind::kBbr, core::TcpStackKind::kDavis};

  struct Quadrant {
    const char* name;
    bool writes;
  };
  const std::vector<Quadrant> quadrants{{"C2M-Read + TCP Rx", false},
                                        {"C2M-ReadWrite + TCP Rx", true}};

  std::vector<std::vector<Onset>> onsets(quadrants.size(),
                                         std::vector<Onset>(stacks.size()));

  for (std::size_t q = 0; q < quadrants.size(); ++q) {
    banner(std::string("TCP stack sweep: ") + quadrants[q].name);
    for (std::size_t s = 0; s < stacks.size(); ++s) {
      core::C2MSpec c2m;
      c2m.workload = quadrants[q].writes
                         ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                         : workloads::c2m_read(workloads::c2m_core_region(0));
      core::P2MSpec p2m;
      p2m.tcp = net::tcp_spec(stacks[s]);
      p2m.name = p2m.tcp->name;

      Table t({"C2M cores", "C2M degr", "Net degr", "Net GB/s", "regime"});
      core::SweepCache cache;
      const auto sweep = core::sweep_c2m_cores(hc, c2m, p2m, cores, opt, &cache);
      Onset& o = onsets[q][s];
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        const core::Regime r = sweep[i].regime();
        if (r == core::Regime::kBlue && o.blue == 0) o.blue = cores[i];
        if (r == core::Regime::kRed && o.red == 0) o.red = cores[i];
        t.row({std::to_string(cores[i]), Table::num(sweep[i].c2m_degradation()) + "x",
               Table::num(sweep[i].p2m_degradation()) + "x",
               Table::num(sweep[i].colo.p2m_score, 2), core::to_string(r)});
      }
      banner(std::string("stack: ") + core::to_string(stacks[s]));
      t.print();
    }
  }

  banner("Regime onset per stack x quadrant (first C2M core count; - = never)");
  Table onset_table({"stack", "quadrant", "blue onset", "red onset"});
  for (std::size_t q = 0; q < quadrants.size(); ++q)
    for (std::size_t s = 0; s < stacks.size(); ++s)
      onset_table.row({core::to_string(stacks[s]), quadrants[q].name,
                       onset_str(onsets[q][s].blue), onset_str(onsets[q][s].red)});
  onset_table.print();

  // Receiver root-cause detail (Fig 25/26 view, per stack): 4 read-write
  // cores alongside the receiver.
  banner("Receiver detail: 4x C2M-ReadWrite colocation");
  Table d({"stack", "goodput GB/s", "loss", "mark frac", "avg cwnd"});
  for (const core::TcpStackKind kind : stacks) {
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < 4; ++i)
      host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
    net::TcpConfig cfg;
    cfg.stack = kind;
    net::TcpReceiver rx(host, cfg);
    host.run(opt.warmup, opt.measure);
    d.row({core::to_string(kind), Table::num(rx.goodput_gbps(host.sim().now()), 2),
           Table::pct(rx.loss_rate() * 100, 3), Table::pct(rx.mark_fraction() * 100, 1),
           Table::num(rx.avg_cwnd(), 1)});
  }
  d.print();
  return 0;
}
