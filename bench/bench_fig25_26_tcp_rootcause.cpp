// Figures 25 & 26 (Appendix D.2): root-cause measurements for the DCTCP
// case study.
//
//   Fig 25: C2MRead + TCP Rx -- C2M-Read latency inflation slows the copy
//           (CPU bottleneck); WPQ rarely backpressures; the IIO occupancy
//           *falls* with load (flow control reduces P2M in-flight).
//   Fig 26: C2MReadWrite + TCP Rx -- WPQ backpressure inflates the
//           P2M-Write domain, drops/marks appear, and the sender backs off.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_case(const char* title, bool c2m_writes) {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{0, 1, 2, 3, 4};

  banner(title);
  Table t({"C2M cores", "copy LFB lat (ns)", "P2M-W lat (ns)", "WPQ full", "IIO wr occ",
           "goodput GB/s", "loss", "marks", "avg cwnd"});
  for (auto n : cores) {
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto wl = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(i))
                           : workloads::c2m_read(workloads::c2m_core_region(i));
      host.add_core(wl);
    }
    net::DctcpConfig cfg;
    net::TcpReceiver rx(host, cfg);
    host.run(opt.warmup, opt.measure);
    const auto m = host.collect();
    const Tick now = host.sim().now();
    t.row({std::to_string(n), Table::num(rx.copy_lfb_latency_ns(), 1),
           Table::num(m.p2m_write.latency_ns, 1),
           Table::pct(m.wpq_full_fraction * 100),
           Table::num(m.p2m_write.credits_in_use, 1),
           Table::num(rx.goodput_gbps(now), 2), Table::pct(rx.loss_rate() * 100, 3),
           Table::pct(rx.mark_fraction() * 100, 1), Table::num(rx.avg_cwnd(), 1)});
  }
  t.print();
}

}  // namespace

int main() {
  run_case("Fig 25: C2MRead + TCP Rx root-cause counters", false);
  run_case("Fig 26: C2MReadWrite + TCP Rx root-cause counters", true);
  return 0;
}
