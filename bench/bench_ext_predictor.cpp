// Extension (paper section 7): configuration-driven performance predictor
// vs the simulator, across the four quadrants. Unlike the section-6
// formula (which consumes *measured* counters), the predictor consumes
// only the host configuration and the offered workload.
#include <string>
#include <vector>

#include "analytic/predictor.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();

  struct Quad {
    const char* name;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quad quads[] = {
      {"Quadrant 1 (C2M-Read + P2M-Write)", false, true},
      {"Quadrant 2 (C2M-Read + P2M-Read)", false, false},
      {"Quadrant 3 (C2M-ReadWrite + P2M-Write)", true, true},
      {"Quadrant 4 (C2M-ReadWrite + P2M-Read)", true, false},
  };

  for (const auto& q : quads) {
    banner(std::string("Predictor vs simulator: ") + q.name);
    Table t({"C2M cores", "C2M sim", "C2M pred", "err", "P2M sim", "P2M pred", "err",
             "regime pred/sim"});
    for (std::uint32_t n : {1u, 2u, 4u, 6u}) {
      core::C2MSpec c2m;
      c2m.workload = q.c2m_writes
                         ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                         : workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = n;
      core::P2MSpec p2m;
      p2m.storage = q.p2m_writes ? workloads::fio_p2m_write(host, workloads::p2m_region())
                                 : workloads::fio_p2m_read(host, workloads::p2m_region());
      const auto sim = core::run_colocation(host, c2m, p2m, opt);

      analytic::PredictorWorkload wl;
      wl.c2m_cores = n;
      wl.c2m_writes = q.c2m_writes;
      wl.p2m_write_offered_gbps = q.p2m_writes ? host.pcie_write_gb_per_s : 0;
      wl.p2m_read_offered_gbps = q.p2m_writes ? 0 : host.pcie_read_gb_per_s;
      const auto pred = analytic::predict(host, wl);

      const double sim_c2m = sim.colo.c2m_score;
      const double sim_p2m = sim.colo.p2m_score;
      const double pred_p2m = pred.p2m_write_gbps + pred.p2m_read_gbps;
      t.row({std::to_string(n), Table::num(sim_c2m, 1), Table::num(pred.c2m_gbps, 1),
             Table::pct(relative_error_pct(pred.c2m_gbps, sim_c2m), 0),
             Table::num(sim_p2m, 1), Table::num(pred_p2m, 1),
             Table::pct(relative_error_pct(pred_p2m, sim_p2m), 0),
             core::to_string(pred.regime) + "/" + core::to_string(sim.regime())});
    }
    t.print();
  }
  std::printf("\nThe predictor needs no simulation or measurement: it closes the\n"
              "section-6 formula with first-order models of its inputs. Expect\n"
              "coarser accuracy than Figure 11; its value is fast what-if sweeps.\n");
  return 0;
}
