// Ablation: memory-controller write-drain policy and the red regime.
//
// Sweeps the WPQ watermarks and the read-priority dwell and reports the
// quadrant-3 equilibrium: who wins the channel, how much the P2M side
// degrades, and where the CHA backlog sits.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Variant {
  std::string name;
  core::HostConfig host;
};

}  // namespace

int main() {
  const auto opt = core::default_run_options();
  std::vector<Variant> variants;
  variants.push_back({"default (hi=22 lo=8, dwell 12ns/read cap 150)", core::cascade_lake()});
  {
    Variant v{"shallow drains (hi=22 lo=16)", core::cascade_lake()};
    v.host.mc.wpq_low_wm = 16;
    variants.push_back(v);
  }
  {
    Variant v{"deep drains (hi=22 lo=2)", core::cascade_lake()};
    v.host.mc.wpq_low_wm = 2;
    variants.push_back(v);
  }
  {
    Variant v{"no read priority (dwell 0)", core::cascade_lake()};
    v.host.mc.dwell_per_queued_read = 0;
    variants.push_back(v);
  }
  {
    Variant v{"strong read priority (dwell cap 400ns)", core::cascade_lake()};
    v.host.mc.read_dwell_cap = ns(400);
    variants.push_back(v);
  }

  banner("Ablation: MC write-drain policy (quadrant 3, 4 C2M cores)");
  Table t({"policy", "C2M degr", "P2M degr", "P2M-W lat (ns)", "N_waiting", "WPQ full",
           "switch cycles/us"});
  for (const auto& v : variants) {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
    c2m.cores = 4;
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(v.host, workloads::p2m_region());
    const auto o = core::run_colocation(v.host, c2m, p2m, opt);
    const auto& m = o.colo.metrics;
    t.row({v.name, Table::num(o.c2m_degradation()) + "x",
           Table::num(o.p2m_degradation()) + "x", Table::num(m.p2m_write.latency_ns, 0),
           Table::num(m.n_waiting, 1), Table::pct(m.wpq_full_fraction * 100),
           Table::num(m.mc_switch_cycles / m.window_ns * 1000, 1)});
  }
  t.print();
  std::printf("\nTakeaway: read priority (the dwell) is what pushes the write backlog\n"
              "into the CHA tracker and lets C2M antagonize P2M; without it the MC\n"
              "spreads the pain evenly and the red regime's asymmetry disappears.\n");
  return 0;
}
