// Figure 7: root-cause measurements for quadrant 1 (C2M-Read + P2M-Write).
//
// (a) C2M-Read domain latency (isolated vs colocated)
// (b) average RPQ occupancy (with vs without P2M)
// (c) row miss ratio of C2M reads (with vs without P2M)
// (d) bank-deviation CDF points (load imbalance across banks)
// (e) P2M-Write domain latency vs C2M cores
// (f) fraction of time the WPQ is full
// (g) P2M-Write domain credit utilization (IIO write-buffer occupancy)
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  struct Row {
    std::uint32_t n;
    core::Metrics iso;
    core::Metrics colo;
  };
  std::vector<Row> rows;
  for (auto n : cores) {
    c2m.cores = n;
    rows.push_back(Row{n, core::run_workloads(host, c2m, std::nullopt, opt).metrics,
                       core::run_workloads(host, c2m, p2m, opt).metrics});
  }

  banner("Fig 7(a,b,c): C2M-Read domain latency, RPQ occupancy, row miss ratio");
  Table a({"C2M cores", "lat iso (ns)", "lat colo (ns)", "RPQ iso", "RPQ colo",
           "rowmiss iso", "rowmiss colo"});
  for (const auto& r : rows)
    a.row({std::to_string(r.n), Table::num(r.iso.lfb_latency_ns, 1),
           Table::num(r.colo.lfb_latency_ns, 1), Table::num(r.iso.avg_rpq_occupancy, 1),
           Table::num(r.colo.avg_rpq_occupancy, 1),
           Table::pct(r.iso.row_miss_ratio_read * 100),
           Table::pct(r.colo.row_miss_ratio_read * 100)});
  a.print();

  banner("Fig 7(d): bank deviation CDF (1 C2M core; max/mean bank load per 1000 reads)");
  {
    Table d({"quantile", "isolated", "colocated"});
    for (double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99})
      d.row({Table::num(q, 2), Table::num(rows[0].iso.bank_deviation.quantile(q), 2) + "x",
             Table::num(rows[0].colo.bank_deviation.quantile(q), 2) + "x"});
    d.row({"frac >= 1.5x", Table::pct(rows[0].iso.bank_deviation.fraction_at_least(1.5) * 100),
           Table::pct(rows[0].colo.bank_deviation.fraction_at_least(1.5) * 100)});
    d.row({"frac >= 2.0x", Table::pct(rows[0].iso.bank_deviation.fraction_at_least(2.0) * 100),
           Table::pct(rows[0].colo.bank_deviation.fraction_at_least(2.0) * 100)});
    d.print();
  }

  banner("Fig 7(e,f,g): P2M-Write latency, WPQ-full fraction, IIO credit utilization");
  Table e({"C2M cores", "P2M-Write lat (ns)", "WPQ full", "IIO wr occ (avg)",
           "IIO wr occ (max)", "P2M GB/s"});
  {
    const auto iso_p2m = core::run_workloads(host, std::nullopt, p2m, opt).metrics;
    e.row({"0", Table::num(iso_p2m.p2m_write.latency_ns, 1),
           Table::pct(iso_p2m.wpq_full_fraction * 100),
           Table::num(iso_p2m.p2m_write.credits_in_use, 1),
           Table::num(iso_p2m.p2m_write.max_credits_used, 0),
           Table::num(iso_p2m.p2m_dev_gbps, 1)});
  }
  for (const auto& r : rows)
    e.row({std::to_string(r.n), Table::num(r.colo.p2m_write.latency_ns, 1),
           Table::pct(r.colo.wpq_full_fraction * 100),
           Table::num(r.colo.p2m_write.credits_in_use, 1),
           Table::num(r.colo.p2m_write.max_credits_used, 0),
           Table::num(r.colo.p2m_dev_gbps, 1)});
  e.print();
  return 0;
}
