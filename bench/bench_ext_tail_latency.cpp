// Extension: tail-latency view of host-network contention.
//
// The production studies motivating the paper report host contention as
// *tail* latency inflation; the simulator records full per-domain latency
// distributions, so this bench shows how colocation moves p50/p99/p999 of
// the C2M-Read domain (quadrant 1) and of the P2M-Write domain
// (quadrant 3).
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Dist {
  double p50, p99, p999, max;
};

Dist lfb_dist(core::HostSystem& host) {
  // Aggregate over cores by sampling the worst core's histogram (they are
  // symmetric); use core 0.
  const auto& h = host.cores().front()->lfb_station().histogram();
  return {h.p50(), h.p99(), h.p999(), h.max()};
}

}  // namespace

int main() {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();

  banner("Tail latency: C2M-Read domain (2 cores), isolated vs + P2M-Write");
  {
    Table t({"scenario", "p50 (ns)", "p99 (ns)", "p999 (ns)", "max (ns)"});
    for (bool colo : {false, true}) {
      core::HostSystem host(hc);
      for (std::uint32_t i = 0; i < 2; ++i)
        host.add_core(workloads::c2m_read(workloads::c2m_core_region(i)));
      if (colo) host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
      host.run(opt.warmup, opt.measure);
      const Dist d = lfb_dist(host);
      t.row({colo ? "colocated" : "isolated", Table::num(d.p50, 0), Table::num(d.p99, 0),
             Table::num(d.p999, 0), Table::num(d.max, 0)});
    }
    t.print();
  }

  banner("Tail latency: P2M-Write domain under increasing C2M-ReadWrite load");
  {
    Table t({"C2M cores", "p50 (ns)", "p99 (ns)", "p999 (ns)", "max (ns)"});
    for (std::uint32_t n : {0u, 2u, 4u, 6u}) {
      core::HostSystem host(hc);
      for (std::uint32_t i = 0; i < n; ++i)
        host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
      host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
      host.run(opt.warmup, opt.measure);
      const auto& h = host.iio().write_station().histogram();
      t.row({std::to_string(n), Table::num(h.p50(), 0), Table::num(h.p99(), 0),
             Table::num(h.p999(), 0), Table::num(h.max(), 0)});
    }
    t.print();
  }
  std::printf("\nNote the asymmetry: the blue regime inflates the C2M tail while the\n"
              "P2M-Write tail stays put; the red regime inflates the P2M-Write tail\n"
              "by an order of magnitude (the WPQ/CHA write backlog).\n");
  return 0;
}
