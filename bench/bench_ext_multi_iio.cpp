// Extension (paper section 7: hosts with "multiple IIOs"): two peripheral
// devices sharing one IIO stack vs split across two stacks.
//
// Credits are per stack, so stack placement decides whether two P2M-Write
// streams share one 92-credit pool or get one each. Under red-regime
// latency inflation the shared pool becomes the binding constraint first.
#include <string>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/host_system.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Result {
  double p2m_total;
  double p2m_latency;
};

Result run(bool split_stacks, std::uint32_t c2m_cores) {
  core::HostConfig hc = core::cascade_lake();
  // Two 7 GB/s devices (x8 links) instead of one 14 GB/s aggregate.
  core::HostSystem host(hc);
  const std::size_t stack_b = split_stacks ? host.add_iio_stack(hc.iio) : 0;
  for (std::uint32_t i = 0; i < c2m_cores; ++i)
    host.add_core(workloads::c2m_read_write(workloads::c2m_core_region(i)));
  auto dev = workloads::fio_p2m_write(hc, workloads::p2m_region());
  dev.link_gb_per_s = 7.0;
  host.add_storage(dev, 0);
  auto dev2 = dev;
  dev2.region.base += 2ull << 30;
  host.add_storage(dev2, stack_b);
  host.run(core::default_run_options().warmup, core::default_run_options().measure);
  const auto m = host.collect();
  return Result{m.p2m_dev_gbps, m.p2m_write.latency_ns};
}

}  // namespace

int main() {
  banner("Multi-IIO extension: 2 x 7 GB/s NVMe devices, shared vs split stacks");
  Table t({"C2M-RW cores", "P2M GB/s (shared stack)", "P2M GB/s (split stacks)",
           "P2M-W lat shared (ns)", "P2M-W lat split (ns)"});
  for (std::uint32_t n : {0u, 2u, 4u, 6u}) {
    const Result shared = run(false, n);
    const Result split = run(true, n);
    t.row({std::to_string(n), Table::num(shared.p2m_total, 1),
           Table::num(split.p2m_total, 1), Table::num(shared.p2m_latency, 0),
           Table::num(split.p2m_latency, 0)});
  }
  t.print();
  std::printf("\nSplitting devices across IIO stacks doubles the P2M-Write credit\n"
              "pool (92 -> 2x92): the same latency inflation that starves a shared\n"
              "stack is absorbed when each device has its own credits -- the domain\n"
              "law T <= C*64/L applied to topology planning.\n");
  return 0;
}
