// Figure 12: breakdown of the analytical formula's queueing-delay
// components for all four quadrants (switching delay, write/read
// head-of-line blocking, top-of-queue PRE/ACT delay; plus the CHA
// admission delay for quadrant 3).
#include <string>
#include <vector>

#include "analytic/formula.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void print_read_breakdown(const char* title, const std::vector<std::uint32_t>& cores,
                          const std::vector<core::Metrics>& ms, const dram::Timing& t,
                          bool with_cha) {
  banner(title);
  std::vector<std::string> hdr{"C2M cores", "Switching", "WriteHoL", "ReadHoL",
                               "TopOfQueue"};
  if (with_cha) hdr.push_back("CHA adm delay");
  Table tab(hdr);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto in = analytic::inputs_from_metrics(ms[i]);
    const auto b = analytic::read_queueing_delay(in, t);
    std::vector<std::string> row{std::to_string(cores[i]),
                                 Table::num(b.switching_ns, 1) + "ns",
                                 Table::num(b.hol_other_ns, 1) + "ns",
                                 Table::num(b.hol_same_ns, 1) + "ns",
                                 Table::num(b.top_of_queue_ns, 1) + "ns"};
    if (with_cha)
      row.push_back(Table::num(ms[i].cha_admission_wait_ns[0] +
                                   ms[i].cha_admission_wait_ns[1],
                               1) +
                    "ns");
    tab.row(row);
  }
  tab.print();
}

void print_write_breakdown(const char* title, const std::vector<std::uint32_t>& cores,
                           const std::vector<core::Metrics>& ms, const dram::Timing& t) {
  banner(title);
  Table tab({"C2M cores", "Switching", "ReadHoL", "WriteHoL", "TopOfQueue",
             "P_fill", "CHA adm delay"});
  for (std::size_t i = 0; i < ms.size(); ++i) {
    const auto in = analytic::inputs_from_metrics(ms[i]);
    const auto b = analytic::write_waiting_time(in, t);
    tab.row({std::to_string(cores[i]), Table::num(in.p_fill_wpq * b.switching_ns, 1) + "ns",
             Table::num(in.p_fill_wpq * b.hol_other_ns, 1) + "ns",
             Table::num(in.p_fill_wpq * b.hol_same_ns, 1) + "ns",
             Table::num(in.p_fill_wpq * b.top_of_queue_ns, 1) + "ns",
             Table::num(in.p_fill_wpq, 2),
             Table::num(ms[i].cha_admission_wait_ns[3], 1) + "ns"});
  }
  tab.print();
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  struct Quad {
    const char* name;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quad quads[] = {
      {"Fig 12(a): quadrant 1 C2M read-delay breakdown", false, true},
      {"Fig 12(b): quadrant 2 C2M read-delay breakdown", false, false},
      {"Fig 12(c): quadrant 4 C2M read-delay breakdown", true, false},
  };

  for (const auto& q : quads) {
    core::C2MSpec c2m;
    c2m.workload = q.c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                                : workloads::c2m_read(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.storage = q.p2m_writes ? workloads::fio_p2m_write(host, workloads::p2m_region())
                               : workloads::fio_p2m_read(host, workloads::p2m_region());
    std::vector<core::Metrics> ms;
    for (auto n : cores) {
      c2m.cores = n;
      ms.push_back(core::run_workloads(host, c2m, p2m, opt).metrics);
    }
    print_read_breakdown(q.name, cores, ms, host.mc.timing, false);
  }

  // Quadrant 3: both C2M (read) and P2M (write) breakdowns + CHA delay.
  {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
    std::vector<core::Metrics> ms;
    for (auto n : cores) {
      c2m.cores = n;
      ms.push_back(core::run_workloads(host, c2m, p2m, opt).metrics);
    }
    print_read_breakdown("Fig 12(d): quadrant 3 C2M read-delay breakdown (+CHA)", cores,
                         ms, host.mc.timing, true);
    print_write_breakdown("Fig 12(e): quadrant 3 P2M write-delay breakdown (+CHA)", cores,
                          ms, host.mc.timing);
  }
  return 0;
}
