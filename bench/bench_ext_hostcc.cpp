// Extension (paper section 7): host congestion control for traffic
// contained within a single host -- a hostCC-style controller that
// duty-cycle-throttles C2M cores when the P2M-Write domain latency exceeds
// a target.
//
// Quadrant-3 sweep, controller off vs on: the controller should restore
// P2M throughput (degradation -> ~1x) at a bounded C2M cost, and stay
// inactive in the blue regime (quadrant 1) where P2M needs no protection.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "hostcc/hostcc.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Point {
  double c2m = 0;
  double p2m = 0;
  double throttle = 0;
};

Point run_point(const core::HostConfig& hc, std::uint32_t cores, bool c2m_writes,
                bool with_hostcc, const core::RunOptions& opt) {
  core::HostSystem host(hc);
  for (std::uint32_t i = 0; i < cores; ++i)
    host.add_core(c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(i))
                             : workloads::c2m_read(workloads::c2m_core_region(i)));
  host.add_storage(workloads::fio_p2m_write(hc, workloads::p2m_region()));
  std::unique_ptr<hostcc::HostCongestionController> cc;
  if (with_hostcc) cc = std::make_unique<hostcc::HostCongestionController>(host, hostcc::HostccConfig{});
  host.run(opt.warmup, opt.measure);
  const auto m = host.collect();
  Point p;
  p.c2m = m.c2m_app_gbps;
  p.p2m = m.p2m_dev_gbps;
  p.throttle = cc ? cc->avg_throttle(host.sim().now()) : 0.0;
  return p;
}

void sweep(const char* title, bool c2m_writes) {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();
  banner(title);
  Table t({"C2M cores", "P2M GB/s off", "P2M GB/s on", "C2M GB/s off", "C2M GB/s on",
           "avg throttle"});
  for (std::uint32_t n : {1u, 2u, 3u, 4u, 5u, 6u}) {
    const Point off = run_point(hc, n, c2m_writes, false, opt);
    const Point on = run_point(hc, n, c2m_writes, true, opt);
    t.row({std::to_string(n), Table::num(off.p2m), Table::num(on.p2m),
           Table::num(off.c2m), Table::num(on.c2m), Table::pct(on.throttle * 100)});
  }
  t.print();
}

}  // namespace

int main() {
  sweep("hostCC extension: quadrant 3 (C2M-ReadWrite + P2M-Write)", true);
  sweep("hostCC extension: quadrant 1 (C2M-Read + P2M-Write; should stay idle)", false);
  std::printf("\nTakeaway: a ~360 ns P2M-Write latency target recovers PCIe line rate\n"
              "in the red regime by pacing the cores, and costs nothing in the blue\n"
              "regime where the P2M domain's spare credits already absorb contention.\n");
  return 0;
}
