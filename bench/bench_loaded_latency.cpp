// Loaded-latency curve (Intel MLC-style): idle memory latency measured by a
// dependent pointer chase (MLP = 1) as P2M load sweeps from 0 to PCIe line
// rate -- the classic host-memory characterization, reproduced on the
// simulator. This is the per-request view of the blue regime: the latency
// a latency-critical app sees grows with peripheral load long before
// bandwidth saturates.
#include <array>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "core/parallel.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

/// Dependent random loads: one outstanding miss at a time (episodes of one
/// read, no compute) -- a pointer chase.
cpu::CoreWorkload latency_probe(mem::Region r) {
  cpu::CoreWorkload w;
  w.pattern = cpu::CoreWorkload::Pattern::kRandom;
  w.region = r;
  w.episode_reads = 1;
  w.episodes_per_query = 1;
  w.episode_compute = 0;
  return w;
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();

  banner("Loaded latency: pointer chase vs P2M-Write load (Cascade Lake)");
  Table t({"P2M load (GB/s)", "chase latency (ns)", "p99 (ns)", "mem util"});
  // Each load point owns its HostSystem, so the curve is embarrassingly
  // parallel: run the points on the sweep worker pool and print in order.
  const std::array<double, 6> loads{0.0, 2.0, 4.0, 7.0, 10.0, 14.0};
  struct Row {
    double latency_ns, p99_ns, util;
  };
  std::vector<Row> rows(loads.size());
  core::run_parallel(loads.size(), [&](std::size_t i) {
    const double load = loads[i];
    core::HostSystem h(host);
    h.add_core(latency_probe(workloads::c2m_core_region(0)));
    if (load > 0) {
      auto dev = workloads::fio_p2m_write(host, workloads::p2m_region());
      dev.link_gb_per_s = load;
      h.add_storage(dev);
    }
    h.run(opt.warmup, opt.measure);
    auto m = h.collect();
    const auto& hist = h.cores().front()->lfb_station().histogram();
    rows[i] = {m.lfb_latency_ns, hist.p99(),
               m.total_mem_gbps() / host.dram_peak_gb_per_s() * 100};
  });
  for (std::size_t i = 0; i < loads.size(); ++i)
    t.row({Table::num(loads[i], 0), Table::num(rows[i].latency_ns, 1),
           Table::num(rows[i].p99_ns, 0), Table::pct(rows[i].util)});
  t.print();
  std::printf("\nA dependent chase has no credits to spare (MLP = 1), so every\n"
              "nanosecond of MC queueing lands on the application -- even at\n"
              "~30%% memory utilization the p99 roughly doubles.\n");
  return 0;
}
