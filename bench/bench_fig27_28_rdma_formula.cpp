// Figures 27 & 28 (Appendix E.1): the analytical formula applied to the
// RDMA case study -- throughput error per quadrant (Fig 27) and the
// formula component breakdown (Fig 28).
#include <string>
#include <vector>

#include "analytic/formula.hpp"
#include "common/table.hpp"
#include "net/rdma.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

analytic::Constants calibrate(const core::HostConfig& host, const core::RunOptions& opt) {
  analytic::Constants c;
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 1;
  c.c2m_read_ns =
      core::run_workloads(host, c2m, std::nullopt, opt).metrics.lfb_latency_ns;
  net::RdmaSpec wr;
  const auto mw = net::run_rdma(host, std::nullopt, wr, opt).metrics;
  c.p2m_write_ns = mw.p2m_write.latency_ns;
  net::RdmaSpec rd;
  rd.write_traffic = false;
  const auto mr = net::run_rdma(host, std::nullopt, rd, opt).metrics;
  c.p2m_read_ns = mr.p2m_read.latency_ns;
  return c;
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  const auto constants = calibrate(host, opt);

  struct Quad {
    const char* name;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quad quads[] = {
      {"RDMA Quadrant 1", false, true},
      {"RDMA Quadrant 2", false, false},
      {"RDMA Quadrant 3", true, true},
      {"RDMA Quadrant 4", true, false},
  };

  for (const auto& q : quads) {
    core::C2MSpec c2m;
    c2m.workload = q.c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                                : workloads::c2m_read(workloads::c2m_core_region(0));
    net::RdmaSpec rdma;
    rdma.write_traffic = q.p2m_writes;
    const auto c2m_kind = q.c2m_writes ? analytic::DomainKind::kC2MReadWrite
                                       : analytic::DomainKind::kC2MRead;
    const auto p2m_kind =
        q.p2m_writes ? analytic::DomainKind::kP2MWrite : analytic::DomainKind::kP2MRead;

    banner(std::string("Fig 27/28: formula on ") + q.name);
    Table t({"C2M cores", "C2M err (+CHA)", "P2M err (+CHA)", "Switching", "HoL other",
             "HoL same", "TopOfQueue"});
    for (auto n : cores) {
      c2m.cores = n;
      const auto m = net::run_rdma(host, c2m, rdma, opt).metrics;
      const analytic::EstimateOptions eo{.add_cha_admission_delay = true};
      const auto ec = analytic::estimate(c2m_kind, m, host.mc.timing, constants, eo);
      const auto ep = analytic::estimate(p2m_kind, m, host.mc.timing, constants, eo);
      const double meas_c = m.c2m_read.throughput_gbps;
      const double meas_p = q.p2m_writes ? m.p2m_write.throughput_gbps
                                         : m.p2m_read.throughput_gbps;
      t.row({std::to_string(n),
             Table::pct(relative_error_pct(ec.throughput_gbps, meas_c)),
             Table::pct(relative_error_pct(ep.throughput_gbps, meas_p)),
             Table::num(ec.breakdown.switching_ns, 1) + "ns",
             Table::num(ec.breakdown.hol_other_ns, 1) + "ns",
             Table::num(ec.breakdown.hol_same_ns, 1) + "ns",
             Table::num(ec.breakdown.top_of_queue_ns, 1) + "ns"});
    }
    t.print();
  }
  return 0;
}
