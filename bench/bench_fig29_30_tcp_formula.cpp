// Figures 29 & 30 (Appendix E.2): the analytical formula applied to the
// DCTCP case study. Per the paper's methodology, the Network app's C2M
// throughput estimate divides the measured average LFB occupancy of the
// copy cores by the formula's C2M latency, and its P2M estimate divides
// the measured IIO occupancy by the formula's P2M-Write latency.
#include <string>
#include <vector>

#include "analytic/formula.hpp"
#include "common/table.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_case(const char* title, bool c2m_writes, const analytic::Constants& constants) {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4};

  banner(title);
  Table t({"C2M cores", "Memory app err", "Net C2M err", "Net P2M err"});
  for (auto n : cores) {
    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto wl = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(i))
                           : workloads::c2m_read(workloads::c2m_core_region(i));
      host.add_core(wl);
    }
    net::DctcpConfig cfg;
    net::TcpReceiver rx(host, cfg);
    host.run(opt.warmup, opt.measure);
    const auto m = host.collect();
    const Tick now = host.sim().now();

    const analytic::EstimateOptions eo{.add_cha_admission_delay = true};
    // Memory app (the colocated C2M workload).
    const auto kind = c2m_writes ? analytic::DomainKind::kC2MReadWrite
                                 : analytic::DomainKind::kC2MRead;
    const auto em = analytic::estimate(kind, m, hc.mc.timing, constants, eo);
    const double mem_err =
        relative_error_pct(em.throughput_gbps, m.c2m_read.throughput_gbps);

    // Network app C2M: copy-core LFB occupancy / formula C2M latency.
    // The copy makes two LFB trips per line (socket read + RFO-less store),
    // so its effective latency is the formula's read latency.
    const auto in = analytic::inputs_from_metrics(m);
    const double l_read = analytic::read_domain_latency_ns(constants.c2m_read_ns, in,
                                                           hc.mc.timing) +
                          em.cha_admission_delay_ns;
    const double net_c2m_est =
        analytic::estimate_throughput_gbps(rx.copy_lfb_occupancy(now), l_read);
    const double net_c2m_meas = gb_per_s(
        [&] {
          std::uint64_t lines = 0;
          for (auto& c : rx.copy_cores()) lines += c->lines_copied();
          return lines * kCachelineBytes;
        }(),
        ns(m.window_ns));
    const double net_c2m_err = relative_error_pct(net_c2m_est, net_c2m_meas);

    // Network app P2M: IIO write occupancy / formula P2M-Write latency.
    const auto ep =
        analytic::estimate(analytic::DomainKind::kP2MWrite, m, hc.mc.timing, constants, eo);
    const double net_p2m_err =
        relative_error_pct(ep.throughput_gbps, m.p2m_write.throughput_gbps);

    t.row({std::to_string(n), Table::pct(mem_err), Table::pct(net_c2m_err),
           Table::pct(net_p2m_err)});
  }
  t.print();
}

}  // namespace

int main() {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();
  analytic::Constants constants;
  {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 1;
    constants.c2m_read_ns =
        core::run_workloads(hc, c2m, std::nullopt, opt).metrics.lfb_latency_ns;
  }
  {
    core::P2MSpec probe;
    probe.storage = workloads::fio_4k_qd1(hc, workloads::p2m_region());
    constants.p2m_write_ns =
        core::run_workloads(hc, std::nullopt, probe, opt).metrics.p2m_write.latency_ns;
  }
  run_case("Fig 29 (top) / Fig 30: C2MRead + TCP Rx formula accuracy", false, constants);
  run_case("Fig 29 (bottom) / Fig 30: C2MReadWrite + TCP Rx formula accuracy", true,
           constants);
  std::printf("\nNote: as in the paper, points with significant packet loss are\n"
              "dominated by congestion-control dynamics that the formula does not\n"
              "model; errors there are expected to be larger (paper: ~26%%).\n");
  return 0;
}
