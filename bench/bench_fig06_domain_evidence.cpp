// Figure 6 + section 4.2: evidence for the domains and their
// characteristics.
//
// (a) C2M-Read sweep: LFB latency vs CHA->DRAM read latency. The LFB
//     latency must always exceed (and inflate in lockstep with) the
//     CHA->DRAM latency: the C2M-Read domain spans all hops to DRAM.
// (b) C2M-ReadWrite sweep: LFB latency vs CHA->MC write latency. The
//     CHA->MC write latency can exceed the LFB latency, proving the
//     C2M-Write domain does NOT include the MC.
// (c) Low-load P2M (4 KB QD1 storage reads) colocated with C2M-ReadWrite:
//     IIO latency vs CHA->MC write latency -- the IIO latency is inclusive
//     of it (the P2M-Write domain DOES include the MC).
// (d) Credit counts: max LFB occupancy (10-12), IIO write-buffer occupancy
//     saturation (~92), in-flight P2M reads at the CHA (lower bound on the
//     P2M-Read credits).
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  // (a) C2M-Read: LFB vs CHA->DRAM read latency.
  banner("Fig 6(a): C2M-Read -- LFB latency vs CHA->DRAM read latency");
  {
    Table t({"C2M cores", "LFB lat (ns)", "CHA->DRAM read lat (ns)", "LFB max occ"});
    for (auto n : cores) {
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = n;
      const auto r = core::run_workloads(host, c2m, std::nullopt, opt);
      const auto& d = r.metrics.domain(core::Domain::kC2MRead);
      t.row({std::to_string(n), Table::num(d.latency_ns, 1),
             Table::num(r.metrics.cha_dram_read_latency_c2m_ns, 1),
             std::to_string(static_cast<std::int64_t>(d.max_credits_used))});
    }
    t.print();
  }

  // (b) C2M-ReadWrite: LFB vs CHA->MC write latency.
  banner("Fig 6(b): C2M-ReadWrite -- LFB latency vs CHA->MC write latency");
  {
    Table t({"C2M cores", "LFB lat (ns)", "CHA->MC write lat (ns)", "C2M-Write lat (ns)"});
    for (auto n : cores) {
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
      c2m.cores = n;
      const auto r = core::run_workloads(host, c2m, std::nullopt, opt);
      t.row({std::to_string(n),
             Table::num(r.metrics.domain(core::Domain::kC2MRead).latency_ns, 1),
             Table::num(r.metrics.cha_mc_write_latency_ns, 1),
             Table::num(r.metrics.domain(core::Domain::kC2MWrite).latency_ns, 1)});
    }
    t.print();
  }

  // (c) P2M-Write domain: low-load P2M colocated with C2M-ReadWrite.
  banner("Fig 6(c,d): 4KB-QD1 P2M-Write -- IIO latency vs CHA->MC write latency");
  {
    Table t({"C2M cores", "IIO lat (ns)", "CHA->MC write lat (ns)", "IIO wr occ (avg)"});
    for (std::uint32_t n = 0; n <= 6; ++n) {
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
      c2m.cores = n;
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_4k_qd1(host, workloads::p2m_region());
      const auto r = core::run_workloads(
          host, n > 0 ? std::optional<core::C2MSpec>(c2m) : std::nullopt, p2m, opt);
      const auto& d = r.metrics.domain(core::Domain::kP2MWrite);
      t.row({std::to_string(n), Table::num(d.latency_ns, 1),
             Table::num(r.metrics.cha_mc_write_latency_ns, 1),
             Table::num(d.credits_in_use, 1)});
    }
    t.print();
  }

  // (d) Credit counts under saturation.
  banner("Fig 6(d)/§4.2: domain credit counts");
  {
    Table t({"measurement", "value", "paper"});
    {
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = 1;
      const auto r = core::run_workloads(host, c2m, std::nullopt, opt);
      const auto& d = r.metrics.domain(core::Domain::kC2MRead);
      t.row({"max LFB occupancy (C2M-Read, 1 core)",
             std::to_string(static_cast<std::int64_t>(d.max_credits_used)), "10-12"});
      t.row({"unloaded C2M-Read latency (ns)", Table::num(d.latency_ns, 1),
             "~70"});
    }
    {
      // P2M-Write saturating PCIe + max C2M load: IIO write buffer fills.
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
      c2m.cores = 6;
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
      const auto r = core::run_workloads(host, c2m, p2m, opt);
      t.row({"IIO write buffer occupancy saturation",
             Table::num(r.metrics.domain(core::Domain::kP2MWrite).max_credits_used, 0),
             "~92"});
    }
    {
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = 6;
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_p2m_read(host, workloads::p2m_region());
      const auto r = core::run_workloads(host, c2m, p2m, opt);
      t.row({"in-flight P2M reads at CHA (max, lower bound on credits)",
             std::to_string(r.metrics.p2m_reads_in_flight_at_cha_max), ">=164"});
    }
    {
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_4k_qd1(host, workloads::p2m_region());
      const auto r = core::run_workloads(host, std::nullopt, p2m, opt);
      t.row({"unloaded P2M-Write domain latency (ns)",
             Table::num(r.metrics.domain(core::Domain::kP2MWrite).latency_ns, 1),
             "~300"});
    }
    t.print();
  }
  return 0;
}
