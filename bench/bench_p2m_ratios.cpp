// Appendix-B companion: sweeping the P2M read/write mix. The paper's
// quadrants use pure P2M-Read or pure P2M-Write; real storage workloads
// mix both. The sweep shows how the colocated equilibrium interpolates
// between quadrants 1 and 2 (for C2M-Read) and 3 and 4 (for C2M-RW): the
// write component is what triggers the red regime.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();

  for (bool c2m_writes : {false, true}) {
    core::C2MSpec c2m;
    c2m.workload = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                              : workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 4;
    banner(std::string("P2M read/write mix sweep, 4 cores of ") +
           (c2m_writes ? "C2M-ReadWrite" : "C2M-Read"));
    Table t({"storage write%", "C2M degr", "P2M degr", "P2M GB/s", "P2M-W lat (ns)",
             "regime"});
    for (double wr_pct : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      core::P2MSpec p2m;
      // Storage writes are host reads: host-write fraction = 1 - wr_pct.
      iio::StorageConfig sc = workloads::fio_p2m_write(host, workloads::p2m_region());
      sc.mixed_fraction = wr_pct;  // fraction flipped to host reads
      p2m.storage = sc;
      const auto o = core::run_colocation(host, c2m, p2m, opt);
      t.row({Table::pct(wr_pct * 100, 0), Table::num(o.c2m_degradation()) + "x",
             Table::num(o.p2m_degradation()) + "x", Table::num(o.colo.p2m_score, 1),
             Table::num(o.colo.metrics.p2m_write.latency_ns, 0),
             core::to_string(o.regime())});
    }
    t.print();
  }
  std::printf("\n(storage write%% = fraction of requests doing storage writes, i.e.\n"
              " host-memory reads; 0%% = the paper's P2M-Write quadrants.)\n");
  return 0;
}
