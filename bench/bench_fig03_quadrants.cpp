// Figure 3: the blue and red regimes across the four C2M x P2M read/write
// quadrants on Cascade Lake (prefetching and DDIO disabled).
//
// For each quadrant, prints (per C2M core count): C2M and P2M throughput
// degradation (isolated/colocated) and the colocated memory-bandwidth
// breakdown -- the left/right columns of each quadrant in the figure.
//
// Sweep points run on the parallel sweep engine (HOSTNET_THREADS to cap);
// results are bit-identical to the serial protocol.
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  struct Quadrant {
    const char* title;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quadrant quadrants[] = {
      {"Quadrant 1: C2M-Read + P2M-Write", false, true},
      {"Quadrant 2: C2M-Read + P2M-Read", false, false},
      {"Quadrant 3: C2M-ReadWrite + P2M-Write", true, true},
      {"Quadrant 4: C2M-ReadWrite + P2M-Read", true, false},
  };

  for (const auto& q : quadrants) {
    core::C2MSpec c2m;
    c2m.name = q.c2m_writes ? "C2M-ReadWrite" : "C2M-Read";
    c2m.workload = q.c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                                : workloads::c2m_read(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.name = q.p2m_writes ? "P2M-Write" : "P2M-Read";
    p2m.storage = q.p2m_writes ? workloads::fio_p2m_write(host, workloads::p2m_region())
                               : workloads::fio_p2m_read(host, workloads::p2m_region());

    const auto sweep = core::sweep_c2m_cores_parallel(host, c2m, p2m, cores, opt);

    banner(q.title);
    Table t({"C2M cores", "C2M degr", "P2M degr", "C2M GB/s", "P2M GB/s", "mem total",
             "regime"});
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const auto& o = sweep[i];
      const auto& m = o.colo.metrics;
      t.row({std::to_string(cores[i]), Table::num(o.c2m_degradation()) + "x",
             Table::num(o.p2m_degradation()) + "x", Table::num(m.c2m_mem_gbps(), 1),
             Table::num(m.p2m_mem_gbps(), 1), Table::num(m.total_mem_gbps(), 1),
             core::to_string(o.regime())});
    }
    t.print();
  }
  return 0;
}
