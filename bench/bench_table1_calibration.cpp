// Table 1: the two simulated testbeds and their calibration.
//
// Prints the hardware configuration (as modeled) and verifies the paper's
// stated calibration property: "a simple sequential read microbenchmark
// saturates more than 90% of theoretical maximum memory bandwidth", plus
// the per-domain credit/latency characteristics of section 4.2.
#include <string>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void calibrate(const core::HostConfig& host, std::uint32_t seq_cores) {
  const auto opt = core::default_run_options();
  banner("Calibration: " + host.name);
  Table t({"property", "value", "paper"});
  t.row({"theoretical DRAM BW (GB/s)", Table::num(host.dram_peak_gb_per_s(), 1),
         host.dram.channels == 2 ? "46.9" : "102.4"});
  {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = seq_cores;
    const auto m = core::run_workloads(host, c2m, std::nullopt, opt).metrics;
    t.row({"seq-read saturation (" + std::to_string(seq_cores) + " cores)",
           Table::pct(m.total_mem_gbps() / host.dram_peak_gb_per_s() * 100), ">90%"});
  }
  {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 1;
    const auto m = core::run_workloads(host, c2m, std::nullopt, opt).metrics;
    t.row({"unloaded C2M-Read latency (ns)", Table::num(m.lfb_latency_ns, 1), "~70"});
    t.row({"LFB credits (max occupancy)", std::to_string(m.lfb_max_occupancy), "10-12"});
  }
  {
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_4k_qd1(host, workloads::p2m_region());
    const auto m = core::run_workloads(host, std::nullopt, p2m, opt).metrics;
    t.row({"unloaded P2M-Write latency (ns)", Table::num(m.p2m_write.latency_ns, 1),
           "~300"});
  }
  {
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
    const auto m = core::run_workloads(host, std::nullopt, p2m, opt).metrics;
    t.row({"P2M-Write throughput (GB/s)", Table::num(m.p2m_dev_gbps, 1),
           host.dram.channels == 2 ? "~14 (PCIe)" : "~28 (PCIe)"});
    t.row({"IIO write credits", std::to_string(host.iio.write_credits),
           host.dram.channels == 2 ? "~92" : "(2 stacks)"});
  }
  t.print();
}

}  // namespace

int main() {
  for (const auto& host : {core::cascade_lake(), core::ice_lake()}) {
    banner("Table 1: " + host.name + " (as modeled)");
    Table t({"component", "value"});
    t.row({"cores", std::to_string(host.total_cores) + " @ " +
                        Table::num(host.core_ghz, 1) + " GHz"});
    t.row({"DRAM", std::to_string(host.dram.channels) + " channels x " +
                       std::to_string(host.dram.banks_per_channel) + " banks, " +
                       std::to_string(host.dram.row_bytes / 1024) + " KB rows"});
    t.row({"tTrans / tCAS / tRCD / tRP (ns)",
           Table::num(to_ns(host.mc.timing.t_trans)) + " / " +
               Table::num(to_ns(host.mc.timing.t_cas)) + " / " +
               Table::num(to_ns(host.mc.timing.t_rcd)) + " / " +
               Table::num(to_ns(host.mc.timing.t_rp))});
    t.row({"RPQ / WPQ per channel", std::to_string(host.mc.rpq_capacity) + " / " +
                                        std::to_string(host.mc.wpq_capacity)});
    t.row({"PCIe eff. write / read (GB/s)", Table::num(host.pcie_write_gb_per_s, 1) +
                                                " / " +
                                                Table::num(host.pcie_read_gb_per_s, 1)});
    t.row({"IIO write / read credits", std::to_string(host.iio.write_credits) + " / " +
                                           std::to_string(host.iio.read_credits)});
    t.print();
    calibrate(host, host.dram.channels == 2 ? 6 : 16);
  }
  return 0;
}
