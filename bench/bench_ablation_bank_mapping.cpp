// Ablation: how the DRAM address mapping shapes the blue regime.
//
// DESIGN.md calls out three mapping ingredients: (1) the XOR bank hash
// (vs the lockstep-prone linear mapping), (2) the bank-interleave
// granularity, and (3) the adaptive page-close policy. This bench
// quantifies each one's contribution to quadrant-1 C2M degradation and the
// row-miss inflation.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

struct Variant {
  std::string name;
  core::HostConfig host;
};

void run_variants(const std::vector<Variant>& variants) {
  const auto opt = core::default_run_options();
  Table t({"variant", "iso C2M GB/s (2c)", "C2M degr (2c)", "rowmiss iso", "rowmiss colo",
           "P2M degr"});
  for (const auto& v : variants) {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = 2;
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(v.host, workloads::p2m_region());
    const auto o = core::run_colocation(v.host, c2m, p2m, opt);
    t.row({v.name, Table::num(o.iso_c2m.c2m_score, 1),
           Table::num(o.c2m_degradation()) + "x",
           Table::pct(o.iso_c2m.metrics.row_miss_ratio_read * 100),
           Table::pct(o.colo.metrics.row_miss_ratio_read * 100),
           Table::num(o.p2m_degradation()) + "x"});
  }
  t.print();
}

}  // namespace

int main() {
  banner("Ablation: bank hash and interleave granularity (quadrant 1, 2 C2M cores)");
  std::vector<Variant> variants;
  {
    Variant v{"xor-hash, 8KB bank chunks (default)", core::cascade_lake()};
    variants.push_back(v);
  }
  {
    Variant v{"linear bank map (lockstep streams)", core::cascade_lake()};
    v.host.dram.hash = dram::BankHash::kLinear;
    variants.push_back(v);
  }
  {
    Variant v{"xor-hash, 2KB bank chunks", core::cascade_lake()};
    v.host.dram.bank_interleave_bytes = 2048;
    variants.push_back(v);
  }
  {
    Variant v{"xor-hash, 256B bank chunks (fine cyclic)", core::cascade_lake()};
    v.host.dram.bank_interleave_bytes = 256;
    variants.push_back(v);
  }
  {
    Variant v{"no page-close policy (rows stay open)", core::cascade_lake()};
    v.host.mc.timing.t_page_close_idle = ms(10);
    variants.push_back(v);
  }
  {
    Variant v{"aggressive page close (40 ns idle)", core::cascade_lake()};
    v.host.mc.timing.t_page_close_idle = ns(40);
    variants.push_back(v);
  }
  run_variants(variants);
  std::printf("\nTakeaways: the linear map collapses isolated multi-stream throughput\n"
              "(lockstep bank conflicts); fine cyclic interleave destroys row locality\n"
              "for any interleaved streams; disabling the page-close policy removes\n"
              "most of the colocation row-miss inflation (the drain-interruption\n"
              "mechanism of section 5.1).\n");
  return 0;
}
