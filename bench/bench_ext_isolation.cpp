// Extension (paper section 7): CHA/MC scheduling mechanisms that isolate
// C2M and P2M traffic -- peripheral write priority at the CHA->MC
// forwarding stage and a reserved tracker share for peripheral writes.
//
// Quadrant-3 sweep across isolation policies: the red regime's P2M
// collapse is a queueing-order artifact (P2M writes FIFO behind the C2M
// write-back backlog), so reordering at the CHA largely restores P2M at a
// modest C2M cost.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const auto opt = core::default_run_options();

  struct Policy {
    std::string name;
    bool priority;
    std::uint32_t reserve;
  };
  const std::vector<Policy> policies{
      {"baseline (FIFO writes)", false, 0},
      {"P2M write priority", true, 0},
      {"P2M priority + 48-entry tracker reserve", true, 48},
  };

  banner("Isolation extension: quadrant 3 (C2M-ReadWrite + P2M-Write)");
  for (const auto& pol : policies) {
    core::HostConfig host = core::cascade_lake();
    host.cha.peripheral_write_priority = pol.priority;
    host.cha.write_tracker_peripheral_reserve = pol.reserve;

    Table t({"C2M cores", "C2M degr", "P2M degr", "P2M GB/s", "P2M-W lat (ns)"});
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
    banner("policy: " + pol.name);
    for (std::uint32_t n : {2u, 4u, 6u}) {
      c2m.cores = n;
      const auto o = core::run_colocation(host, c2m, p2m, opt);
      t.row({std::to_string(n), Table::num(o.c2m_degradation()) + "x",
             Table::num(o.p2m_degradation()) + "x", Table::num(o.colo.p2m_score, 1),
             Table::num(o.colo.metrics.p2m_write.latency_ns, 0)});
    }
    t.print();
  }
  return 0;
}
