// Figure 11: accuracy of the analytical formulae (section 6).
//
// For every quadrant and C2M core count, feed the measured counter inputs
// (Table 2) into the read/write domain-latency formulae, estimate
// throughput via the domain law, and report the relative error vs the
// measured throughput. Positive = overestimation.
//
// Quadrants 1/2/4 report C2M error; quadrant 3 reports both C2M and P2M,
// with and without the CHA admission-delay correction (the paper's fix for
// the >4-core regime where CHA backpressure inflates both domains).
#include <string>
#include <vector>

#include "analytic/formula.hpp"
#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

analytic::Constants calibrate(const core::HostConfig& host, const core::RunOptions& opt) {
  analytic::Constants c;
  // Unloaded C2M-Read domain latency: single isolated core.
  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
  c2m.cores = 1;
  c.c2m_read_ns = core::run_workloads(host, c2m, std::nullopt, opt).metrics.lfb_latency_ns;
  // Unloaded P2M-Write domain latency: low-load 4KB QD1 probe.
  core::P2MSpec probe;
  probe.storage = workloads::fio_4k_qd1(host, workloads::p2m_region());
  c.p2m_write_ns =
      core::run_workloads(host, std::nullopt, probe, opt).metrics.p2m_write.latency_ns;
  // Unloaded P2M-Read domain latency: isolated P2M-Read at low load is
  // link-limited with spare credits; L = O*64/T by Little's law.
  core::P2MSpec rd;
  rd.storage = workloads::fio_p2m_read(host, workloads::p2m_region());
  const auto m = core::run_workloads(host, std::nullopt, rd, opt).metrics;
  c.p2m_read_ns = m.p2m_read.latency_ns;
  c.c2m_write_ns = 10.0;
  return c;
}

double measured_gbps(analytic::DomainKind kind, const core::Metrics& m) {
  switch (kind) {
    case analytic::DomainKind::kC2MRead:
    case analytic::DomainKind::kC2MReadWrite:
      return m.c2m_read.throughput_gbps;
    case analytic::DomainKind::kP2MRead:
      return m.p2m_read.throughput_gbps;
    case analytic::DomainKind::kP2MWrite:
      return m.p2m_write.throughput_gbps;
  }
  return 0;
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  const auto constants = calibrate(host, opt);

  struct Quad {
    const char* name;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quad quads[] = {
      {"Quadrant 1 (C2M-Read + P2M-Write)", false, true},
      {"Quadrant 2 (C2M-Read + P2M-Read)", false, false},
      {"Quadrant 3 (C2M-ReadWrite + P2M-Write)", true, true},
      {"Quadrant 4 (C2M-ReadWrite + P2M-Read)", true, false},
  };

  for (const auto& q : quads) {
    core::C2MSpec c2m;
    c2m.workload = q.c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                                : workloads::c2m_read(workloads::c2m_core_region(0));
    core::P2MSpec p2m;
    p2m.storage = q.p2m_writes ? workloads::fio_p2m_write(host, workloads::p2m_region())
                               : workloads::fio_p2m_read(host, workloads::p2m_region());
    const auto c2m_kind = q.c2m_writes ? analytic::DomainKind::kC2MReadWrite
                                       : analytic::DomainKind::kC2MRead;
    const auto p2m_kind =
        q.p2m_writes ? analytic::DomainKind::kP2MWrite : analytic::DomainKind::kP2MRead;

    banner(std::string("Fig 11: formula error, ") + q.name);
    Table t({"C2M cores", "C2M err", "C2M err (+CHA)", "P2M err", "P2M err (+CHA)"});
    for (auto n : cores) {
      c2m.cores = n;
      const auto m = core::run_workloads(host, c2m, p2m, opt).metrics;
      const auto e_c = analytic::estimate(c2m_kind, m, host.mc.timing, constants);
      const auto e_cc = analytic::estimate(c2m_kind, m, host.mc.timing, constants,
                                           {.add_cha_admission_delay = true});
      const auto e_p = analytic::estimate(p2m_kind, m, host.mc.timing, constants);
      const auto e_pc = analytic::estimate(p2m_kind, m, host.mc.timing, constants,
                                           {.add_cha_admission_delay = true});
      t.row({std::to_string(n),
             Table::pct(relative_error_pct(e_c.throughput_gbps, measured_gbps(c2m_kind, m))),
             Table::pct(relative_error_pct(e_cc.throughput_gbps, measured_gbps(c2m_kind, m))),
             Table::pct(relative_error_pct(e_p.throughput_gbps, measured_gbps(p2m_kind, m))),
             Table::pct(relative_error_pct(e_pc.throughput_gbps, measured_gbps(p2m_kind, m)))});
    }
    t.print();
  }
  return 0;
}
