// Figures 13 & 14 (Appendix A): root-cause measurements for quadrants 2
// (C2M-Read + P2M-Read) and 4 (C2M-ReadWrite + P2M-Read).
//
// Both show the blue regime driven by MC read queueing (latency inflation,
// RPQ occupancy, row misses) with P2M-Read protected by its large spare
// credit pool: in-flight P2M reads at the CHA stay far below the IIO read
// buffer limit.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_quadrant(const char* title, const core::HostConfig& host, bool c2m_writes) {
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  core::C2MSpec c2m;
  c2m.workload = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                            : workloads::c2m_read(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_read(host, workloads::p2m_region());

  // Two measurement windows (iso, colo) per core count, all independent --
  // run them as one batch on the parallel sweep engine.
  std::vector<core::WorkloadPoint> points;
  for (auto n : cores) {
    c2m.cores = n;
    points.push_back({host, c2m, std::nullopt});
    points.push_back({host, c2m, p2m});
  }
  const auto results = core::run_workload_points(points, opt);

  banner(title);
  Table t({"C2M cores", "LFB iso (ns)", "LFB colo (ns)", "RPQ iso", "RPQ colo",
           "rowmiss iso", "rowmiss colo", "P2M rd inflight@CHA (max)", "P2M GB/s"});
  for (std::size_t i = 0; i < cores.size(); ++i) {
    const auto n = cores[i];
    const auto& iso = results[2 * i].metrics;
    const auto& colo = results[2 * i + 1].metrics;
    t.row({std::to_string(n), Table::num(iso.lfb_latency_ns, 1),
           Table::num(colo.lfb_latency_ns, 1), Table::num(iso.avg_rpq_occupancy, 1),
           Table::num(colo.avg_rpq_occupancy, 1), Table::pct(iso.row_miss_ratio_read * 100),
           Table::pct(colo.row_miss_ratio_read * 100),
           std::to_string(colo.p2m_reads_in_flight_at_cha_max),
           Table::num(colo.p2m_dev_gbps, 1)});
  }
  t.print();
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  run_quadrant("Fig 13 (Appendix A): quadrant 2 -- C2M-Read + P2M-Read", host, false);
  run_quadrant("Fig 14 (Appendix A): quadrant 4 -- C2M-ReadWrite + P2M-Read", host, true);
  std::printf("\nIIO read-buffer credit limit: %u cachelines (in-flight stays below it:\n"
              "spare credits are why P2M-Read tolerates the latency inflation)\n",
              host.iio.read_credits);
  return 0;
}
