// Figure 1: the new phenomenon with real applications on Ice Lake --
// Redis (YCSB-C) and GAPBS (PageRank) colocated with FIO sequential reads.
// C2M app performance degrades while the P2M app is unaffected, even
// though memory bandwidth is far from saturated.
//
// (a,b) performance degradation vs number of C2M cores
// (c,d) colocated memory bandwidth utilization, split C2M/P2M
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_app(const char* title, const core::HostConfig& host, const core::C2MSpec& base,
             const std::vector<std::uint32_t>& cores) {
  auto opt = core::default_run_options();
  core::P2MSpec p2m;
  p2m.name = "FIO";
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  banner(title);
  Table t({"C2M cores", "C2M degr", "P2M degr", "C2M mem GB/s", "P2M mem GB/s",
           "mem util", "P2M GB/s"});
  const auto sweep = core::sweep_c2m_cores(host, base, p2m, cores, opt);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const auto& o = sweep[i];
    const auto& m = o.colo.metrics;
    t.row({std::to_string(cores[i]), Table::num(o.c2m_degradation()) + "x",
           Table::num(o.p2m_degradation()) + "x", Table::num(m.c2m_mem_gbps(), 1),
           Table::num(m.p2m_mem_gbps(), 1),
           Table::pct(m.total_mem_gbps() / host.dram_peak_gb_per_s() * 100),
           Table::num(o.colo.p2m_score, 1)});
  }
  t.print();
}

}  // namespace

int main() {
  core::HostConfig host = core::ice_lake();
  // The Ice Lake testbed runs with DDIO permanently enabled (section 2.1).
  host.cha.ddio = true;
  const std::vector<std::uint32_t> cores{4, 8, 12, 16, 20, 24, 28};

  {
    core::C2MSpec redis;
    redis.name = "Redis (YCSB-C)";
    redis.workload = workloads::redis_read(workloads::c2m_core_region(0));
    run_app("Fig 1(a,c): Redis + FIO on Ice Lake (queries/s degradation)", host, redis,
            cores);
  }
  {
    core::C2MSpec gapbs;
    gapbs.name = "GAPBS PageRank";
    gapbs.workload = workloads::gapbs_pr(workloads::c2m_shared_region());
    gapbs.per_core_region = false;  // one shared graph
    run_app("Fig 1(b,d): GAPBS-PR + FIO on Ice Lake (slowdown = degradation)", host,
            gapbs, cores);
  }
  return 0;
}
