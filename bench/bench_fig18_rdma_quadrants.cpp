// Figure 18 (Appendix C.1): the blue and red regimes across the four
// quadrants with RDMA (RoCE/PFC) generating the P2M traffic.
//
//   ib_write_bw -> P2M-Write at the server (quadrants 1 and 3)
//   ib_read_bw  -> P2M-Read at the server  (quadrants 2 and 4)
//
// The NIC generates slightly lower P2M load than the SSDs (~98 Gbps vs
// ~112 Gbps), so degradations are slightly milder than Figure 3.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "net/rdma.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  struct Quad {
    const char* title;
    bool c2m_writes;
    bool p2m_writes;
  };
  const Quad quads[] = {
      {"RDMA Quadrant 1: C2M-Read + ib_write_bw (P2M-Write)", false, true},
      {"RDMA Quadrant 2: C2M-Read + ib_read_bw (P2M-Read)", false, false},
      {"RDMA Quadrant 3: C2M-ReadWrite + ib_write_bw (P2M-Write)", true, true},
      {"RDMA Quadrant 4: C2M-ReadWrite + ib_read_bw (P2M-Read)", true, false},
  };

  for (const auto& q : quads) {
    core::C2MSpec c2m;
    c2m.workload = q.c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                                : workloads::c2m_read(workloads::c2m_core_region(0));
    net::RdmaSpec rdma;
    rdma.write_traffic = q.p2m_writes;

    banner(q.title);
    Table t({"C2M cores", "C2M degr", "RoCE degr", "C2M mem GB/s", "P2M mem GB/s",
             "PFC pause"});
    for (auto n : cores) {
      c2m.cores = n;
      const auto o = net::run_rdma_colocation(host, c2m, rdma, opt);
      t.row({std::to_string(n), Table::num(o.c2m_degradation()) + "x",
             Table::num(o.p2m_degradation()) + "x",
             Table::num(o.colo.metrics.c2m_mem_gbps(), 1),
             Table::num(o.colo.metrics.p2m_mem_gbps(), 1),
             Table::pct(o.colo.pause_fraction * 100)});
    }
    t.print();
  }
  return 0;
}
