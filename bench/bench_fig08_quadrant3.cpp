// Figure 8: root-cause measurements for quadrant 3 (C2M-ReadWrite +
// P2M-Write) -- the red regime.
//
// (a) C2M-Read domain latency (iso vs colo)
// (b) average RPQ occupancy (with vs without P2M)
// (c) row miss ratio of C2M reads
// (d) P2M-Write domain latency
// (e) WPQ backpressure fraction ("fraction of time WPQ is filled")
// (f) IIO write-buffer occupancy (P2M domain credits in use)
// plus the phase-2 signature: CHA write backlog (N_waiting) and admission
// delay, which equalize C2M/P2M latency inflation at 5-6 cores.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const core::HostConfig host = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};

  core::C2MSpec c2m;
  c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
  core::P2MSpec p2m;
  p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());

  struct Row {
    std::uint32_t n;
    core::Metrics iso;
    core::Metrics colo;
  };
  std::vector<Row> rows;
  for (auto n : cores) {
    c2m.cores = n;
    rows.push_back(Row{n, core::run_workloads(host, c2m, std::nullopt, opt).metrics,
                       core::run_workloads(host, c2m, p2m, opt).metrics});
  }

  banner("Fig 8(a,b,c): C2M latency, RPQ occupancy, row miss ratio");
  Table a({"C2M cores", "LFB iso (ns)", "LFB colo (ns)", "RPQ iso", "RPQ colo",
           "rowmiss iso", "rowmiss colo"});
  for (const auto& r : rows)
    a.row({std::to_string(r.n), Table::num(r.iso.lfb_latency_ns, 1),
           Table::num(r.colo.lfb_latency_ns, 1), Table::num(r.iso.avg_rpq_occupancy, 1),
           Table::num(r.colo.avg_rpq_occupancy, 1),
           Table::pct(r.iso.row_miss_ratio_read * 100),
           Table::pct(r.colo.row_miss_ratio_read * 100)});
  a.print();

  banner("Fig 8(d,e,f): P2M-Write latency, WPQ backpressure, IIO credits");
  Table d({"C2M cores", "P2M-Write lat (ns)", "WPQ full", "IIO wr occ", "IIO wr max",
           "P2M GB/s"});
  for (const auto& r : rows)
    d.row({std::to_string(r.n), Table::num(r.colo.p2m_write.latency_ns, 1),
           Table::pct(r.colo.wpq_full_fraction * 100),
           Table::num(r.colo.p2m_write.credits_in_use, 1),
           Table::num(r.colo.p2m_write.max_credits_used, 0),
           Table::num(r.colo.p2m_dev_gbps, 1)});
  d.print();

  banner("Fig 8 phase 2: CHA write backlog and admission delay (colocated)");
  Table p({"C2M cores", "N_waiting", "C2M-Write lat (ns)", "adm wait C2M-W (ns)",
           "adm wait P2M-W (ns)"});
  for (const auto& r : rows)
    p.row({std::to_string(r.n), Table::num(r.colo.n_waiting, 1),
           Table::num(r.colo.c2m_write.latency_ns, 1),
           Table::num(r.colo.cha_admission_wait_ns[1], 1),
           Table::num(r.colo.cha_admission_wait_ns[3], 1)});
  p.print();
  return 0;
}
