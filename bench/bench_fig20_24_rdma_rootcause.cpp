// Figures 20-24 (Appendix D.1): root-cause measurements for the RDMA case
// study.
//
//   Fig 20: quadrant 1 (C2M-Read + ib_write_bw) counters
//   Fig 21: quadrant 2 (C2M-Read + ib_read_bw) counters
//   Fig 22: quadrant 3 (C2M-ReadWrite + ib_write_bw) counters + PFC pauses
//   Fig 23: microsecond-scale IIO write-buffer occupancy timeline in
//           quadrant 3 (PFC keeps the IIO buffer full)
//   Fig 24: quadrant 4 (C2M-ReadWrite + ib_read_bw) counters
#include <string>
#include <vector>

#include "common/table.hpp"
#include "net/rdma.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_quadrant(const char* title, bool c2m_writes, bool p2m_writes,
                  const core::HostConfig& host) {
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4, 5, 6};
  banner(title);
  Table t({"C2M cores", "LFB lat (ns)", "RPQ occ", "rowmiss rd",
           p2m_writes ? "P2M-W lat (ns)" : "P2M-R inflight@CHA",
           p2m_writes ? "IIO wr occ" : "IIO rd occ", "WPQ full", "PFC pause"});
  for (auto n : cores) {
    core::C2MSpec c2m;
    c2m.workload = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                              : workloads::c2m_read(workloads::c2m_core_region(0));
    c2m.cores = n;
    net::RdmaSpec rdma;
    rdma.write_traffic = p2m_writes;
    const auto o = net::run_rdma(host, c2m, rdma, opt);
    const auto& m = o.metrics;
    t.row({std::to_string(n), Table::num(m.lfb_latency_ns, 1),
           Table::num(m.avg_rpq_occupancy, 1), Table::pct(m.row_miss_ratio_read * 100),
           p2m_writes ? Table::num(m.p2m_write.latency_ns, 1)
                      : Table::num(m.p2m_reads_in_flight_at_cha, 1),
           p2m_writes ? Table::num(m.p2m_write.credits_in_use, 1)
                      : Table::num(m.p2m_read.credits_in_use, 1),
           Table::pct(m.wpq_full_fraction * 100), Table::pct(o.pause_fraction * 100)});
  }
  t.print();
}

}  // namespace

int main() {
  const core::HostConfig host = core::cascade_lake();
  run_quadrant("Fig 20: RDMA quadrant 1 (C2M-Read + ib_write_bw)", false, true, host);
  run_quadrant("Fig 21: RDMA quadrant 2 (C2M-Read + ib_read_bw)", false, false, host);
  run_quadrant("Fig 22: RDMA quadrant 3 (C2M-ReadWrite + ib_write_bw)", true, true, host);
  run_quadrant("Fig 24: RDMA quadrant 4 (C2M-ReadWrite + ib_read_bw)", true, false, host);

  // Fig 23: us-scale IIO write-buffer occupancy, quadrant 3, 5 C2M cores.
  banner("Fig 23: IIO write-buffer occupancy timeline (RDMA Q3, 5 C2M cores)");
  {
    core::C2MSpec c2m;
    c2m.workload = workloads::c2m_read_write(workloads::c2m_core_region(0));
    c2m.cores = 5;
    net::RdmaSpec rdma;
    auto rh = net::make_rdma_host(host, c2m, rdma, 1);
    rh.host->run(us(400), us(10));
    Table t({"t (us)", "IIO wr occupancy", "NIC paused"});
    for (int i = 0; i < 40; ++i) {
      rh.host->run_more(us(1));
      t.row({std::to_string(i + 1),
             std::to_string(rh.host->iio().write_station().occupancy()),
             rh.nic->paused() ? "yes" : "no"});
    }
    t.print();
    std::printf("(PFC keeps enough data queued at the NIC to hold the IIO buffer\n"
                " near its %u-credit capacity, matching the paper's Figure 23.)\n",
                host.iio.write_credits);
  }
  return 0;
}
