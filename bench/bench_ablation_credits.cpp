// Ablation: domain credit sizing -- a direct probe of the paper's
// T <= C x 64 / L law.
//
// (a) LFB size sweep: isolated C2M-Read throughput scales linearly with
//     credits until the channel saturates.
// (b) IIO write-credit sweep: P2M-Write tolerates blue-regime latency
//     inflation only while credits exceed the needed C = T*L/64; shrinking
//     the buffer below ~65 credits makes "unaffected" P2M degrade.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "core/experiment.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

int main() {
  const auto opt = core::default_run_options();

  banner("Ablation (a): LFB credits vs isolated single-core C2M-Read throughput");
  {
    Table t({"LFB credits", "throughput GB/s", "latency (ns)", "law C*64/L"});
    for (std::uint32_t lfb : {4u, 8u, 10u, 12u, 16u, 24u, 48u}) {
      core::HostConfig host = core::cascade_lake();
      host.core.lfb_entries = lfb;
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = 1;
      const auto m = core::run_workloads(host, c2m, std::nullopt, opt).metrics;
      t.row({std::to_string(lfb), Table::num(m.c2m_app_gbps),
             Table::num(m.lfb_latency_ns, 1),
             Table::num(core::max_throughput_gbps(lfb, m.lfb_latency_ns))});
    }
    t.print();
  }

  banner("Ablation (b): IIO write credits vs P2M-Write tolerance (quadrant 1, 4 cores)");
  {
    Table t({"IIO wr credits", "P2M iso GB/s", "P2M colo GB/s", "P2M degr",
             "credits needed (T*L/64)"});
    for (std::uint32_t credits : {32u, 48u, 64u, 80u, 92u, 128u}) {
      core::HostConfig host = core::cascade_lake();
      host.iio.write_credits = credits;
      core::C2MSpec c2m;
      c2m.workload = workloads::c2m_read(workloads::c2m_core_region(0));
      c2m.cores = 4;
      core::P2MSpec p2m;
      p2m.storage = workloads::fio_p2m_write(host, workloads::p2m_region());
      const auto o = core::run_colocation(host, c2m, p2m, opt);
      t.row({std::to_string(credits), Table::num(o.iso_p2m.p2m_score, 2),
             Table::num(o.colo.p2m_score, 2), Table::num(o.p2m_degradation()) + "x",
             Table::num(core::credits_needed(o.iso_p2m.p2m_score,
                                             o.colo.metrics.p2m_write.latency_ns),
                        1)});
    }
    t.print();
  }
  std::printf("\nTakeaway: spare credits are exactly what shields P2M in the blue\n"
              "regime; once C falls below T*L/64 the 'unaffected' side degrades.\n");
  return 0;
}
