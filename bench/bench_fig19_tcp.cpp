// Figure 19 (Appendix C.2): DCTCP receiver colocated with memory apps.
//
// (a,b) C2M-Read (Memory app) + TCP Rx: both degrade; the memory app
//       degrades more, and the gap narrows with load.
// (c,d) C2M-ReadWrite + TCP Rx: at low load the memory app degrades more;
//       at higher load the network app collapses (drops + CC response).
// The memory-bandwidth breakdown per case is also printed.
#include <string>
#include <vector>

#include "common/table.hpp"
#include "net/dctcp.hpp"
#include "workloads/workloads.hpp"

using namespace hostnet;

namespace {

void run_case(const char* title, bool c2m_writes) {
  const core::HostConfig hc = core::cascade_lake();
  const auto opt = core::default_run_options();
  const std::vector<std::uint32_t> cores{1, 2, 3, 4};

  // Isolated baselines.
  double iso_net = 0;
  {
    core::HostSystem host(hc);
    net::DctcpConfig cfg;
    net::TcpReceiver rx(host, cfg);
    host.run(opt.warmup, opt.measure);
    iso_net = rx.goodput_gbps(host.sim().now());
  }

  banner(title);
  Table t({"C2M cores", "Memory app degr", "Network app degr", "loss rate",
           "C2M mem GB/s", "P2M mem GB/s"});
  for (auto n : cores) {
    auto wl = c2m_writes ? workloads::c2m_read_write(workloads::c2m_core_region(0))
                         : workloads::c2m_read(workloads::c2m_core_region(0));
    // Isolated memory app at this core count.
    core::C2MSpec c2m;
    c2m.workload = wl;
    c2m.cores = n;
    const double iso_mem =
        core::run_workloads(hc, c2m, std::nullopt, opt).c2m_score;

    core::HostSystem host(hc);
    for (std::uint32_t i = 0; i < n; ++i) {
      auto w = wl;
      w.region.base += static_cast<std::uint64_t>(i) << 30;
      host.add_core(w);
    }
    net::DctcpConfig cfg;
    net::TcpReceiver rx(host, cfg);
    host.run(opt.warmup, opt.measure);
    const auto m = host.collect();
    const Tick now = host.sim().now();
    const double mem_degr = m.c2m_app_gbps > 0 ? iso_mem / m.c2m_app_gbps : 0;
    const double net_degr =
        rx.goodput_gbps(now) > 0 ? iso_net / rx.goodput_gbps(now) : 0;
    t.row({std::to_string(n), Table::num(mem_degr) + "x", Table::num(net_degr) + "x",
           Table::pct(rx.loss_rate() * 100, 3), Table::num(m.c2m_mem_gbps(), 1),
           Table::num(m.p2m_mem_gbps(), 1)});
  }
  t.print();
}

}  // namespace

int main() {
  run_case("Fig 19(a,b): C2MRead + TCP Rx (DCTCP, 4 copy cores)", false);
  run_case("Fig 19(c,d): C2MReadWrite + TCP Rx (DCTCP, 4 copy cores)", true);
  return 0;
}
