# Runs a google-benchmark binary and writes its results as JSON, for
# machine-readable perf tracking across PRs. Invoked by the `perf`-labelled
# CTest entries (see bench/CMakeLists.txt):
#
#   ctest -R bench_sim_perf_json
#
# Expects: BENCH_BIN (benchmark executable), OUT_JSON (output path), and
# optionally MIN_TIME (per-benchmark min running time, seconds) and
# REPETITIONS (independent repeats per benchmark; scripts/bench_compare.py
# averages the raw entries per name, which keeps single-run jitter on the
# fast microbenchmarks from tripping the regression gate).
if(NOT DEFINED BENCH_BIN OR NOT DEFINED OUT_JSON)
  message(FATAL_ERROR "RunBench.cmake needs -DBENCH_BIN=... and -DOUT_JSON=...")
endif()
if(NOT DEFINED MIN_TIME)
  set(MIN_TIME 0.1)
endif()
if(NOT DEFINED REPETITIONS)
  set(REPETITIONS 1)
endif()

execute_process(
  COMMAND ${BENCH_BIN}
          --benchmark_out=${OUT_JSON}
          --benchmark_out_format=json
          --benchmark_min_time=${MIN_TIME}
          --benchmark_repetitions=${REPETITIONS}
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} failed with exit code ${rc}")
endif()
message(STATUS "benchmark results written to ${OUT_JSON}")
